"""E9 — separation of concerns (Sections 2.2 and 3).

Quantifies the paper's central claim: with MAQS weaving the
application code contains (almost) no QoS code, while the hand-tangled
equivalent mixes QoS into most lines and methods.

Rows: tangling ratio (QoS lines / code lines) and method spread
(methods touched by QoS) for the plain app, the MAQS-woven app and the
hand-tangled app — plus the *invasiveness* of adding one more
characteristic to each variant.

Expected shape: woven app ≈ plain app ≈ 0 tangling; tangled app > 40%
of lines and > 60% of methods; adding a characteristic to the woven
variant touches ~2 declaration lines, versus dozens in the tangled
variant.
"""

import pytest

from _tables import print_table
from repro.baselines import (
    PlainArchiveServant,
    TangledArchiveServant,
    TangledArchiveStub,
    tangling_report,
)
from repro.workloads.apps import make_archive_servant_class


def _measure():
    woven_class = make_archive_servant_class()
    reports = [
        tangling_report(PlainArchiveServant, "plain servant", use_markers=False),
        tangling_report(woven_class, "MAQS-woven servant", use_markers=False),
        tangling_report(TangledArchiveServant, "tangled servant"),
        tangling_report(TangledArchiveStub, "tangled client stub"),
    ]
    rows = [report.row() for report in reports]
    return rows, {report.name: report for report in reports}


def test_bench_e9_tangling(benchmark):
    rows, reports = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_table(
        "E9 — QoS tangling: lines and method spread per variant",
        ["variant", "code lines", "qos lines", "tangling", "method spread"],
        rows,
    )
    woven = reports["MAQS-woven servant"]
    tangled = reports["tangled servant"]
    assert woven.tangling_ratio < 0.05
    assert tangled.tangling_ratio > 0.4
    assert tangled.method_spread > 0.6
    assert tangled.tangling_ratio > 8 * max(woven.tangling_ratio, 0.01)


def _invasiveness():
    """Lines an application developer must touch to add a characteristic.

    Woven variant: the QIDL 'provides' clause grows by one name, and
    the deployment adds one provider.support(...) call — the servant
    class itself is untouched (unless the characteristic declares
    integration operations, which add their methods).

    Tangled variant: every QoS-marked line attributable to the
    encryption concern had to be written into the application.
    """
    import inspect

    woven_touch = 2  # provides clause + provider.support call

    tangled_source = inspect.getsource(TangledArchiveServant)
    tangled_touch = sum(
        1
        for line in tangled_source.splitlines()
        if "# [qos]" in line
        and any(word in line.lower() for word in ("cipher", "key", "encrypt", "decrypt", "seal"))
    )
    return woven_touch, tangled_touch


def test_bench_e9_invasiveness(benchmark):
    woven_touch, tangled_touch = benchmark.pedantic(
        _invasiveness, rounds=1, iterations=1
    )
    print_table(
        "E9 — invasiveness of adding the Encryption characteristic",
        ["variant", "application lines touched"],
        [("MAQS-woven", woven_touch), ("hand-tangled", tangled_touch)],
    )
    assert woven_touch <= 3
    assert tangled_touch > 10


def test_bench_e9_report_generation_wall_clock(benchmark):
    """Wall-clock cost of computing a tangling report."""
    report = benchmark(tangling_report, TangledArchiveServant)
    assert report.total_lines > 0
