"""E5 — performance by load balancing (Section 6).

An open-loop Poisson job stream (arrivals independent of completions,
so FIFO queues build at busy servers) is spread over worker pools of
growing size, and across the four balancing policies on a
heterogeneous pool.

Expected shape: with offered load ~1.6x one server's capacity, the
single server's queue grows without bound (mean latency hundreds of
ms); two servers absorb the load; further servers shave the residual
queueing.  On the heterogeneous pool the latency-aware adaptive policy
beats the oblivious ones.
"""

import pytest

from _tables import print_table
from repro.orb import World, giop
from repro.orb.request import Request
from repro.qos.load_balancing import LoadBalancingMediator
from repro.qos.load_balancing.policies import make_policy, policy_names, WorkerStats
from repro.workloads import Arrival, open_loop_fanout, poisson_arrivals
from repro.workloads.apps import compute_module, make_compute_servant_class

HOSTS = ["w1", "w2", "w3", "w4"]
RATE = 80.0      # jobs/second offered
DURATION = 1.5
UNITS = 10       # 20 ms of work per job at speed 1.0 -> capacity 50/s


def _deploy(worker_count, speeds=None):
    world = World()
    world.lan(["client"] + HOSTS[:worker_count], latency=0.002)
    if speeds:
        for host, speed in zip(HOSTS, speeds):
            world.network.host(host).cpu_factor = speed
    iors = []
    servant_class = make_compute_servant_class(unit_cost=0.002)
    for host in HOSTS[:worker_count]:
        iors.append(world.orb(host).poa.activate_object(servant_class(), f"w-{host}"))
    return world, iors


def _run_balanced(world, iors, policy_name, seed=3):
    """Open-loop run with per-job policy choice and latency feedback."""
    orb = world.orb("client")
    policy = make_policy(policy_name, seed=seed)
    stats = [WorkerStats() for _ in iors]
    latencies = []
    last_finish = 0.0
    for time in poisson_arrivals(RATE, DURATION, seed=seed):
        index = policy.choose(len(iors), stats)
        stats[index].assigned += 1
        request = Request(iors[index], "busy_work", (UNITS,))
        wire = giop.encode_request(request)
        reply_wire, finish = orb.round_trip(
            iors[index].profile.host, wire, time + orb.marshal_cost(len(wire))
        )
        finish += orb.marshal_cost(len(reply_wire))
        giop.decode_reply(reply_wire).value()
        latency = finish - time
        stats[index].record(latency)
        latencies.append(latency)
        last_finish = max(last_finish, finish)
    world.clock.advance_to(last_finish)
    mean = sum(latencies) / len(latencies)
    p95 = sorted(latencies)[int(0.95 * len(latencies)) - 1]
    return mean, p95, [s.assigned for s in stats]


def _pool_size_sweep():
    rows = []
    means = {}
    for count in (1, 2, 3, 4):
        world, iors = _deploy(count)
        mean, p95, spread = _run_balanced(world, iors, "round_robin")
        rows.append((count, mean * 1e3, p95 * 1e3, spread))
        means[count] = mean
    return rows, means


def test_bench_e5_latency_vs_pool_size(benchmark):
    rows, means = benchmark.pedantic(_pool_size_sweep, rounds=1, iterations=1)
    print_table(
        "E5 — open-loop Poisson 80 jobs/s, 20ms jobs: latency vs pool size",
        ["workers", "mean (sim ms)", "p95 (sim ms)", "spread"],
        rows,
    )
    # Shape: one server saturates (offered 1.6x capacity); two absorb it.
    assert means[1] > 5 * means[2]
    assert means[2] >= means[3] * 0.8  # diminishing returns, no regression
    assert means[4] <= means[2]


def _policy_sweep():
    rows = []
    means = {}
    for policy_name in policy_names():
        world, iors = _deploy(4, speeds=[1.0, 1.0, 0.4, 2.0])
        mean, p95, spread = _run_balanced(world, iors, policy_name)
        rows.append((policy_name, mean * 1e3, p95 * 1e3, spread))
        means[policy_name] = mean
    return rows, means


def test_bench_e5_policy_on_heterogeneous_pool(benchmark):
    rows, means = benchmark.pedantic(_policy_sweep, rounds=1, iterations=1)
    print_table(
        "E5 — policies on a heterogeneous pool (speeds 1.0/1.0/0.4/2.0)",
        ["policy", "mean (sim ms)", "p95 (sim ms)", "spread"],
        rows,
    )
    # Shape: latency feedback beats oblivious spreading.
    assert means["adaptive"] < means["round_robin"]
    assert means["adaptive"] < means["random"]


def _failover_run():
    world, iors = _deploy(3)
    stub = compute_module.ComputeStub(world.orb("client"), iors[0])
    mediator = LoadBalancingMediator("round_robin")
    mediator.set_workers(iors)
    mediator.install(stub)
    completed = 0
    for job in range(30):
        if job == 10:
            world.faults.crash("w2")
        stub.busy_work(1)
        completed += 1
    return completed, mediator.failovers, len(mediator.workers)


def test_bench_e5_failover_continuity(benchmark):
    completed, failovers, remaining = benchmark.pedantic(
        _failover_run, rounds=1, iterations=1
    )
    print_table(
        "E5 — fail-over continuity (crash 1 of 3 workers mid-run)",
        ["jobs completed", "fail-overs", "workers left"],
        [(completed, failovers, remaining)],
    )
    assert completed == 30
    assert failovers >= 1
    assert remaining == 2
