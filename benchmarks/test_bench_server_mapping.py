"""E2 — Figure 2: the QIDL server-side mapping.

A server assigned three QoS characteristics is negotiated into each of
them in turn; the dispatch matrix shows which operations are processed
versus refused (BAD_QOS), proving "only the operations of the actual
negotiated QoS characteristic are processed while others raise an
exception".  The prolog/epilog bracket is traced, and the wall-clock
interposition overhead of the woven server base over the plain typed
skeleton is measured with pytest-benchmark.
"""

import pytest

from _tables import print_table
from repro.core.binding import QoSProvider
from repro.core.negotiation import Range
from repro.orb import World
from repro.orb.exceptions import BAD_QOS
from repro.qos.actuality.freshness import ActualityImpl
from repro.qos.compression.payload import CompressionImpl
from repro.qos.encryption.privacy import EncryptionImpl
from repro.workloads.apps import archive_module, make_archive_servant_class

#: One probe operation per characteristic, plus an application op.
PROBES = {
    "app: size()": ("size", ()),
    "Compression: get_codec()": ("get_codec", ()),
    "Encryption: get_cipher()": ("get_cipher", ()),
    "Actuality: get_max_age()": ("get_max_age", ()),
}

CHARACTERISTICS = ("Compression", "Encryption", "Actuality")


def _deploy():
    world = World()
    world.lan(["client", "server"], latency=0.001)
    servant = make_archive_servant_class()()
    provider = QoSProvider(world, "server", servant)
    provider.support(
        "Compression", CompressionImpl(), capabilities={"threshold": Range(64, 4096)}
    )
    provider.support("Encryption", EncryptionImpl(), capabilities={})
    provider.support(
        "Actuality",
        ActualityImpl().attach_clock(world.clock),
        capabilities={"max_age": Range(0.1, 10.0)},
    )
    ior = provider.activate("archive")
    stub = archive_module.ArchiveStub(world.orb("client"), ior)
    return world, servant, stub


def _dispatch_matrix():
    world, servant, stub = _deploy()
    rows = []
    for active in (None,) + CHARACTERISTICS:
        servant.activate_qos(active)
        outcomes = []
        for probe_name, (operation, args) in PROBES.items():
            try:
                getattr(stub, operation)(*args)
                outcomes.append("ok")
            except BAD_QOS:
                outcomes.append("BAD_QOS")
        rows.append((active or "(none)",) + tuple(outcomes))
    return rows


def test_bench_e2_dispatch_matrix(benchmark):
    rows = benchmark.pedantic(_dispatch_matrix, rounds=1, iterations=1)
    print_table(
        "E2 / Figure 2 — dispatch by negotiated characteristic",
        ["active characteristic"] + list(PROBES),
        rows,
    )
    # Shape: the app op always works; each QoS op only under its owner.
    for index, row in enumerate(rows):
        assert row[1] == "ok"  # application operation
        for column, characteristic in enumerate(CHARACTERISTICS, start=2):
            expected = "ok" if row[0] == characteristic else "BAD_QOS"
            assert row[column] == expected


def test_bench_e2_prolog_epilog_bracket(benchmark):
    def scenario():
        world, servant, stub = _deploy()
        trace = []

        class TracingImpl(CompressionImpl):
            def prolog(self, servant, operation, args, contexts):
                trace.append(("prolog", operation))
                return super().prolog(servant, operation, args, contexts)

            def epilog(self, servant, operation, result, contexts):
                trace.append(("epilog", operation))
                return super().epilog(servant, operation, result, contexts)

        servant.set_qos_impl(TracingImpl())
        servant.activate_qos("Compression")
        stub.store("k", "v")
        stub.size()
        return trace

    trace = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert trace == [
        ("prolog", "store"),
        ("epilog", "store"),
        ("prolog", "size"),
        ("epilog", "size"),
    ]
    print("\nE2 prolog/epilog bracket trace:", trace)


def test_bench_e2_interposition_overhead(benchmark):
    """Wall-clock cost of the woven dispatch path vs the plain skeleton."""
    world, servant, stub = _deploy()
    servant.set_qos_impl(CompressionImpl())
    servant.activate_qos("Compression")

    def dispatch_through_weaving():
        servant._dispatch("size", (), {})

    benchmark(dispatch_through_weaving)
    # Sanity: the woven path still returns correct results.
    assert servant._dispatch("size", (), {}) == 0
