"""E6 — compression for channels with small bandwidth (Section 6).

Round-trip time of an 8 KiB compressible fetch across a bandwidth
sweep from 64 kbit/s to 100 Mbit/s, with and without the compression
transport module, for each codec.

Expected shape: compression wins big on slow links (transfer time
dominates) and *loses* on fast links (codec CPU dominates) — the
crossover sits between 10 and 100 Mbit/s for the LZ codec with this
reproduction's CPU cost model.  RLE is cheaper but compresses this
text worse.
"""

import pytest

from _tables import print_table
from repro.orb import World
from repro.orb.modules.base import binding_key
from repro.orb.ior import QOS_TAG, TaggedComponent
from repro.workloads import compressible_text
from repro.workloads.apps import archive_module, make_archive_servant_class

BANDWIDTHS = [64e3, 256e3, 1e6, 10e6, 100e6]
PAYLOAD = compressible_text(8192, seed=5)


def _deploy(bandwidth_bps):
    world = World()
    world.add_host("client")
    world.add_host("server")
    world.connect("client", "server", latency=0.005, bandwidth_bps=bandwidth_bps)
    servant = make_archive_servant_class()()
    servant.files["doc"] = PAYLOAD
    ior = world.orb("server").poa.activate_object(
        servant,
        "archive",
        components=[TaggedComponent(QOS_TAG, {"characteristics": ["Compression"]})],
    )
    stub = archive_module.ArchiveStub(world.orb("client"), ior)
    return world, ior, stub


def _fetch_rtt(world, stub):
    start = world.clock.now
    assert stub.fetch("doc") == PAYLOAD
    return world.clock.now - start


def _sweep():
    rows = []
    results = {}
    for bandwidth in BANDWIDTHS:
        world, ior, stub = _deploy(bandwidth)
        plain = _fetch_rtt(world, stub)

        per_codec = {}
        for codec in ("lz", "rle"):
            world, ior, stub = _deploy(bandwidth)
            client = world.orb("client")
            client.qos_transport.assign(ior, "compression")
            client.qos_transport.module("compression").set_codec(
                binding_key(ior), codec
            )
            per_codec[codec] = _fetch_rtt(world, stub)

        rows.append(
            (
                f"{bandwidth / 1e3:.0f} kbit/s"
                if bandwidth < 1e6
                else f"{bandwidth / 1e6:.0f} Mbit/s",
                plain * 1e3,
                per_codec["lz"] * 1e3,
                per_codec["rle"] * 1e3,
                f"{plain / per_codec['lz']:.2f}x",
            )
        )
        results[bandwidth] = (plain, per_codec["lz"], per_codec["rle"])
    return rows, results


def test_bench_e6_bandwidth_sweep(benchmark):
    rows, results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        "E6 — 8 KiB compressible fetch: RTT vs link bandwidth",
        ["bandwidth", "plain (ms)", "lz (ms)", "rle (ms)", "lz speedup"],
        rows,
    )
    plain_slow, lz_slow, _ = results[64e3]
    plain_fast, lz_fast, _ = results[100e6]
    # Shape: compression wins on the modem link...
    assert lz_slow < plain_slow / 1.5
    # ...and loses (or at best breaks even) on the fast LAN: crossover.
    assert lz_fast >= plain_fast
    # Speedup is monotonically shrinking as bandwidth grows.
    speedups = [results[bw][0] / results[bw][1] for bw in BANDWIDTHS]
    assert speedups == sorted(speedups, reverse=True)


def _ratio_table():
    from repro import codecs

    rows = []
    raw = PAYLOAD.encode("utf-8")
    for codec in ("rle", "lz", "delta"):
        compress, decompress = codecs.get_codec(codec)
        packed = compress(raw)
        assert decompress(packed) == raw
        rows.append(
            (
                codec,
                len(raw),
                len(packed),
                len(packed) / len(raw),
                codecs.cpu_cost(codec, len(raw)) * 1e6,
            )
        )
    return rows


def test_bench_e6_codec_ratio_and_cost(benchmark):
    rows = benchmark.pedantic(_ratio_table, rounds=1, iterations=1)
    print_table(
        "E6 — codec ratio vs simulated CPU cost (8 KiB word text)",
        ["codec", "in bytes", "out bytes", "ratio", "cpu (sim µs)"],
        rows,
    )
    by_codec = {row[0]: row for row in rows}
    # LZ compresses this text better than RLE but costs more CPU.
    assert by_codec["lz"][3] < by_codec["rle"][3]
    assert by_codec["lz"][4] > by_codec["rle"][4]


def test_bench_e6_wall_clock_codec(benchmark):
    """Wall-clock LZ compression of the 8 KiB payload."""
    from repro.codecs import lz

    raw = PAYLOAD.encode("utf-8")
    packed = benchmark(lz.compress, raw)
    assert lz.decompress(packed) == raw
