#!/usr/bin/env python
"""Run the reliability-layer benchmark; write ``BENCH_reliability.json``.

The scenario: a client runs multi-call *transactions* (a chain of
idempotent ``process`` calls ending in one non-idempotent ``commit``)
against a three-replica group, under a fault process that crashes each
replica independently with 10% probability per call slot (fail-stop:
the crash lands *before* the call, so every failure is a forward-leg,
provably-unexecuted one).  The draws are a pure function of
``(seed, txn, call)``, so both contenders face the identical fault
environment and the whole run replays exactly.

- **baseline** — a plain stub bound to the primary, no recovery: the
  first failed call aborts the transaction (its work is wasted).
- **reliable** — the same stub wrapped by the reliability mediator:
  retry + failover turn almost every fault into a transparent re-issue
  on a surviving replica.

Goodput is committed transactions per simulated second.  The headline
criterion (the subsystem's acceptance bar)::

    reliable goodput  >=  3.0 * baseline goodput
    duplicate non-idempotent executions  ==  0

Usage::

    python benchmarks/run_reliability_bench.py [--quick]
        [--out BENCH_reliability.json] [--min-ratio 3.0] [--no-check]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import Dict, List

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.orb import World  # noqa: E402
from repro.orb.exceptions import SystemException  # noqa: E402
from repro.orb.ior import GROUP_TAG, IOR, TaggedComponent  # noqa: E402
from repro.orb.request import reset_request_ids  # noqa: E402
from repro.orb.servant import Servant  # noqa: E402
from repro.orb.stub import Stub  # noqa: E402
from repro.perf import COUNTERS  # noqa: E402
from repro.reliability import ReliabilityPolicy, reliable  # noqa: E402

REPLICAS = ("a", "b", "c")
#: Per-replica, per-call-slot crash probability (the "10% crash rate").
CRASH_RATE = 0.10
#: Calls per transaction: the last one is the non-idempotent commit.
TXN_CALLS = 25
LINK_LATENCY = 0.0005
SERVICE_TIME = 0.0002


class _Ledger(Servant):
    _repo_id = "IDL:bench/Ledger:1.0"
    _default_service_time = SERVICE_TIME

    def __init__(self):
        self.processed = 0
        #: token -> times the non-idempotent commit ran here.
        self.commits: Dict[str, int] = {}

    def process(self, token):
        self.processed += 1
        return token

    def commit(self, token):
        self.commits[token] = self.commits.get(token, 0) + 1
        return self.commits[token]


class _LedgerStub(Stub):
    _idempotent_ops = frozenset({"process"})

    def process(self, token):
        return self._call("process", token)

    def commit(self, token):
        return self._call("commit", token)


def build_world():
    """Fresh deterministic deployment: client + one servant per replica."""
    reset_request_ids()
    COUNTERS.reset()
    world = World()
    world.lan(("client",) + REPLICAS, latency=LINK_LATENCY, bandwidth_bps=100e6)
    servants = {}
    members = []
    for host in REPLICAS:
        servant = _Ledger()
        servants[host] = servant
        members.append(
            world.orb(host).poa.activate_object(servant, object_key=f"ledger-{host}")
        )
    group_ior = IOR(
        members[0].type_id,
        members[0].profile,
        [
            TaggedComponent(
                GROUP_TAG,
                {
                    "group": "ledger",
                    "members": [member.to_string() for member in members],
                    "policy": "first",
                },
            )
        ],
    )
    return world, world.orb("client"), group_ior, servants


def crashed_replicas(seed: int, txn: int, call: int) -> List[str]:
    """The replicas down for this call slot — identical for every run."""
    rng = random.Random((seed * 1_000_003 + txn) * 1_009 + call)
    return [host for host in REPLICAS if rng.random() < CRASH_RATE]


def run_contender(reliable_stub: bool, txns: int, seed: int) -> Dict[str, object]:
    world, client, group_ior, servants = build_world()
    stub = _LedgerStub(client, group_ior)
    if reliable_stub:
        stub = reliable(
            stub,
            ReliabilityPolicy(
                max_retries=3,
                base_backoff=0.0005,
                jitter=0.0,
                breaker_threshold=8,
                breaker_cooldown=0.002,
                seed=seed,
            ),
        )
    committed = 0
    aborted = 0
    calls_issued = 0
    for txn in range(txns):
        ok = True
        for call in range(TXN_CALLS):
            downed = crashed_replicas(seed, txn, call)
            for host in downed:
                world.faults.crash(host)
            try:
                calls_issued += 1
                if call < TXN_CALLS - 1:
                    stub.process(f"{txn}.{call}")
                else:
                    stub.commit(f"txn{txn}")
            except SystemException:
                ok = False
            finally:
                for host in downed:
                    world.faults.recover(host)
            if not ok:
                break
        if ok:
            committed += 1
        else:
            aborted += 1
    elapsed = world.clock.now
    commit_counts = [
        count for servant in servants.values() for count in servant.commits.values()
    ]
    return {
        "transactions": txns,
        "committed": committed,
        "aborted": aborted,
        "commit_rate": round(committed / txns, 4),
        "calls_issued": calls_issued,
        "elapsed_s": round(elapsed, 6),
        "goodput_txn_per_s": round(committed / elapsed, 3) if elapsed else 0.0,
        "duplicate_commits": sum(1 for count in commit_counts if count > 1),
        "commits_executed": sum(commit_counts),
        "recovery": {
            "retries": COUNTERS.rel_retries,
            "failovers": COUNTERS.rel_failovers,
            "breaker_opens": COUNTERS.rel_breaker_opens,
            "breaker_fast_fails": COUNTERS.rel_breaker_fast_fails,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer transactions (CI smoke run)")
    parser.add_argument("--out",
                        default=os.path.join(ROOT, "BENCH_reliability.json"),
                        help="output path (default: repo root)")
    parser.add_argument("--seed", type=int, default=2001,
                        help="fault-process seed (default: 2001)")
    parser.add_argument("--min-ratio", type=float, default=3.0,
                        help="required reliable/baseline goodput floor")
    parser.add_argument("--no-check", action="store_true",
                        help="record numbers without enforcing --min-ratio")
    args = parser.parse_args(argv)

    txns = 60 if args.quick else 240
    baseline = run_contender(reliable_stub=False, txns=txns, seed=args.seed)
    reliable_run = run_contender(reliable_stub=True, txns=txns, seed=args.seed)

    base_goodput = baseline["goodput_txn_per_s"]
    rel_goodput = reliable_run["goodput_txn_per_s"]
    ratio = round(rel_goodput / base_goodput, 3) if base_goodput else None
    duplicates = (
        baseline["duplicate_commits"] + reliable_run["duplicate_commits"]
    )

    payload = {
        "quick": args.quick,
        "scenario": {
            "replicas": list(REPLICAS),
            "crash_rate_per_call": CRASH_RATE,
            "calls_per_transaction": TXN_CALLS,
            "transactions": txns,
            "link_latency_s": LINK_LATENCY,
            "service_time_s": SERVICE_TIME,
            "seed": args.seed,
        },
        "baseline": baseline,
        "reliable": reliable_run,
        "checks": {
            "zero_duplicate_commits": duplicates == 0,
            "reliable_commits_exactly_once": (
                reliable_run["commits_executed"] == reliable_run["committed"]
            ),
        },
        "headline": {
            "baseline_goodput_txn_per_s": base_goodput,
            "reliable_goodput_txn_per_s": rel_goodput,
            "goodput_ratio": ratio,
            "min_ratio": args.min_ratio,
        },
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"wrote {args.out}\n")
    print(f"  {'contender':>10} {'committed':>10} {'goodput':>12} {'dup commits':>12}")
    for name, row in (("baseline", baseline), ("reliable", reliable_run)):
        print(
            f"  {name:>10} {row['committed']:>7}/{row['transactions']:<3}"
            f" {row['goodput_txn_per_s']:>9.3f}/s {row['duplicate_commits']:>12}"
        )

    failures = []
    if duplicates:
        failures.append(f"{duplicates} non-idempotent commit(s) executed twice")
    if not payload["checks"]["reliable_commits_exactly_once"]:
        failures.append("reliable committed count diverged from executions")
    if not args.no_check and (ratio is None or ratio < args.min_ratio):
        failures.append(
            f"reliable goodput only {ratio}x baseline "
            f"(floor {args.min_ratio}x)"
        )
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(f"\n  goodput ratio {ratio}x over floor {args.min_ratio}x, zero duplicates")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
