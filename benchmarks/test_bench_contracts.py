"""E12 — outlook: preference contracts in negotiation (Section 6 / ref [5]).

"The rating of which QoS characteristic and its level is preferable to
another is depending on the client.  There is no system wide shared
view on QoS levels especially when the price is embraced."

A server offers three characteristics at several priced levels; a
client preference hierarchy (availability first, then freshness, under
a budget) picks among them.  Sweeping the budget traces how the chosen
characteristic/level changes — two clients with different hierarchies
pick differently from the *same* offer set.

Expected shape: utility is non-decreasing in budget; the cheap client
and the availability-focused client choose different candidates at the
same budget.
"""

import pytest

from _tables import print_table
from repro.core.contracts import (
    Candidate,
    CompositeContract,
    LeafContract,
    choose,
    linear_utility,
)

#: The server's offer set: characteristic levels with prices.
OFFERS = [
    Candidate("FaultTolerance", {"replicas": 2}, price=4.0),
    Candidate("FaultTolerance", {"replicas": 3}, price=8.0),
    Candidate("FaultTolerance", {"replicas": 5}, price=20.0),
    Candidate("Actuality", {"max_age": 5.0}, price=0.5),
    Candidate("Actuality", {"max_age": 1.0}, price=2.0),
    Candidate("Actuality", {"max_age": 0.2}, price=6.0),
    Candidate("Compression", {"threshold": 128}, price=1.0),
]


def _availability_contract(budget):
    return CompositeContract(
        "priority",
        [
            LeafContract(
                "FaultTolerance",
                {"replicas": linear_utility(1, 5)},
                budget=budget,
            ),
            LeafContract(
                "Actuality",
                {"max_age": linear_utility(10.0, 0.0)},
                budget=budget,
            ),
            LeafContract("Compression", {}, budget=budget),
        ],
    )


def _freshness_contract(budget):
    return CompositeContract(
        "priority",
        [
            LeafContract(
                "Actuality",
                {"max_age": linear_utility(10.0, 0.0)},
                budget=budget,
            ),
            LeafContract(
                "FaultTolerance",
                {"replicas": linear_utility(1, 5)},
                budget=budget,
            ),
        ],
    )


BUDGETS = [0.25, 1.0, 3.0, 7.0, 25.0]


def _budget_sweep():
    rows = []
    choices = {}
    for budget in BUDGETS:
        chosen_a, score_a = choose(_availability_contract(budget), OFFERS)
        chosen_f, score_f = choose(_freshness_contract(budget), OFFERS)
        rows.append(
            (
                budget,
                _describe(chosen_a), round(score_a, 3),
                _describe(chosen_f), round(score_f, 3),
            )
        )
        choices[budget] = (chosen_a, score_a, chosen_f, score_f)
    return rows, choices


def _describe(candidate):
    if candidate is None:
        return "(nothing affordable)"
    params = ", ".join(f"{k}={v}" for k, v in candidate.granted.items())
    return f"{candidate.characteristic}({params}) @{candidate.price}"


def test_bench_e12_preference_sweep(benchmark):
    rows, choices = benchmark.pedantic(_budget_sweep, rounds=1, iterations=1)
    print_table(
        "E12 — chosen offer vs budget, for two preference hierarchies",
        ["budget", "availability-first choice", "score",
         "freshness-first choice", "score"],
        rows,
    )
    # Shape: scores never decrease as budget grows.
    for client in (1, 3):
        scores = [choices[b][client] for b in BUDGETS]
        assert scores == sorted(scores)
    # No system-wide view: with budget to spare the two clients pick
    # different characteristics from the same offer set.
    chosen_a = choices[25.0][0]
    chosen_f = choices[25.0][2]
    assert chosen_a.characteristic != chosen_f.characteristic
    # Rich availability client buys the 5-replica level.
    assert choices[25.0][0].granted == {"replicas": 5}
    # Poor clients can still afford *something*.
    assert choices[1.0][0] is not None


def test_bench_e12_scoring_wall_clock(benchmark):
    """Wall-clock cost of scoring the full offer set."""
    contract = _availability_contract(10.0)
    chosen, score = benchmark(choose, contract, OFFERS)
    assert chosen is not None
