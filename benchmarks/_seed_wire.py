"""The growth seed's wire path, replayable in the current process.

``run_bench.py`` must record seed *and* current numbers in the same
run, on the same interpreter and the same machine state, so the
speedup ratio is not polluted by run-to-run noise.  This module keeps
verbatim copies of the seed hot paths — CDR (``_seed_cdr``), GIOP
encode/decode, IOR encode/decode, the network send path, and the
reflective servant dispatch — and a context manager that patches them
over the live classes for the duration of a measurement.

All patched call sites reference these entry points late (``giop.<fn>``
module attributes, ``Network``/``Servant`` methods), so swapping the
attributes is enough to make the whole ORB run on the seed path.

Nothing here is imported by the library; it exists only for the
benchmark harness.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional, Tuple

from _seed_cdr import CDRDecoder as SeedDecoder, CDREncoder as SeedEncoder
from repro.netsim.network import HostCrashed, Network, NoRoute, PacketLost
from repro.orb import giop
from repro.orb.exceptions import (
    BAD_OPERATION,
    MARSHAL,
    SystemException,
    UserException,
    system_exception_from_wire,
    user_exception_from_wire,
)
from repro.orb.ior import IIOPProfile, IOR, TaggedComponent
from repro.orb.qos_transport import QoSTransport
from repro.orb.request import Request
from repro.orb.servant import Servant
from repro.orb.skeleton import TypedSkeleton
from repro.orb.modules.base import binding_key

MAGIC = giop.MAGIC
VERSION = giop.VERSION


# -- seed GIOP (verbatim seed logic on the seed CDR classes) ------------


def _write_header(encoder: SeedEncoder, message_type: int) -> None:
    for byte in MAGIC:
        encoder.write_octet(byte)
    encoder.write_octet(VERSION[0])
    encoder.write_octet(VERSION[1])
    encoder.write_octet(message_type)


def _read_header(decoder: SeedDecoder) -> int:
    magic = bytes(decoder.read_octet() for _ in range(4))
    if magic != MAGIC:
        raise MARSHAL(f"bad GIOP magic: {magic!r}")
    major, minor = decoder.read_octet(), decoder.read_octet()
    if (major, minor) != VERSION:
        raise MARSHAL(f"unsupported GIOP version {major}.{minor}")
    return decoder.read_octet()


def seed_ior_encode(ior: IOR) -> bytes:
    """Seed ``IOR.encode``: a full re-encode on every call, no memo."""
    encoder = SeedEncoder()
    encoder.write_string(ior.type_id)
    encoder.write_string(ior.profile.host)
    encoder.write_ulong(ior.profile.port)
    encoder.write_string(ior.profile.object_key)
    encoder.write_ulong(len(ior.components))
    for component in ior.components:
        encoder.write_ulong(component.tag)
        encoder.write_any(component.data)
    return encoder.getvalue()


def seed_ior_decode(data: bytes) -> IOR:
    """Seed ``IOR.decode``: a full parse on every call, no cache."""
    decoder = SeedDecoder(data)
    type_id = decoder.read_string()
    host = decoder.read_string()
    port = decoder.read_ulong()
    object_key = decoder.read_string()
    count = decoder.read_ulong()
    components = []
    for _ in range(count):
        tag = decoder.read_ulong()
        payload = decoder.read_any()
        if not isinstance(payload, dict):
            raise MARSHAL("tagged component payload must decode to a map")
        components.append(TaggedComponent(tag, payload))
    return IOR(type_id, IIOPProfile(host, port, object_key), components)


def seed_encode_request(request: Request, pools: Any = None) -> bytes:
    # ``pools`` arrived after the seed; ignored to reproduce seed behaviour.
    encoder = SeedEncoder()
    _write_header(encoder, giop.MSG_REQUEST)
    encoder.write_ulong(request.request_id)
    encoder.write_octets(seed_ior_encode(request.target))
    encoder.write_string(request.operation)
    encoder.write_string(request.kind)
    encoder.write_string(request.command_target or "")
    encoder.write_boolean(request.response_expected)
    encoder.write_any(request.service_contexts)
    encoder.write_ulong(len(request.args))
    for arg in request.args:
        encoder.write_any(arg)
    return encoder.getvalue()


def seed_decode_request(data: bytes) -> Request:
    decoder = SeedDecoder(data)
    if _read_header(decoder) != giop.MSG_REQUEST:
        raise MARSHAL("expected a GIOP Request message")
    request_id = decoder.read_ulong()
    target = seed_ior_decode(decoder.read_octets())
    operation = decoder.read_string()
    kind = decoder.read_string()
    command_target = decoder.read_string() or None
    response_expected = decoder.read_boolean()
    contexts = decoder.read_any()
    if not isinstance(contexts, dict):
        raise MARSHAL("service contexts must decode to a map")
    count = decoder.read_ulong()
    args = tuple(decoder.read_any() for _ in range(count))
    request = Request(
        target,
        operation,
        args,
        kind=kind,
        command_target=command_target,
        service_contexts=contexts,
        response_expected=response_expected,
    )
    request.request_id = request_id
    return request


def seed_encode_reply(
    request_id: int,
    result: Any = None,
    exception: Optional[Exception] = None,
    service_contexts: Optional[Dict[str, Any]] = None,
    pools: Any = None,  # post-seed; ignored
) -> bytes:
    encoder = SeedEncoder()
    _write_header(encoder, giop.MSG_REPLY)
    encoder.write_ulong(request_id)
    encoder.write_any(service_contexts or {})
    if exception is None:
        encoder.write_octet(giop.NO_EXCEPTION)
        encoder.write_any(result)
    elif isinstance(exception, UserException):
        encoder.write_octet(giop.USER_EXCEPTION)
        encoder.write_string(exception.repo_id)
        encoder.write_string(exception.message)
        encoder.write_any(exception.members)
    elif isinstance(exception, SystemException):
        encoder.write_octet(giop.SYSTEM_EXCEPTION)
        encoder.write_string(exception.repo_id)
        encoder.write_string(exception.message)
        encoder.write_long(exception.minor)
    else:
        encoder.write_octet(giop.SYSTEM_EXCEPTION)
        encoder.write_string(SystemException.repo_id)
        encoder.write_string(f"{type(exception).__name__}: {exception}")
        encoder.write_long(0)
    return encoder.getvalue()


def seed_decode_reply(data: bytes) -> "giop.Reply":
    decoder = SeedDecoder(data)
    if _read_header(decoder) != giop.MSG_REPLY:
        raise MARSHAL("expected a GIOP Reply message")
    request_id = decoder.read_ulong()
    contexts = decoder.read_any()
    if not isinstance(contexts, dict):
        raise MARSHAL("service contexts must decode to a map")
    status = decoder.read_octet()
    if status == giop.NO_EXCEPTION:
        return giop.Reply(request_id, contexts, decoder.read_any(), None)
    if status == giop.USER_EXCEPTION:
        repo_id = decoder.read_string()
        message = decoder.read_string()
        members = decoder.read_any()
        exception = user_exception_from_wire(repo_id, message, members)
        return giop.Reply(request_id, contexts, None, exception)
    if status == giop.SYSTEM_EXCEPTION:
        repo_id = decoder.read_string()
        message = decoder.read_string()
        minor = decoder.read_long()
        exception = system_exception_from_wire(repo_id, message, minor)
        return giop.Reply(request_id, contexts, None, exception)
    raise MARSHAL(f"unknown reply status: {status}")


def seed_message_type(data: bytes) -> int:
    return _read_header(SeedDecoder(data))


# -- seed network send path ---------------------------------------------


def seed_route(self: Network, src: str, dst: str):
    self.host(src)
    self.host(dst)
    if src == dst:
        return []
    key = (src, dst)
    if key not in self._route_cache:
        self._route_cache[key] = self._dijkstra(src, dst)
    path = self._route_cache[key]
    if path is None:
        raise NoRoute(f"no route from {src!r} to {dst!r}")
    return path


def seed_transfer_delay(
    self: Network,
    src: str,
    dst: str,
    nbytes: int,
    reservations: Optional[Dict[int, float]] = None,
) -> float:
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative: {nbytes}")
    delay = 0.0
    for link in self.route(src, dst):
        reserved = reservations.get(id(link)) if reservations else None
        bandwidth = link.effective_bandwidth(reserved)
        delay += link.latency + (nbytes * 8.0) / bandwidth
    return delay


def seed_send(
    self: Network,
    src: str,
    dst: str,
    nbytes: int,
    reservations: Optional[Dict[int, float]] = None,
) -> float:
    source, target = self.host(src), self.host(dst)
    if source.crashed:
        raise HostCrashed(f"source host {src!r} is crashed")
    if target.crashed:
        raise HostCrashed(f"destination host {dst!r} is crashed")
    path = self.route(src, dst)
    for link in path:
        if link.sample_loss():
            link.messages_lost += 1
            raise PacketLost(f"message lost on {link!r}")
    delay = self.transfer_delay(src, dst, nbytes, reservations)
    for link in path:
        link.bytes_carried += nbytes
        link.messages_carried += 1
    if not path:
        self.loopback_bytes += nbytes
    self.messages_sent += 1
    self.bytes_sent += nbytes
    return delay


# -- seed dispatch ------------------------------------------------------


def seed_servant_dispatch(self, operation: str, args: Tuple[Any, ...],
                          contexts: Optional[Dict[str, Any]] = None) -> Any:
    if operation.startswith("_"):
        raise BAD_OPERATION(f"operation {operation!r} is not remotely accessible")
    method = getattr(self, operation, None)
    if method is None or not callable(method):
        raise BAD_OPERATION(
            f"{type(self).__name__} has no operation {operation!r}"
        )
    return method(*args)


def seed_typed_dispatch(self, operation: str, args: Tuple[Any, ...],
                        contexts: Optional[Dict[str, Any]] = None) -> Any:
    signature = self._signatures.get(operation)
    if signature is None:
        raise BAD_OPERATION(
            f"{type(self).__name__} has no operation {operation!r}"
        )
    signature.check_args(args)
    method = getattr(self, operation, None)
    if method is None:
        raise BAD_OPERATION(
            f"{type(self).__name__} does not implement {operation!r}"
        )
    result = method(*args)
    signature.check_result(result)
    return result


def seed_assigned_module(self: QoSTransport, target: IOR):
    name = self._assignments.get(binding_key(target))
    if name is None:
        return None
    return self._modules.get(name)


#: (owner object, attribute name, seed implementation) for every patch.
_PATCHES = [
    (giop, "encode_request", seed_encode_request),
    (giop, "decode_request", seed_decode_request),
    (giop, "encode_reply", seed_encode_reply),
    (giop, "decode_reply", seed_decode_reply),
    (giop, "message_type", seed_message_type),
    (Network, "route", seed_route),
    (Network, "transfer_delay", seed_transfer_delay),
    (Network, "send", seed_send),
    (Servant, "_dispatch", seed_servant_dispatch),
    (TypedSkeleton, "_dispatch", seed_typed_dispatch),
    (QoSTransport, "assigned_module", seed_assigned_module),
]


@contextmanager
def seed_wire():
    """Run the ORB on the seed wire path for the duration of the block."""
    saved = [(owner, name, owner.__dict__[name]) for owner, name, _ in _PATCHES]
    try:
        for owner, name, fn in _PATCHES:
            setattr(owner, name, fn)
        yield
    finally:
        for owner, name, original in saved:
            setattr(owner, name, original)
