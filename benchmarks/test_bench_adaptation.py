"""E10 — QoS adaptation: renegotiation under varying resources.

A client polls stories over a link whose capacity collapses mid-run
(2 Mbit/s → 96 kbit/s → 2 Mbit/s, a 30-second trough in a 90-second
window).  Two strategies are compared:

- **static**: keep the initial "gold" agreement and suffer;
- **adaptive**: a monitor + adaptation manager renegotiate the
  agreement down a three-level ladder during the trough and back up
  after recovery.

Reported: the fraction of checks in violation and the level track.
Expected shape: the adaptive run degrades within a few checks of the
trough, spends the trough at a sustainable level, upgrades after
recovery, and ends with a far lower violation fraction than static.
"""

import pytest

from _tables import print_table
from repro.core.adaptation import AdaptationLevel, AdaptationManager
from repro.core.binding import QoSProvider, establish_qos
from repro.core.monitoring import Expectation, QoSMonitor
from repro.core.negotiation import Range
from repro.orb import World
from repro.qos.actuality.freshness import ActualityImpl, ActualityMediator
from repro.workloads import compressible_text
from repro.workloads.apps import archive_module, make_archive_servant_class

LEVELS = [
    AdaptationLevel("gold", {"max_age": Range(0.0, 0.5)}),
    AdaptationLevel("silver", {"max_age": Range(0.5, 3.0)}),
    AdaptationLevel("bronze", {"max_age": Range(3.0, 15.0)}),
]
LATENCY_BOUND = 0.120
STORY = compressible_text(6000, seed=2)
TROUGH = (20.0, 50.0)
END = 90.0
CHECK_EVERY = 5.0


def _deploy():
    world = World()
    world.add_host("reader")
    world.add_host("srv")
    link = world.connect("reader", "srv", latency=0.01, bandwidth_bps=2e6)
    servant = make_archive_servant_class()()
    for index in range(3):
        servant.files[f"story-{index}"] = STORY
    provider = QoSProvider(world, "srv", servant)
    provider.support(
        "Actuality",
        ActualityImpl().attach_clock(world.clock),
        capabilities={"max_age": Range(0.0, 15.0)},
    )
    ior = provider.activate("feed")
    stub = archive_module.ArchiveStub(world.orb("reader"), ior)
    world.resources.set_capacity_trace(
        link, [(0.0, 2e6), (TROUGH[0], 96e3), (TROUGH[1], 2e6)]
    )
    return world, stub


def _run(adaptive):
    world, stub = _deploy()
    mediator = ActualityMediator(cacheable={"fetch"})
    binding = establish_qos(
        stub, "Actuality", LEVELS[0].requirements, mediator=mediator
    )
    monitor = QoSMonitor(binding.agreement, world.clock, min_samples=3)
    monitor.expect(Expectation("latency", "<=", LATENCY_BOUND, aggregate="mean"))
    manager = AdaptationManager(
        binding, monitor, LEVELS, upgrade_after_healthy_checks=2
    )

    violating_checks = 0
    total_checks = 0
    tick = CHECK_EVERY
    while tick <= END:
        world.kernel.run_until(tick)
        world.resources.apply_traces()
        for story in range(3):
            start = world.clock.now
            stub.fetch(f"story-{story}")
            monitor.observe("latency", world.clock.now - start)
        total_checks += 1
        if not monitor.healthy():
            violating_checks += 1
        if adaptive:
            manager.check()
        tick += CHECK_EVERY

    return {
        "violation_fraction": violating_checks / total_checks,
        "renegotiations": manager.renegotiations,
        "final_level": manager.current_level.name,
        "track": [(round(t, 1), LEVELS[i].name, why) for t, i, why in manager.track],
        "cache_hits": mediator.hits,
    }


def _compare():
    return _run(adaptive=False), _run(adaptive=True)


def test_bench_e10_adaptation(benchmark):
    static, adaptive = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print_table(
        "E10 — static agreement vs adaptation (30s bandwidth trough)",
        ["strategy", "checks violated", "renegotiations", "final level",
         "cache hits"],
        [
            ("static gold", f"{static['violation_fraction']:.0%}", 0, "gold",
             static["cache_hits"]),
            ("adaptive", f"{adaptive['violation_fraction']:.0%}",
             adaptive["renegotiations"], adaptive["final_level"],
             adaptive["cache_hits"]),
        ],
    )
    print("adaptive level track:", adaptive["track"])
    # Shape: adaptation degrades during the trough and recovers.
    assert adaptive["renegotiations"] >= 2
    assert any(why == "degrade" for _, _, why in adaptive["track"])
    assert any(why == "upgrade" for _, _, why in adaptive["track"])
    assert adaptive["final_level"] == "gold"
    # And it violates its expectations far less often than static.
    assert adaptive["violation_fraction"] < static["violation_fraction"] / 1.5
    # Degrading to a long max_age converts fetches into cache hits.
    assert adaptive["cache_hits"] > static["cache_hits"]
