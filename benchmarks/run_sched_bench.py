#!/usr/bin/env python
"""Run the request-scheduler overload benchmark; write ``BENCH_sched.json``.

The canonical QoS-scheduling scenario: one server offered ~2x its
capacity with interleaved **gold** (weight 4, priority 1) and
**bronze** (weight 1, priority 6) traffic, replayed once per policy —
FIFO, strict priority, WFQ — plus a WFQ run with a 50 ms bronze
deadline contract to measure shedding.  Everything runs on the
simulated clock, so the numbers are exactly reproducible.

The headline criterion (the subsystem's acceptance bar)::

    gold p95 under WFQ  <=  0.5 * gold p95 under FIFO

Usage::

    python benchmarks/run_sched_bench.py [--quick] [--out BENCH_sched.json]
        [--max-ratio 0.5] [--no-check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.orb import World  # noqa: E402
from repro.orb.servant import Servant  # noqa: E402
from repro.sched import CLASS_CONTEXT  # noqa: E402
from repro.workloads.drivers import (  # noqa: E402
    Arrival,
    ClosedLoopResult,
    open_loop_fanout,
)

#: 10 ms of server CPU per request -> 100 req/s capacity.
SERVICE_TIME = 0.010
#: One arrival every 5 ms -> 200 req/s offered, 2x overload.
CADENCE = 0.005
#: Class parameters: gold is the protected contract traffic.
CLASSES = {
    "gold": {"weight": 4.0, "priority": 1},
    "bronze": {"weight": 1.0, "priority": 6},
}


class _Echo(Servant):
    _repo_id = "IDL:bench/Echo:1.0"
    _default_service_time = SERVICE_TIME

    def echo(self, text):
        return text


def run_scenario(
    policy: str, count: int, bronze_deadline: Optional[float] = None
) -> Dict[str, object]:
    """One overload replay; returns per-class quantiles and shed counts."""
    world = World()
    world.lan(["client", "server"], latency=0.001, bandwidth_bps=10e6)
    server = world.orb("server")
    scheduler = server.install_scheduler(policy=policy, max_depth=10_000)
    scheduler.define_class("gold", **CLASSES["gold"])
    scheduler.define_class(
        "bronze", deadline=bronze_deadline, **CLASSES["bronze"]
    )
    ior = server.poa.activate_object(_Echo(), object_key="echo")

    latencies = {"gold": [], "bronze": []}
    shed = {"gold": 0, "bronze": 0}

    def observer(arrival, latency, error):
        if latency is not None:
            latencies[arrival.label].append(latency)
        else:
            shed[arrival.label] += 1

    arrivals = [
        Arrival(
            i * CADENCE,
            ior,
            "echo",
            ("x",),
            contexts={CLASS_CONTEXT: "gold" if i % 2 == 0 else "bronze"},
            label="gold" if i % 2 == 0 else "bronze",
        )
        for i in range(count)
    ]
    open_loop_fanout(world.orb("client"), arrivals, observer=observer)

    report: Dict[str, object] = {"policy": policy}
    for name in ("gold", "bronze"):
        series = ClosedLoopResult(latencies[name], shed[name], world.clock.now)
        offered = len(latencies[name]) + shed[name]
        report[name] = {
            "offered": offered,
            "served": len(latencies[name]),
            "shed": shed[name],
            "shed_rate": round(shed[name] / offered, 4) if offered else 0.0,
            "p50_ms": round(series.p50() * 1e3, 3),
            "p95_ms": round(series.p95() * 1e3, 3),
            "p99_ms": round(series.p99() * 1e3, 3),
        }
    report["scheduler_stats"] = scheduler.stats_snapshot()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer arrivals (CI smoke run)")
    parser.add_argument("--out", default=os.path.join(ROOT, "BENCH_sched.json"),
                        help="output path (default: repo root BENCH_sched.json)")
    parser.add_argument("--max-ratio", type=float, default=0.5,
                        help="required gold-p95 WFQ/FIFO ceiling")
    parser.add_argument("--no-check", action="store_true",
                        help="record numbers without enforcing --max-ratio")
    args = parser.parse_args(argv)

    count = 100 if args.quick else 200
    scenarios = {
        "fifo": run_scenario("fifo", count),
        "priority": run_scenario("priority", count),
        "wfq": run_scenario("wfq", count),
        "wfq_deadline": run_scenario("wfq", count, bronze_deadline=0.050),
    }

    fifo_gold_p95 = scenarios["fifo"]["gold"]["p95_ms"]
    wfq_gold_p95 = scenarios["wfq"]["gold"]["p95_ms"]
    ratio = round(wfq_gold_p95 / fifo_gold_p95, 4) if fifo_gold_p95 else None

    payload = {
        "quick": args.quick,
        "offered_load": {
            "service_time_s": SERVICE_TIME,
            "cadence_s": CADENCE,
            "arrivals": count,
            "overload_factor": round(SERVICE_TIME / CADENCE, 2),
        },
        "classes": CLASSES,
        "scenarios": scenarios,
        "headline": {
            "gold_p95_fifo_ms": fifo_gold_p95,
            "gold_p95_wfq_ms": wfq_gold_p95,
            "gold_p95_wfq_over_fifo": ratio,
            "max_ratio": args.max_ratio,
            "bronze_shed_rate_with_deadline":
                scenarios["wfq_deadline"]["bronze"]["shed_rate"],
        },
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"wrote {args.out}\n")
    print(f"  {'policy':<14} {'gold p95':>10} {'bronze p95':>11} {'bronze shed':>12}")
    for name, row in scenarios.items():
        print(f"  {name:<14} {row['gold']['p95_ms']:>8.1f}ms"
              f" {row['bronze']['p95_ms']:>9.1f}ms"
              f" {row['bronze']['shed_rate']:>11.1%}")
    print(f"\n  gold p95 WFQ/FIFO ratio: {ratio}  (ceiling {args.max_ratio})")

    if not args.no_check and (ratio is None or ratio > args.max_ratio):
        print(f"\nFAIL: WFQ does not hold gold p95 under "
              f"{args.max_ratio}x FIFO")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
