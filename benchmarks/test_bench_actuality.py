"""E8 — actuality (freshness) of data (Section 6).

A quote server republishes a price every 0.5 s while a client polls it
at 10 Hz through the Actuality mediator.  Sweeping the negotiated
``max_age`` trades staleness for saved round trips.

Expected shape: fetch savings climb with max_age (toward the polling/
update ratio); observed worst-case staleness stays bounded by
``max_age`` plus one update interval; max_age=0 equals the always-fetch
baseline.
"""

import pytest

from _tables import print_table
from repro.core.binding import QoSProvider, establish_qos
from repro.core.negotiation import Range
from repro.orb import World
from repro.qos.actuality.freshness import ActualityImpl, ActualityMediator
from repro.workloads.apps import make_quote_servant_class, quote_module

UPDATE_EVERY = 0.5
POLL_RATE = 10.0
DURATION = 20.0
MAX_AGES = [0.0, 0.25, 0.5, 1.0, 2.0, 5.0]


def _deploy():
    world = World()
    world.add_host("client")
    world.add_host("server")
    world.connect("client", "server", latency=0.004, bandwidth_bps=10e6)
    servant = make_quote_servant_class()()
    provider = QoSProvider(world, "server", servant)
    provider.support(
        "Actuality",
        ActualityImpl().attach_clock(world.clock),
        capabilities={"max_age": Range(0.0, 10.0)},
    )
    ior = provider.activate("quotes")
    stub = quote_module.QuoteFeedStub(world.orb("client"), ior)
    return world, servant, stub


def _run_for_max_age(max_age):
    world, servant, stub = _deploy()
    mediator = ActualityMediator(cacheable={"quote"}, max_age=max_age)
    establish_qos(
        stub, "Actuality", {"max_age": Range(0.0, 10.0, preferred=max_age)},
        mediator=mediator,
    )

    truth = {"price": 100.0, "version": 0}

    def publish():
        truth["version"] += 1
        truth["price"] = 100.0 + truth["version"]
        servant.publish("ACME", truth["price"])

    world.kernel.every(UPDATE_EVERY, publish, until=DURATION)

    staleness_samples = []

    def poll():
        observed = stub.quote("ACME")
        # Staleness in versions behind the truth, converted to seconds.
        lag_versions = truth["version"] - max(0, round(observed - 100.0))
        staleness_samples.append(lag_versions * UPDATE_EVERY)

    world.kernel.every(1.0 / POLL_RATE, poll, until=DURATION)
    world.kernel.run()

    polls = len(staleness_samples)
    savings = mediator.hits / polls if polls else 0.0
    worst = max(staleness_samples) if staleness_samples else 0.0
    mean = sum(staleness_samples) / polls if polls else 0.0
    return savings, worst, mean, mediator.hits, mediator.misses


def _sweep():
    rows = []
    by_age = {}
    for max_age in MAX_AGES:
        savings, worst, mean, hits, misses = _run_for_max_age(max_age)
        rows.append((max_age, savings * 100, mean, worst, hits, misses))
        by_age[max_age] = (savings, worst, mean)
    return rows, by_age


def test_bench_e8_staleness_vs_savings(benchmark):
    rows, by_age = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        "E8 — freshness budget vs saved round trips "
        "(10 Hz polls, update every 0.5 s)",
        ["max_age s", "fetches saved %", "mean stale s", "worst stale s",
         "hits", "misses"],
        rows,
    )
    # Shape: savings increase monotonically with the freshness budget.
    savings = [by_age[a][0] for a in MAX_AGES]
    assert savings == sorted(savings)
    # max_age = 0 caches nothing.
    assert by_age[0.0][0] == 0.0
    # Worst-case staleness is bounded by max_age + one update interval.
    for max_age in MAX_AGES:
        assert by_age[max_age][1] <= max_age + UPDATE_EVERY + 1e-9
    # A generous budget saves most fetches.
    assert by_age[5.0][0] > 0.9


def test_bench_e8_cache_lookup_wall_clock(benchmark):
    """Wall-clock cost of a mediator cache hit."""
    world, servant, stub = _deploy()
    mediator = ActualityMediator(cacheable={"quote"}, max_age=1e9)
    establish_qos(stub, "Actuality", mediator=mediator)
    stub.quote("ACME")  # warm the cache

    benchmark(stub.quote, "ACME")
    assert mediator.hits > 0
