"""E4 — fault tolerance through replica groups (Section 6).

Availability under a rolling crash/recovery schedule versus the
replica count k.  A client polls the replicated counter throughout a
window in which replicas crash and recover in a staggered pattern that
leaves at most ``k - 1`` replicas down at any instant; with k = 1 the
schedule takes the only server away for part of the run.

Also measured: the fan-out latency cost of replication (first vs all
vs majority), and diversity — a corrupted replica masked by majority
voting.

Expected shape: availability climbs monotonically with k (1.0 from
k >= 2 under this schedule); replication latency grows with the
combination policy's strictness (first < majority < all).
"""

import pytest

from _tables import print_table
from repro.orb import World
from repro.orb.exceptions import COMM_FAILURE, TRANSIENT
from repro.qos.fault_tolerance import ReplicaGroupManager
from repro.workloads import run_closed_loop, uniform_arrivals
from repro.workloads.apps import compute_module, make_compute_servant_class

HOSTS = ["r1", "r2", "r3", "r4", "r5"]
CALLS = 120
WINDOW = 60.0


def _world():
    world = World()
    world.lan(["client"] + HOSTS, latency=0.003)
    return world


def _availability_for_k(k, seed=0):
    world = _world()
    group = ReplicaGroupManager(
        world, "svc", make_compute_servant_class(unit_cost=0.0005)
    )
    for host in HOSTS[:k]:
        group.add_replica(host)
    stub = group.bind_client(world.orb("client"), compute_module.ComputeStub)

    # Staggered outages: replica i is down during (10 + 9i, 28 + 9i).
    # At most two replicas are down at once, so k >= 3 never blacks out.
    for index, host in enumerate(HOSTS[:k]):
        world.faults.crash_schedule([(10.0 + 9.0 * index, 28.0 + 9.0 * index, host)])

    successes = 0
    for arrival in uniform_arrivals(CALLS / WINDOW, WINDOW):
        world.kernel.run_until(arrival)
        try:
            stub.busy_work(1)
            successes += 1
        except (COMM_FAILURE, TRANSIENT):
            pass
    world.kernel.run()
    return successes / CALLS


def _run_availability_sweep():
    return [(k, _availability_for_k(k)) for k in range(1, 6)]


def test_bench_e4_availability_vs_replicas(benchmark):
    rows = benchmark.pedantic(_run_availability_sweep, rounds=1, iterations=1)
    print_table(
        "E4 — availability vs replica count (staggered 18s outages in 60s)",
        ["replicas k", "availability"],
        rows,
    )
    availability = dict(rows)
    # Shape: monotone non-decreasing; k=1 suffers, k>=2 masks everything.
    assert availability[1] < 0.9
    for k in range(2, 6):
        assert availability[k] >= availability[k - 1] - 1e-9
    assert availability[3] == 1.0


def _policy_latencies():
    rows = []
    for policy in ("first", "majority", "all"):
        world = _world()
        group = ReplicaGroupManager(
            world, "svc", make_compute_servant_class(unit_cost=0.002)
        )
        for host in HOSTS[:3]:
            group.add_replica(host)
        # Two slow replicas: 'first' rides the single fast one, while
        # 'majority' must wait for a second (slow) vote.
        world.network.host("r2").cpu_factor = 0.25
        world.network.host("r3").cpu_factor = 0.25
        stub = group.bind_client(
            world.orb("client"), compute_module.ComputeStub, policy=policy
        )
        result = run_closed_loop(world.clock, lambda i: stub.busy_work(5), 20)
        rows.append((policy, result.mean() * 1e3, result.p95() * 1e3))
    return rows


def test_bench_e4_policy_latency(benchmark):
    rows = benchmark.pedantic(_policy_latencies, rounds=1, iterations=1)
    print_table(
        "E4 — combination policy vs latency (3 replicas, two 4x slower)",
        ["policy", "mean rtt (sim ms)", "p95 (sim ms)"],
        rows,
    )
    by_policy = {row[0]: row[1] for row in rows}
    assert by_policy["first"] < by_policy["majority"] <= by_policy["all"]


def _diversity_run():
    world = _world()
    group = ReplicaGroupManager(world, "svc", make_compute_servant_class())
    for host in HOSTS[:3]:
        group.add_replica(host)
    # One replica answers wrongly (a value fault, not a crash).
    group.replica("r2").busy_work = lambda units: -1.0
    first_stub = group.bind_client(
        world.orb("client"), compute_module.ComputeStub, policy="first"
    )
    majority_stub = group.bind_client(
        world.orb("client"), compute_module.ComputeStub, policy="majority"
    )
    wrong_under_first = sum(
        1 for _ in range(30) if first_stub.busy_work(1) != 1.0
    )
    wrong_under_majority = sum(
        1 for _ in range(30) if majority_stub.busy_work(1) != 1.0
    )
    return wrong_under_first, wrong_under_majority


def test_bench_e4_majority_masks_value_faults(benchmark):
    wrong_first, wrong_majority = benchmark.pedantic(
        _diversity_run, rounds=1, iterations=1
    )
    print_table(
        "E4 — diversity: wrong answers with one lying replica (30 calls)",
        ["policy", "wrong answers"],
        [("first", wrong_first), ("majority", wrong_majority)],
    )
    # Shape: 'first' sometimes returns the lie (the liar can be fastest);
    # majority never does.
    assert wrong_majority == 0
