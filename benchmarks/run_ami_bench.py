#!/usr/bin/env python
"""Run the AMI pipelining benchmark; write ``BENCH_ami.json``.

The deferred-invocation scenario: one client calling a 1 ms echo
servant across a 10 ms-RTT link (5 ms each way).  The synchronous
closed loop pays one full round trip per call; a pipelined window of N
deferred calls pays ~one RTT plus the serialized service time for the
whole window, so latency *per call* falls roughly as RTT/N.

Replayed per window size on the simulated clock, so the numbers are
exactly reproducible.  Two correctness side-checks run with the
numbers: ``send_deferred(...).result()`` must match ``invoke``
value-for-value and clock-tick-for-clock-tick, and a pipelined
window's wire bytes must be identical per message to the synchronous
path's.

The headline criterion (the subsystem's acceptance bar)::

    pipelined p50 latency-per-call at window >= 8  <=  0.5 * sync p50

Usage::

    python benchmarks/run_ami_bench.py [--quick] [--out BENCH_ami.json]
        [--max-ratio 0.5] [--no-check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.orb import World  # noqa: E402
from repro.orb.request import reset_request_ids  # noqa: E402
from repro.orb.servant import Servant  # noqa: E402
from repro.orb.stub import Stub  # noqa: E402
from repro.perf import COUNTERS, snapshot  # noqa: E402
from repro.workloads.drivers import ClosedLoopResult  # noqa: E402

#: 5 ms one-way link latency -> the ISSUE's 10 ms-RTT topology.
LINK_LATENCY = 0.005
#: 1 ms of server CPU per request.
SERVICE_TIME = 0.001
#: Pipeline window sizes swept (1 == sanity: must equal sync).
WINDOWS = [1, 2, 4, 8, 16]


class _Echo(Servant):
    _repo_id = "IDL:bench/AmiEcho:1.0"
    _default_service_time = SERVICE_TIME

    def echo(self, text):
        return text


class _EchoStub(Stub):
    def echo(self, text):
        return self._call("echo", text)

    def echo_deferred(self, text):
        return self.send_deferred("echo", text)


def build_world():
    """One deterministic client/server deployment, ids reset to 1."""
    reset_request_ids()
    world = World()
    world.lan(["client", "server"], latency=LINK_LATENCY, bandwidth_bps=10e6)
    ior = world.orb("server").poa.activate_object(_Echo(), object_key="echo")
    return world, _EchoStub(world.orb("client"), ior)


def run_sync(count: int) -> Dict[str, object]:
    """Closed-loop synchronous calls; per-call latency quantiles."""
    world, stub = build_world()
    latencies: List[float] = []
    for i in range(count):
        start = world.clock.now
        stub.echo(f"m{i}")
        latencies.append(world.clock.now - start)
    series = ClosedLoopResult(latencies, 0, world.clock.now)
    return {
        "calls": count,
        "p50_ms": round(series.p50() * 1e3, 3),
        "p95_ms": round(series.p95() * 1e3, 3),
        "elapsed_s": round(world.clock.now, 6),
    }


def run_pipelined(count: int, window: int) -> Dict[str, object]:
    """Closed-loop windows of deferred calls; latency per call."""
    world, stub = build_world()
    client = world.orb("client")
    latencies: List[float] = []
    issued = 0
    while issued < count:
        burst = min(window, count - issued)
        start = world.clock.now
        futures = [
            stub.echo_deferred(f"m{issued + i}") for i in range(burst)
        ]
        client.ami.flush()
        for i, future in enumerate(futures):
            if future.result() != f"m{issued + i}":
                raise AssertionError("pipelined reply mismatched its future")
        elapsed = world.clock.now - start
        latencies.extend([elapsed / burst] * burst)
        issued += burst
    series = ClosedLoopResult(latencies, 0, world.clock.now)
    return {
        "calls": count,
        "window": window,
        "p50_ms": round(series.p50() * 1e3, 3),
        "p95_ms": round(series.p95() * 1e3, 3),
        "elapsed_s": round(world.clock.now, 6),
    }


def check_sync_equivalence(count: int = 8) -> Dict[str, object]:
    """``send_deferred(...).result()`` must *be* the synchronous call."""
    world_a, stub_a = build_world()
    values_a = [stub_a.echo(f"m{i}") for i in range(count)]

    world_b, stub_b = build_world()
    values_b = [stub_b.echo_deferred(f"m{i}").result() for i in range(count)]

    drift = abs(world_a.clock.now - world_b.clock.now)
    return {
        "calls": count,
        "values_match": values_a == values_b,
        "clock_drift_s": drift,
        "ok": values_a == values_b and drift < 1e-12,
    }


def check_wire_identity(count: int = 6) -> Dict[str, object]:
    """A pipelined window's bytes must equal the sync path's, per message."""

    def capture(pipelined: bool) -> List[bytes]:
        world, stub = build_world()
        wires: List[bytes] = []
        world.orb("server").add_wire_observer(
            lambda direction, wire: wires.append(bytes(wire))
        )
        if pipelined:
            futures = [stub.echo_deferred(f"m{i}") for i in range(count)]
            for future in futures:
                future.result()
        else:
            for i in range(count):
                stub.echo(f"m{i}")
        return wires

    sync_wires = capture(pipelined=False)
    pipe_wires = capture(pipelined=True)
    return {
        "messages": len(sync_wires),
        "ok": sync_wires == pipe_wires,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer calls per sweep (CI smoke run)")
    parser.add_argument("--out", default=os.path.join(ROOT, "BENCH_ami.json"),
                        help="output path (default: repo root BENCH_ami.json)")
    parser.add_argument("--max-ratio", type=float, default=0.5,
                        help="required pipelined/sync p50 ceiling at window >= 8")
    parser.add_argument("--no-check", action="store_true",
                        help="record numbers without enforcing --max-ratio")
    args = parser.parse_args(argv)

    count = 64 if args.quick else 256
    equivalence = check_sync_equivalence()
    wire_identity = check_wire_identity()

    sync = run_sync(count)
    COUNTERS.reset()
    sweeps = {str(window): run_pipelined(count, window) for window in WINDOWS}

    # Perf panel of the last pipelined run (counters span the sweep).
    world, _ = build_world()
    panel = snapshot(world.orb("client"))
    panel.pop("host", None)

    sync_p50 = sync["p50_ms"]
    ratios = {
        window: round(row["p50_ms"] / sync_p50, 4) if sync_p50 else None
        for window, row in sweeps.items()
    }
    gated = [ratios[str(w)] for w in WINDOWS if w >= 8]

    payload = {
        "quick": args.quick,
        "topology": {
            "link_latency_s": LINK_LATENCY,
            "rtt_s": 2 * LINK_LATENCY,
            "service_time_s": SERVICE_TIME,
        },
        "checks": {
            "sync_equivalence": equivalence,
            "wire_identity": wire_identity,
        },
        "sync": sync,
        "pipelined": sweeps,
        "perf": panel,
        "headline": {
            "sync_p50_ms": sync_p50,
            "pipelined_p50_over_sync": ratios,
            "max_ratio": args.max_ratio,
        },
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"wrote {args.out}\n")
    print(f"  sync closed loop: p50 {sync_p50:.3f} ms/call\n")
    print(f"  {'window':>8} {'p50/call':>10} {'vs sync':>9}")
    for window in WINDOWS:
        row = sweeps[str(window)]
        print(f"  {window:>8} {row['p50_ms']:>8.3f}ms {ratios[str(window)]:>8.3f}x")

    failures = []
    if not equivalence["ok"]:
        failures.append("send_deferred().result() diverged from invoke")
    if not wire_identity["ok"]:
        failures.append("pipelined wire bytes diverged from the sync path")
    if not args.no_check and any(r is None or r > args.max_ratio for r in gated):
        failures.append(
            f"pipelined p50 at window >= 8 not under "
            f"{args.max_ratio}x sync (got {gated})"
        )
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(f"\n  window>=8 ratio(s) {gated} under ceiling {args.max_ratio}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
