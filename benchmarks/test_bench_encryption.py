"""E7 — privacy through encryption (Section 6).

Per-request overhead of the two ciphers over plaintext across payload
sizes, the cost of the Diffie-Hellman handshake (the "QoS to QoS"
choreography of Section 3.2), and confirmation that no plaintext byte
reaches the wire.

Expected shape: overhead grows with payload size; the stream cipher
(arc4) is cheaper than the block cipher (xtea-ctr); the handshake is a
fixed two-message cost amortised over the session.
"""

import pytest

from _tables import print_table
from repro.core.binding import QoSProvider, establish_qos
from repro.orb import World
from repro.qos.encryption.privacy import EncryptionImpl, EncryptionMediator
from repro.workloads import compressible_text
from repro.workloads.apps import archive_module, make_archive_servant_class

SIZES = [256, 4096, 65536]


def _deploy():
    world = World()
    world.add_host("client")
    world.add_host("server")
    world.connect("client", "server", latency=0.002, bandwidth_bps=10e6)
    servant = make_archive_servant_class()()
    provider = QoSProvider(world, "server", servant)
    provider.support("Encryption", EncryptionImpl(), capabilities={})
    ior = provider.activate("archive")
    stub = archive_module.ArchiveStub(world.orb("client"), ior)
    return world, servant, stub


def _store_rtt(world, stub, payload):
    start = world.clock.now
    stub.store("doc", payload)
    return world.clock.now - start


def _overhead_sweep():
    rows = []
    overheads = {}
    for size in SIZES:
        payload = compressible_text(size, seed=size)
        world, servant, stub = _deploy()
        plain = _store_rtt(world, stub, payload)
        per_cipher = {}
        for cipher in ("arc4", "xtea-ctr"):
            world, servant, stub = _deploy()
            mediator = EncryptionMediator(cipher=cipher)
            establish_qos(stub, "Encryption", mediator=mediator)
            mediator.establish_key(stub)
            per_cipher[cipher] = _store_rtt(world, stub, payload)
        rows.append(
            (
                size,
                plain * 1e3,
                per_cipher["arc4"] * 1e3,
                per_cipher["xtea-ctr"] * 1e3,
                (per_cipher["xtea-ctr"] / plain - 1) * 100,
            )
        )
        overheads[size] = (plain, per_cipher["arc4"], per_cipher["xtea-ctr"])
    return rows, overheads


def test_bench_e7_cipher_overhead(benchmark):
    rows, overheads = benchmark.pedantic(_overhead_sweep, rounds=1, iterations=1)
    print_table(
        "E7 — store() RTT: plaintext vs ciphers (10 Mbit/s link)",
        ["payload B", "plain (ms)", "arc4 (ms)", "xtea-ctr (ms)", "xtea ovh %"],
        rows,
    )
    for size in SIZES:
        plain, arc4, xtea = overheads[size]
        assert plain <= arc4 <= xtea  # cipher cost ordering
    # Absolute overhead grows with the payload.
    small = overheads[SIZES[0]][2] - overheads[SIZES[0]][0]
    large = overheads[SIZES[-1]][2] - overheads[SIZES[-1]][0]
    assert large > small * 10


def _handshake_cost():
    world, servant, stub = _deploy()
    mediator = EncryptionMediator()
    establish_qos(stub, "Encryption", mediator=mediator)
    messages_before = world.network.messages_sent
    start = world.clock.now
    mediator.establish_key(stub)
    return world.clock.now - start, world.network.messages_sent - messages_before


def test_bench_e7_handshake(benchmark):
    elapsed, messages = benchmark.pedantic(_handshake_cost, rounds=1, iterations=1)
    print_table(
        "E7 — Diffie-Hellman handshake over the peer operation",
        ["simulated ms", "wire messages"],
        [(elapsed * 1e3, messages)],
    )
    assert messages == 2  # request + reply; the key itself never travels
    assert elapsed > 0.004


def _confidentiality_check():
    world, servant, stub = _deploy()
    mediator = EncryptionMediator()
    establish_qos(stub, "Encryption", mediator=mediator)
    mediator.establish_key(stub)
    secret = "TOPSECRET-" * 40
    observed = []
    server = world.orb("server")
    original = server.handle_incoming

    def wiretap(wire, at_time):
        observed.append(bytes(wire))
        return original(wire, at_time)

    server.handle_incoming = wiretap
    stub.store("doc", secret)
    fetched = stub.fetch("doc")
    leaked = sum(1 for wire in observed if b"TOPSECRET" in wire)
    return fetched == secret, leaked, len(observed)


def test_bench_e7_no_plaintext_on_wire(benchmark):
    intact, leaked, total = benchmark.pedantic(
        _confidentiality_check, rounds=1, iterations=1
    )
    print_table(
        "E7 — wiretap: plaintext fragments on the wire",
        ["roundtrip intact", "messages leaking", "messages observed"],
        [(intact, leaked, total)],
    )
    assert intact
    assert leaked == 0
    assert total >= 2


def test_bench_e7_wall_clock_xtea(benchmark):
    """Wall-clock XTEA-CTR over a 4 KiB block."""
    from repro.ciphers import xtea

    key = b"0123456789abcdef"
    payload = compressible_text(4096, seed=1).encode()
    sealed = benchmark(xtea.encrypt, key, payload)
    assert xtea.decrypt(key, sealed) == payload
