"""E11 — reflection: runtime extension of the ORB (Section 4).

"A simple reflection mechanism allows the extension of the ORB at
runtime."  Measured:

- hot-loading a module mid-session: commands to an unloaded module
  load it on first use; the session's existing traffic is undisturbed;
- first-use versus warm command cost to a dynamically loaded module;
- wall-clock cost of reflective instantiation from the registry.

Expected shape: loading is transparent (no failed calls); the first
command pays no extra *simulated* cost (loading is a local registry
lookup); the reflective path is microseconds of wall time.
"""

import pytest

from _tables import print_table
from repro.orb import World
from repro.orb.dii import ModuleHandle, TransportHandle
from repro.orb.modules import available_modules, create_module
from repro.orb.servant import Servant
from repro.orb.stub import Stub


class PingServant(Servant):
    _repo_id = "IDL:bench/Ping:1.0"

    def ping(self):
        return "pong"


class PingStub(Stub):
    def ping(self):
        return self._call("ping")


def _deploy():
    world = World()
    world.lan(["client", "server"], latency=0.002)
    ior = world.orb("server").poa.activate_object(PingServant(), "ping")
    return world, ior, PingStub(world.orb("client"), ior)


def _hot_load_session():
    world, ior, stub = _deploy()
    server = world.orb("server")
    rows = []

    # Live traffic before, during and after a hot load.
    assert stub.ping() == "pong"
    loaded_before = list(server.qos_transport.loaded_modules())

    start = world.clock.now
    ModuleHandle(world.orb("client"), ior, "crypto").call("active_keys")
    first_use = world.clock.now - start

    start = world.clock.now
    ModuleHandle(world.orb("client"), ior, "crypto").call("active_keys")
    warm_use = world.clock.now - start

    assert stub.ping() == "pong"
    loaded_after = list(server.qos_transport.loaded_modules())

    rows.append(("modules before", ", ".join(loaded_before)))
    rows.append(("modules after", ", ".join(loaded_after)))
    rows.append(("first command (sim ms)", f"{first_use * 1e3:.3f}"))
    rows.append(("warm command (sim ms)", f"{warm_use * 1e3:.3f}"))
    return rows, loaded_before, loaded_after, first_use, warm_use


def test_bench_e11_hot_loading(benchmark):
    rows, before, after, first_use, warm_use = benchmark.pedantic(
        _hot_load_session, rounds=1, iterations=1
    )
    print_table("E11 — hot-loading the crypto module mid-session",
                ["measure", "value"], rows)
    assert before == ["iiop"]
    assert "crypto" in after
    # Reflective loading is a local lookup: no extra simulated latency.
    assert first_use == pytest.approx(warm_use, rel=0.05)


def _unload_reload():
    world, ior, stub = _deploy()
    client = world.orb("client")
    transport = client.qos_transport
    transport.load_module("compression")
    transport.assign(ior, "compression")
    assert transport.assigned_module(ior) is not None
    transport.unload_module("compression")
    orphaned = transport.assigned_module(ior)
    # Reload through the remote command path for good measure.
    TransportHandle(client, ior).call("load_module", "compression")
    remote_loaded = "compression" in world.orb(
        "server"
    ).qos_transport.loaded_modules()
    return orphaned, remote_loaded


def test_bench_e11_unload_reload(benchmark):
    orphaned, remote_loaded = benchmark.pedantic(
        _unload_reload, rounds=1, iterations=1
    )
    print_table(
        "E11 — unload clears assignments; remote command reloads",
        ["assignment after unload", "remote reload ok"],
        [(str(orphaned), remote_loaded)],
    )
    assert orphaned is None
    assert remote_loaded


def test_bench_e11_reflective_instantiation_wall_clock(benchmark):
    """Wall-clock cost of creating a module from the registry."""
    module = benchmark(create_module, "compression")
    assert module.name == "compression"
    assert set(available_modules()) >= {
        "iiop", "compression", "crypto", "bandwidth", "multicast",
    }
