"""Case study — the whole framework under one mixed deployment.

Not a single paper claim but the paper's *premise*: "larger systems
encounter a variety of different QoS requirements" (Section 1), so one
deployment runs replication, load balancing and compression
concurrently — with naming, trading and fault injection — and reports
the aggregate deployment statistics.

Expected shape: every subsystem keeps working through the fault
schedule (zero failed client calls), and replication multiplies wire
traffic by roughly the group size for its share of the workload.
"""

import pytest

from _tables import print_table
from repro.core.binding import QoSProvider, establish_qos
from repro.core.negotiation import Range
from repro.core.trading import TraderServant, TraderStub
from repro.orb import World
from repro.orb.exceptions import COMM_FAILURE, TRANSIENT
from repro.qos.compression.payload import CompressionImpl, CompressionMediator
from repro.qos.fault_tolerance import ReplicaGroupManager
from repro.qos.load_balancing import LoadBalancingMediator, WorkerPool
from repro.workloads import compressible_text
from repro.workloads.apps import (
    archive_module,
    compute_module,
    make_archive_servant_class,
    make_compute_servant_class,
)

HOSTS = [f"h{i}" for i in range(8)] + ["client", "registry"]
STEPS = 40


def _run_case_study():
    world = World()
    world.lan(HOSTS, latency=0.002, bandwidth_bps=20e6)
    world.start_naming("registry")
    client = world.orb("client")

    trader_ior = world.orb("registry").poa.activate_object(TraderServant(), "T")
    trader = TraderStub(client, trader_ior)

    group = ReplicaGroupManager(
        world, "grp", make_compute_servant_class(unit_cost=0.0005)
    )
    for host in ("h0", "h1", "h2"):
        group.add_replica(host)
    group_stub = group.bind_client(client, compute_module.ComputeStub)

    pool = WorkerPool(world, "pool", make_compute_servant_class(unit_cost=0.0005))
    for host in ("h3", "h4", "h5"):
        pool.add_worker(host)
    lb_stub = compute_module.ComputeStub(client, pool.worker_iors()[0])
    lb_mediator = LoadBalancingMediator("round_robin")
    lb_mediator.set_workers(pool.worker_iors())
    lb_mediator.install(lb_stub)

    archive_servant = make_archive_servant_class()()
    provider = QoSProvider(world, "h6", archive_servant)
    provider.support(
        "Compression", CompressionImpl(), capabilities={"threshold": Range(64, 64)}
    )
    archive_ior = provider.activate("arch")
    trader.export("archive", archive_ior, ["Compression"], {})
    archive_stub = archive_module.ArchiveStub(
        client, trader.query("archive", "Compression")[0]
    )
    compression = CompressionMediator()
    establish_qos(
        archive_stub, "Compression", {"threshold": Range(64, 64)},
        mediator=compression,
    )

    world.faults.crash_schedule([(5.0, 15.0, "h1"), (10.0, 20.0, "h4")])

    payload = compressible_text(2000, seed=9)
    failures = 0
    for step in range(1, STEPS + 1):
        world.kernel.run_until(step * 0.75)
        try:
            group_stub.busy_work(1)
            lb_stub.busy_work(1)
            archive_stub.store(f"doc-{step}", payload)
        except (COMM_FAILURE, TRANSIENT):
            failures += 1
    world.kernel.run()

    stats = world.statistics()
    rows = [
        ("simulated seconds", f"{stats['time']:.1f}"),
        ("hosts / ORBs", f"{stats['hosts']:.0f} / {stats['orbs']:.0f}"),
        ("client calls issued", 3 * STEPS),
        ("failed client calls", failures),
        ("wire messages", f"{stats['messages']:.0f}"),
        ("wire bytes", f"{stats['bytes']:.0f}"),
        ("replica fan-outs", client.qos_transport.module("multicast").fanouts),
        ("LB fail-overs", lb_mediator.failovers),
        ("compression ratio", f"{compression.observed_ratio():.3f}"),
        ("archive documents", archive_servant.size()),
    ]
    return rows, failures, archive_servant, payload, stats


def test_bench_case_study(benchmark):
    rows, failures, archive_servant, payload, stats = benchmark.pedantic(
        _run_case_study, rounds=1, iterations=1
    )
    print_table(
        "Case study — replication + load balancing + compression, "
        "one deployment, two outages",
        ["measure", "value"],
        rows,
    )
    assert failures == 0
    assert archive_servant.size() == STEPS
    assert archive_servant.files[f"doc-{STEPS}"] == payload
    assert stats["requests_received"] >= stats["requests_invoked"]
