"""E1 — Figure 1: layers of potential QoS integration.

Reproduces the paper's two integration layers for the same
characteristic (compression): application-centred (mediator + QoS
implementation around stub/skeleton) versus network-centred (QoS
module inside the ORB), plus both at once and the no-QoS baseline.

Reported per variant: simulated round-trip time and bytes on the wire
for a compressible 4 KiB payload over a 256 kbit/s link.

Expected shape: both integration layers beat the baseline on the slow
link; the network-centred module also compresses protocol overhead, so
its wire bytes are the smallest; stacking both layers pays double CPU
for almost no extra byte savings.
"""

import pytest

from _tables import print_table
from repro.core.binding import QoSProvider, establish_qos
from repro.core.negotiation import Range
from repro.orb import World
from repro.qos.compression.payload import CompressionImpl, CompressionMediator
from repro.workloads import compressible_text
from repro.workloads.apps import archive_module, make_archive_servant_class

PAYLOAD = compressible_text(4096, seed=7)


def _deploy():
    world = World()
    world.add_host("client")
    world.add_host("server")
    world.connect("client", "server", latency=0.01, bandwidth_bps=256e3)
    servant = make_archive_servant_class()()
    provider = QoSProvider(world, "server", servant)
    provider.support(
        "Compression",
        CompressionImpl(),
        capabilities={"threshold": Range(64, 64)},
    )
    ior = provider.activate("archive")
    stub = archive_module.ArchiveStub(world.orb("client"), ior)
    return world, ior, stub


def _measure(world, stub, calls=5):
    start_time = world.clock.now
    start_bytes = world.network.bytes_sent
    for index in range(calls):
        stub.store(f"doc-{index}", PAYLOAD)
    return (
        (world.clock.now - start_time) / calls,
        (world.network.bytes_sent - start_bytes) / calls,
    )


def _run_all_variants():
    rows = []

    world, ior, stub = _deploy()
    rtt, wire = _measure(world, stub)
    rows.append(("none (baseline)", rtt * 1e3, wire))
    baseline_rtt, baseline_wire = rtt, wire

    world, ior, stub = _deploy()
    establish_qos(
        stub, "Compression", {"threshold": Range(64, 64)},
        mediator=CompressionMediator(),
    )
    rtt, wire = _measure(world, stub)
    rows.append(("application-centred", rtt * 1e3, wire))
    app_rtt = rtt

    world, ior, stub = _deploy()
    world.orb("client").qos_transport.assign(ior, "compression")
    rtt, wire = _measure(world, stub)
    rows.append(("network-centred", rtt * 1e3, wire))
    net_rtt, net_wire = rtt, wire

    world, ior, stub = _deploy()
    establish_qos(
        stub, "Compression", {"threshold": Range(64, 64)},
        mediator=CompressionMediator(),
    )
    world.orb("client").qos_transport.assign(ior, "compression")
    rtt, wire = _measure(world, stub)
    rows.append(("both layers", rtt * 1e3, wire))

    return rows, baseline_rtt, app_rtt, net_rtt, net_wire, baseline_wire


def test_bench_e1_integration_layers(benchmark):
    (rows, baseline_rtt, app_rtt, net_rtt, net_wire, baseline_wire) = (
        benchmark.pedantic(_run_all_variants, rounds=1, iterations=1)
    )
    print_table(
        "E1 / Figure 1 — QoS integration layers (4 KiB payload, 256 kbit/s)",
        ["integration layer", "rtt (sim ms)", "wire bytes/call"],
        rows,
    )
    # Shape: both single layers clearly beat the baseline on a slow link
    # (the LZ codec halves this word-based payload).
    assert app_rtt < baseline_rtt * 0.75
    assert net_rtt < baseline_rtt * 0.75
    # The network-centred module compresses protocol overhead too.
    assert net_wire < baseline_wire * 0.7
