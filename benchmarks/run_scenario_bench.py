#!/usr/bin/env python
"""Run the scenario matrix; write ``BENCH_scenario.json``.

The scenario fleet replays the declarative specs under ``scenarios/``
across the ORB stack axes (``fifo``/``wfq`` scheduling, reliability on
or off, wire compression, replica count) and judges every cell against
the spec's SLO block.  The quick mode mirrors the tier-1 CI gate — a
handful of representative specs over two stacks; ``--full`` sweeps
every shipped spec over every default stack.

Headline criteria (the subsystem's acceptance bar)::

    SLO violations across the matrix    == 0
    identical seed                      -> identical campaign digest
    shard tier, shards in {1, 4}        -> byte-identical flowexport

Usage::

    python benchmarks/run_scenario_bench.py [--quick | --full]
        [--out BENCH_scenario.json] [--flowexport FLOWS.jsonl]
        [--no-check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.scenario.configurator import DEFAULT_STACKS, QUICK_STACKS  # noqa: E402
from repro.scenario.matrix import ScenarioMatrix  # noqa: E402
from repro.scenario.runner import run_scenario  # noqa: E402
from repro.scenario.spec import load_spec  # noqa: E402

SCENARIO_DIR = os.path.join(ROOT, "scenarios")

#: The representative quick slice: one steady baseline, one traffic
#: transient, one chaos campaign, and the shard tier.
QUICK_SPECS = ("steady_poisson", "flash_crowd", "regional_partition", "shard_onoff")

#: The shard-tier spec replayed at several shard counts for the
#: byte-identity determinism gate.
DETERMINISM_SPEC = "shard_onoff"
DETERMINISM_SHARDS = (1, 4)


def load_specs(names=None):
    paths = sorted(
        os.path.join(SCENARIO_DIR, entry)
        for entry in os.listdir(SCENARIO_DIR)
        if entry.endswith(".toml")
    )
    specs = [load_spec(path) for path in paths]
    if names is not None:
        by_name = {spec.name: spec for spec in specs}
        missing = [name for name in names if name not in by_name]
        if missing:
            raise SystemExit(f"quick specs missing from scenarios/: {missing}")
        specs = [by_name[name] for name in names]
    return specs


def determinism_report(specs) -> Dict[str, object]:
    """Replay gates: same seed twice, and shard counts {1, 4}."""
    by_name = {spec.name: spec for spec in specs}
    spec = by_name.get(DETERMINISM_SPEC)
    if spec is None:
        spec = load_spec(os.path.join(SCENARIO_DIR, f"{DETERMINISM_SPEC}.toml"))

    shard_runs = {
        shards: run_scenario(spec, shards=shards) for shards in DETERMINISM_SHARDS
    }
    flow_bytes = {
        shards: result.exporter.dumps() for shards, result in shard_runs.items()
    }
    reference = flow_bytes[DETERMINISM_SHARDS[0]]
    byte_identical = all(blob == reference for blob in flow_bytes.values())

    replay = run_scenario(spec, shards=DETERMINISM_SHARDS[0])
    digests = {spec.name: spec.campaign().digest() for spec in specs}
    replay_digests = {spec.name: spec.campaign().digest() for spec in specs}

    return {
        "spec": spec.name,
        "shard_counts": list(DETERMINISM_SHARDS),
        "flow_digests": {
            str(shards): result.exporter.digest()
            for shards, result in shard_runs.items()
        },
        "flowexport_byte_identical": byte_identical,
        "replay_flow_digest_matches": (
            replay.exporter.dumps() == reference
        ),
        "campaign_digests": digests,
        "campaign_replay_stable": digests == replay_digests,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="representative specs x QUICK_STACKS (CI gate)")
    parser.add_argument("--full", action="store_true",
                        help="every shipped spec x DEFAULT_STACKS")
    parser.add_argument("--out", default=os.path.join(ROOT, "BENCH_scenario.json"),
                        help="output path (default: repo root)")
    parser.add_argument("--flowexport", default=None,
                        help="also write the determinism spec's flows as JSONL")
    parser.add_argument("--no-check", action="store_true",
                        help="record numbers without enforcing the gates")
    args = parser.parse_args(argv)
    if args.quick and args.full:
        parser.error("--quick and --full are mutually exclusive")
    full = args.full

    if full:
        specs = load_specs()
        stacks = list(DEFAULT_STACKS)
    else:
        specs = load_specs(QUICK_SPECS)
        stacks = list(QUICK_STACKS)

    started = time.perf_counter()
    matrix = ScenarioMatrix(specs, stacks)
    matrix.run()
    matrix_s = time.perf_counter() - started

    started = time.perf_counter()
    determinism = determinism_report(specs)
    determinism_s = time.perf_counter() - started

    violations = matrix.violations()
    payload = {
        "mode": "full" if full else "quick",
        "specs": [spec.name for spec in specs],
        "stacks": [stack.name for stack in stacks],
        "cells": len(matrix.cells),
        "matrix_wall_s": round(matrix_s, 3),
        "determinism_wall_s": round(determinism_s, 3),
        "matrix": matrix.to_payload(),
        "determinism": determinism,
        "checks": {
            "zero_slo_violations": not violations,
            "flowexport_byte_identical": determinism["flowexport_byte_identical"],
            "replay_flow_digest_matches": determinism["replay_flow_digest_matches"],
            "campaign_replay_stable": determinism["campaign_replay_stable"],
        },
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if args.flowexport:
        by_name = {spec.name: spec for spec in specs}
        spec = by_name.get(DETERMINISM_SPEC) or load_spec(
            os.path.join(SCENARIO_DIR, f"{DETERMINISM_SPEC}.toml")
        )
        result = run_scenario(spec, shards=DETERMINISM_SHARDS[-1])
        result.exporter.write(args.flowexport)
        print(f"wrote {args.flowexport} ({len(result.exporter)} flows)")

    print(f"wrote {args.out}\n")
    print(f"  {'cell':<34} {'served':>8} {'goodput':>10} {'p95':>9} {'slo':>5}")
    for cell in matrix.cells:
        result = cell.result
        summary = result.latency_summary()
        p95 = next(iter(summary.values()))["p95_ms"] if summary else float("nan")
        verdict = "FAIL" if result.violations else "ok"
        print(
            f"  {cell.key():<34} {result.served:>8}"
            f" {result.goodput():>8.1f}/s {p95:>7.2f}ms {verdict:>5}"
        )

    failures: List[str] = []
    checks = payload["checks"]
    if not checks["zero_slo_violations"] and not args.no_check:
        lines = "; ".join(
            f"{key}: {', '.join(problems)}" for key, problems in sorted(violations.items())
        )
        failures.append(f"{len(violations)} cell(s) violated their SLOs ({lines})")
    if not checks["flowexport_byte_identical"]:
        failures.append(
            f"flowexport differs across shard counts {DETERMINISM_SHARDS}"
        )
    if not checks["replay_flow_digest_matches"]:
        failures.append("identical seed produced different flowexport bytes")
    if not checks["campaign_replay_stable"]:
        failures.append("identical seed produced different campaign digests")
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(
        f"\n  {len(matrix.cells)} cells, 0 SLO violations, flowexport"
        f" byte-identical at shards {list(DETERMINISM_SHARDS)},"
        f" campaign digests replay-stable"
        f" ({matrix_s + determinism_s:.2f}s wall)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
