#!/usr/bin/env python
"""Run the real-transport benchmark; write ``BENCH_rt.json``.

Measures the ORB over asyncio TCP (``repro.rt``) on one machine:

- **sync**: strict request/reply echo round trips on one connection,
  timed entirely on the transport's event-loop thread (so the number
  is sockets + framing + ORB dispatch, not cross-thread wakeups);
- **pipelined**: the same requests written back-to-back in windows
  and drained, the AMI-style batching the netsim tier models;
- **process** (skipped with ``--quick``): a client OS process against
  a server OS process via the harness, the honest two-process figure.

Headline criteria (the subsystem's acceptance bar)::

    sync >= 5,000 req/s on a single connection
    pipelined >= 2x the sync rate

Usage::

    python benchmarks/run_rt_bench.py [--quick] [--out BENCH_rt.json]
        [--min-sync-rps 5000] [--min-speedup 2.0] [--no-check]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from typing import Dict

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.orb import giop  # noqa: E402
from repro.orb.request import Request, reset_request_ids  # noqa: E402
from repro.rt.client import RtClient  # noqa: E402
from repro.rt.scenarios import ConformanceEchoServant  # noqa: E402
from repro.rt.server import RtServer, make_rt_orb  # noqa: E402

PAYLOAD = "benchmark payload, modest but not trivial " * 2


def _encoded_requests(ior, count: int):
    return [
        giop.encode_request(Request(ior, "echo", (f"{PAYLOAD}{i}",)))
        for i in range(count)
    ]


def bench_in_process(count: int, window: int, repeats: int) -> Dict[str, float]:
    """Sync and pipelined rates against an in-process RtServer."""
    reset_request_ids()
    orb = make_rt_orb("server")
    ior = orb.poa.activate_object(ConformanceEchoServant("bench"), object_key="echo")
    sync_rates, pipe_rates = [], []
    with RtServer(orb) as server:
        with RtClient({"server": server.address}) as client:
            connection = client.connection("server")
            # Warm up sockets, frames and code paths.
            warm = _encoded_requests(ior, 50)
            connection.timed_serial(warm)

            for _ in range(repeats):
                wires = _encoded_requests(ior, count)
                replies, elapsed = connection.timed_serial(wires)
                assert len(replies) == count
                sync_rates.append(count / elapsed)

            for _ in range(repeats):
                wires = _encoded_requests(ior, count)
                got = 0
                import time as _time

                start = _time.perf_counter()
                for base in range(0, count, window):
                    chunk = wires[base : base + window]
                    replies, _ = connection.timed_pipelined(chunk)
                    got += len(replies)
                elapsed = _time.perf_counter() - start
                assert got == count
                pipe_rates.append(count / elapsed)

            # Spot-check correctness of the last batch decoded.
            reply = giop.decode_reply(replies[-1])
            assert reply.exception is None
    return {
        "sync_rps": statistics.median(sync_rates),
        "pipelined_rps": statistics.median(pipe_rates),
        "speedup": statistics.median(pipe_rates) / statistics.median(sync_rates),
        "requests_per_run": count,
        "window": window,
        "repeats": repeats,
    }


def bench_two_processes(count: int) -> Dict[str, float]:
    """The harness figure: real client process against a server process."""
    from repro.rt.harness import run_client, spawn_server

    with spawn_server("repro.rt.scenarios:echo_server") as server:
        host, port = server.address
        result = run_client(
            "repro.rt.scenarios:echo_client", host, port, {"count": count}
        )
    return {
        "requests": result["count"],
        "correct": result["correct"],
        "rps": result["requests_per_s"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default=os.path.join(ROOT, "BENCH_rt.json"))
    parser.add_argument("--min-sync-rps", type=float, default=5000.0)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--no-check", action="store_true")
    args = parser.parse_args(argv)

    count = 2000 if args.quick else 10000
    repeats = 3 if args.quick else 5
    window = 64

    report = {
        "benchmark": "rt",
        "description": "ORB over asyncio TCP: framed GIOP echo throughput",
        "config": {"quick": args.quick, "count": count, "window": window},
        "in_process": bench_in_process(count, window, repeats),
        "criteria": {
            "min_sync_rps": args.min_sync_rps,
            "min_pipelined_speedup": args.min_speedup,
        },
    }
    if not args.quick:
        report["two_process"] = bench_two_processes(2000)

    in_proc = report["in_process"]
    checks = {
        "sync_rps_ok": in_proc["sync_rps"] >= args.min_sync_rps,
        "pipelined_speedup_ok": in_proc["speedup"] >= args.min_speedup,
    }
    report["checks"] = checks
    report["pass"] = all(checks.values())

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print(
        f"rt bench: sync {in_proc['sync_rps']:,.0f} req/s, "
        f"pipelined {in_proc['pipelined_rps']:,.0f} req/s "
        f"({in_proc['speedup']:.2f}x) -> {args.out}"
    )
    for name, ok in checks.items():
        print(f"  {name}: {'PASS' if ok else 'FAIL'}")
    if not report["pass"] and not args.no_check:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
