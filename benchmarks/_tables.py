"""Shared table-printing helper for the benchmark harness.

Every benchmark prints the rows EXPERIMENTS.md documents, so a
``pytest benchmarks/ --benchmark-only -s`` run regenerates the
reproduction's tables alongside pytest-benchmark's wall-clock timings.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def print_table(title: str, headers: Sequence[str], rows: List[Sequence[Any]]) -> None:
    """Print one experiment table."""
    widths = [len(str(h)) for h in headers]
    rendered = []
    for row in rows:
        cells = [_fmt(cell) for cell in row]
        rendered.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for cells in rendered:
        print("  ".join(cell.ljust(w) for cell, w in zip(cells, widths)))


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)
