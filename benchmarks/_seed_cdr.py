# Verbatim copy of src/repro/orb/cdr.py from the growth seed (commit
# ed92a9f), kept for same-run seed-vs-current benchmarking.  Do not edit.
"""CDR-style marshalling.

A Common Data Representation encoder/decoder in the spirit of CORBA
CDR: big-endian primitives with natural alignment, length-prefixed
strings and sequences, and a tagged ``any`` encoding for dynamically
typed values (used by the DII and by the GIOP bodies of this ORB).

The encoding is self-contained — both ends of the simulated wire
really do run through these byte buffers, so marshalling bugs fail
loudly rather than being papered over by passing Python objects
around.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

from repro.orb.exceptions import MARSHAL

# Type tags for the `any` encoding.
TAG_NULL = 0
TAG_BOOLEAN = 1
TAG_OCTET = 2
TAG_SHORT = 3
TAG_USHORT = 4
TAG_LONG = 5
TAG_ULONG = 6
TAG_LONGLONG = 7
TAG_DOUBLE = 8
TAG_STRING = 9
TAG_OCTETS = 10
TAG_SEQUENCE = 11
TAG_MAP = 12
TAG_FLOAT = 13
TAG_BIGNUM = 14

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class CDREncoder:
    """Write values into a CDR byte buffer."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._length = 0

    # -- low-level ------------------------------------------------------

    def _append(self, data: bytes) -> None:
        self._chunks.append(data)
        self._length += len(data)

    def _align(self, boundary: int) -> None:
        padding = (-self._length) % boundary
        if padding:
            self._append(b"\x00" * padding)

    def _pack(self, fmt: str, value: Any, alignment: int) -> None:
        self._align(alignment)
        try:
            self._append(struct.pack(fmt, value))
        except (struct.error, TypeError) as error:
            raise MARSHAL(f"cannot pack {value!r} as {fmt!r}: {error}") from None

    # -- primitives -----------------------------------------------------

    def write_octet(self, value: int) -> None:
        self._pack(">B", value, 1)

    def write_boolean(self, value: bool) -> None:
        self.write_octet(1 if value else 0)

    def write_short(self, value: int) -> None:
        self._pack(">h", value, 2)

    def write_ushort(self, value: int) -> None:
        self._pack(">H", value, 2)

    def write_long(self, value: int) -> None:
        self._pack(">i", value, 4)

    def write_ulong(self, value: int) -> None:
        self._pack(">I", value, 4)

    def write_longlong(self, value: int) -> None:
        self._pack(">q", value, 8)

    def write_float(self, value: float) -> None:
        self._pack(">f", value, 4)

    def write_double(self, value: float) -> None:
        self._pack(">d", value, 8)

    def write_string(self, value: str) -> None:
        if not isinstance(value, str):
            raise MARSHAL(f"expected str, got {type(value).__name__}")
        data = value.encode("utf-8")
        self.write_ulong(len(data))
        self._append(data)

    def write_octets(self, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise MARSHAL(f"expected bytes, got {type(value).__name__}")
        self.write_ulong(len(value))
        self._append(bytes(value))

    # -- any --------------------------------------------------------------

    def write_any(self, value: Any) -> None:
        """Encode a dynamically typed value with a leading type tag.

        Python natives map onto the widest safe IDL type: ``int`` →
        long long, ``float`` → double.  Lists/tuples become sequences,
        dicts (string-keyed) become maps.
        """
        if value is None:
            self.write_octet(TAG_NULL)
        elif isinstance(value, bool):
            self.write_octet(TAG_BOOLEAN)
            self.write_boolean(value)
        elif isinstance(value, int):
            if _INT64_MIN <= value <= _INT64_MAX:
                self.write_octet(TAG_LONGLONG)
                self.write_longlong(value)
            else:
                # Arbitrary-precision integers (e.g. Diffie-Hellman
                # public values) travel as sign + magnitude octets.
                self.write_octet(TAG_BIGNUM)
                self.write_boolean(value < 0)
                magnitude = abs(value)
                self.write_octets(
                    magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
                )
        elif isinstance(value, float):
            self.write_octet(TAG_DOUBLE)
            self.write_double(value)
        elif isinstance(value, str):
            self.write_octet(TAG_STRING)
            self.write_string(value)
        elif isinstance(value, (bytes, bytearray)):
            self.write_octet(TAG_OCTETS)
            self.write_octets(value)
        elif isinstance(value, (list, tuple)):
            self.write_octet(TAG_SEQUENCE)
            self.write_ulong(len(value))
            for item in value:
                self.write_any(item)
        elif isinstance(value, dict):
            self.write_octet(TAG_MAP)
            self.write_ulong(len(value))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise MARSHAL(f"map keys must be str, got {type(key).__name__}")
                self.write_string(key)
                self.write_any(item)
        else:
            raise MARSHAL(f"cannot marshal value of type {type(value).__name__}")

    def getvalue(self) -> bytes:
        """The encoded buffer."""
        return b"".join(self._chunks)

    def __len__(self) -> int:
        return self._length


class CDRDecoder:
    """Read values back out of a CDR byte buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    # -- low-level ------------------------------------------------------

    def _align(self, boundary: int) -> None:
        self._offset += (-self._offset) % boundary

    def _unpack(self, fmt: str, size: int, alignment: int) -> Any:
        self._align(alignment)
        end = self._offset + size
        if end > len(self._data):
            raise MARSHAL(
                f"buffer underrun: need {size} bytes at {self._offset}, "
                f"have {len(self._data) - self._offset}"
            )
        (value,) = struct.unpack_from(fmt, self._data, self._offset)
        self._offset = end
        return value

    # -- primitives -----------------------------------------------------

    def read_octet(self) -> int:
        return self._unpack(">B", 1, 1)

    def read_boolean(self) -> bool:
        return bool(self.read_octet())

    def read_short(self) -> int:
        return self._unpack(">h", 2, 2)

    def read_ushort(self) -> int:
        return self._unpack(">H", 2, 2)

    def read_long(self) -> int:
        return self._unpack(">i", 4, 4)

    def read_ulong(self) -> int:
        return self._unpack(">I", 4, 4)

    def read_longlong(self) -> int:
        return self._unpack(">q", 8, 8)

    def read_float(self) -> float:
        return self._unpack(">f", 4, 4)

    def read_double(self) -> float:
        return self._unpack(">d", 8, 8)

    def read_string(self) -> str:
        length = self.read_ulong()
        end = self._offset + length
        if end > len(self._data):
            raise MARSHAL(f"string of length {length} overruns buffer")
        value = self._data[self._offset : end].decode("utf-8")
        self._offset = end
        return value

    def read_octets(self) -> bytes:
        length = self.read_ulong()
        end = self._offset + length
        if end > len(self._data):
            raise MARSHAL(f"octet sequence of length {length} overruns buffer")
        value = self._data[self._offset : end]
        self._offset = end
        return value

    # -- any --------------------------------------------------------------

    def read_any(self) -> Any:
        tag = self.read_octet()
        if tag == TAG_NULL:
            return None
        if tag == TAG_BOOLEAN:
            return self.read_boolean()
        if tag == TAG_OCTET:
            return self.read_octet()
        if tag == TAG_SHORT:
            return self.read_short()
        if tag == TAG_USHORT:
            return self.read_ushort()
        if tag == TAG_LONG:
            return self.read_long()
        if tag == TAG_ULONG:
            return self.read_ulong()
        if tag == TAG_LONGLONG:
            return self.read_longlong()
        if tag == TAG_FLOAT:
            return self.read_float()
        if tag == TAG_DOUBLE:
            return self.read_double()
        if tag == TAG_STRING:
            return self.read_string()
        if tag == TAG_OCTETS:
            return self.read_octets()
        if tag == TAG_BIGNUM:
            negative = self.read_boolean()
            magnitude = int.from_bytes(self.read_octets(), "big")
            return -magnitude if negative else magnitude
        if tag == TAG_SEQUENCE:
            length = self.read_ulong()
            return [self.read_any() for _ in range(length)]
        if tag == TAG_MAP:
            length = self.read_ulong()
            result: Dict[str, Any] = {}
            for _ in range(length):
                key = self.read_string()
                result[key] = self.read_any()
            return result
        raise MARSHAL(f"unknown any tag: {tag}")

    @property
    def remaining(self) -> int:
        """Bytes not yet consumed."""
        return len(self._data) - self._offset

    def at_end(self) -> bool:
        return self._offset >= len(self._data)


def encode_values(*values: Any) -> bytes:
    """Encode a tuple of values as a counted sequence of anys."""
    encoder = CDREncoder()
    encoder.write_ulong(len(values))
    for value in values:
        encoder.write_any(value)
    return encoder.getvalue()


def decode_values(data: bytes) -> Tuple[Any, ...]:
    """Inverse of :func:`encode_values`."""
    decoder = CDRDecoder(data)
    count = decoder.read_ulong()
    return tuple(decoder.read_any() for _ in range(count))
