"""Verbatim copy of the event kernel as committed before the parallel-kernel
PR (the "seed" baseline for BENCH_kernel.json comparisons — the same idiom
as ``_seed_cdr``/``_seed_wire``).  Do not optimise this file."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.netsim.clock import Clock


class KernelError(Exception):
    """Raised on invalid scheduling requests."""


#: Shared no-argument singletons.  A million-event run would otherwise
#: allocate a million empty dicts; every argument-less event now points
#: at the same two objects.  They must never be mutated — the kernel
#: only ever splats them into the callback.
_NO_ARGS: Tuple[Any, ...] = ()
_NO_KWARGS: dict = {}


class Event:
    """A scheduled callback.  Returned by :meth:`EventKernel.schedule`."""

    __slots__ = ("time", "seq", "fn", "args", "kwargs", "cancelled", "label",
                 "kernel")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: dict,
        label: str,
        kernel: "Optional[EventKernel]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.label = label
        self.kernel = kernel

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once.

        Cancellation is lazy: the event stays in the heap and is
        discarded when it surfaces, but the kernel counts cancellations
        and compacts the heap when dead entries dominate, so cancelled
        events never churn the pop loop.
        """
        if not self.cancelled:
            self.cancelled = True
            if self.kernel is not None:
                self.kernel._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.label!r} at {self.time:.6f}, {state})"


class EventKernel:
    """A classic calendar-queue discrete-event scheduler.

    Events due at the same instant fire in scheduling order, which keeps
    runs bit-for-bit reproducible.

    >>> kernel = EventKernel()
    >>> fired = []
    >>> _ = kernel.schedule(2.0, fired.append, "b")
    >>> _ = kernel.schedule(1.0, fired.append, "a")
    >>> kernel.run()
    >>> fired
    ['a', 'b']
    """

    #: Compact the heap once this many cancelled events accumulate and
    #: they outnumber the live ones.
    COMPACT_THRESHOLD = 64

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._events_fired = 0
        self._cancelled_pending = 0
        self._cancelled_peak = 0
        self._compactions = 0
        self._live_peak = 0

    @property
    def events_fired(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def pending_live(self) -> int:
        """Number of queued events that have not been cancelled."""
        return len(self._queue) - self._cancelled_pending

    @property
    def live_peak(self) -> int:
        """High-water mark of simultaneously queued live events."""
        return self._live_peak

    @property
    def compactions(self) -> int:
        """Number of lazy-deletion heap compactions performed."""
        return self._compactions

    @property
    def cancelled_peak(self) -> int:
        """High-water mark of cancelled events sitting in the heap."""
        return self._cancelled_peak

    def stats(self) -> dict:
        """Kernel instrument panel (merged into :func:`repro.perf.snapshot`)."""
        return {
            "events_fired": self._events_fired,
            "pending": len(self._queue),
            "pending_live": self.pending_live,
            "live_peak": self._live_peak,
            "compactions": self._compactions,
            "cancelled_pending": self._cancelled_pending,
            "cancelled_peak": self._cancelled_peak,
        }

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise KernelError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.clock.now + delay, fn, *args, label=label, **kwargs)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn`` at an absolute simulated time."""
        if time < self.clock.now:
            raise KernelError(
                f"cannot schedule at {time} before current time {self.clock.now}"
            )
        event = Event(
            time,
            next(self._seq),
            fn,
            args if args else _NO_ARGS,
            kwargs if kwargs else _NO_KWARGS,
            label or fn.__name__,
            self,
        )
        heapq.heappush(self._queue, event)
        live = len(self._queue) - self._cancelled_pending
        if live > self._live_peak:
            self._live_peak = live
        return event

    def _note_cancelled(self) -> None:
        """Lazy-deletion bookkeeping: compact when dead entries dominate."""
        self._cancelled_pending += 1
        if self._cancelled_pending > self._cancelled_peak:
            self._cancelled_peak = self._cancelled_pending
        if (
            self._cancelled_pending >= self.COMPACT_THRESHOLD
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._queue = [event for event in self._queue if not event.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0
            self._compactions += 1

    def _push_bulk(self, events: List[Event]) -> None:
        """Merge a pre-built batch into the heap.

        When the existing queue is empty or small relative to the batch
        a single ``heapify`` over the concatenation is O(n + m); the
        per-event ``heappush`` loop it replaces is O(m log(n + m)).
        Large queues fall back to pushes so a tiny batch never pays a
        full re-heapify of a million-entry heap.
        """
        queue = self._queue
        if len(queue) <= len(events):
            queue.extend(events)
            heapq.heapify(queue)
        else:
            for event in events:
                heapq.heappush(queue, event)
        live = len(queue) - self._cancelled_pending
        if live > self._live_peak:
            self._live_peak = live

    def schedule_many(
        self,
        times: Iterable[float],
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> List[Event]:
        """Schedule ``fn(*args)`` at every absolute time in ``times``.

        The bulk fast path for arrival-process generators: events are
        built first and merged with one ``heapify`` when the queue is
        cold (see :meth:`_push_bulk`).  ``times`` need not be sorted.
        """
        now = self.clock.now
        shared_args = args if args else _NO_ARGS
        name = label or fn.__name__
        events: List[Event] = []
        for time in times:
            if time < now:
                raise KernelError(
                    f"cannot schedule at {time} before current time {now}"
                )
            events.append(
                Event(time, next(self._seq), fn, shared_args, _NO_KWARGS, name, self)
            )
        self._push_bulk(events)
        return events

    def schedule_iter(
        self,
        times: Iterable[float],
        fn: Callable[..., Any],
        label: str = "",
    ) -> List[Event]:
        """Schedule ``fn(t)`` at every absolute time in ``times``.

        Convenience for arrival processes: the callback receives the
        arrival instant as its single argument.  Shares the bulk merge
        path of :meth:`schedule_many`.
        """
        now = self.clock.now
        name = label or fn.__name__
        events: List[Event] = []
        for time in times:
            if time < now:
                raise KernelError(
                    f"cannot schedule at {time} before current time {now}"
                )
            events.append(
                Event(time, next(self._seq), fn, (time,), _NO_KWARGS, name, self)
            )
        self._push_bulk(events)
        return events

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                if self._cancelled_pending:
                    self._cancelled_pending -= 1
                continue
            self.clock.advance_to(event.time)
            event.fn(*event.args, **event.kwargs)
            self._events_fired += 1
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> int:
        """Fire events until the queue drains.  Returns events fired."""
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        if fired >= max_events and self._queue:
            raise KernelError(f"run() exceeded max_events={max_events}")
        return fired

    def run_until(self, deadline: float) -> int:
        """Fire all events due at or before ``deadline``; advance the clock to it.

        Returns the number of events fired.
        """
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                if self._cancelled_pending:
                    self._cancelled_pending -= 1
                continue
            if head.time > deadline:
                break
            self.step()
            fired += 1
        self.clock.advance_to(deadline)
        return fired

    def every(
        self,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        until: Optional[float] = None,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Run ``fn`` periodically, starting one period from now.

        Returns the first :class:`Event`; cancelling it stops only that
        occurrence, so long-lived services should instead check their
        own shutdown flag.  The recurrence stops automatically once the
        next occurrence would land after ``until``.
        """
        if period <= 0.0:
            raise KernelError(f"period must be positive: {period}")

        def tick() -> None:
            fn(*args, **kwargs)
            next_time = self.clock.now + period
            if until is None or next_time <= until:
                self.schedule_at(next_time, tick, label=label or "every")

        return self.schedule(period, tick, label=label or "every")
