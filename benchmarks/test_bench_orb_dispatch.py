"""E3 — Figure 3: request dispatch inside the ORB.

Drives the full decision tree with one request of each kind and shows
where each lands:

- plain request (no QoS tag)            → GIOP/IIOP module
- QoS-aware request, no module assigned → GIOP/IIOP module (the
  "initial negotiation" path)
- QoS-aware request, module assigned    → the assigned QoS module
- transport command                     → QoS transport
- module command (module not loaded)    → dynamically loaded module

Also measures the simulated cost of a dynamic-interface command (DII,
over the wire) versus a static-interface call (pseudo object, local) —
the two interface kinds of Section 4.
"""

import pytest

from _tables import print_table
from repro.orb import QOS_TAG, TaggedComponent, World
from repro.orb.dii import ModuleHandle, TransportHandle
from repro.orb.servant import Servant
from repro.orb.stub import Stub


class EchoServant(Servant):
    _repo_id = "IDL:bench/Echo:1.0"

    def echo(self, text):
        return text


class EchoStub(Stub):
    def echo(self, text):
        return self._call("echo", text)


def _deploy():
    world = World()
    world.lan(["client", "server"], latency=0.002)
    server_orb = world.orb("server")
    plain_ior = server_orb.poa.activate_object(EchoServant(), "plain")
    qos_ior = server_orb.poa.activate_object(
        EchoServant(),
        "qos",
        components=[TaggedComponent(QOS_TAG, {"characteristics": ["Compression"]})],
    )
    return world, plain_ior, qos_ior


def _dispatch_table():
    world, plain_ior, qos_ior = _deploy()
    client = world.orb("client")
    server = world.orb("server")
    iiop = client.qos_transport.iiop_module
    rows = []

    def snapshot():
        compression = client.qos_transport.module("compression")
        return (
            iiop.requests_sent,
            compression.requests_sent if compression else 0,
            server.qos_transport.commands_interpreted,
        )

    # 1. Plain request.
    before = snapshot()
    EchoStub(client, plain_ior).echo("x")
    rows.append(("plain request", *_delta(before, snapshot()), "iiop"))

    # 2. QoS-aware request, nothing assigned yet.
    before = snapshot()
    EchoStub(client, qos_ior).echo("x")
    rows.append(("QoS request, unassigned", *_delta(before, snapshot()), "iiop"))

    # 3. QoS-aware request with an assigned module.
    client.qos_transport.assign(qos_ior, "compression")
    before = snapshot()
    EchoStub(client, qos_ior).echo("x")
    rows.append(("QoS request, assigned", *_delta(before, snapshot()), "compression"))

    # 4. Transport command.
    before = snapshot()
    TransportHandle(client, plain_ior).call("loaded_modules")
    rows.append(("transport command", *_delta(before, snapshot()), "transport"))

    # 5. Module command to a module the server has not loaded yet:
    #    reflection loads it on demand.
    assert "bandwidth" not in server.qos_transport.loaded_modules()
    before = snapshot()
    ModuleHandle(client, plain_ior, "bandwidth").call("reservations")
    loaded = "bandwidth" in server.qos_transport.loaded_modules()
    rows.append(
        ("module command (auto-load)", *_delta(before, snapshot()),
         f"bandwidth (loaded={loaded})")
    )
    return rows, world, plain_ior


def _delta(before, after):
    return tuple(b - a for a, b in zip(before, after))


def test_bench_e3_dispatch_tree(benchmark):
    rows, world, plain_ior = benchmark.pedantic(
        _dispatch_table, rounds=1, iterations=1
    )
    print_table(
        "E3 / Figure 3 — ORB dispatch decision tree",
        ["request kind", "iiop+", "module+", "cmds interpreted+", "landed at"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["plain request"][1] == 1
    assert by_name["QoS request, unassigned"][1] == 1
    assert by_name["QoS request, assigned"][2] == 1
    assert by_name["transport command"][3] == 1
    assert by_name["module command (auto-load)"][3] == 1
    assert "loaded=True" in by_name["module command (auto-load)"][4]


def test_bench_e3_static_vs_dynamic_interface(benchmark):
    def scenario():
        world, plain_ior, _ = _deploy()
        client = world.orb("client")

        # Dynamic interface: a command over the wire (a round trip).
        start = world.clock.now
        ModuleHandle(client, plain_ior, "iiop").call("ping")
        dynamic = world.clock.now - start

        # Static interface: the local pseudo object (no wire traffic).
        start = world.clock.now
        pseudo = client.resolve_initial_references("QoSTransport")
        pseudo.call("loaded_modules")
        return dynamic, world.clock.now - start

    dynamic_cost, static_cost = benchmark.pedantic(scenario, rounds=1, iterations=1)

    print_table(
        "E3 — static (pseudo object) vs dynamic (DII command) interface",
        ["interface kind", "simulated cost (ms)"],
        [
            ("dynamic (DII command over wire)", dynamic_cost * 1e3),
            ("static (local pseudo object)", static_cost * 1e3),
        ],
    )
    assert dynamic_cost > 0.004  # two link traversals
    assert static_cost == 0.0


def test_bench_e3_command_interpretation_speed(benchmark):
    """Wall-clock throughput of the transport's command interpreter."""
    world, plain_ior, _ = _deploy()
    server = world.orb("server")
    from repro.orb.request import Request

    request = Request(
        plain_ior, "loaded_modules", (), kind="command", command_target="transport"
    )
    benchmark(server.qos_transport.handle_command, request)
