"""ORB core micro-benchmarks (wall clock).

Regression guards for the hot paths every experiment exercises:
CDR marshalling, GIOP round-trips, IOR parsing, and the full in-memory
echo invocation.  These are the numbers to watch when changing the
wire formats or dispatch machinery.
"""

import pytest

from repro.orb import World, giop
from repro.orb.cdr import CDRDecoder, CDREncoder
from repro.orb.ior import IOR, IIOPProfile, QOS_TAG, TaggedComponent
from repro.orb.request import Request
from repro.orb.servant import Servant
from repro.orb.stub import Stub

PAYLOAD = {
    "symbol": "ACME",
    "prices": [101.25, 101.5, 101.75, 102.0],
    "blob": b"\x00\x01" * 64,
    "nested": {"depth": 2, "flag": True},
}


class Echo(Servant):
    _repo_id = "IDL:micro/Echo:1.0"

    def echo(self, value):
        return value


class EchoStub(Stub):
    def echo(self, value):
        return self._call("echo", value)


def test_bench_micro_cdr_encode(benchmark):
    def encode():
        encoder = CDREncoder()
        encoder.write_any(PAYLOAD)
        return encoder.getvalue()

    wire = benchmark(encode)
    assert len(wire) > 100


def test_bench_micro_cdr_decode(benchmark):
    encoder = CDREncoder()
    encoder.write_any(PAYLOAD)
    wire = encoder.getvalue()
    value = benchmark(lambda: CDRDecoder(wire).read_any())
    assert value["symbol"] == "ACME"


def test_bench_micro_giop_request_roundtrip(benchmark):
    target = IOR("IDL:micro/Echo:1.0", IIOPProfile("host", 683, "key"))

    def roundtrip():
        request = Request(target, "echo", (PAYLOAD,))
        return giop.decode_request(giop.encode_request(request))

    decoded = benchmark(roundtrip)
    assert decoded.operation == "echo"


def test_bench_micro_ior_parse(benchmark):
    ior = IOR(
        "IDL:micro/Echo:1.0",
        IIOPProfile("server.example", 683, "obj-12345"),
        [TaggedComponent(QOS_TAG, {"characteristics": ["Compression"]})],
    )
    text = ior.to_string()
    parsed = benchmark(IOR.from_string, text)
    assert parsed == ior


def test_bench_micro_end_to_end_echo(benchmark):
    world = World()
    world.lan(["client", "server"], latency=0.001)
    ior = world.orb("server").poa.activate_object(Echo())
    stub = EchoStub(world.orb("client"), ior)
    result = benchmark(stub.echo, PAYLOAD)
    assert result == PAYLOAD


def test_bench_micro_qos_module_path(benchmark):
    world = World()
    world.lan(["client", "server"], latency=0.001)
    ior = world.orb("server").poa.activate_object(
        Echo(),
        components=[TaggedComponent(QOS_TAG, {"characteristics": ["x"]})],
    )
    world.orb("client").qos_transport.assign(ior, "compression")
    stub = EchoStub(world.orb("client"), ior)
    result = benchmark(stub.echo, PAYLOAD)
    assert result == PAYLOAD
