#!/usr/bin/env python
"""Run the hybrid fluid/packet benchmark; write ``BENCH_fluid.json``.

Two sections:

**Calibration** replays the shared seeded scenarios through both
executors — the per-segment packet tier as ground truth and the
analytic fluid tier under test — and records the per-class mean-delay
and goodput errors (acceptance bar: every error within 15%).

**Headline** runs the canonical gold/bronze WFQ overload probe with a
100k-client (1M with ``--full``) fluid background cohort sharing the
probes' bottleneck link, interleaved through the shared event kernel.
The run is gated on resources — wall-clock, peak RSS, and a
tracemalloc ceiling on per-queued-event bytes — and on determinism: a
second identical run must reproduce the same trace digest and probe
latencies bit-for-bit.

Usage::

    python benchmarks/run_fluid_bench.py [--quick|--full]
        [--out BENCH_fluid.json] [--no-check]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import sys
import time
import tracemalloc
from typing import Dict

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.netsim.fluid import FluidTier  # noqa: E402
from repro.netsim.fluid.calibrate import calibrate  # noqa: E402
from repro.orb import World  # noqa: E402
from repro.orb.servant import Servant  # noqa: E402
from repro.perf import snapshot  # noqa: E402
from repro.sched import CLASS_CONTEXT  # noqa: E402
from repro.workloads import Arrival, FluidCohort, open_loop_fanout  # noqa: E402

#: 5 ms of server CPU per probe request.
SERVICE_TIME = 0.005
#: Probe cadence: one departure every 20 ms, alternating gold/bronze.
CADENCE = 0.020
#: Resource gates for the headline run (one hybrid replay).
WALL_BUDGET_S = {"quick": 60.0, "full": 240.0}
RSS_BUDGET_MB = {"quick": 512.0, "full": 1024.0}
#: tracemalloc ceiling: bytes per queued cohort arrival event.
EVENT_BYTE_BUDGET = 600.0


class _Echo(Servant):
    _repo_id = "IDL:fluidbench/Echo:1.0"
    _default_service_time = SERVICE_TIME

    def echo(self, text):
        return text


def _rss_mb() -> float:
    """Peak RSS of this process in MiB (ru_maxrss is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes on macOS
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def run_hybrid(n_clients: int, probes: int, max_flowlets: int,
               seed: int = 11) -> Dict[str, object]:
    """One hybrid replay: WFQ gold/bronze probes over a fluid-loaded link."""
    world = World()
    world.lan(["client", "server"], latency=0.002, bandwidth_bps=20e6)
    server = world.orb("server")
    scheduler = server.install_scheduler(policy="wfq", max_depth=10_000)
    scheduler.define_class("gold", weight=4.0, priority=1)
    scheduler.define_class("bronze", weight=1.0, priority=6)
    ior = server.poa.activate_object(_Echo(), object_key="echo")

    span = probes * CADENCE
    tier = FluidTier(world.network, world.kernel)
    scheduled = 0
    per_event_bytes = 0.0
    if n_clients:
        # The cohort crosses the probes' own bottleneck link, so its
        # fluid demand is exactly what the foreground contends with.
        cohort = FluidCohort(tier, "client", "server", n_clients=n_clients,
                             flowlets_per_client=0.2, seed=seed,
                             max_flowlets=max_flowlets)
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        scheduled = cohort.install(duration=span)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        per_event_bytes = (after - before) / max(1, scheduled)

    latencies = {"gold": [], "bronze": []}

    def observer(arrival, latency, error):
        if latency is not None:
            latencies[arrival.label].append(latency)

    arrivals = [
        Arrival(
            i * CADENCE,
            ior,
            "echo",
            ("x" * 2_000,),
            contexts={CLASS_CONTEXT: "gold" if i % 2 == 0 else "bronze"},
            label="gold" if i % 2 == 0 else "bronze",
        )
        for i in range(probes)
    ]
    result = open_loop_fanout(world.orb("client"), arrivals,
                              observer=observer, kernel=world.kernel)
    world.kernel.run()

    digest = hashlib.sha256()
    for value in result.latencies:
        digest.update(f"{value:.12e};".encode())
    panel = snapshot(world=world)
    report: Dict[str, object] = {
        "n_clients": n_clients,
        "cohort_arrivals_scheduled": scheduled,
        "cohort_stats": tier.class_summaries(),
        "fluid_trace_digest": tier.trace_digest(),
        "probe_latency_digest": digest.hexdigest(),
        "per_event_bytes": round(per_event_bytes, 1),
        "sim_span_s": round(span, 3),
        "kernel_events_fired": panel["kernel_events_fired"],
        "kernel_live_peak": panel["kernel_live_peak"],
        "flowlets_completed": tier.flowlets_completed,
        "fluid_gbytes": round(tier.bytes_completed / 1e9, 3),
    }
    for name in ("gold", "bronze"):
        series = sorted(latencies[name])
        count = len(series)
        report[name] = {
            "served": count,
            "mean_ms": round(sum(series) / count * 1e3, 3) if count else None,
            "p95_ms": round(series[int(0.95 * (count - 1))] * 1e3, 3)
            if count else None,
        }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="100k-client cohort (CI smoke run)")
    parser.add_argument("--full", action="store_true",
                        help="1M-client cohort headline run")
    parser.add_argument("--out", default=os.path.join(ROOT, "BENCH_fluid.json"),
                        help="output path (default: repo root BENCH_fluid.json)")
    parser.add_argument("--no-check", action="store_true",
                        help="record numbers without enforcing the gates")
    args = parser.parse_args(argv)

    mode = "full" if args.full else "quick"
    n_clients = 1_000_000 if args.full else 100_000
    probes = 400 if args.full else 200
    max_flowlets = 100_000 if args.full else 20_000

    failures = []

    calibration = calibrate()
    if not calibration["ok"]:
        failures.append(
            f"calibration error {calibration['max_error']:.1%} exceeds "
            f"{calibration['tolerance']:.0%}"
        )

    started = time.perf_counter()
    busy = run_hybrid(n_clients, probes, max_flowlets)
    wall_s = time.perf_counter() - started
    rss_mb = _rss_mb()

    # Determinism: the replay must reproduce both digests exactly.
    replay = run_hybrid(n_clients, probes, max_flowlets)
    deterministic = (
        replay["fluid_trace_digest"] == busy["fluid_trace_digest"]
        and replay["probe_latency_digest"] == busy["probe_latency_digest"]
    )
    if not deterministic:
        failures.append("hybrid replay diverged from first run")

    quiet = run_hybrid(0, probes, max_flowlets)

    if wall_s > WALL_BUDGET_S[mode]:
        failures.append(
            f"wall clock {wall_s:.1f}s exceeds {WALL_BUDGET_S[mode]:.0f}s")
    if rss_mb > RSS_BUDGET_MB[mode]:
        failures.append(
            f"peak RSS {rss_mb:.0f}MB exceeds {RSS_BUDGET_MB[mode]:.0f}MB")
    if busy["per_event_bytes"] > EVENT_BYTE_BUDGET:
        failures.append(
            f"{busy['per_event_bytes']:.0f} bytes/queued event exceeds "
            f"{EVENT_BYTE_BUDGET:.0f}")
    if busy["gold"]["p95_ms"] <= quiet["gold"]["p95_ms"]:
        failures.append("background cohort did not slow foreground probes")

    payload = {
        "mode": mode,
        "calibration": calibration,
        "headline": {
            "busy": busy,
            "quiet": quiet,
            "wall_clock_s": round(wall_s, 3),
            "wall_budget_s": WALL_BUDGET_S[mode],
            "peak_rss_mb": round(rss_mb, 1),
            "rss_budget_mb": RSS_BUDGET_MB[mode],
            "event_byte_budget": EVENT_BYTE_BUDGET,
            "deterministic_replay": deterministic,
        },
        "gates_failed": failures,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"wrote {args.out}\n")
    print(f"  calibration: max per-class error "
          f"{calibration['max_error']:.1%} (tolerance "
          f"{calibration['tolerance']:.0%}) over "
          f"{len(calibration['scenarios'])} scenarios")
    print(f"  headline: {n_clients:,} clients -> "
          f"{busy['cohort_arrivals_scheduled']:,} scheduled arrivals, "
          f"{busy['kernel_events_fired']:,} kernel events, "
          f"{busy['fluid_gbytes']} GB fluid traffic")
    print(f"  wall {wall_s:.2f}s / {WALL_BUDGET_S[mode]:.0f}s budget, "
          f"peak RSS {rss_mb:.0f}MB / {RSS_BUDGET_MB[mode]:.0f}MB budget, "
          f"{busy['per_event_bytes']:.0f} B/event")
    print(f"  deterministic replay: {deterministic}")
    print(f"\n  {'probe class':<12} {'quiet p95':>10} {'busy p95':>10}")
    for name in ("gold", "bronze"):
        print(f"  {name:<12} {quiet[name]['p95_ms']:>8.1f}ms"
              f" {busy[name]['p95_ms']:>8.1f}ms")

    if failures and not args.no_check:
        print("\nFAIL:")
        for line in failures:
            print(f"  - {line}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
