#!/usr/bin/env python
"""Run the kernel/codec benchmarks and write ``BENCH_kernel.json``.

Four same-run comparisons, all immune to machine drift because both
sides execute interleaved in this process:

1. **soak** — the deterministic multi-cluster soak scenario
   (:mod:`repro.workloads.soak`) on the frozen seed event kernel
   (verbatim copy in ``_seed_kernel``) versus the 4-shard
   :class:`~repro.netsim.parallel.ShardedKernel`; both fire the exact
   same event set.
2. **cdr** — ``write_any``/``read_any`` with the compiled-style fast
   path (:mod:`repro.orb._cdr_fast`) on and off, reported as ns/call
   against the decode figure committed in ``BENCH_orb.json``.
3. **echo** — the full ORB echo round-trip against the seed wire
   path, same harness as ``run_bench.py``.
4. **retry_hint** — the scheduler's k-th-completion admission hint at
   depth >= 1k: the old per-check ``heapq.nsmallest`` versus the
   sorted-inflight index.

Usage::

    python benchmarks/run_kernel_bench.py [--quick] [--out BENCH_kernel.json]
        [--no-check]

Unless ``--no-check`` is given the run fails (exit 1) if the soak or
echo speedups come in under 2x, or the fast-path decode is not >= 2x
faster than the committed interpreter figure.
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import random
import sys
from time import perf_counter

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
SRC = os.path.join(ROOT, "src")
for path in (SRC, HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

import _seed_kernel  # noqa: E402
import run_bench  # noqa: E402

from repro.orb import cdr  # noqa: E402
from repro.orb.cdr import CDRDecoder, CDREncoder, use_fast_path  # noqa: E402
from repro.netsim.parallel import ShardedKernel  # noqa: E402
from repro.workloads.soak import (  # noqa: E402
    SerialScenarioDriver,
    schedule_soak,
    soak_config,
    soak_topology,
)

#: Committed interpreter-era decode cost (BENCH_orb.json at the time
#: the fast path landed); the compiled-CDR gate is measured against it.
COMMITTED_DECODE_NS = 16392.6

SOAK_SHARDS = 4


def _soak_setup(quick: bool):
    topo = soak_topology(clusters=8, hosts_per_cluster=8)
    cfg = soak_config(
        topo,
        duration=0.6 if quick else 2.0,
        period=0.004,
        fanout=2,
        remote_ratio=0.3,
        nbytes=20_000,
        heartbeats=60 if quick else 200,
    )
    return topo, cfg


def _run_seed_soak(topo, cfg) -> tuple:
    driver = SerialScenarioDriver(
        _seed_kernel.EventKernel(), topo, seed=0, trace=False
    )
    schedule_soak(driver, cfg)
    start = perf_counter()
    fired = driver.run()
    return perf_counter() - start, fired


def _run_sharded_soak(topo, cfg) -> tuple:
    kernel = ShardedKernel(topo, shards=SOAK_SHARDS, backend="inline",
                           seed=0, trace=False)
    schedule_soak(kernel, cfg)
    start = perf_counter()
    fired = kernel.run()
    return perf_counter() - start, fired, kernel.stats()


def soak_comparison(quick: bool) -> dict:
    """Seed serial kernel vs 4-shard inline, interleaved repeats."""
    topo, cfg = _soak_setup(quick)
    repeats = 3 if quick else 5
    seed_samples, new_samples = [], []
    seed_fired = new_fired = 0
    stats = {}
    for round_index in range(repeats + 1):
        seed_time, seed_fired = _run_seed_soak(topo, cfg)
        new_time, new_fired, stats = _run_sharded_soak(topo, cfg)
        if round_index == 0:
            continue  # warm-up
        seed_samples.append(seed_time)
        new_samples.append(new_time)
    if seed_fired != new_fired:
        raise SystemExit(
            f"soak event sets diverged: seed fired {seed_fired}, "
            f"sharded fired {new_fired}"
        )
    seed_s, new_s = min(seed_samples), min(new_samples)
    return {
        "events": new_fired,
        "shards": SOAK_SHARDS,
        "seed_wall_s": round(seed_s, 4),
        "sharded_wall_s": round(new_s, 4),
        "seed_ns_per_event": round(seed_s / new_fired * 1e9, 1),
        "sharded_ns_per_event": round(new_s / new_fired * 1e9, 1),
        "speedup": round(seed_s / new_s, 3),
        "barriers": stats.get("barriers"),
        "cross_messages": stats.get("cross_messages"),
        "lookahead": stats.get("lookahead"),
    }


def cdr_comparison(quick: bool) -> dict:
    """Fast-path on vs off, ns/call, plus the committed-figure ratio."""
    number = 2000 if quick else 10000
    repeats = 3 if quick else 5
    payload = run_bench.PAYLOAD

    encoder = CDREncoder()
    encoder.write_any(payload)
    wire = encoder.getvalue()

    def encode():
        enc = CDREncoder()
        enc.write_any(payload)
        return enc.getvalue()

    def decode():
        return CDRDecoder(wire).read_any()

    def timed(fn):
        best = None
        for _ in range(repeats):
            start = perf_counter()
            for _ in range(number):
                fn()
            elapsed = (perf_counter() - start) / number
            if best is None or elapsed < best:
                best = elapsed
        return best

    results = {}
    for enabled, label in ((True, "fast"), (False, "interpreted")):
        use_fast_path(enabled)
        try:
            results[label] = {
                "encode_ns_per_call": round(timed(encode) * 1e9, 1),
                "decode_ns_per_call": round(timed(decode) * 1e9, 1),
            }
        finally:
            use_fast_path(True)
    fast_decode = results["fast"]["decode_ns_per_call"]
    return {
        "impl": cdr.FAST_IMPL,
        **results,
        "decode_speedup_vs_interpreted": round(
            results["interpreted"]["decode_ns_per_call"] / fast_decode, 3
        ),
        "committed_decode_ns_per_call": COMMITTED_DECODE_NS,
        "decode_speedup_vs_committed": round(
            COMMITTED_DECODE_NS / fast_decode, 3
        ),
    }


def echo_comparison(quick: bool) -> dict:
    """Seed-wire vs current echo round-trip (run_bench harness)."""
    number = 150 if quick else 1000
    repeats = 5 if quick else 7
    stub_seed = run_bench._echo_stub()
    stub_new = run_bench._echo_stub()
    payload = run_bench.PAYLOAD
    seed_s, new_s = run_bench._compare(
        lambda: stub_seed.echo(payload),
        lambda: stub_new.echo(payload),
        number=number, repeats=repeats,
        seed_ctx=run_bench._seed_wire.seed_wire,
    )
    return {
        "seed_us": round(seed_s * 1e6, 3),
        "new_us": round(new_s * 1e6, 3),
        "speedup": round(seed_s / new_s, 3),
    }


def retry_hint_comparison(depth: int = 2048) -> dict:
    """Admission retry hint at depth >= 1k: nsmallest vs sorted index."""
    rng = random.Random(3)
    inflight = sorted(rng.uniform(0.0, 60.0) for _ in range(depth))
    belows = list(range(1, depth, 37))
    now = 30.0

    def old_style():
        total = 0.0
        for below in belows:
            if len(inflight) < below or not inflight:
                continue
            index = len(inflight) - below
            kth = heapq.nsmallest(index + 1, inflight)[-1]
            total += max(0.0, kth - now)
        return total

    def new_style():
        total = 0.0
        for below in belows:
            if len(inflight) < below or not inflight:
                continue
            kth = inflight[len(inflight) - below]
            total += max(0.0, kth - now)
        return total

    assert abs(old_style() - new_style()) < 1e-9, "retry hints diverged"

    def timed(fn, rounds):
        best = None
        for _ in range(rounds):
            start = perf_counter()
            fn()
            elapsed = (perf_counter() - start) / len(belows)
            if best is None or elapsed < best:
                best = elapsed
        return best

    old_s = timed(old_style, 5)
    new_s = timed(new_style, 5)
    return {
        "depth": depth,
        "old_ns_per_hint": round(old_s * 1e9, 1),
        "new_ns_per_hint": round(new_s * 1e9, 1),
        "speedup": round(old_s / new_s, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer iterations (CI smoke run)")
    parser.add_argument("--out",
                        default=os.path.join(ROOT, "BENCH_kernel.json"),
                        help="output path (default: repo root)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required ratio on soak/echo/decode gates")
    parser.add_argument("--no-check", action="store_true",
                        help="record numbers without enforcing gates")
    args = parser.parse_args(argv)

    soak = soak_comparison(args.quick)
    cdr_result = cdr_comparison(args.quick)
    echo = echo_comparison(args.quick)
    retry = retry_hint_comparison()

    payload = {
        "quick": args.quick,
        "soak": soak,
        "cdr": cdr_result,
        "echo_roundtrip": echo,
        "sched_retry_hint": retry,
        "gates": {
            "min_speedup": args.min_speedup,
            "soak_speedup": soak["speedup"],
            "echo_speedup": echo["speedup"],
            "decode_speedup_vs_committed":
                cdr_result["decode_speedup_vs_committed"],
        },
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"\nwrote {args.out}")
    print(f"  soak        seed {soak['seed_wall_s']:.3f}s  "
          f"sharded {soak['sharded_wall_s']:.3f}s  "
          f"speedup {soak['speedup']:.2f}x  ({soak['events']} events)")
    print(f"  cdr decode  fast {cdr_result['fast']['decode_ns_per_call']:.0f}ns  "
          f"interpreted {cdr_result['interpreted']['decode_ns_per_call']:.0f}ns  "
          f"vs committed {cdr_result['decode_speedup_vs_committed']:.2f}x")
    print(f"  echo        seed {echo['seed_us']:.2f}us  "
          f"new {echo['new_us']:.2f}us  speedup {echo['speedup']:.2f}x")
    print(f"  retry hint  old {retry['old_ns_per_hint']:.0f}ns  "
          f"new {retry['new_ns_per_hint']:.0f}ns  "
          f"speedup {retry['speedup']:.0f}x  (depth {retry['depth']})")

    if not args.no_check:
        failures = []
        if soak["speedup"] < args.min_speedup:
            failures.append(f"soak {soak['speedup']:.2f}x")
        if echo["speedup"] < args.min_speedup:
            failures.append(f"echo {echo['speedup']:.2f}x")
        if cdr_result["decode_speedup_vs_committed"] < args.min_speedup:
            failures.append(
                f"decode-vs-committed "
                f"{cdr_result['decode_speedup_vs_committed']:.2f}x"
            )
        if failures:
            print(f"\nFAIL: below {args.min_speedup}x: {', '.join(failures)}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
