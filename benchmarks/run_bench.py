#!/usr/bin/env python
"""Run the ORB wire-path benchmarks and write ``BENCH_orb.json``.

Two layers of numbers:

1. the pytest-benchmark suites ``test_bench_orb_micro.py`` and
   ``test_bench_orb_dispatch.py`` (medians per benchmark), and
2. a same-run seed-vs-current comparison: the growth seed's wire path
   (verbatim copies in ``_seed_wire``) is patched over the live ORB and
   timed against the current implementation *in the same process*, so
   the speedup ratios are immune to machine-to-machine and run-to-run
   drift.

Usage::

    python benchmarks/run_bench.py [--quick] [--out BENCH_orb.json]
        [--min-speedup 1.5] [--no-check]

``--quick`` shrinks iteration counts for CI smoke runs.  Unless
``--no-check`` is given, the run fails (exit 1) if any of the headline
metrics (cdr_encode, cdr_decode, echo_roundtrip) comes in under
``--min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
from time import perf_counter
from typing import Tuple

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
SRC = os.path.join(ROOT, "src")
for path in (SRC, HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.orb import World, giop  # noqa: E402
from repro.orb.cdr import CDRDecoder, CDREncoder  # noqa: E402
from repro.orb.ior import IOR, IIOPProfile  # noqa: E402
from repro.orb.request import Request  # noqa: E402
from repro.orb.servant import Servant  # noqa: E402
from repro.orb.stub import Stub  # noqa: E402
from repro.perf import COUNTERS  # noqa: E402

import _seed_cdr  # noqa: E402
import _seed_wire  # noqa: E402

#: Same payload the micro suite uses, so the numbers line up.
PAYLOAD = {
    "symbol": "ACME",
    "prices": [101.25, 101.5, 101.75, 102.0],
    "blob": b"\x00\x01" * 64,
    "nested": {"depth": 2, "flag": True},
}

#: Headline metrics the acceptance gate applies to.
HEADLINE = ("cdr_encode", "cdr_decode", "echo_roundtrip")


def _timed_batch(fn, number: int) -> float:
    start = perf_counter()
    for _ in range(number):
        fn()
    return (perf_counter() - start) / number


def _compare(seed_fn, new_fn, *, number: int, repeats: int,
             seed_ctx=None) -> Tuple[float, float]:
    """Best per-call seconds for seed and new, batches interleaved.

    Alternating seed/new batches within each round cancels the clock
    drift (CPU frequency, background load) that sequential phases
    would bake into the ratio, and taking each side's best batch
    discards interruptions — noise only ever adds time.  ``seed_ctx``
    is an optional context manager factory entered around every seed
    batch (the wire patch).
    """
    from contextlib import nullcontext

    seed_samples, new_samples = [], []
    for round_index in range(repeats + 1):
        with (seed_ctx() if seed_ctx else nullcontext()):
            seed_time = _timed_batch(seed_fn, number)
        new_time = _timed_batch(new_fn, number)
        if round_index == 0:
            continue  # warm-up round: caches, allocator, branch history
        seed_samples.append(seed_time)
        new_samples.append(new_time)
    return min(seed_samples), min(new_samples)


class _Echo(Servant):
    _repo_id = "IDL:bench/Echo:1.0"

    def echo(self, value):
        return value


class _EchoStub(Stub):
    def echo(self, value):
        return self._call("echo", value)


def _echo_stub() -> _EchoStub:
    world = World()
    world.lan(["client", "server"], latency=0.001)
    ior = world.orb("server").poa.activate_object(_Echo())
    return _EchoStub(world.orb("client"), ior)


def seed_comparison(quick: bool) -> dict:
    """Time seed and current wire paths in this process; return metrics."""
    number = 300 if quick else 2000
    repeats = 3 if quick else 5

    target = IOR("IDL:bench/Echo:1.0", IIOPProfile("host", 683, "key"))

    def cdr_encode_new():
        encoder = CDREncoder()
        encoder.write_any(PAYLOAD)
        return encoder.getvalue()

    def cdr_encode_seed():
        encoder = _seed_cdr.CDREncoder()
        encoder.write_any(PAYLOAD)
        return encoder.getvalue()

    wire = cdr_encode_new()
    assert wire == cdr_encode_seed(), "seed and current CDR bytes diverged"

    def giop_roundtrip_new():
        request = Request(target, "echo", (PAYLOAD,))
        return giop.decode_request(giop.encode_request(request))

    def giop_roundtrip_seed():
        request = Request(target, "echo", (PAYLOAD,))
        return _seed_wire.seed_decode_request(
            _seed_wire.seed_encode_request(request)
        )

    metrics = {}

    def record(name, seed_s, new_s):
        metrics[name] = {
            "seed_us": round(seed_s * 1e6, 3),
            "new_us": round(new_s * 1e6, 3),
            "speedup": round(seed_s / new_s, 3) if new_s > 0 else None,
        }

    record("cdr_encode", *_compare(
        cdr_encode_seed, cdr_encode_new, number=number, repeats=repeats))
    record("cdr_decode", *_compare(
        lambda: _seed_cdr.CDRDecoder(wire).read_any(),
        lambda: CDRDecoder(wire).read_any(),
        number=number, repeats=repeats))
    record("giop_roundtrip", *_compare(
        giop_roundtrip_seed, giop_roundtrip_new,
        number=number, repeats=repeats))

    echo_number = max(number // 2, 100)
    stub_seed = _echo_stub()
    stub_new = _echo_stub()
    record("echo_roundtrip", *_compare(
        lambda: stub_seed.echo(PAYLOAD),
        lambda: stub_new.echo(PAYLOAD),
        number=echo_number, repeats=repeats + 2,
        seed_ctx=_seed_wire.seed_wire))
    return metrics


def pytest_benchmarks(quick: bool) -> dict:
    """Run the two ORB bench suites; return {benchmark name: median seconds}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        report = handle.name
    cmd = [
        sys.executable, "-m", "pytest",
        os.path.join(HERE, "test_bench_orb_micro.py"),
        os.path.join(HERE, "test_bench_orb_dispatch.py"),
        "-q", "-p", "no:cacheprovider",
        f"--benchmark-json={report}",
    ]
    if quick:
        cmd += ["--benchmark-min-rounds=3", "--benchmark-max-time=0.1",
                "--benchmark-warmup=off"]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(cmd, cwd=HERE, env=env)
    if result.returncode != 0:
        raise SystemExit(f"benchmark suites failed (exit {result.returncode})")
    try:
        with open(report) as handle:
            data = json.load(handle)
    finally:
        os.unlink(report)
    return {
        bench["name"]: round(bench["stats"]["median"] * 1e6, 3)
        for bench in data.get("benchmarks", [])
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer iterations (CI smoke run)")
    parser.add_argument("--out", default=os.path.join(ROOT, "BENCH_orb.json"),
                        help="output path (default: repo root BENCH_orb.json)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required seed-vs-current ratio on headline metrics")
    parser.add_argument("--no-check", action="store_true",
                        help="record numbers without enforcing --min-speedup")
    parser.add_argument("--skip-suites", action="store_true",
                        help="skip the pytest-benchmark suites (comparison only)")
    args = parser.parse_args(argv)

    COUNTERS.enable()
    comparison = seed_comparison(args.quick)
    counters = COUNTERS.snapshot()
    COUNTERS.disable()

    suites = {} if args.skip_suites else pytest_benchmarks(args.quick)

    payload = {
        "quick": args.quick,
        "seed_comparison": comparison,
        "suite_medians_us": suites,
        "perf_counters": counters,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"\nwrote {args.out}")
    width = max(len(name) for name in comparison)
    for name, row in comparison.items():
        print(f"  {name:<{width}}  seed {row['seed_us']:>9.2f} us"
              f"  new {row['new_us']:>9.2f} us  speedup {row['speedup']:.2f}x")

    if not args.no_check:
        slow = [name for name in HEADLINE
                if comparison[name]["speedup"] < args.min_speedup]
        if slow:
            print(f"\nFAIL: below {args.min_speedup}x: {', '.join(slow)}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
