#!/usr/bin/env python
"""Run the adaptive-control benchmark; write ``BENCH_control.json``.

The scenario: an open-loop client fleet drives a replica group whose
offered load **triples mid-run** (r0 for the warm phase, then 3·r0).
One serving host can sustain r0 but not 3·r0 — without adaptation the
queue grows without bound and client-observed latency leaves the
negotiated delay contract within tens of milliseconds.

- **static baseline** — one replica, no control plane: phase-two
  arrivals pile up behind a single server.
- **adaptive contender** — the same deployment with the control plane
  attached: a :class:`~repro.control.ControlLoop` samples the
  client-observed p95 over the contracted delay and an
  :class:`~repro.control.AutoscalePolicy` grows the group onto spare
  hosts through the deployment path (state transfer over the ORB,
  membership published to the routing layer mid-run).

Goodput counts replies that completed **within the contracted delay**,
per simulated second.  Headline criteria (the subsystem's acceptance
bar)::

    contender p95            <=  contracted delay (0.05 s)
    contender goodput        >=  2.0 * baseline goodput
    scale-ups                >=  2
    identical seed           ->  identical decision trace (digest)

Usage::

    python benchmarks/run_control_bench.py [--quick]
        [--out BENCH_control.json] [--seed N] [--min-ratio 2.0]
        [--no-check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.control import AutoscalePolicy, ControlLoop, Hysteresis, ManagedGroup  # noqa: E402
from repro.core.monitoring import MetricWindow  # noqa: E402
from repro.orb import World  # noqa: E402
from repro.orb.request import reset_request_ids  # noqa: E402
from repro.perf.counters import COUNTERS, snapshot  # noqa: E402
from repro.qos.fault_tolerance.replica_group import ReplicaGroupManager  # noqa: E402
from repro.workloads.apps import make_compute_servant_class  # noqa: E402
from repro.workloads.drivers import Arrival, open_loop_fanout  # noqa: E402

SPARES = ("b", "c", "d")
LINK_LATENCY = 0.0005
#: Per-request service demand: one host sustains 1/SERVICE = 250/s.
SERVICE = 0.004
#: Warm-phase offered rate (0.8x a single host's capacity).
R0 = 200.0
#: The negotiated delay bound the contender must hold p95 within.
CONTRACT_DELAY = 0.05


def arrival_schedule(phase1: float, phase2: float) -> List[float]:
    """Deterministic open-loop departures: r0, then 3*r0 after phase1."""
    times = []
    t = 0.0
    while t < phase1:
        times.append(round(t, 9))
        t += 1.0 / R0
    t = phase1
    while t < phase1 + phase2:
        times.append(round(t, 9))
        t += 1.0 / (3.0 * R0)
    return times


def build_deployment():
    reset_request_ids()
    COUNTERS.reset()
    world = World()
    world.lan(
        ("client",) + ("a",) + SPARES, latency=LINK_LATENCY, bandwidth_bps=100e6
    )
    manager = ReplicaGroupManager(
        world, "bench", make_compute_servant_class(unit_cost=SERVICE)
    )
    manager.add_replica("a")
    group = ManagedGroup(world, manager)
    return world, manager, group


def run_contender(adaptive: bool, phase1: float, phase2: float) -> Dict[str, object]:
    world, manager, group = build_deployment()
    client = world.orb("client")
    window = MetricWindow(size=20)

    loop = None
    if adaptive:
        loop = ControlLoop(world, period=0.01).attach()

        def pressure(now):
            # Client-observed p95 over the contracted delay bound;
            # quiet until the window has substance.  A short window
            # keeps the signal fresh: during the surge the queue
            # builds in tens of milliseconds, and a stale p95 delays
            # every follow-on scale-up.
            if len(window) < 10:
                return None
            return window.p95() / CONTRACT_DELAY

        loop.add_policy(
            AutoscalePolicy(
                group,
                list(SPARES),
                signal=pressure,
                hysteresis=Hysteresis(
                    high=0.3, low=0.1, up_ticks=2, down_ticks=10**6, cooldown=0.03
                ),
                max_replicas=1 + len(SPARES),
            )
        )
        loop.start(until=phase1 + phase2)

    arrivals = [
        Arrival(t, manager.member_ior("a"), "busy_work", (1,))
        for t in arrival_schedule(phase1, phase2)
    ]

    def observe(arrival, latency, error):
        if latency is not None:
            window.observe(latency)

    result = open_loop_fanout(
        client,
        arrivals,
        observer=observe,
        kernel=world.kernel,
        router=lambda arrival, depart: group.route_least_loaded(depart),
    )
    if loop is not None:
        loop.stop()
    group.poll_retirements(world.clock.now)

    good = sum(1 for lat in result.latencies if lat <= CONTRACT_DELAY)
    elapsed = result.elapsed
    row = {
        "arrivals": len(arrivals),
        "completed": result.count,
        "failures": result.failures,
        "p50_ms": round(result.p50() * 1e3, 3),
        "p95_ms": round(result.p95() * 1e3, 3),
        "p99_ms": round(result.p99() * 1e3, 3),
        "within_contract": good,
        "elapsed_s": round(elapsed, 6),
        "goodput_per_s": round(good / elapsed, 3) if elapsed else 0.0,
        "final_hosts": group.hosts(),
    }
    if loop is not None:
        row["decisions"] = loop.trace.as_dicts()
        row["trace_digest"] = loop.trace.digest()
        panel = snapshot(client, world)
        row["ctl"] = {
            key: value for key, value in panel.items() if key.startswith("ctl_")
        }
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter phases (CI smoke run)")
    parser.add_argument("--out", default=os.path.join(ROOT, "BENCH_control.json"),
                        help="output path (default: repo root)")
    parser.add_argument("--seed", type=int, default=7001,
                        help="scenario seed recorded in the payload")
    parser.add_argument("--min-ratio", type=float, default=2.0,
                        help="required adaptive/static goodput floor")
    parser.add_argument("--no-check", action="store_true",
                        help="record numbers without enforcing the gates")
    args = parser.parse_args(argv)

    phase1, phase2 = (0.5, 2.0) if args.quick else (1.0, 3.0)

    baseline = run_contender(adaptive=False, phase1=phase1, phase2=phase2)
    adaptive = run_contender(adaptive=True, phase1=phase1, phase2=phase2)
    replay = run_contender(adaptive=True, phase1=phase1, phase2=phase2)

    base_goodput = baseline["goodput_per_s"]
    adaptive_goodput = adaptive["goodput_per_s"]
    ratio = (
        round(adaptive_goodput / base_goodput, 3) if base_goodput else None
    )
    deterministic = adaptive["trace_digest"] == replay["trace_digest"]
    scale_ups = adaptive["ctl"]["ctl_scale_ups"]

    payload = {
        "quick": args.quick,
        "scenario": {
            "warm_rate_per_s": R0,
            "surge_rate_per_s": 3.0 * R0,
            "phase1_s": phase1,
            "phase2_s": phase2,
            "service_time_s": SERVICE,
            "contract_delay_s": CONTRACT_DELAY,
            "link_latency_s": LINK_LATENCY,
            "spare_hosts": list(SPARES),
            "seed": args.seed,
        },
        "static_baseline": baseline,
        "adaptive": adaptive,
        "checks": {
            "p95_within_contract": adaptive["p95_ms"] <= CONTRACT_DELAY * 1e3,
            "goodput_ratio_met": bool(ratio and ratio >= args.min_ratio),
            "scale_ups_at_least_2": scale_ups >= 2,
            "decision_trace_deterministic": deterministic,
            "zero_failures": adaptive["failures"] == 0,
        },
        "headline": {
            "baseline_goodput_per_s": base_goodput,
            "adaptive_goodput_per_s": adaptive_goodput,
            "goodput_ratio": ratio,
            "min_ratio": args.min_ratio,
            "adaptive_p95_ms": adaptive["p95_ms"],
            "contract_ms": CONTRACT_DELAY * 1e3,
            "scale_ups": scale_ups,
            "trace_digest": adaptive["trace_digest"],
        },
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"wrote {args.out}\n")
    print(f"  {'contender':>10} {'good':>10} {'goodput':>12} {'p95':>10} {'hosts':>8}")
    for name, row in (("static", baseline), ("adaptive", adaptive)):
        print(
            f"  {name:>10} {row['within_contract']:>6}/{row['completed']:<4}"
            f" {row['goodput_per_s']:>9.1f}/s {row['p95_ms']:>8.2f}ms"
            f" {len(row['final_hosts']):>6}"
        )

    failures = []
    checks = payload["checks"]
    if not checks["p95_within_contract"] and not args.no_check:
        failures.append(
            f"adaptive p95 {adaptive['p95_ms']}ms exceeds the "
            f"{CONTRACT_DELAY * 1e3}ms contract"
        )
    if not checks["goodput_ratio_met"] and not args.no_check:
        failures.append(
            f"adaptive goodput only {ratio}x baseline (floor {args.min_ratio}x)"
        )
    if not checks["scale_ups_at_least_2"]:
        failures.append(f"only {scale_ups} scale-up(s); the surge needs >= 2")
    if not checks["decision_trace_deterministic"]:
        failures.append("identical seed produced different decision traces")
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(
        f"\n  goodput {ratio}x over floor {args.min_ratio}x, "
        f"p95 {adaptive['p95_ms']}ms within {CONTRACT_DELAY * 1e3}ms, "
        f"{scale_ups} scale-ups, trace deterministic"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
