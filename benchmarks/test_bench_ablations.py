"""Ablations of this reproduction's design choices.

Not paper experiments — these quantify the cost/benefit of decisions
DESIGN.md makes, so reviewers can judge whether conclusions depend on
them:

- A1: the module **envelope** (magic + name + params) adds wire bytes
  to every transformed message — how many, and when does it stop
  mattering?
- A2: the **best-effort floor** keeps unreserved traffic alive on a
  fully reserved link — what happens without it?
- A3: **mediator chain depth** — interposition cost per stacked
  client-side concern (wall clock).
- A4: the **marshal-cost constant** — does the E6 compression
  crossover survive a 10x swing of the CPU cost model?
"""

import pytest

from _tables import print_table
from repro.core.mediator import Mediator, MediatorChain
from repro.orb import World, giop
from repro.orb.modules.base import encode_envelope
from repro.orb.ior import IOR, IIOPProfile, QOS_TAG, TaggedComponent
from repro.orb.request import Request
from repro.orb.servant import Servant
from repro.orb.stub import Stub
from repro.workloads import compressible_text
from repro.workloads.apps import archive_module, make_archive_servant_class


class EchoServant(Servant):
    _repo_id = "IDL:ablation/Echo:1.0"

    def echo(self, text):
        return text


class EchoStub(Stub):
    def echo(self, text):
        return self._call("echo", text)


def _envelope_rows():
    rows = []
    target = IOR("IDL:ablation/Echo:1.0", IIOPProfile("h", 683, "k"))
    for size in (16, 256, 4096):
        request = Request(target, "echo", ("x" * size,))
        plain = giop.encode_request(request)
        enveloped = encode_envelope(
            "compression", {"codec": "lz", "requested": "lz"}, plain
        )
        overhead = len(enveloped) - len(plain)
        rows.append((size, len(plain), len(enveloped), overhead,
                     overhead / len(plain) * 100))
    return rows


def test_bench_a1_envelope_overhead(benchmark):
    rows = benchmark.pedantic(_envelope_rows, rounds=1, iterations=1)
    print_table(
        "A1 — module envelope overhead per message",
        ["payload B", "GIOP bytes", "enveloped bytes", "overhead B", "%"],
        rows,
    )
    overheads = [row[3] for row in rows]
    # Constant-size overhead: identical regardless of payload.
    assert max(overheads) - min(overheads) <= 8  # alignment wiggle only
    # Negligible for kilobyte payloads.
    assert rows[-1][4] < 3.0


def _floor_rows():
    from repro.netsim import network as network_module

    rows = []
    results = {}
    for floor in (0.05, 0.0):
        original = network_module.BEST_EFFORT_FLOOR
        network_module.BEST_EFFORT_FLOOR = floor
        try:
            world = World()
            world.add_host("client")
            world.add_host("server")
            link = world.connect("client", "server", latency=0.001,
                                 bandwidth_bps=1e6)
            world.resources.reserve("client", "server", 0.9e6)  # hog it
            link.background_flows = 50  # heavy best-effort contention
            ior = world.orb("server").poa.activate_object(EchoServant())
            stub = EchoStub(world.orb("client"), ior)
            start = world.clock.now
            stub.echo("y" * 2000)
            rtt = world.clock.now - start
            rows.append((f"{floor:.0%}", rtt * 1e3))
            results[floor] = rtt
        finally:
            network_module.BEST_EFFORT_FLOOR = original
    return rows, results


def test_bench_a2_best_effort_floor(benchmark):
    rows, results = benchmark.pedantic(_floor_rows, rounds=1, iterations=1)
    print_table(
        "A2 — best-effort RTT on a 90%-reserved link, with/without floor",
        ["best-effort floor", "rtt (sim ms)"],
        rows,
    )
    # Without the floor, best-effort traffic shares the 10% residue
    # with 50 background flows (~2 kbit/s each) and effectively
    # starves; the floor guarantees 5% of capacity and keeps it usable.
    assert results[0.0] > results[0.05] * 10


def _chain_depths():
    world = World()
    world.lan(["client", "server"], latency=0.0)
    ior = world.orb("server").poa.activate_object(EchoServant())
    stub = EchoStub(world.orb("client"), ior)

    class Passthrough(Mediator):
        characteristic = "__pass__"

    depths = (0, 1, 2, 4, 8)
    import time

    rows = []
    for depth in depths:
        if depth == 0:
            stub._set_mediator(None)
        else:
            MediatorChain(*[Passthrough() for _ in range(depth)]).install(stub)
        iterations = 2000
        started = time.perf_counter()
        for _ in range(iterations):
            stub.echo("x")
        elapsed = (time.perf_counter() - started) / iterations
        rows.append((depth, elapsed * 1e6))
    return rows


def test_bench_a3_mediator_chain_depth(benchmark):
    rows = benchmark.pedantic(_chain_depths, rounds=1, iterations=1)
    print_table(
        "A3 — wall-clock cost per call vs mediator chain depth",
        ["chain depth", "µs/call (wall)"],
        rows,
    )
    base = rows[0][1]
    deepest = rows[-1][1]
    # Interposition is cheap: eight stacked concerns below 4x the bare call.
    assert deepest < base * 4


def _crossover_for_marshal_cost(factor):
    from repro.orb.orb import ORB

    original = ORB.MARSHAL_COST_PER_BYTE
    ORB.MARSHAL_COST_PER_BYTE = original * factor
    try:
        payload = compressible_text(8192, seed=5)
        speedups = []
        for bandwidth in (64e3, 100e6):
            world = World()
            world.add_host("client")
            world.add_host("server")
            world.connect("client", "server", latency=0.005,
                          bandwidth_bps=bandwidth)
            servant = make_archive_servant_class()()
            servant.files["doc"] = payload
            ior = world.orb("server").poa.activate_object(
                servant, "a",
                components=[TaggedComponent(QOS_TAG, {"characteristics": ["Compression"]})],
            )
            stub = archive_module.ArchiveStub(world.orb("client"), ior)
            start = world.clock.now
            stub.fetch("doc")
            plain = world.clock.now - start
            world.orb("client").qos_transport.assign(ior, "compression")
            start = world.clock.now
            stub.fetch("doc")
            compressed = world.clock.now - start
            speedups.append(plain / compressed)
        return speedups  # [slow-link speedup, fast-link speedup]
    finally:
        ORB.MARSHAL_COST_PER_BYTE = original


def _sensitivity_rows():
    rows = []
    outcomes = {}
    for factor in (0.1, 1.0, 10.0):
        slow, fast = _crossover_for_marshal_cost(factor)
        rows.append((f"{factor}x", f"{slow:.2f}x", f"{fast:.2f}x"))
        outcomes[factor] = (slow, fast)
    return rows, outcomes


def test_bench_a4_marshal_cost_sensitivity(benchmark):
    rows, outcomes = benchmark.pedantic(_sensitivity_rows, rounds=1, iterations=1)
    print_table(
        "A4 — E6 conclusion vs marshal-cost constant (speedup of compression)",
        ["marshal cost", "64 kbit/s link", "100 Mbit/s link"],
        rows,
    )
    # The qualitative E6 conclusion is robust across a 100x swing:
    # compression always wins on the slow link and never wins big on
    # the fast one.
    for factor, (slow, fast) in outcomes.items():
        assert slow > 1.3
        assert fast < 1.1
