"""Build script: pure Python by default, optional mypyc hot path.

``pip install .`` installs the pure-Python package everywhere.  The
flat CDR codec (:mod:`repro.orb._cdr_fast`) is written in the
restricted style mypyc compiles well; ``pip install .[compiled]``
pulls in mypy (which ships mypyc) so that a subsequent build with
``REPRO_MYPYC=1`` compiles that one module to a C extension:

    REPRO_MYPYC=1 pip install .[compiled]

Every failure mode — mypy absent, mypyc errors, no C toolchain —
falls back to the interpreted module: the build never *requires*
compilation, and ``repro.orb.cdr.FAST_IMPL`` reports which form was
imported at runtime.
"""

import os

from setuptools import setup


def _cdr_extensions():
    if os.environ.get("REPRO_MYPYC", "0") != "1":
        return []
    try:
        from mypyc.build import mypycify
    except ImportError:
        return []  # extras not installed: pure-Python fallback
    try:
        return mypycify(["src/repro/orb/_cdr_fast.py"], opt_level="3")
    except Exception:
        return []  # compilation issues must never block installation


setup(ext_modules=_cdr_extensions())
