"""Whole-stack integration scenarios crossing every layer.

Each test stands up a realistic deployment (weaving, naming, trading,
negotiation, transport modules, faults) and checks end-to-end
behaviour rather than single-module contracts.
"""

import pytest

import repro.qos as qos
from repro.core.accounting import AccountingService, MeteringMediator, Tariff
from repro.core.binding import QoSProvider, establish_qos
from repro.core.mediator import MediatorChain
from repro.core.negotiation import NegotiationFailed, Range
from repro.core.trading import TraderServant, TraderStub
from repro.orb import World
from repro.orb.exceptions import BAD_QOS, COMM_FAILURE
from repro.qos.compression.payload import CompressionImpl, CompressionMediator
from repro.qos.encryption.privacy import EncryptionImpl, EncryptionMediator
from repro.qos.fault_tolerance import ReplicaGroupManager
from repro.workloads import compressible_text
from repro.workloads.apps import (
    archive_module,
    compute_module,
    make_archive_servant_class,
    make_compute_servant_class,
)


@pytest.fixture
def world():
    w = World()
    w.lan(
        ["client", "alpha", "beta", "gamma", "registry"],
        latency=0.004,
        bandwidth_bps=5e6,
    )
    return w


class TestDiscoveryToBinding:
    """Trader → resolve → negotiate → call, all over the wire."""

    def test_end_to_end(self, world):
        # Two archive servers with different QoS offers register with
        # a trader; the client discovers, binds and calls.
        trader_ior = world.orb("registry").poa.activate_object(
            TraderServant(), "Trader"
        )
        trader = TraderStub(world.orb("client"), trader_ior)

        offers = {}
        for host, characteristics, speed in (
            ("alpha", ["Compression"], 5.0),
            ("beta", ["Compression", "Encryption"], 9.0),
        ):
            servant = make_archive_servant_class()()
            provider = QoSProvider(world, host, servant)
            provider.support(
                "Compression",
                CompressionImpl(),
                capabilities={"threshold": Range(64, 4096)},
            )
            if "Encryption" in characteristics:
                provider.support("Encryption", EncryptionImpl(), capabilities={})
            ior = provider.activate("archive")
            trader.export("archive", ior, characteristics, {"speed": speed})
            offers[host] = ior

        # The client wants an encrypting archive, fastest first.
        matches = trader.query("archive", "Encryption", rank_by="speed")
        assert matches[0] == offers["beta"]

        stub = archive_module.ArchiveStub(world.orb("client"), matches[0])
        mediator = EncryptionMediator()
        binding = establish_qos(stub, "Encryption", mediator=mediator)
        mediator.establish_key(stub)
        stub.store("contract", "signed in triplicate")
        assert stub.fetch("contract") == "signed in triplicate"
        binding.release()


class TestCharacteristicSwitchOver:
    """One server object re-negotiated across characteristics at runtime."""

    def test_compression_then_encryption(self, world):
        servant = make_archive_servant_class()()
        provider = QoSProvider(world, "alpha", servant)
        provider.support(
            "Compression",
            CompressionImpl(),
            capabilities={"threshold": Range(64, 64)},
        )
        provider.support("Encryption", EncryptionImpl(), capabilities={})
        ior = provider.activate("archive")
        stub = archive_module.ArchiveStub(world.orb("client"), ior)
        payload = compressible_text(3000, seed=1)

        first = establish_qos(
            stub, "Compression", {"threshold": Range(64, 64)},
            mediator=CompressionMediator(),
        )
        stub.store("a", payload)
        assert servant.files["a"] == payload
        # While Compression is active, Encryption's ops are refused.
        with pytest.raises(BAD_QOS):
            stub.get_cipher()
        first.release()

        second = establish_qos(stub, "Encryption", mediator=EncryptionMediator())
        second.mediator.establish_key(stub)
        stub.store("b", "secret")
        assert servant.files["b"] == "secret"
        with pytest.raises(BAD_QOS):
            stub.get_codec()
        second.release()


class TestMeteredEncryptedCompressedSession:
    """Mediator chain: metering over encryption, with server-side QoS."""

    def test_stacked_concerns(self, world):
        servant = make_archive_servant_class()()
        provider = QoSProvider(world, "alpha", servant)
        provider.support("Encryption", EncryptionImpl(), capabilities={})
        ior = provider.activate("archive")
        stub = archive_module.ArchiveStub(world.orb("client"), ior)

        mediator = EncryptionMediator()
        binding = establish_qos(stub, "Encryption", mediator=mediator)
        mediator.establish_key(stub)

        accounting = AccountingService()
        accounting.open_account(binding.agreement, Tariff(per_call=0.01))
        MeteringMediator(accounting, binding.agreement, inner=mediator).install(stub)

        for index in range(5):
            stub.store(f"doc-{index}", f"payload {index} " * 30)
        assert stub.fetch("doc-3") == "payload 3 " * 30

        invoice = accounting.invoice(binding.agreement.agreement_id)
        assert invoice["calls"] == 6.0
        assert invoice["amount"] == pytest.approx(0.06)
        # The server only ever saw plaintext application data.
        assert servant.files["doc-0"].startswith("payload 0")


class TestReplicatedComputeFarm:
    """FT group + crash schedule + naming, driven through the kernel."""

    def test_group_survives_schedule(self, world):
        world.start_naming("registry")
        group = ReplicaGroupManager(
            world, "farm", make_compute_servant_class(unit_cost=0.001)
        )
        for host in ("alpha", "beta", "gamma"):
            group.add_replica(host)
        naming = world.naming("client")
        naming.bind("farm", group.group_ior())

        resolved = naming.resolve("farm")
        stub = compute_module.ComputeStub(world.orb("client"), resolved)
        world.orb("client").qos_transport.assign(resolved, "multicast")

        world.faults.crash_schedule(
            [(2.0, 8.0, "alpha"), (5.0, 11.0, "beta")]
        )
        completed = 0
        for step in range(1, 15):
            world.kernel.run_until(float(step))
            assert stub.busy_work(1) == 1.0
            completed += 1
        assert completed == 14
        world.kernel.run()
        # Replicas that crashed missed calls (fail-stop loses state)...
        counts = {group.replica(h).done for h in group.hosts()}
        assert len(counts) > 1
        # ...until the recovery protocol re-syncs them from the member
        # that never crashed.
        group.resync("alpha", source="gamma")
        group.resync("beta", source="gamma")
        counts = {group.replica(h).done for h in group.hosts()}
        assert counts == {14}


class TestNegotiationUnderPartition:
    def test_negotiation_fails_cleanly_then_recovers(self, world):
        servant = make_archive_servant_class()()
        provider = QoSProvider(world, "alpha", servant)
        provider.support(
            "Compression",
            CompressionImpl(),
            capabilities={"threshold": Range(64, 4096)},
        )
        ior = provider.activate("archive")
        stub = archive_module.ArchiveStub(world.orb("client"), ior)

        world.faults.partition({"client"}, {"alpha", "beta", "gamma", "registry"})
        with pytest.raises(Exception):
            establish_qos(stub, "Compression", mediator=CompressionMediator())
        assert servant.active_qos is None  # nothing half-committed

        world.faults.heal()
        binding = establish_qos(stub, "Compression", mediator=CompressionMediator())
        assert servant.active_qos == "Compression"
        binding.release()


class TestDynamicRequirementsRejection:
    def test_capability_shrinks_with_resources(self, world):
        # A capabilities_fn consulting the resource manager: the offered
        # bandwidth range shrinks once another flow reserves the link.
        link = world.network.link_between("client", "alpha")

        def capabilities():
            reservable = world.resources.reservable(link)
            return {"rate": Range(0.0, reservable)}

        servant = make_archive_servant_class()()
        provider = QoSProvider(world, "alpha", servant)
        provider.support(
            "Compression",  # reusing the assigned characteristic slot
            CompressionImpl(),
            capabilities_fn=lambda: {
                "threshold": Range(64, 4096),
                **capabilities(),
            },
        )
        ior = provider.activate("archive")
        stub = archive_module.ArchiveStub(world.orb("client"), ior)

        binding = establish_qos(
            stub, "Compression", {"rate": Range(1e6, 4e6)},
            mediator=CompressionMediator(),
        )
        assert binding.granted["rate"] == 4e6
        binding.release()

        world.resources.reserve("client", "alpha", 4.2e6)  # hog the link
        with pytest.raises(NegotiationFailed):
            establish_qos(
                stub, "Compression", {"rate": Range(1e6, 4e6)},
                mediator=CompressionMediator(),
            )
