"""Soak test: a larger deployment exercised end to end with invariants.

A 12-host world runs naming, trading, two replicated services, a
load-balanced pool and payload-characteristic bindings concurrently
under a fault schedule, then cross-checks global accounting
invariants.
"""

import pytest

import repro.qos as qos
from repro.core.binding import QoSProvider, establish_qos
from repro.core.negotiation import Range
from repro.core.trading import TraderServant, TraderStub
from repro.orb import World
from repro.orb.exceptions import COMM_FAILURE, TRANSIENT
from repro.qos.compression.payload import CompressionImpl, CompressionMediator
from repro.qos.fault_tolerance import ReplicaGroupManager
from repro.qos.load_balancing import LoadBalancingMediator, WorkerPool
from repro.workloads import compressible_text
from repro.workloads.apps import (
    archive_module,
    compute_module,
    make_archive_servant_class,
    make_compute_servant_class,
)

HOSTS = [f"h{i}" for i in range(10)] + ["client", "registry"]


@pytest.fixture
def soak_world():
    world = World()
    world.lan(HOSTS, latency=0.002, bandwidth_bps=20e6)
    world.start_naming("registry")
    return world


def test_soak_mixed_workload(soak_world):
    world = soak_world
    client = world.orb("client")
    naming = world.naming("client")

    # Trading infrastructure.
    trader_ior = world.orb("registry").poa.activate_object(TraderServant(), "T")
    trader = TraderStub(client, trader_ior)

    # A replicated counter across h0-h2.
    group = ReplicaGroupManager(
        world, "grp", make_compute_servant_class(unit_cost=0.0005)
    )
    for host in ("h0", "h1", "h2"):
        group.add_replica(host)
    naming.bind("group", group.group_ior())
    group_stub = group.bind_client(client, compute_module.ComputeStub)

    # A load-balanced pool across h3-h5.
    pool = WorkerPool(world, "pool", make_compute_servant_class(unit_cost=0.0005))
    for host in ("h3", "h4", "h5"):
        pool.add_worker(host)
    lb_stub = compute_module.ComputeStub(client, pool.worker_iors()[0])
    lb_mediator = LoadBalancingMediator("round_robin")
    lb_mediator.set_workers(pool.worker_iors())
    lb_mediator.install(lb_stub)

    # A compressed archive on h6, discovered through the trader.
    archive_servant = make_archive_servant_class()()
    provider = QoSProvider(world, "h6", archive_servant)
    provider.support(
        "Compression",
        CompressionImpl(),
        capabilities={"threshold": Range(64, 64)},
    )
    archive_ior = provider.activate("arch")
    trader.export("archive", archive_ior, ["Compression"], {"speed": 1.0})
    found = trader.query("archive", "Compression")
    archive_stub = archive_module.ArchiveStub(client, found[0])
    establish_qos(
        archive_stub, "Compression", {"threshold": Range(64, 64)},
        mediator=CompressionMediator(),
    )

    # Fault schedule across the run.
    world.faults.crash_schedule(
        [(5.0, 15.0, "h1"), (10.0, 20.0, "h4")]
    )

    # The mixed workload.
    payload = compressible_text(2000, seed=9)
    failures = 0
    for step in range(1, 41):
        world.kernel.run_until(step * 0.75)
        try:
            group_stub.busy_work(1)
            lb_stub.busy_work(1)
            archive_stub.store(f"doc-{step}", payload)
        except (COMM_FAILURE, TRANSIENT):
            failures += 1
    world.kernel.run()

    # -- invariants -----------------------------------------------------

    stats = world.statistics()
    # Conservation: per-link carried bytes cover every non-loopback
    # network byte (multi-hop paths would count more, never less).
    link_bytes = sum(link.bytes_carried for link in world.network.links())
    assert link_bytes >= stats["bytes"] - world.network.loopback_bytes
    # Every request the client issued was received by some ORB, except
    # those lost to crashed hosts.
    assert stats["requests_received"] >= stats["requests_invoked"] * 0.5
    # The replicated counter survived the crash of h1 entirely.
    assert failures == 0
    # All archive writes landed intact despite compression.
    assert archive_servant.files["doc-40"] == payload
    assert archive_servant.size() == 40
    # Load balancing kept using the surviving workers through h4's
    # outage.
    assert len(lb_mediator.workers) >= 2
    # Replicas that never crashed agree on the group count.
    live_counts = {
        group.replica(h).done
        for h in group.hosts()
        if h not in ("h1",)
    }
    assert len(live_counts) == 1
    assert live_counts == {40}
    # Simulated time advanced monotonically through the schedule.
    assert stats["time"] >= 30.0


def test_soak_statistics_shape(soak_world):
    stats = soak_world.statistics()
    for key in (
        "time", "hosts", "orbs", "messages", "bytes",
        "requests_invoked", "requests_received", "oneway_failures",
        "events_fired",
    ):
        assert key in stats
    assert stats["hosts"] == float(len(HOSTS))
