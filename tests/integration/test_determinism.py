"""Determinism: identical scenarios produce bit-identical results.

The whole reproduction rests on the substrate being deterministic —
every benchmark number in EXPERIMENTS.md is only meaningful if a rerun
reproduces it exactly.  These tests run non-trivial scenarios twice
and compare complete observable state.
"""

import pytest

import repro.qos as qos
from repro.core.binding import QoSProvider, establish_qos
from repro.core.negotiation import Range
from repro.orb import World
from repro.orb.exceptions import COMM_FAILURE, TRANSIENT
from repro.qos.compression.payload import CompressionImpl, CompressionMediator
from repro.qos.fault_tolerance import ReplicaGroupManager
from repro.workloads import compressible_text, poisson_arrivals
from repro.workloads.apps import (
    archive_module,
    compute_module,
    make_archive_servant_class,
    make_compute_servant_class,
)


def _faulty_replicated_run():
    world = World()
    world.lan(["client", "a", "b", "c"], latency=0.004, bandwidth_bps=8e6)
    group = ReplicaGroupManager(
        world, "grp", make_compute_servant_class(unit_cost=0.001)
    )
    for host in ("a", "b", "c"):
        group.add_replica(host)
    stub = group.bind_client(world.orb("client"), compute_module.ComputeStub)
    # Lossy link plus a crash schedule.
    world.faults.set_loss(world.network.link_between("client", "a"), 0.2)
    world.faults.crash_schedule([(1.0, 3.0, "b")])

    outcomes = []
    for arrival in poisson_arrivals(rate=20.0, duration=5.0, seed=42):
        world.kernel.run_until(arrival)
        try:
            outcomes.append(stub.busy_work(1))
        except (COMM_FAILURE, TRANSIENT):
            outcomes.append("fail")
    world.kernel.run()
    stats = world.statistics()
    return outcomes, stats, world.clock.now


def _compressed_archive_run():
    world = World()
    world.add_host("client")
    world.add_host("server")
    world.connect("client", "server", latency=0.01, bandwidth_bps=256e3)
    servant = make_archive_servant_class()()
    provider = QoSProvider(world, "server", servant)
    provider.support(
        "Compression", CompressionImpl(), capabilities={"threshold": Range(64, 64)}
    )
    ior = provider.activate("arch")
    stub = archive_module.ArchiveStub(world.orb("client"), ior)
    mediator = CompressionMediator()
    establish_qos(stub, "Compression", {"threshold": Range(64, 64)},
                  mediator=mediator)
    for index in range(10):
        stub.store(f"doc-{index}", compressible_text(1500, seed=index))
    return (
        world.clock.now,
        world.network.bytes_sent,
        mediator.observed_ratio(),
        sorted(servant.files),
    )


class TestDeterminism:
    def test_faulty_replicated_scenario_repeats_exactly(self):
        first = _faulty_replicated_run()
        second = _faulty_replicated_run()
        assert first[0] == second[0]          # per-call outcomes
        assert first[1] == second[1]          # aggregate statistics
        assert first[2] == second[2]          # final simulated time

    def test_compressed_archive_scenario_repeats_exactly(self):
        assert _compressed_archive_run() == _compressed_archive_run()

    def test_qidl_compilation_is_deterministic(self):
        from repro.qidl import compile_qidl_to_source

        source = qos.qidl_prelude() + "\ninterface T { void op(); };"
        assert compile_qidl_to_source(source) == compile_qidl_to_source(source)
