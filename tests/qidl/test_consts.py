"""Tests for QIDL const declarations and string/number literals."""

import pytest

from repro.qidl import compile_qidl_to_source, compile_qidl
from repro.qidl.errors import QIDLSemanticError, QIDLSyntaxError
from repro.qidl.lexer import tokenize
from repro.qidl.parser import parse


class TestLiterals:
    def test_string_literal_token(self):
        tokens = tokenize('const string S = "hello world";')
        values = [(t.kind, t.value) for t in tokens if t.kind == "string"]
        assert values == [("string", "hello world")]

    def test_escaped_quote(self):
        tokens = tokenize(r'const string S = "say \"hi\"";')
        assert [t.value for t in tokens if t.kind == "string"] == ['say "hi"']

    def test_unterminated_string_rejected(self):
        with pytest.raises(QIDLSyntaxError):
            tokenize('const string S = "oops')

    def test_negative_number_token(self):
        tokens = tokenize("const short N = -12;")
        assert [t.value for t in tokens if t.kind == "number"] == ["-12"]


class TestConstDeclarations:
    def test_parse_consts(self):
        spec = parse(
            """
            const long MAX = 10;
            const double RATIO = 0.5;
            const string NAME = "maqs";
            const boolean ON = TRUE;
            """
        )
        consts = {c.name: c.value for c in spec.consts()}
        assert consts == {"MAX": 10, "RATIO": 0.5, "NAME": "maqs", "ON": True}

    def test_nonconforming_value_rejected(self):
        with pytest.raises(QIDLSemanticError):
            parse("const octet BIG = 999;")

    def test_type_mismatch_rejected(self):
        with pytest.raises(QIDLSemanticError):
            parse('const long WORDS = "not a number";')

    def test_bad_literal_rejected(self):
        with pytest.raises(QIDLSyntaxError):
            parse("const long X = interface;")

    def test_duplicate_const_rejected(self):
        with pytest.raises(QIDLSemanticError):
            compile_qidl_to_source("const long A = 1; const long A = 2;")


class TestGeneratedConsts:
    def test_values_exported(self):
        module = compile_qidl(
            """
            const long LIMIT = 42;
            const string LABEL = "gold";
            interface S { void op(); };
            """,
            "consts_gen_test",
        )
        assert module.LIMIT == 42
        assert module.LABEL == "gold"

    def test_float_const_is_float(self):
        module = compile_qidl("const double D = 2.0;", "consts_gen_float")
        assert isinstance(module.D, float)

    def test_integer_const_for_float_type_coerced(self):
        module = compile_qidl("const double D2 = 3;", "consts_gen_coerce")
        assert module.D2 == 3.0
        assert isinstance(module.D2, float)
