"""Tests for the generated code: the weaving semantics of Section 3.3."""

import pytest

from repro.orb import World
from repro.orb.exceptions import BAD_PARAM, BAD_QOS
from repro.qidl import QIDLSemanticError, compile_qidl, compile_qidl_to_source

SPEC = """
module demo {
    exception Unavailable { string reason; };
    struct Quote { string symbol; double price; };
    typedef sequence<double> Samples;

    qos Compression {
        attribute long level;
        void set_codec(in string name);
    };

    qos Availability {
        readonly attribute short replicas;
        management void add_replica(in string ior);
        peer void sync_group(in string group);
        integration any get_state();
        integration void set_state(in any state);
    };

    interface StockServer provides Compression, Availability {
        attribute string market;
        Quote quote(in string symbol) raises (Unavailable);
        Samples history(in string symbol, in long days);
        void stats(in string symbol, out double mean, out double stddev);
    };
};
"""


@pytest.fixture(scope="module")
def gen():
    return compile_qidl(SPEC, "qidl_test_demo")


@pytest.fixture
def deployment(gen):
    world = World()
    world.lan(["client", "server"], latency=0.001)

    class StockImpl(gen.StockServerServerBase):
        def quote(self, symbol):
            if symbol == "GONE":
                raise gen.Unavailable("delisted", reason="delisted")
            return gen.make_Quote(symbol, 42.5)

        def history(self, symbol, days):
            return [float(i) for i in range(days)]

        def stats(self, symbol):
            return (10.0, 1.5)

        def get_state(self):
            return {"market": self.market}

        def set_state(self, state):
            self.market = state["market"]

    servant = StockImpl()
    ior = world.orb("server").poa.activate_object(servant)
    stub = gen.StockServerStub(world.orb("client"), ior)
    return world, servant, stub


class TestGeneratedSource:
    def test_source_is_deterministic(self):
        assert compile_qidl_to_source(SPEC) == compile_qidl_to_source(SPEC)

    def test_module_caching(self, gen):
        again = compile_qidl(SPEC, "qidl_test_demo")
        assert again is gen

    def test_all_expected_classes_emitted(self, gen):
        for name in (
            "StockServerStub",
            "StockServerSkeleton",
            "StockServerServerBase",
            "CompressionMediator",
            "CompressionQoSImpl",
            "AvailabilityMediator",
            "AvailabilityQoSImpl",
            "Unavailable",
            "make_Quote",
        ):
            assert hasattr(gen, name), name

    def test_repo_ids_carry_module_path(self, gen):
        assert gen.StockServerStub._repo_id == "IDL:demo/StockServer:1.0"
        assert gen.Unavailable.repo_id == "IDL:demo/Unavailable:1.0"


class TestApplicationOperations:
    def test_typed_call(self, deployment):
        _, _, stub = deployment
        assert stub.quote("ACME") == {"symbol": "ACME", "price": 42.5}

    def test_typedef_resolves_on_wire(self, deployment):
        _, _, stub = deployment
        assert stub.history("ACME", 3) == [0.0, 1.0, 2.0]

    def test_out_params_return_tuple(self, deployment):
        _, _, stub = deployment
        assert stub.stats("ACME") == (10.0, 1.5)

    def test_attribute_accessors(self, deployment):
        _, servant, stub = deployment
        stub.set_market("NYSE")
        assert servant.market == "NYSE"
        assert stub.get_market() == "NYSE"

    def test_user_exception_with_members(self, deployment, gen):
        _, _, stub = deployment
        with pytest.raises(gen.Unavailable) as excinfo:
            stub.quote("GONE")
        assert excinfo.value.reason == "delisted"

    def test_stub_validates_argument_types(self, deployment):
        _, _, stub = deployment
        with pytest.raises(BAD_PARAM):
            stub.history("ACME", "three")

    def test_stub_validates_arity(self, deployment):
        _, _, stub = deployment
        with pytest.raises(TypeError):
            stub.quote()

    def test_struct_constructor_validates(self, gen):
        with pytest.raises(BAD_PARAM):
            gen.make_Quote("ACME", "not-a-price")


class TestQoSWeaving:
    def _compression_impl(self, gen):
        class CompressionImpl(gen.CompressionQoSImpl):
            def __init__(self):
                super().__init__()
                self.codec = "lz"
                self.prologs = []
                self.epilogs = []

            def set_codec(self, name):
                self.codec = name

            def prolog(self, servant, operation, args, contexts):
                self.prologs.append(operation)

            def epilog(self, servant, operation, result, contexts):
                self.epilogs.append(operation)
                return result

        return CompressionImpl()

    def test_qos_ops_raise_before_negotiation(self, deployment):
        _, _, stub = deployment
        with pytest.raises(BAD_QOS):
            stub.get_level()

    def test_only_negotiated_characteristic_processed(self, deployment, gen):
        _, servant, stub = deployment
        servant.set_qos_impl(self._compression_impl(gen))
        servant.activate_qos("Compression")
        stub.set_level(7)
        assert stub.get_level() == 7
        with pytest.raises(BAD_QOS):
            stub.get_replicas()  # Availability assigned but not negotiated

    def test_prolog_epilog_bracket_app_operations(self, deployment, gen):
        _, servant, stub = deployment
        impl = self._compression_impl(gen)
        servant.set_qos_impl(impl)
        servant.activate_qos("Compression")
        stub.quote("ACME")
        assert impl.prologs == ["quote"]
        assert impl.epilogs == ["quote"]

    def test_qos_ops_do_not_trigger_prolog(self, deployment, gen):
        _, servant, stub = deployment
        impl = self._compression_impl(gen)
        servant.set_qos_impl(impl)
        servant.activate_qos("Compression")
        stub.set_codec("rle")
        assert impl.codec == "rle"
        assert impl.prologs == []

    def test_integration_ops_forward_to_servant(self, deployment, gen):
        _, servant, stub = deployment

        class AvailabilityImpl(gen.AvailabilityQoSImpl):
            def add_replica(self, ior):
                pass

            def sync_group(self, group):
                pass

        servant.set_qos_impl(AvailabilityImpl())
        servant.activate_qos("Availability")
        stub.set_market("XETRA")
        state = stub.get_state()  # integration op runs on the servant
        assert state == {"market": "XETRA"}
        stub.set_state({"market": "LSE"})
        assert servant.market == "LSE"

    def test_delegate_exchange_at_runtime(self, deployment, gen):
        _, servant, stub = deployment
        servant.set_qos_impl(self._compression_impl(gen))

        class AvailabilityImpl(gen.AvailabilityQoSImpl):
            def add_replica(self, ior):
                pass

            def sync_group(self, group):
                pass

        servant.set_qos_impl(AvailabilityImpl())
        servant.activate_qos("Compression")
        assert stub.get_level() == 0
        servant.activate_qos("Availability")  # exchanged at runtime
        with pytest.raises(BAD_QOS):
            stub.get_level()
        assert stub.get_replicas() == 0

    def test_unassigned_characteristic_rejected(self, deployment, gen):
        _, servant, _ = deployment

        class RogueImpl(gen.CompressionQoSImpl):
            characteristic = "Realtime"

        with pytest.raises(BAD_QOS):
            servant.set_qos_impl(RogueImpl())

    def test_activate_without_impl_rejected(self, deployment):
        _, servant, _ = deployment
        with pytest.raises(BAD_QOS):
            servant.activate_qos("Compression")

    def test_deactivation(self, deployment, gen):
        _, servant, stub = deployment
        impl = self._compression_impl(gen)
        servant.set_qos_impl(impl)
        servant.activate_qos("Compression")
        servant.activate_qos(None)
        with pytest.raises(BAD_QOS):
            stub.get_level()
        stub.quote("ACME")
        assert impl.prologs == []  # no active impl: no bracket

    def test_abstract_qos_op_raises_until_implemented(self, deployment, gen):
        _, servant, stub = deployment
        impl = gen.CompressionQoSImpl()  # skeleton, set_codec unimplemented
        servant.set_qos_impl(impl)
        servant.activate_qos("Compression")
        with pytest.raises(Exception) as excinfo:
            stub.set_codec("rle")
        assert "set_codec" in str(excinfo.value)


class TestMediatorWeaving:
    def test_mediator_intercepts_every_call(self, deployment, gen):
        _, _, stub = deployment

        class Tracing(gen.CompressionMediator):
            def __init__(self):
                super().__init__()
                self.seen = []

            def before_request(self, stub, operation, args):
                self.seen.append(operation)
                return operation, args

        mediator = Tracing().install(stub)
        stub.quote("ACME")
        stub.history("ACME", 1)
        assert mediator.seen == ["quote", "history"]
        assert mediator.calls_intercepted == 2

    def test_mediator_tags_requests_with_characteristic(self, deployment, gen):
        world, servant, stub = deployment
        seen_contexts = []
        original = servant._dispatch

        def spy(operation, args, contexts=None):
            seen_contexts.append(dict(contexts or {}))
            return original(operation, args, contexts)

        servant._dispatch = spy
        gen.CompressionMediator().install(stub)
        stub.quote("ACME")
        assert seen_contexts[0]["maqs.characteristic"] == "Compression"

    def test_mediator_can_rewrite_results(self, deployment, gen):
        _, _, stub = deployment

        class Rounding(gen.CompressionMediator):
            def after_reply(self, stub, operation, result):
                if operation == "quote":
                    result = dict(result, price=round(result["price"]))
                return result

        Rounding().install(stub)
        assert stub.quote("ACME")["price"] == 42

    def test_mediator_removal_restores_plain_calls(self, deployment, gen):
        _, _, stub = deployment
        mediator = gen.CompressionMediator().install(stub)
        stub.quote("ACME")
        stub._set_mediator(None)
        stub.quote("ACME")
        assert mediator.calls_intercepted == 1

    def test_qos_parameters_on_mediator(self, gen):
        mediator = gen.CompressionMediator()
        assert mediator.level == 0
        assert ("long", "level") in mediator.QOS_PARAMETERS


class TestSemanticRejections:
    def test_name_collision_between_interface_and_qos_ops(self):
        with pytest.raises(QIDLSemanticError):
            compile_qidl_to_source(
                """
                qos Q { void refresh(); };
                interface S provides Q { void refresh(); };
                """
            )

    def test_interface_valued_parameter_rejected(self):
        with pytest.raises(QIDLSemanticError):
            compile_qidl_to_source(
                """
                interface Other {};
                interface S { void take(in Other o); };
                """
            )

    def test_global_name_uniqueness_across_modules(self):
        with pytest.raises(QIDLSemanticError):
            compile_qidl_to_source(
                """
                module a { interface X {}; };
                module b { interface X {}; };
                """
            )

    def test_typedef_cycle_rejected(self):
        # A self-referential typedef cannot be written (unknown type at
        # parse time), so exercise resolution through a struct alias.
        source = compile_qidl_to_source(
            "typedef sequence<long> Row; typedef Row Matrix;"
            "interface S { Matrix get(); };"
        )
        assert "'sequence<long>'" in source
