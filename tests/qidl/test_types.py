"""Tests for the IDL type system."""

import pytest

from repro.qidl.types import check_value, default_value, element_type, is_known_type


class TestCheckValue:
    @pytest.mark.parametrize(
        "idl_type,value,ok",
        [
            ("void", None, True),
            ("void", 0, False),
            ("boolean", True, True),
            ("boolean", 1, False),
            ("octet", 255, True),
            ("octet", 256, False),
            ("octet", -1, False),
            ("short", -(2**15), True),
            ("short", 2**15, False),
            ("unsigned short", 2**16 - 1, True),
            ("long", 2**31 - 1, True),
            ("long", 2**31, False),
            ("unsigned long", 2**32 - 1, True),
            ("long long", -(2**63), True),
            ("long long", 2**63, False),
            ("unsigned long long", 2**64 - 1, True),
            ("long", True, False),  # bool is not an int here
            ("double", 1.5, True),
            ("double", 3, True),  # int widens to double
            ("double", True, False),
            ("float", 0.5, True),
            ("string", "x", True),
            ("string", b"x", False),
            ("octets", b"x", True),
            ("octets", "x", False),
            ("any", object(), True),
            ("sequence<long>", [1, 2], True),
            ("sequence<long>", [1, "x"], False),
            ("sequence<long>", (1,), True),
            ("sequence<long>", "not-a-list", False),
            ("sequence<sequence<string>>", [["a"], []], True),
            ("SomeStruct", {"x": 1}, True),
            ("SomeStruct", 5, False),
        ],
    )
    def test_conformance(self, idl_type, value, ok):
        assert check_value(idl_type, value) is ok


class TestDefaults:
    @pytest.mark.parametrize(
        "idl_type,expected",
        [
            ("void", None),
            ("boolean", False),
            ("long", 0),
            ("double", 0.0),
            ("string", ""),
            ("octets", b""),
            ("sequence<long>", []),
            ("SomeStruct", {}),
        ],
    )
    def test_default_values(self, idl_type, expected):
        assert default_value(idl_type) == expected

    def test_defaults_conform(self):
        for idl_type in ("boolean", "long", "double", "string", "octets",
                         "sequence<string>"):
            assert check_value(idl_type, default_value(idl_type))


class TestTypeNames:
    def test_known_types(self):
        assert is_known_type("long")
        assert is_known_type("sequence<sequence<double>>")
        assert not is_known_type("Widget")

    def test_element_type(self):
        assert element_type("sequence<long>") == "long"
        with pytest.raises(ValueError):
            element_type("long")
