"""Tests for the QIDL lexer."""

import pytest

from repro.qidl.errors import QIDLSyntaxError
from repro.qidl.lexer import tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_keywords_and_identifiers(self):
        assert kinds("interface Echo") == [
            ("keyword", "interface"),
            ("identifier", "Echo"),
        ]

    def test_qos_extension_keywords(self):
        result = kinds("qos provides management peer integration")
        assert all(kind == "keyword" for kind, _ in result)

    def test_punctuation(self):
        assert kinds("{}();,:<>") == [("punct", c) for c in "{}();,:<>"]

    def test_numbers(self):
        assert kinds("42 3.14") == [("number", "42"), ("number", "3.14")]

    def test_underscored_identifier(self):
        assert kinds("_get_state") == [("identifier", "_get_state")]

    def test_eof_token_always_last(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == "eof"

    def test_empty_source(self):
        assert tokenize("")[0].kind == "eof"


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\n b") == [
            ("identifier", "a"),
            ("identifier", "b"),
        ]

    def test_block_comment_skipped(self):
        assert kinds("a /* multi\nline */ b") == [
            ("identifier", "a"),
            ("identifier", "b"),
        ]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(QIDLSyntaxError):
            tokenize("a /* never closed")

    def test_preprocessor_line_skipped(self):
        assert kinds("#include <orb.idl>\ninterface") == [("keyword", "interface")]

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(QIDLSyntaxError) as excinfo:
            tokenize("interface @")
        assert "@" in str(excinfo.value)
