"""Tests for the interface repository."""

import pytest

from repro.qidl import compile_qidl
from repro.qidl.repository import (
    GLOBAL_REPOSITORY,
    InterfaceRepository,
    RepositoryError,
)

SPEC = """
qos Shadowing {
    attribute boolean enabled;
    peer void mirror(in string target);
};

interface Ledger provides Shadowing {
    readonly attribute long entries;
    void post(in string item, in double amount);
    oneway void audit_ping(in string reason);
};
"""


@pytest.fixture(scope="module")
def gen():
    return compile_qidl(SPEC, "ifr_test_ledger")


class TestRegistration:
    def test_compiled_spec_registers_interface(self, gen):
        assert "Ledger" in GLOBAL_REPOSITORY.interfaces()

    def test_compiled_spec_registers_qos(self, gen):
        assert "Shadowing" in GLOBAL_REPOSITORY.qos_characteristics()

    def test_reregistration_overwrites(self, gen):
        before = GLOBAL_REPOSITORY.describe_interface("Ledger")
        compile_qidl(SPEC, "ifr_test_ledger_again")
        after = GLOBAL_REPOSITORY.describe_interface("Ledger")
        assert before["repo_id"] == after["repo_id"]


class TestInterfaceLookup:
    def test_describe_interface(self, gen):
        entry = GLOBAL_REPOSITORY.describe_interface("Ledger")
        assert entry["repo_id"] == "IDL:Ledger:1.0"
        assert entry["provides"] == ["Shadowing"]
        assert ("long", "entries", True) in entry["attributes"]

    def test_operations_include_attribute_accessors(self, gen):
        operations = GLOBAL_REPOSITORY.operations("Ledger")
        assert "post" in operations
        assert "get_entries" in operations
        assert "set_entries" not in operations  # readonly

    def test_lookup_operation_signature(self, gen):
        signature = GLOBAL_REPOSITORY.lookup_operation("Ledger", "post")
        assert signature["result"] == "void"
        assert signature["params"] == [
            ("in", "string", "item"),
            ("in", "double", "amount"),
        ]

    def test_oneway_flag_recorded(self, gen):
        assert GLOBAL_REPOSITORY.lookup_operation("Ledger", "audit_ping")["oneway"]

    def test_qos_operation_found_through_interface(self, gen):
        signature = GLOBAL_REPOSITORY.lookup_operation("Ledger", "mirror")
        assert signature["owner"] == "Shadowing"
        assert signature["category"] == "peer"

    def test_unknown_operation(self, gen):
        with pytest.raises(RepositoryError):
            GLOBAL_REPOSITORY.lookup_operation("Ledger", "erase_everything")

    def test_unknown_interface(self, gen):
        with pytest.raises(RepositoryError):
            GLOBAL_REPOSITORY.describe_interface("Ghost")


class TestQoSLookup:
    def test_describe_qos(self, gen):
        entry = GLOBAL_REPOSITORY.describe_qos("Shadowing")
        assert ("boolean", "enabled", False) in entry["parameters"]

    def test_qos_categories_recorded(self, gen):
        signature = GLOBAL_REPOSITORY.lookup_operation("Shadowing", "mirror")
        assert signature["category"] == "peer"
        accessor = GLOBAL_REPOSITORY.lookup_operation("Shadowing", "set_enabled")
        assert accessor["category"] == "management"

    def test_provides_helper(self, gen):
        assert GLOBAL_REPOSITORY.provides("Ledger") == ["Shadowing"]


class TestORBIntegration:
    def test_initial_reference(self, gen):
        from repro.orb import World

        world = World()
        world.add_host("h")
        repository = world.orb("h").resolve_initial_references(
            "InterfaceRepository"
        )
        assert "Ledger" in repository.interfaces()

    def test_isolated_repository(self):
        repository = InterfaceRepository()
        assert repository.interfaces() == []
        with pytest.raises(RepositoryError):
            repository.operations("Anything")
