"""Property-based tests: randomly generated QIDL specs compile and run."""

import keyword

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qidl import compile_qidl_to_source
from repro.qidl.parser import parse

PRIMITIVES = [
    "boolean",
    "octet",
    "short",
    "unsigned short",
    "long",
    "unsigned long",
    "long long",
    "float",
    "double",
    "string",
    "octets",
    "any",
]

identifiers = (
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=10)
    .map(lambda s: f"id_{s}")
    .filter(lambda s: not keyword.iskeyword(s))
)

types = st.one_of(
    st.sampled_from(PRIMITIVES),
    st.sampled_from(PRIMITIVES).map(lambda t: f"sequence<{t}>"),
)


@st.composite
def operations(draw):
    name = draw(identifiers)
    result = draw(st.one_of(st.just("void"), types))
    param_count = draw(st.integers(min_value=0, max_value=3))
    params = []
    used = set()
    for index in range(param_count):
        param_name = f"p{index}"
        param_type = draw(types)
        params.append(f"in {param_type} {param_name}")
        used.add(param_name)
    return f"{result} {name}({', '.join(params)});"


@st.composite
def interfaces(draw):
    name = draw(identifiers.map(lambda s: s.capitalize()))
    ops = draw(st.lists(operations(), min_size=0, max_size=4))
    # Deduplicate operation names to keep the spec valid.
    seen = set()
    unique_ops = []
    for op in ops:
        op_name = op.split()[-1].split("(")[0] if "(" in op else op
        op_name = op.split("(")[0].split()[-1]
        if op_name not in seen:
            seen.add(op_name)
            unique_ops.append(op)
    body = "\n    ".join(unique_ops)
    return f"interface {name} {{\n    {body}\n}};"


@given(interfaces())
@settings(max_examples=40, deadline=None)
def test_generated_specs_compile_to_valid_python(interface_source):
    python_source = compile_qidl_to_source(interface_source)
    compiled = compile(python_source, "<test>", "exec")
    namespace = {}
    exec(compiled, namespace)
    spec = parse(interface_source)
    interface_name = spec.interfaces()[0].name
    assert f"{interface_name}Stub" in namespace
    assert f"{interface_name}Skeleton" in namespace


@given(
    st.lists(
        st.sampled_from(PRIMITIVES),
        min_size=1,
        max_size=5,
        unique=True,
    )
)
@settings(max_examples=20, deadline=None)
def test_struct_members_of_every_type_compile(member_types):
    members = "\n    ".join(
        f"{idl_type} m{index};" for index, idl_type in enumerate(member_types)
    )
    source = f"struct Thing {{\n    {members}\n}};"
    python_source = compile_qidl_to_source(source)
    namespace = {}
    exec(compile(python_source, "<test>", "exec"), namespace)
    assert "make_Thing" in namespace
    assert len(namespace["THING_FIELDS"]) == len(member_types)


@given(st.lists(identifiers, min_size=1, max_size=6, unique=True))
@settings(max_examples=20, deadline=None)
def test_enum_members_compile(members):
    source = f"enum Mode {{ {', '.join(m.upper() for m in members)} }};"
    python_source = compile_qidl_to_source(source)
    namespace = {}
    exec(compile(python_source, "<test>", "exec"), namespace)
    mode = namespace["Mode"]
    assert len(mode.MEMBERS) == len(members)
    for member in members:
        assert getattr(mode, member.upper()) == member.upper()
