"""Tests for the file-based compiler entry point and module caching."""

import sys

import pytest

from repro.qidl import compile_qidl
from repro.qidl.compiler import compile_qidl_file


class TestCompileFile:
    def test_compile_from_disk(self, tmp_path):
        path = tmp_path / "svc.qidl"
        path.write_text("interface Disk { long spin(); };")
        module = compile_qidl_file(str(path), "disk_gen_test")
        assert hasattr(module, "DiskStub")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compile_qidl_file(str(tmp_path / "ghost.qidl"))


class TestModuleCache:
    def test_same_source_same_module(self):
        source = "interface CacheTest { void op(); };"
        first = compile_qidl(source, "cache_probe")
        second = compile_qidl(source, "cache_probe")
        assert first is second
        assert sys.modules["cache_probe"] is first

    def test_changed_source_replaces_module(self):
        first = compile_qidl("interface R { void a(); };", "cache_replace")
        second = compile_qidl("interface R { void b(); };", "cache_replace")
        assert first is not second
        assert hasattr(second.RStub, "b")
        assert not hasattr(second.RStub, "a")

    def test_anonymous_names_derived_from_digest(self):
        source = "interface Anon { void op(); };"
        first = compile_qidl(source)
        second = compile_qidl(source)
        assert first is second
        assert first.__name__.startswith("maqs_generated_")

    def test_generated_source_retained(self):
        module = compile_qidl("interface Kept { void op(); };", "cache_kept")
        assert "class KeptStub(Stub):" in module.__qidl_source__
