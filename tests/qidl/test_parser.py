"""Tests for the QIDL parser and its semantic checks."""

import pytest

from repro.qidl.errors import QIDLSemanticError, QIDLSyntaxError
from repro.qidl.parser import parse


class TestInterfaces:
    def test_empty_interface(self):
        spec = parse("interface Empty {};")
        assert [i.name for i in spec.interfaces()] == ["Empty"]

    def test_operations_and_parameters(self):
        spec = parse(
            """
            interface Calc {
                double add(in double a, in double b);
                void reset();
            };
            """
        )
        calc = spec.interfaces()[0]
        assert [op.name for op in calc.operations] == ["add", "reset"]
        add = calc.operations[0]
        assert [(p.direction, p.idl_type, p.name) for p in add.parameters] == [
            ("in", "double", "a"),
            ("in", "double", "b"),
        ]

    def test_out_and_inout_parameters(self):
        spec = parse(
            "interface S { void stats(in string k, out double mean, inout long n); };"
        )
        operation = spec.interfaces()[0].operations[0]
        assert [p.name for p in operation.in_params] == ["k", "n"]
        assert [p.name for p in operation.out_params] == ["mean", "n"]

    def test_attributes(self):
        spec = parse(
            "interface A { attribute string name; readonly attribute long hits; };"
        )
        attrs = spec.interfaces()[0].attributes
        assert [(a.name, a.readonly) for a in attrs] == [
            ("name", False),
            ("hits", True),
        ]

    def test_multi_name_attribute(self):
        spec = parse("interface A { attribute long x, y; };")
        assert [a.name for a in spec.interfaces()[0].attributes] == ["x", "y"]

    def test_inheritance(self):
        spec = parse(
            """
            interface Base { void ping(); };
            interface Derived : Base { void extra(); };
            """
        )
        assert spec.interfaces()[1].bases == ["Base"]

    def test_raises_clause(self):
        spec = parse(
            """
            exception Broken { string why; };
            interface S { void go() raises (Broken); };
            """
        )
        assert spec.interfaces()[0].operations[0].raises == ["Broken"]

    def test_oneway(self):
        spec = parse("interface S { oneway void notify(in string msg); };")
        assert spec.interfaces()[0].operations[0].oneway

    def test_oneway_must_be_void_in_only(self):
        with pytest.raises(QIDLSemanticError):
            parse("interface S { oneway long bad(); };")
        with pytest.raises(QIDLSemanticError):
            parse("interface S { oneway void bad(out long x); };")


class TestQoSDeclarations:
    def test_qos_block(self):
        spec = parse(
            """
            qos Encryption {
                attribute string cipher;
                management void rotate_keys();
                peer void exchange(in string pub);
            };
            """
        )
        qos = spec.qos_decls()[0]
        assert qos.name == "Encryption"
        assert [a.name for a in qos.attributes] == ["cipher"]
        assert [(op.name, op.category) for op in qos.operations] == [
            ("rotate_keys", "management"),
            ("exchange", "peer"),
        ]

    def test_qos_inheritance(self):
        spec = parse(
            """
            qos Base { attribute long level; };
            qos Extended : Base { void extra(); };
            """
        )
        assert spec.qos_decls()[1].base == "Base"

    def test_qos_unknown_base_rejected(self):
        with pytest.raises(QIDLSemanticError):
            parse("qos X : Ghost {};")

    def test_provides_clause(self):
        spec = parse(
            """
            qos FT {};
            qos LB {};
            interface S provides FT, LB { void op(); };
            """
        )
        assert spec.interfaces()[0].provides == ["FT", "LB"]

    def test_provides_unknown_qos_rejected(self):
        with pytest.raises(QIDLSemanticError) as excinfo:
            parse("interface S provides Ghost {};")
        assert "interfaces" in str(excinfo.value)

    def test_category_forbidden_outside_qos(self):
        with pytest.raises(QIDLSemanticError):
            parse("interface S { management void op(); };")

    def test_default_category_is_management(self):
        spec = parse("qos Q { void op(); };")
        assert spec.qos_decls()[0].operations[0].category == "management"


class TestTypes:
    @pytest.mark.parametrize(
        "idl,canonical",
        [
            ("long", "long"),
            ("long long", "long long"),
            ("unsigned short", "unsigned short"),
            ("unsigned long", "unsigned long"),
            ("unsigned long long", "unsigned long long"),
            ("sequence<double>", "sequence<double>"),
            ("sequence<sequence<string>>", "sequence<sequence<string>>"),
        ],
    )
    def test_type_spellings(self, idl, canonical):
        spec = parse(f"interface S {{ {idl} op(); }};")
        assert spec.interfaces()[0].operations[0].result_type == canonical

    def test_unknown_type_rejected(self):
        with pytest.raises(QIDLSemanticError):
            parse("interface S { Widget op(); };")

    def test_struct_usable_as_type(self):
        spec = parse(
            """
            struct Point { double x; double y; };
            interface S { Point origin(); };
            """
        )
        assert spec.interfaces()[0].operations[0].result_type == "Point"

    def test_typedef_usable_as_type(self):
        spec = parse(
            """
            typedef sequence<double> Samples;
            interface S { Samples history(); };
            """
        )
        assert spec.interfaces()[0].operations[0].result_type == "Samples"


class TestModulesAndDuplicates:
    def test_nested_modules(self):
        spec = parse(
            """
            module outer {
                module inner {
                    interface Deep {};
                };
            };
            """
        )
        assert [i.name for i in spec.interfaces()] == ["Deep"]

    def test_duplicate_definition_rejected(self):
        with pytest.raises(QIDLSemanticError):
            parse("interface A {}; interface A {};")

    def test_duplicate_member_rejected(self):
        with pytest.raises(QIDLSemanticError):
            parse("interface A { void op(); void op(); };")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(QIDLSemanticError):
            parse("interface A { void op(in long x, in long x); };")

    def test_duplicate_struct_member_rejected(self):
        with pytest.raises(QIDLSemanticError):
            parse("struct S { long a; long a; };")


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "interface {};",
            "interface S { void op(; };",
            "interface S { void op() };",
            "interface S { long; };",
            "qos;",
            "interface S {}; trailing",
        ],
    )
    def test_malformed_sources(self, source):
        with pytest.raises((QIDLSyntaxError, QIDLSemanticError)):
            parse(source)

    def test_error_carries_position(self):
        with pytest.raises(QIDLSyntaxError) as excinfo:
            parse("interface S {\n  void op(;\n};")
        assert "line 2" in str(excinfo.value)
