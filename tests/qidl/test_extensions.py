"""Tests for QIDL extensions: enums, oneway plumbing, the CLI."""

import subprocess
import sys

import pytest

from repro.orb import World
from repro.qidl import compile_qidl
from repro.qidl.errors import QIDLSemanticError
from repro.qidl.parser import parse

ENUM_SPEC = """
enum Priority { LOW, NORMAL, HIGH };

interface Queue {
    void submit(in string job, in Priority priority);
    Priority head_priority();
    oneway void nudge(in string reason);
};
"""


@pytest.fixture(scope="module")
def gen():
    return compile_qidl(ENUM_SPEC, "qidl_ext_queue")


@pytest.fixture
def deployment(gen):
    world = World()
    world.lan(["client", "server"], latency=0.002)

    class QueueImpl(gen.QueueSkeleton):
        def __init__(self):
            super().__init__()
            self.jobs = []
            self.nudges = []

        def submit(self, job, priority):
            self.jobs.append((job, priority))

        def head_priority(self):
            return self.jobs[0][1] if self.jobs else gen.Priority.LOW

        def nudge(self, reason):
            self.nudges.append(reason)

    servant = QueueImpl()
    ior = world.orb("server").poa.activate_object(servant)
    stub = gen.QueueStub(world.orb("client"), ior)
    return world, servant, stub


class TestEnums:
    def test_enum_namespace_generated(self, gen):
        assert gen.Priority.MEMBERS == ("LOW", "NORMAL", "HIGH")
        assert gen.Priority.HIGH == "HIGH"

    def test_enum_values_cross_wire(self, deployment, gen):
        _, servant, stub = deployment
        stub.submit("job-1", gen.Priority.HIGH)
        assert servant.jobs == [("job-1", "HIGH")]
        assert stub.head_priority() == gen.Priority.HIGH

    def test_duplicate_member_rejected(self):
        with pytest.raises(QIDLSemanticError):
            parse("enum Bad { A, A };")

    def test_enum_usable_in_spec(self):
        spec = parse(ENUM_SPEC)
        assert [e.name for e in spec.enums()] == ["Priority"]


class TestOneway:
    def test_oneway_ops_recorded_on_stub(self, gen):
        assert gen.QueueStub._oneway_ops == frozenset({"nudge"})

    def test_oneway_returns_immediately(self, deployment):
        world, servant, stub = deployment
        # Warm-up two-way call for comparison.
        stub.submit("x", "LOW")
        start = world.clock.now
        stub.submit("y", "LOW")
        two_way = world.clock.now - start

        start = world.clock.now
        stub.nudge("hurry")
        one_way = world.clock.now - start
        assert one_way < two_way / 2

    def test_oneway_still_processed_by_server(self, deployment):
        _, servant, stub = deployment
        stub.nudge("wake-up")
        assert servant.nudges == ["wake-up"]

    def test_oneway_swallows_failures(self, deployment):
        world, _, stub = deployment
        world.faults.crash("server")
        stub.nudge("into the void")  # must not raise
        assert world.orb("client").oneway_failures == 1

    def test_twoway_still_raises_on_failure(self, deployment):
        world, _, stub = deployment
        world.faults.crash("server")
        with pytest.raises(Exception):
            stub.head_priority()


class TestCLI:
    def test_compile_to_stdout(self, tmp_path):
        spec = tmp_path / "queue.qidl"
        spec.write_text(ENUM_SPEC)
        result = subprocess.run(
            [sys.executable, "-m", "repro.qidl", str(spec)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "class QueueStub(Stub):" in result.stdout
        assert "class Priority:" in result.stdout

    def test_compile_to_file_is_importable(self, tmp_path):
        spec = tmp_path / "queue.qidl"
        spec.write_text(ENUM_SPEC)
        out = tmp_path / "queue_gen.py"
        result = subprocess.run(
            [sys.executable, "-m", "repro.qidl", str(spec), str(out)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        compiled = compile(out.read_text(), str(out), "exec")
        namespace = {}
        exec(compiled, namespace)
        assert "QueueSkeleton" in namespace

    def test_with_characteristics_flag(self, tmp_path):
        spec = tmp_path / "svc.qidl"
        spec.write_text("interface Svc provides Actuality { void poke(); };")
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.qidl",
                "--with-characteristics", str(spec),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "ActualityMediator" in result.stdout

    def test_error_reported_on_stderr(self, tmp_path):
        spec = tmp_path / "bad.qidl"
        spec.write_text("interface { broken")
        result = subprocess.run(
            [sys.executable, "-m", "repro.qidl", str(spec)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "qidl:" in result.stderr


class TestMediatorChain:
    def test_chain_composes_links(self, deployment):
        from repro.core.mediator import Mediator, MediatorChain

        _, servant, stub = deployment
        order = []

        def make_link(name):
            class Link(Mediator):
                characteristic = name

                def before_request(self, stub, operation, args):
                    order.append(name)
                    return operation, args

            return Link()

        chain = MediatorChain(make_link("outer"), make_link("inner"))
        chain.install(stub)
        stub.submit("job", "LOW")
        assert order == ["outer", "inner"]
        assert servant.jobs[-1] == ("job", "LOW")
        assert chain.calls_intercepted == 1

    def test_chain_rejects_empty(self):
        from repro.core.mediator import MediatorChain

        with pytest.raises(ValueError):
            MediatorChain()

    def test_chain_with_measuring_and_compression(self, deployment):
        from repro.core.mediator import MediatorChain
        from repro.core.monitoring import QoSMonitor
        from repro.core.negotiation import Agreement

        world, servant, stub = deployment
        monitor = QoSMonitor(Agreement("X", {}), world.clock, min_samples=1)

        class Probe:
            characteristic = "__probe__"

            def __init__(self):
                self.seen = 0

            def invoke(self, stub, operation, args):
                self.seen += 1
                started = stub._orb.clock.now
                result = stub._invoke(operation, args)
                monitor.observe("latency", stub._orb.clock.now - started)
                return result

        probe_a, probe_b = Probe(), Probe()
        MediatorChain(probe_a, probe_b).install(stub)
        stub.head_priority()
        assert probe_a.seen == 1
        assert probe_b.seen == 1
        assert monitor.window("latency").total_observations == 2
