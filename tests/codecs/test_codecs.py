"""Tests for the from-scratch compression codecs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import codecs
from repro.codecs import delta, lz, rle


ALL_CODECS = sorted(codecs.CODECS)


def _random_bytes(seed, n):
    return bytes(random.Random(seed).randrange(256) for _ in range(n))


class TestRoundtrip:
    @pytest.mark.parametrize("name", ALL_CODECS)
    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"a",
            b"abc",
            b"a" * 1000,
            b"abcabcabc" * 100,
            bytes(range(256)) * 4,
            _random_bytes(7, 2048),
            "unicode κόσμος ✓".encode("utf-8") * 20,
        ],
    )
    def test_roundtrip(self, name, payload):
        compress, decompress = codecs.get_codec(name)
        assert decompress(compress(payload)) == payload

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_type_check(self, name):
        compress, _ = codecs.get_codec(name)
        if name != "identity":
            with pytest.raises(TypeError):
                compress("not bytes")


class TestEffectiveness:
    def test_rle_collapses_runs(self):
        payload = b"x" * 10_000
        assert len(rle.compress(payload)) < len(payload) / 50

    def test_lz_compresses_repeating_structure(self):
        payload = b"GET /api/v1/items HTTP/1.1\r\n" * 200
        assert len(lz.compress(payload)) < len(payload) / 3

    def test_delta_compresses_slowly_varying_samples(self):
        import math

        samples = bytes(128 + int(10 * math.sin(i / 200)) for i in range(4000))
        assert len(delta.compress(samples)) < len(samples) / 5

    def test_incompressible_data_grows_boundedly(self):
        noise = _random_bytes(3, 4096)
        assert len(rle.compress(noise)) <= len(noise) * 1.02 + 16

    def test_cpu_cost_scales_with_size(self):
        assert codecs.cpu_cost("lz", 2000) == 2 * codecs.cpu_cost("lz", 1000)
        assert codecs.cpu_cost("identity", 10_000) == 0.0

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            codecs.get_codec("zpaq")


class TestCorruptInput:
    def test_rle_truncated_run(self):
        with pytest.raises(ValueError):
            rle.decompress(b"\x85")

    def test_rle_truncated_literals(self):
        with pytest.raises(ValueError):
            rle.decompress(b"\x05ab")

    def test_lz_bad_offset(self):
        with pytest.raises(ValueError):
            lz.decompress(b"\x01\x00\x05\x00")

    def test_lz_unknown_token(self):
        with pytest.raises(ValueError):
            lz.decompress(b"\x09")


@given(st.binary(max_size=4096))
@settings(max_examples=60)
def test_property_rle_roundtrip(payload):
    assert rle.decompress(rle.compress(payload)) == payload


@given(st.binary(max_size=4096))
@settings(max_examples=60)
def test_property_lz_roundtrip(payload):
    assert lz.decompress(lz.compress(payload)) == payload


@given(st.binary(max_size=2048))
@settings(max_examples=40)
def test_property_delta_roundtrip(payload):
    assert delta.decompress(delta.compress(payload)) == payload
