"""Smoke tests: every shipped example must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_reports_speedup():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "speedup" in result.stdout
    assert "negotiated" in result.stdout


def test_bank_reports_masking():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "fault_tolerant_bank.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "still served" in result.stdout
    assert "majority-voted balance: 150.00" in result.stdout
