"""Tests for the fluid execution tier and its packet-tier coupling."""

import pytest

from repro.netsim.clock import Clock
from repro.netsim.fluid.flowlet import (
    Flowlet,
    FlowletClass,
    FlowletGenerator,
    bounded_pareto,
)
from repro.netsim.fluid.tier import FluidTier, PacketFlowletExecutor
from repro.netsim.kernel import EventKernel
from repro.netsim.network import Network
from repro.netsim.resources import ResourceManager
from repro.perf import COUNTERS


def _world(latency=0.002, bandwidth=10e6, loss=0.0):
    kernel = EventKernel()
    network = Network(kernel.clock)
    network.add_host("a")
    network.add_host("b")
    link = network.connect("a", "b", latency=latency, bandwidth_bps=bandwidth,
                           loss_rate=loss)
    return kernel, network, link


class TestFlowletGenerator:
    def test_identical_seeds_identical_schedules(self):
        classes = (
            FlowletClass("interactive", 3.0, 8_192),
            FlowletClass("bulk", 1.0, 30_000, 300_000, alpha=1.3),
        )
        one = FlowletGenerator(5, classes).poisson("a", "b", 20.0, 5.0)
        two = FlowletGenerator(5, classes).poisson("a", "b", 20.0, 5.0)
        assert [(t, f.nbytes, f.klass) for t, f in one] == [
            (t, f.nbytes, f.klass) for t, f in two
        ]

    def test_bounded_pareto_respects_bounds(self):
        import random

        rng = random.Random(3)
        for _ in range(500):
            value = bounded_pareto(rng, 1.2, 1_000, 50_000)
            assert 1_000 <= value <= 50_000

    def test_class_mix_normalised(self):
        generator = FlowletGenerator(0)
        assert sum(generator.class_mix().values()) == pytest.approx(1.0)

    def test_flowlet_validation(self):
        with pytest.raises(ValueError):
            Flowlet("a", "b", 0)


class TestFluidTier:
    def test_flow_registers_and_releases_link_demand(self):
        kernel, network, link = _world()
        tier = FluidTier(network, kernel)
        tier.start(Flowlet("a", "b", 100_000))
        assert link.fluid_flows == 1
        assert link.fluid_bps > 0.0
        kernel.run()
        assert link.fluid_flows == 0
        assert link.fluid_bps == pytest.approx(0.0)
        assert link.fluid_bytes == 100_000
        assert tier.flowlets_completed == 1

    def test_completion_time_is_analytic(self):
        kernel, network, link = _world()
        tier = FluidTier(network, kernel)
        done = tier.start(Flowlet("a", "b", 500_000))
        kernel.run()
        assert kernel.clock.now == pytest.approx(done)
        # One start call, one completion event: no per-message traffic.
        assert kernel.events_fired == 1

    def test_packet_messages_see_fluid_contention(self):
        kernel, network, link = _world()
        free = network.transfer_delay("a", "b", 10_000)
        tier = FluidTier(network, kernel)
        tier.start(Flowlet("a", "b", 5_000_000))
        loaded = network.transfer_delay("a", "b", 10_000)
        assert loaded > free
        kernel.run()
        assert network.transfer_delay("a", "b", 10_000) == pytest.approx(free)

    def test_fluid_flows_see_reservations(self):
        kernel_free, network_free, _ = _world()
        tier_free = FluidTier(network_free, kernel_free)
        unreserved_done = tier_free.start(Flowlet("a", "b", 1_000_000))

        kernel_resv, network_resv, _ = _world()
        ResourceManager(network_resv).reserve("a", "b", 8e6)
        tier_resv = FluidTier(network_resv, kernel_resv)
        reserved_done = tier_resv.start(Flowlet("a", "b", 1_000_000))

        assert reserved_done > unreserved_done

    def test_concurrent_flows_share_the_link(self):
        kernel, network, _ = _world()
        tier = FluidTier(network, kernel)
        alone = tier.start(Flowlet("a", "b", 1_000_000))
        crowded = tier.start(Flowlet("a", "b", 1_000_000))
        assert crowded > alone
        kernel.run()
        assert tier.active == 0
        assert tier.active_peak == 2

    def test_class_summaries_account_bytes_and_delay(self):
        kernel, network, _ = _world()
        tier = FluidTier(network, kernel)
        tier.start(Flowlet("a", "b", 50_000, klass="bulk"))
        tier.start(Flowlet("a", "b", 8_192, klass="interactive"))
        kernel.run()
        summaries = tier.class_summaries()
        assert summaries["bulk"]["bytes"] == 50_000.0
        assert summaries["interactive"]["completed"] == 1.0
        assert summaries["bulk"]["mean_delay"] > 0.0

    def test_counters_bumped(self):
        COUNTERS.reset()
        kernel, network, _ = _world()
        tier = FluidTier(network, kernel)
        tier.start(Flowlet("a", "b", 40_000))
        kernel.run()
        assert COUNTERS.fluid_flowlets == 1
        assert COUNTERS.fluid_completions == 1
        assert COUNTERS.fluid_flowlet_bytes == 40_000
        assert COUNTERS.fluid_active_peak >= 1


class TestDeterminism:
    def _run(self, seed):
        kernel, network, _ = _world(loss=0.01)
        tier = FluidTier(network, kernel)
        generator = FlowletGenerator(seed)
        for time, flowlet in generator.poisson("a", "b", 30.0, 4.0):
            kernel.schedule_at(time, tier.start, flowlet)
        kernel.run()
        return tier.trace_digest()

    def test_identical_seed_identical_trace(self):
        assert self._run(9) == self._run(9)

    def test_different_seed_different_trace(self):
        assert self._run(9) != self._run(10)

    def test_packet_mode_deterministic_too(self):
        def run():
            kernel, network, _ = _world(loss=0.02)
            executor = PacketFlowletExecutor(network, kernel, seed=4)
            generator = FlowletGenerator(4)
            for time, flowlet in generator.poisson("a", "b", 10.0, 3.0):
                kernel.schedule_at(time, executor.start, flowlet)
            kernel.run()
            return executor.trace_digest()

        assert run() == run()


class TestPacketFlowletExecutor:
    def test_costs_one_event_per_segment(self):
        kernel, network, _ = _world()
        executor = PacketFlowletExecutor(network, kernel)
        executor.start(Flowlet("a", "b", 14_600))  # ten segments
        kernel.run()
        # Ramp event + ten segment events (the last doubles as finish
        # scheduling) + completion.
        assert kernel.events_fired >= 11
        assert executor.flowlets_completed == 1

    def test_contention_slows_concurrent_flowlets(self):
        kernel, network, _ = _world()
        solo = PacketFlowletExecutor(network, kernel)
        solo.start(Flowlet("a", "b", 100_000))
        kernel.run()
        solo_delay = solo.class_summaries()["be"]["mean_delay"]

        kernel2, network2, _ = _world()
        crowd = PacketFlowletExecutor(network2, kernel2)
        crowd.start(Flowlet("a", "b", 100_000))
        crowd.start(Flowlet("a", "b", 100_000))
        kernel2.run()
        crowd_delay = crowd.class_summaries()["be"]["mean_delay"]
        assert crowd_delay > solo_delay
