"""Tests for multicast group communication."""

import pytest

from repro.netsim.multicast import MulticastError, MulticastGroup
from repro.netsim.network import Network


@pytest.fixture
def net():
    network = Network()
    for name in ("coordinator", "r1", "r2", "r3"):
        network.add_host(name)
    for name in ("r1", "r2", "r3"):
        network.connect("coordinator", name, latency=0.005, bandwidth_bps=10e6)
    return network


@pytest.fixture
def group(net):
    grp = MulticastGroup(net, "replicas")
    for name in ("coordinator", "r1", "r2", "r3"):
        grp.join(name)
    return grp


class TestMembership:
    def test_join_order_preserved(self, group):
        assert group.members == ["coordinator", "r1", "r2", "r3"]

    def test_duplicate_join_rejected(self, group):
        with pytest.raises(MulticastError):
            group.join("r1")

    def test_join_unknown_host_rejected(self, net):
        grp = MulticastGroup(net, "g")
        with pytest.raises(Exception):
            grp.join("ghost")

    def test_leave(self, group):
        group.leave("r2")
        assert "r2" not in group.members
        assert len(group) == 3

    def test_leave_nonmember_rejected(self, net):
        grp = MulticastGroup(net, "g")
        with pytest.raises(MulticastError):
            grp.leave("r1")


class TestSend:
    def test_delivers_to_all_other_members(self, group):
        report = group.send("coordinator", nbytes=100)
        assert report.delivered == ["r1", "r2", "r3"]
        assert report.all_delivered()

    def test_exclude_self_default(self, group):
        report = group.send("coordinator", nbytes=100)
        assert "coordinator" not in report.delivered

    def test_include_self_loopback(self, group, net):
        net.connect("r1", "coordinator", latency=0.0) if False else None
        report = group.send("coordinator", nbytes=100, exclude_self=False)
        # coordinator->coordinator is an empty route: zero-delay delivery
        assert "coordinator" in report.delivered
        assert report.delays["coordinator"] == 0.0

    def test_crashed_member_reported_not_raised(self, group, net):
        net.host("r2").crashed = True
        report = group.send("coordinator", nbytes=100)
        assert report.failed == ["r2"]
        assert report.delivered == ["r1", "r3"]
        assert not report.all_delivered()

    def test_max_delay_is_slowest_member(self, group, net):
        net.connect("coordinator", "r1", latency=1.0) if False else None
        report = group.send("coordinator", nbytes=100)
        assert report.max_delay() == max(report.delays.values())

    def test_max_delay_empty_report(self, net):
        grp = MulticastGroup(net, "empty")
        report = grp.send("coordinator", nbytes=10)
        assert report.max_delay() == 0.0


class TestLiveMembers:
    def test_live_members_excludes_crashed(self, group, net):
        net.host("r1").crashed = True
        assert group.live_members() == ["coordinator", "r2", "r3"]
