"""Tests for the discrete-event kernel."""

import pytest

from repro.netsim.clock import Clock
from repro.netsim.kernel import EventKernel, KernelError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(2.0, fired.append, "late")
        kernel.schedule(1.0, fired.append, "early")
        kernel.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_scheduling_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(1.0, fired.append, "first")
        kernel.schedule(1.0, fired.append, "second")
        kernel.schedule(1.0, fired.append, "third")
        kernel.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        kernel = EventKernel()
        seen = []
        kernel.schedule(3.5, lambda: seen.append(kernel.clock.now))
        kernel.run()
        assert seen == [3.5]

    def test_schedule_at_absolute_time(self):
        kernel = EventKernel(Clock(5.0))
        fired = []
        kernel.schedule_at(7.0, fired.append, "x")
        kernel.run()
        assert fired == ["x"]
        assert kernel.clock.now == 7.0

    def test_schedule_in_past_rejected(self):
        kernel = EventKernel(Clock(5.0))
        with pytest.raises(KernelError):
            kernel.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        kernel = EventKernel()
        with pytest.raises(KernelError):
            kernel.schedule(-1.0, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        kernel = EventKernel()
        fired = []

        def chain():
            fired.append("a")
            kernel.schedule(1.0, fired.append, "b")

        kernel.schedule(1.0, chain)
        kernel.run()
        assert fired == ["a", "b"]
        assert kernel.clock.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        kernel = EventKernel()
        fired = []
        event = kernel.schedule(1.0, fired.append, "x")
        event.cancel()
        kernel.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        kernel = EventKernel()
        event = kernel.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert kernel.run() == 0


class TestRunUntil:
    def test_stops_at_deadline(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(1.0, fired.append, "in")
        kernel.schedule(3.0, fired.append, "out")
        count = kernel.run_until(2.0)
        assert count == 1
        assert fired == ["in"]
        assert kernel.clock.now == 2.0
        assert kernel.pending == 1

    def test_event_exactly_at_deadline_fires(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(2.0, fired.append, "edge")
        kernel.run_until(2.0)
        assert fired == ["edge"]

    def test_advances_clock_even_without_events(self):
        kernel = EventKernel()
        kernel.run_until(9.0)
        assert kernel.clock.now == 9.0


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        kernel = EventKernel()
        ticks = []
        kernel.every(1.0, lambda: ticks.append(kernel.clock.now), until=3.5)
        kernel.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_every_rejects_nonpositive_period(self):
        kernel = EventKernel()
        with pytest.raises(KernelError):
            kernel.every(0.0, lambda: None)

    def test_schedule_iter_passes_arrival_times(self):
        kernel = EventKernel()
        seen = []
        kernel.schedule_iter([0.5, 1.5], seen.append)
        kernel.run()
        assert seen == [0.5, 1.5]


class TestAccounting:
    def test_events_fired_counter(self):
        kernel = EventKernel()
        for delay in (1.0, 2.0, 3.0):
            kernel.schedule(delay, lambda: None)
        kernel.run()
        assert kernel.events_fired == 3

    def test_run_guards_against_runaway(self):
        kernel = EventKernel()

        def forever():
            kernel.schedule(1.0, forever)

        kernel.schedule(1.0, forever)
        with pytest.raises(KernelError):
            kernel.run(max_events=100)


class TestLazyCancellation:
    def test_pending_live_tracks_cancellations(self):
        kernel = EventKernel()
        events = [kernel.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert kernel.pending == 10
        assert kernel.pending_live == 10
        for event in events[:4]:
            event.cancel()
        assert kernel.pending_live == 6

    def test_double_cancel_counts_once(self):
        kernel = EventKernel()
        event = kernel.schedule(1.0, lambda: None)
        kernel.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert kernel.pending_live == 1

    def test_compaction_shrinks_queue(self):
        kernel = EventKernel()
        threshold = EventKernel.COMPACT_THRESHOLD
        events = [
            kernel.schedule(float(i + 1), lambda: None)
            for i in range(threshold + 10)
        ]
        # Cancel enough that dead entries pass the threshold AND
        # outnumber the live ones: the heap must physically shrink
        # (compaction fires at the threshold crossing; cancellations
        # after it sit in the queue until the next crossing).
        for event in events[: threshold + 5]:
            event.cancel()
        assert kernel.pending_live == 5
        assert kernel.pending <= 10

    def test_cancelled_events_do_not_fire(self):
        kernel = EventKernel()
        fired = []
        events = [
            kernel.schedule(float(i + 1), fired.append, i) for i in range(100)
        ]
        for event in events[::2]:
            event.cancel()
        kernel.run()
        assert fired == list(range(1, 100, 2))
        assert kernel.pending == 0
        assert kernel.pending_live == 0

    def test_run_until_discards_cancelled_heads(self):
        kernel = EventKernel()
        fired = []
        first = kernel.schedule(1.0, fired.append, "a")
        kernel.schedule(2.0, fired.append, "b")
        first.cancel()
        assert kernel.run_until(3.0) == 1
        assert fired == ["b"]
        assert kernel.pending_live == 0

    def test_ordering_survives_compaction(self):
        kernel = EventKernel()
        fired = []
        events = [
            kernel.schedule(float(i % 7 + 1), fired.append, i)
            for i in range(200)
        ]
        for event in events[:150]:
            event.cancel()
        kernel.run()
        survivors = list(range(150, 200))
        # Same-time events fire in scheduling order within each due time.
        expected = sorted(survivors, key=lambda i: (i % 7, i))
        assert fired == expected
