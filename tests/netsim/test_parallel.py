"""Tests for the sharded event kernel (conservative synchronization)."""

import sys

import pytest

from repro.netsim.kernel import EventKernel, KernelError
from repro.netsim.parallel import (
    ShardPlanner,
    ShardedKernel,
    TopologySpec,
    handler_ref,
    last_shard_stats,
)
from repro.netsim.parallel.plan import LinkSpec
from repro.perf import snapshot
from repro.workloads import soak
from repro.workloads.soak import (
    SerialScenarioDriver,
    schedule_soak,
    soak_config,
    soak_topology,
    zero_lookahead_topology,
)


def small_topology():
    return soak_topology(clusters=4, hosts_per_cluster=4)


def run_soak(topo, shards, backend="inline", duration=0.2, **cfg_kwargs):
    kernel = ShardedKernel(topo, shards=shards, backend=backend, trace=True)
    schedule_soak(kernel, soak_config(topo, duration=duration, **cfg_kwargs))
    fired = kernel.run()
    return kernel, fired


class TestTopologySpec:
    def test_from_network_round_trip(self):
        from repro.netsim.network import Network

        net = Network()
        for name in ("a", "b", "c"):
            net.add_host(name)
        net.connect("a", "b", latency=0.002)
        net.connect("b", "c", latency=0.003)
        topo = TopologySpec.from_network(net)
        assert topo.hosts == ("a", "b", "c")
        latency, _ = topo.path("a", "c")
        assert latency == pytest.approx(0.005)

    def test_transfer_delay_matches_network_model(self):
        topo = TopologySpec(
            ["a", "b"], [LinkSpec("a", "b", 0.001, 100e6)]
        )
        # latency + nbytes * 8 / bandwidth, same as Network.send on an
        # idle unreserved network.
        assert topo.transfer_delay("a", "b", 1000) == pytest.approx(
            0.001 + 8000 / 100e6
        )
        assert topo.transfer_delay("a", "a", 1000) == 0.0

    def test_unknown_link_host_rejected(self):
        with pytest.raises(ValueError):
            TopologySpec(["a"], [LinkSpec("a", "ghost", 0.001)])

    def test_pickle_round_trip(self):
        import pickle

        topo = small_topology()
        clone = pickle.loads(pickle.dumps(topo))
        assert clone.hosts == topo.hosts
        assert clone.links == topo.links


class TestShardPlanner:
    def test_assignment_is_balanced_and_total(self):
        topo = small_topology()
        plan = ShardPlanner(topo).plan(4)
        assert set(plan.assignment) == set(topo.hosts)
        sizes = [len(plan.members(s)) for s in range(plan.shards)]
        assert sum(sizes) == len(topo.hosts)
        assert max(sizes) - min(sizes) <= 2

    def test_clusters_stay_together(self):
        # The min-cut-ish objective must never split a dense cluster
        # across shards when there are exactly as many shards as
        # clusters: the trunks are the cheap cut.
        topo = small_topology()
        plan = ShardPlanner(topo).plan(4)
        for shard in range(4):
            prefixes = {h[:3] for h in plan.members(shard)}
            assert len(prefixes) == 1

    def test_lookahead_is_min_cut_latency(self):
        topo = soak_topology(
            clusters=2, hosts_per_cluster=3,
            intra_latency=0.0004, inter_latency=0.0065,
        )
        plan = ShardPlanner(topo).plan(2)
        assert plan.lookahead == pytest.approx(0.0065)
        assert plan.cut_links >= 1

    def test_single_shard_plan(self):
        topo = small_topology()
        plan = ShardPlanner(topo).plan(1)
        assert plan.shards == 1
        assert plan.lookahead == float("inf")
        assert plan.cut_links == 0

    def test_more_shards_than_hosts_clamped(self):
        topo = TopologySpec(["a", "b"], [LinkSpec("a", "b", 0.001)])
        plan = ShardPlanner(topo).plan(16)
        assert plan.shards == 2

    def test_plan_is_deterministic(self):
        topo = small_topology()
        first = ShardPlanner(topo).plan(4).assignment
        second = ShardPlanner(small_topology()).plan(4).assignment
        assert first == second


class TestDeterminism:
    def test_identical_digest_at_shard_counts_1_2_4(self):
        topo = small_topology()
        digests = set()
        for shards in (1, 2, 4):
            kernel, fired = run_soak(topo, shards, heartbeats=10)
            assert fired > 0
            digests.add(kernel.trace_digest())
        assert len(digests) == 1

    def test_serial_vs_sharded_scenario_one(self):
        topo = small_topology()
        serial, fired_serial = run_soak(topo, 1)
        sharded, fired_sharded = run_soak(topo, 4)
        assert serial.serial and not sharded.serial
        assert fired_serial == fired_sharded
        assert serial.trace_digest() == sharded.trace_digest()

    def test_serial_vs_sharded_scenario_two(self):
        # A different shape: two big clusters, heavier cross traffic.
        topo = soak_topology(clusters=2, hosts_per_cluster=6,
                             inter_latency=0.008)
        serial, _ = run_soak(topo, 1, duration=0.3, remote_ratio=0.6,
                             fanout=3)
        sharded, _ = run_soak(topo, 2, duration=0.3, remote_ratio=0.6,
                              fanout=3)
        assert not sharded.serial
        assert sharded.stats()["cross_messages"] > 0
        assert serial.trace_digest() == sharded.trace_digest()

    def test_zero_lookahead_falls_back_to_serial(self):
        kernel = ShardedKernel(zero_lookahead_topology(), shards=2,
                               trace=True)
        assert kernel.serial
        assert kernel.plan.lookahead == 0.0
        cfg = soak_config(zero_lookahead_topology(), duration=0.1)
        schedule_soak(kernel, cfg)
        kernel.run()
        assert kernel.stats()["backend"] == "serial"
        assert kernel.stats()["fallback_serial"] is True

    def test_strict_determinism_forces_serial(self):
        kernel = ShardedKernel(small_topology(), shards=4,
                               strict_determinism=True)
        assert kernel.serial

    def test_serial_driver_matches_sharded_kernel(self):
        topo = small_topology()
        cfg = soak_config(topo, duration=0.2)
        driver = SerialScenarioDriver(EventKernel(), topo, trace=True)
        schedule_soak(driver, cfg)
        driver.run()
        sharded, _ = run_soak(topo, 4)
        import hashlib

        digest = hashlib.sha256()
        for entry in sorted(driver.trace):
            time, host, ref, payload = entry
            digest.update(f"{time!r}|{host}|{ref}|{payload}\n".encode())
        assert digest.hexdigest() == sharded.trace_digest()


class TestConservativeSync:
    def test_cross_shard_messages_flow_at_barriers(self):
        topo = small_topology()
        kernel, _ = run_soak(topo, 4, remote_ratio=0.5)
        stats = kernel.stats()
        assert stats["cross_messages"] > 0
        assert stats["barriers"] > 0
        assert stats["lookahead"] == pytest.approx(0.004)
        assert len(stats["events_per_shard"]) == 4

    def test_lookahead_violation_is_rejected(self):
        from repro.netsim.parallel.shard import ShardRuntime

        topo = small_topology()
        plan = ShardPlanner(topo).plan(4)
        runtime = ShardRuntime(0, set(plan.members(0)), topo,
                               plan.lookahead)
        foreign = plan.members(1)[0]
        with pytest.raises(KernelError):
            runtime.post(plan.lookahead / 2, foreign,
                         handler_ref(soak.heartbeat), None)

    def test_run_before_is_strict_and_keeps_clock(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_at(1.0, fired.append, "in-window")
        kernel.schedule_at(2.0, fired.append, "at-boundary")
        assert kernel.run_before(2.0) == 1
        assert fired == ["in-window"]
        # Clock sits at the last fired event, not the window end, so
        # barrier-time injection just after it is legal.
        assert kernel.clock.now == 1.0
        kernel.schedule_at(1.5, fired.append, "injected")
        kernel.run()
        assert fired == ["in-window", "injected", "at-boundary"]


class TestHandlerRefs:
    def test_module_level_function_round_trips(self):
        ref = handler_ref(soak.tick)
        assert ref == "repro.workloads.soak:tick"

    def test_lambda_rejected(self):
        with pytest.raises(TypeError):
            handler_ref(lambda ctx, payload: None)

    def test_method_rejected(self):
        with pytest.raises(TypeError):
            handler_ref(TopologySpec.from_network)


class TestProcessBackend:
    @pytest.mark.skipif(
        sys.platform == "win32", reason="POSIX pipes assumed"
    )
    def test_spawned_workers_match_inline_digest(self):
        topo = small_topology()
        inline, fired_inline = run_soak(topo, 2, duration=0.1)
        proc = ShardedKernel(topo, shards=2, backend="process", trace=True)
        schedule_soak(proc, soak_config(topo, duration=0.1))
        fired_proc = proc.run()
        assert fired_proc == fired_inline
        assert proc.trace_digest() == inline.trace_digest()
        assert proc.stats()["backend"] == "process"


class TestShardStatsPanel:
    def test_snapshot_merges_kernel_shard_keys(self):
        topo = small_topology()
        kernel, fired = run_soak(topo, 4)
        panel = snapshot(kernel=kernel)
        assert panel["kernel_shard_events_fired"] == fired
        assert panel["kernel_shard_shards"] == 4
        assert panel["kernel_shard_lookahead"] == pytest.approx(0.004)
        assert panel["kernel_shard_barriers"] > 0
        assert panel["kernel_shard_cross_messages"] > 0
        assert len(panel["kernel_shard_events_per_shard"]) == 4

    def test_last_run_reported_with_world_panel(self):
        from repro.orb import World

        topo = small_topology()
        _, fired = run_soak(topo, 2)
        world = World()
        world.lan(["client", "server"], latency=0.001)
        panel = snapshot(world=world)
        # The ambient (most recent run) shard panel rides along with
        # the world's kernel_*/net_* panels.
        assert panel["kernel_shard_events_fired"] == fired
        assert "kernel_events_fired" in panel

    def test_last_shard_stats_tracks_most_recent_run(self):
        topo = small_topology()
        kernel, fired = run_soak(topo, 2)
        ambient = last_shard_stats()
        assert ambient["events_fired"] == fired
        assert ambient["shards"] == 2
