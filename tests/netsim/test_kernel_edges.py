"""Kernel edge cases: bulk scheduling, slim events, boundary semantics."""

import tracemalloc

import pytest

from repro.netsim.clock import Clock
from repro.netsim.kernel import EventKernel, KernelError


class TestScheduleMany:
    def test_bulk_load_fires_in_time_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_many([3.0, 1.0, 2.0], lambda: fired.append(
            kernel.clock.now))
        kernel.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_bulk_onto_cold_kernel_uses_one_heapify(self):
        # Indirect but observable: a 10k bulk load on an empty kernel
        # must leave a valid heap (pops come out ordered).
        kernel = EventKernel()
        times = [float((i * 7919) % 10_000 + 1) for i in range(10_000)]
        kernel.schedule_many(times, lambda: None)
        last = -1.0
        while kernel.step():
            assert kernel.clock.now >= last
            last = kernel.clock.now

    def test_bulk_merges_into_existing_queue(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(2.5, fired.append, "mid")
        kernel.schedule_many([1.0, 2.0, 3.0], lambda: fired.append(
            kernel.clock.now))
        kernel.run()
        assert fired == [1.0, 2.0, "mid", 3.0]

    def test_shared_static_args(self):
        kernel = EventKernel()
        seen = []
        events = kernel.schedule_many([1.0, 2.0], seen.append, "tag")
        assert events[0].args is events[1].args
        kernel.run()
        assert seen == ["tag", "tag"]

    def test_past_times_rejected(self):
        kernel = EventKernel(Clock(5.0))
        with pytest.raises(KernelError):
            kernel.schedule_many([6.0, 4.0], lambda: None)

    def test_ties_fire_in_scheduling_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_many([1.0, 1.0], fired.append, "bulk")
        kernel.schedule_at(1.0, fired.append, "late")
        kernel.run()
        assert fired == ["bulk", "bulk", "late"]


class TestSlimEvents:
    def test_argless_events_share_singletons(self):
        kernel = EventKernel()
        one = kernel.schedule(1.0, lambda: None)
        two = kernel.schedule(2.0, lambda: None)
        assert one.args is two.args
        assert one.kwargs is two.kwargs

    def test_events_with_args_do_not_share(self):
        kernel = EventKernel()
        sink = []
        one = kernel.schedule(1.0, sink.append, "x")
        two = kernel.schedule(2.0, sink.append, "y")
        assert one.args == ("x",)
        assert one.args is not two.args
        kernel.run()
        assert sink == ["x", "y"]

    def test_bulk_event_memory_footprint(self):
        # The tracemalloc regression guard for million-event runs: an
        # argless queued event must stay under 500 bytes all-in.
        kernel = EventKernel()
        times = [float(i + 1) for i in range(10_000)]
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        kernel.schedule_many(times, lambda: None)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        per_event = (after - before) / 10_000
        assert per_event < 500, f"{per_event:.0f} bytes per queued event"

    def test_live_peak_high_water_mark(self):
        kernel = EventKernel()
        kernel.schedule_many([1.0, 2.0, 3.0], lambda: None)
        assert kernel.live_peak == 3
        kernel.run()
        assert kernel.live_peak == 3  # never regresses


class TestRunUntilEdges:
    def test_cancelled_head_exactly_at_deadline(self):
        kernel = EventKernel()
        fired = []
        head = kernel.schedule(2.0, fired.append, "dead")
        kernel.schedule(2.0, fired.append, "live")
        head.cancel()
        assert kernel.run_until(2.0) == 1
        assert fired == ["live"]
        assert kernel.clock.now == 2.0
        assert kernel.pending == 0

    def test_only_cancelled_events_at_deadline(self):
        kernel = EventKernel()
        event = kernel.schedule(3.0, lambda: None)
        event.cancel()
        assert kernel.run_until(3.0) == 0
        assert kernel.clock.now == 3.0
        assert kernel.pending == 0

    def test_compaction_mid_run_until(self):
        kernel = EventKernel()
        threshold = EventKernel.COMPACT_THRESHOLD
        late = [
            kernel.schedule(10.0 + i, lambda: None, label="late")
            for i in range(threshold + 10)
        ]

        def mass_cancel():
            for event in late:
                event.cancel()

        kernel.schedule(1.0, mass_cancel)
        fired = kernel.run_until(5.0)
        assert fired == 1
        assert kernel.compactions >= 1
        assert kernel.pending_live == 0
        # The queue physically shrank while run_until was in flight.
        assert kernel.pending < threshold

    def test_stats_panel(self):
        kernel = EventKernel()
        events = [kernel.schedule(float(i + 1), lambda: None)
                  for i in range(4)]
        events[0].cancel()
        stats = kernel.stats()
        assert stats["pending"] == 4
        assert stats["pending_live"] == 3
        assert stats["live_peak"] == 4
        assert stats["cancelled_peak"] == 1
        kernel.run()
        assert kernel.stats()["events_fired"] == 3


class TestEveryBoundary:
    def test_occurrence_exactly_at_until_fires(self):
        kernel = EventKernel()
        ticks = []
        kernel.every(1.0, lambda: ticks.append(kernel.clock.now), until=3.0)
        kernel.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_occurrence_just_past_until_does_not(self):
        kernel = EventKernel()
        ticks = []
        kernel.every(1.0, lambda: ticks.append(kernel.clock.now),
                     until=2.999999)
        kernel.run()
        assert ticks == [1.0, 2.0]
