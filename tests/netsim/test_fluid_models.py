"""Tests for the analytic TCP models of the fluid tier."""

import pytest

from repro.netsim.fluid.models import (
    DEFAULT_MSS,
    DEFAULT_RWND,
    csa00_transfer_time,
    msmo97_throughput,
    startup_excess,
)

RTT = 0.040


class TestMSMO97:
    def test_zero_loss_is_window_limited(self):
        rate = msmo97_throughput(DEFAULT_MSS, RTT, 0.0)
        assert rate == pytest.approx(DEFAULT_RWND * 8.0 / RTT)

    def test_rate_decreases_with_loss(self):
        light = msmo97_throughput(DEFAULT_MSS, RTT, 0.001)
        heavy = msmo97_throughput(DEFAULT_MSS, RTT, 0.04)
        assert heavy < light

    def test_rate_decreases_with_rtt(self):
        fast = msmo97_throughput(DEFAULT_MSS, 0.010, 0.01)
        slow = msmo97_throughput(DEFAULT_MSS, 0.100, 0.01)
        assert slow < fast

    def test_sqrt_loss_response_curve(self):
        # Quadrupling the loss rate halves the rate (1/sqrt(p)).
        base = msmo97_throughput(DEFAULT_MSS, RTT, 0.005)
        worse = msmo97_throughput(DEFAULT_MSS, RTT, 0.020)
        assert worse == pytest.approx(base / 2.0)

    def test_receive_window_caps_light_loss(self):
        rate = msmo97_throughput(DEFAULT_MSS, RTT, 1e-9, rwnd=8192)
        assert rate <= 8192 * 8.0 / RTT + 1e-6

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            msmo97_throughput(DEFAULT_MSS, 0.0, 0.01)
        with pytest.raises(ValueError):
            msmo97_throughput(0, RTT, 0.01)


class TestCSA00:
    def test_monotonic_in_size(self):
        small = csa00_transfer_time(10_000, DEFAULT_MSS, RTT, 0.01)
        large = csa00_transfer_time(1_000_000, DEFAULT_MSS, RTT, 0.01)
        assert large > small

    def test_short_transfer_costs_at_least_one_round(self):
        assert csa00_transfer_time(500, DEFAULT_MSS, RTT, 0.0) >= RTT

    def test_loss_slows_transfers(self):
        clean = csa00_transfer_time(500_000, DEFAULT_MSS, RTT, 0.0)
        lossy = csa00_transfer_time(500_000, DEFAULT_MSS, RTT, 0.03)
        assert lossy > clean

    def test_slow_start_rounds_for_lossless_medium_flow(self):
        # 30 segments at gamma=1.5 from iw=2: k rounds carry
        # 2*(1.5**k - 1)/0.5 segments, so k = ceil(log_1.5(8.5)) = 6;
        # the window limit is far away at the default rwnd.
        duration = csa00_transfer_time(30 * DEFAULT_MSS, DEFAULT_MSS, RTT, 0.0)
        assert duration == pytest.approx(6 * RTT)

    def test_deterministic(self):
        args = (123_456, DEFAULT_MSS, RTT, 0.015)
        assert csa00_transfer_time(*args) == csa00_transfer_time(*args)

    def test_invalid_rtt_rejected(self):
        with pytest.raises(ValueError):
            csa00_transfer_time(1000, DEFAULT_MSS, 0.0, 0.01)


class TestStartupExcess:
    def test_never_negative(self):
        for nbytes in (100, 10_000, 1_000_000):
            for loss in (0.0, 0.01, 0.05):
                assert startup_excess(nbytes, DEFAULT_MSS, RTT, loss) >= 0.0

    def test_small_flows_pay_relatively_more(self):
        # Slow start dominates mice; elephants amortise it away.
        small = startup_excess(8_192, DEFAULT_MSS, RTT)
        small_steady = 8_192 * 8.0 / msmo97_throughput(DEFAULT_MSS, RTT, 0.0)
        large = startup_excess(4_000_000, DEFAULT_MSS, RTT)
        large_steady = 4_000_000 * 8.0 / msmo97_throughput(DEFAULT_MSS, RTT, 0.0)
        assert small / (small + small_steady) > large / (large + large_steady)
