"""Tests for the logical clock."""

import pytest

from repro.netsim.clock import Clock, ClockError


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_starts_at_given_time(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            Clock(-1.0)

    def test_advance_returns_new_time(self):
        clock = Clock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_accumulates(self):
        clock = Clock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.now == 3.0

    def test_negative_advance_rejected(self):
        clock = Clock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_zero_advance_allowed(self):
        clock = Clock(1.0)
        assert clock.advance(0.0) == 1.0

    def test_advance_to_future(self):
        clock = Clock()
        assert clock.advance_to(4.0) == 4.0

    def test_advance_to_past_is_noop(self):
        clock = Clock(10.0)
        assert clock.advance_to(4.0) == 10.0
        assert clock.now == 10.0
