"""Property-based tests for the network substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.clock import Clock
from repro.netsim.kernel import EventKernel
from repro.netsim.network import Network
from repro.netsim.resources import InsufficientBandwidth, ResourceManager


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
def test_clock_is_monotonic(deltas):
    clock = Clock()
    previous = clock.now
    for delta in deltas:
        clock.advance(delta)
        assert clock.now >= previous
        previous = clock.now


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_kernel_fires_in_nondecreasing_time_order(delays):
    kernel = EventKernel()
    fired = []
    for delay in delays:
        kernel.schedule(delay, lambda: fired.append(kernel.clock.now))
    kernel.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


def _ring_network(n):
    net = Network()
    names = [f"h{i}" for i in range(n)]
    for name in names:
        net.add_host(name)
    for i in range(n):
        net.connect(names[i], names[(i + 1) % n], latency=0.001 * (i + 1))
    return net, names


@given(st.integers(min_value=3, max_value=12), st.data())
@settings(max_examples=30)
def test_routes_are_connected_paths(n, data):
    net, names = _ring_network(n)
    src = data.draw(st.sampled_from(names))
    dst = data.draw(st.sampled_from(names))
    path = net.route(src, dst)
    if src == dst:
        assert path == []
        return
    # The path must be a chain of adjacent links from src to dst.
    position = src
    for link in path:
        ends = set(link.endpoints())
        assert position in ends
        position = (ends - {position}).pop()
    assert position == dst


@given(
    st.integers(min_value=3, max_value=10),
    st.data(),
)
@settings(max_examples=30)
def test_route_latency_never_beaten_by_direct_link(n, data):
    net, names = _ring_network(n)
    src = data.draw(st.sampled_from(names))
    dst = data.draw(st.sampled_from(names))
    path = net.route(src, dst)
    total = sum(link.latency for link in path)
    # Dijkstra optimality spot-check: any direct link cannot be cheaper.
    try:
        direct = net.link_between(src, dst)
        assert total <= direct.latency + 1e-12
    except Exception:
        pass


@given(
    st.lists(
        st.floats(min_value=1e3, max_value=5e6, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_reservations_never_exceed_ceiling(rates):
    net = Network()
    net.add_host("a")
    net.add_host("b")
    link = net.connect("a", "b", bandwidth_bps=10e6)
    manager = ResourceManager(net)
    granted = []
    for rate in rates:
        try:
            granted.append(manager.reserve("a", "b", rate))
        except InsufficientBandwidth:
            pass
    ceiling = link.capacity_bps * ResourceManager.MAX_RESERVABLE_FRACTION
    assert link.reserved_bps <= ceiling + 1e-6
    for reservation in granted:
        manager.release(reservation)
    assert abs(link.reserved_bps) < 1e-6


@given(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=1e3, max_value=1e9, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_transfer_delay_is_nonnegative_and_monotone_in_size(nbytes, bandwidth, latency):
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", latency=latency, bandwidth_bps=bandwidth)
    small = net.transfer_delay("a", "b", nbytes)
    large = net.transfer_delay("a", "b", nbytes + 1)
    assert small >= latency
    assert large >= small
