"""Tests for fault injection."""

import pytest

from repro.netsim.faults import FaultInjector
from repro.netsim.kernel import EventKernel
from repro.netsim.network import HostCrashed, Network, NoRoute


@pytest.fixture
def world():
    kernel = EventKernel()
    net = Network(kernel.clock)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b")
    return kernel, net, FaultInjector(net, kernel)


class TestImmediateFaults:
    def test_crash_blocks_sends(self, world):
        _, net, faults = world
        faults.crash("b")
        with pytest.raises(HostCrashed):
            net.send("a", "b", 1)

    def test_recover_restores(self, world):
        _, net, faults = world
        faults.crash("b")
        faults.recover("b")
        assert net.send("a", "b", 1) >= 0

    def test_recover_resets_queue(self, world):
        kernel, net, faults = world
        net.host("b").occupy(0.0, 100.0)
        kernel.clock.advance_to(5.0)
        faults.crash("b")
        faults.recover("b")
        assert net.host("b").busy_until == 5.0

    def test_partition_and_heal(self, world):
        _, net, faults = world
        faults.partition({"a"}, {"b"})
        with pytest.raises(NoRoute):
            net.send("a", "b", 1)
        faults.heal()
        assert net.send("a", "b", 1) >= 0

    def test_set_loss_validates_rate(self, world):
        _, net, faults = world
        with pytest.raises(ValueError):
            faults.set_loss(net.link_between("a", "b"), 1.0)

    def test_log_records_events(self, world):
        _, _, faults = world
        faults.crash("b")
        faults.recover("b")
        assert [entry for _, entry in faults.log] == ["crash b", "recover b"]


class TestScheduledFaults:
    def test_crash_schedule_crashes_and_recovers(self, world):
        kernel, net, faults = world
        faults.crash_schedule([(1.0, 2.0, "b")])
        kernel.run_until(1.5)
        assert net.host("b").crashed
        kernel.run_until(2.5)
        assert not net.host("b").crashed

    def test_permanent_crash(self, world):
        kernel, net, faults = world
        faults.crash_schedule([(1.0, float("inf"), "b")])
        kernel.run_until(100.0)
        assert net.host("b").crashed

    def test_invalid_schedule_rejected(self, world):
        _, _, faults = world
        with pytest.raises(ValueError):
            faults.crash_schedule([(2.0, 1.0, "b")])

    def test_scheduling_without_kernel_rejected(self):
        net = Network()
        net.add_host("x")
        faults = FaultInjector(net)
        with pytest.raises(RuntimeError):
            faults.crash_at(1.0, "x")

    def test_partition_heal_and_loss_schedule(self, world):
        kernel, net, faults = world
        link = net.link_between("a", "b")
        faults.partition_at(1.0, {"a"}, {"b"})
        faults.heal_at(2.0)
        faults.set_loss_at(3.0, link, 0.5)
        kernel.run_until(1.5)
        with pytest.raises(NoRoute):
            net.send("a", "b", 1)
        kernel.run_until(2.5)
        assert net.send("a", "b", 1) >= 0
        assert link.loss_rate == 0.0
        kernel.run_until(3.5)
        assert link.loss_rate == 0.5

    def test_set_loss_at_validates_rate_up_front(self, world):
        kernel, net, faults = world
        with pytest.raises(ValueError):
            faults.set_loss_at(1.0, net.link_between("a", "b"), 1.0)


class TestScheduledFaultLogTimes:
    def test_log_records_scheduled_fire_time(self, world):
        """The log keeps the *scheduled* instant even when a workload
        event at the same kernel step advanced the clock far past it —
        the re-entrancy that used to stamp apply time instead."""
        kernel, net, faults = world

        def busy_workload():
            # A synchronous step that runs before the fault fires and
            # drags the clock way beyond the fault's scheduled time.
            kernel.clock.advance(10.0)

        kernel.schedule_at(0.5, busy_workload)
        faults.crash_at(1.0, "b")
        faults.recover_at(2.0, "b")
        faults.partition_at(3.0, {"a"}, {"b"})
        faults.heal_at(4.0)
        faults.set_loss_at(5.0, net.link_between("a", "b"), 0.25)
        kernel.run()
        assert [time for time, _ in faults.log] == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert [entry.split()[0] for _, entry in faults.log] == [
            "crash",
            "recover",
            "partition",
            "heal",
            "loss",
        ]

    def test_crash_schedule_log_interleaves_deterministically(self, world):
        kernel, _, faults = world
        faults.crash_schedule([(1.0, 3.0, "b"), (2.0, 4.0, "a")])
        kernel.run()
        assert faults.log == [
            (1.0, "crash b"),
            (2.0, "crash a"),
            (3.0, "recover b"),
            (4.0, "recover a"),
        ]

    def test_immediate_faults_still_stamp_clock_time(self, world):
        kernel, _, faults = world
        kernel.clock.advance_to(7.5)
        faults.crash("b")
        assert faults.log == [(7.5, "crash b")]
