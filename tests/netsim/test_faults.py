"""Tests for fault injection."""

import pytest

from repro.netsim.faults import FaultInjector
from repro.netsim.kernel import EventKernel
from repro.netsim.network import HostCrashed, Network, NoRoute


@pytest.fixture
def world():
    kernel = EventKernel()
    net = Network(kernel.clock)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b")
    return kernel, net, FaultInjector(net, kernel)


class TestImmediateFaults:
    def test_crash_blocks_sends(self, world):
        _, net, faults = world
        faults.crash("b")
        with pytest.raises(HostCrashed):
            net.send("a", "b", 1)

    def test_recover_restores(self, world):
        _, net, faults = world
        faults.crash("b")
        faults.recover("b")
        assert net.send("a", "b", 1) >= 0

    def test_recover_resets_queue(self, world):
        kernel, net, faults = world
        net.host("b").occupy(0.0, 100.0)
        kernel.clock.advance_to(5.0)
        faults.crash("b")
        faults.recover("b")
        assert net.host("b").busy_until == 5.0

    def test_partition_and_heal(self, world):
        _, net, faults = world
        faults.partition({"a"}, {"b"})
        with pytest.raises(NoRoute):
            net.send("a", "b", 1)
        faults.heal()
        assert net.send("a", "b", 1) >= 0

    def test_set_loss_validates_rate(self, world):
        _, net, faults = world
        with pytest.raises(ValueError):
            faults.set_loss(net.link_between("a", "b"), 1.0)

    def test_log_records_events(self, world):
        _, _, faults = world
        faults.crash("b")
        faults.recover("b")
        assert [entry for _, entry in faults.log] == ["crash b", "recover b"]


class TestScheduledFaults:
    def test_crash_schedule_crashes_and_recovers(self, world):
        kernel, net, faults = world
        faults.crash_schedule([(1.0, 2.0, "b")])
        kernel.run_until(1.5)
        assert net.host("b").crashed
        kernel.run_until(2.5)
        assert not net.host("b").crashed

    def test_permanent_crash(self, world):
        kernel, net, faults = world
        faults.crash_schedule([(1.0, float("inf"), "b")])
        kernel.run_until(100.0)
        assert net.host("b").crashed

    def test_invalid_schedule_rejected(self, world):
        _, _, faults = world
        with pytest.raises(ValueError):
            faults.crash_schedule([(2.0, 1.0, "b")])

    def test_scheduling_without_kernel_rejected(self):
        net = Network()
        net.add_host("x")
        faults = FaultInjector(net)
        with pytest.raises(RuntimeError):
            faults.crash_at(1.0, "x")
