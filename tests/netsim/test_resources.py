"""Tests for bandwidth reservation and capacity traces."""

import pytest

from repro.netsim.network import Network
from repro.netsim.resources import (
    InsufficientBandwidth,
    ResourceManager,
)


@pytest.fixture
def net():
    network = Network()
    network.add_host("a")
    network.add_host("b")
    network.connect("a", "b", latency=0.001, bandwidth_bps=10e6)
    return network


@pytest.fixture
def manager(net):
    return ResourceManager(net)


class TestReservation:
    def test_reserve_reduces_reservable(self, net, manager):
        link = net.link_between("a", "b")
        before = manager.reservable(link)
        manager.reserve("a", "b", 2e6)
        assert manager.reservable(link) == pytest.approx(before - 2e6)

    def test_admission_control_rejects_over_ceiling(self, manager):
        with pytest.raises(InsufficientBandwidth):
            manager.reserve("a", "b", 9.5e6)  # ceiling is 90% of 10 Mbps

    def test_rejection_reserves_nothing(self, net, manager):
        link = net.link_between("a", "b")
        with pytest.raises(InsufficientBandwidth):
            manager.reserve("a", "b", 20e6)
        assert link.reserved_bps == 0.0

    def test_multihop_reserves_every_link(self):
        net = Network()
        for name in ("a", "b", "c"):
            net.add_host(name)
        net.connect("a", "b", bandwidth_bps=10e6)
        net.connect("b", "c", bandwidth_bps=10e6)
        manager = ResourceManager(net)
        manager.reserve("a", "c", 1e6)
        assert net.link_between("a", "b").reserved_bps == pytest.approx(1e6)
        assert net.link_between("b", "c").reserved_bps == pytest.approx(1e6)

    def test_multihop_bottleneck_rejects_whole_path(self):
        net = Network()
        for name in ("a", "b", "c"):
            net.add_host(name)
        net.connect("a", "b", bandwidth_bps=10e6)
        net.connect("b", "c", bandwidth_bps=1e6)
        manager = ResourceManager(net)
        with pytest.raises(InsufficientBandwidth):
            manager.reserve("a", "c", 5e6)
        assert net.link_between("a", "b").reserved_bps == 0.0

    def test_release_restores_capacity(self, net, manager):
        link = net.link_between("a", "b")
        reservation = manager.reserve("a", "b", 2e6)
        manager.release(reservation)
        assert link.reserved_bps == 0.0
        assert not reservation.active
        assert reservation not in manager.active_reservations()

    def test_release_is_idempotent(self, net, manager):
        reservation = manager.reserve("a", "b", 2e6)
        manager.release(reservation)
        manager.release(reservation)
        assert net.link_between("a", "b").reserved_bps == 0.0

    def test_nonpositive_rate_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.reserve("a", "b", 0.0)

    def test_link_rates_map_for_active_reservation(self, net, manager):
        link = net.link_between("a", "b")
        reservation = manager.reserve("a", "b", 2e6)
        assert reservation.link_rates() == {id(link): 2e6}

    def test_link_rates_empty_after_release(self, manager):
        reservation = manager.reserve("a", "b", 2e6)
        manager.release(reservation)
        assert reservation.link_rates() == {}

    def test_reserved_flow_transfers_at_reserved_rate(self, net, manager):
        reservation = manager.reserve("a", "b", 1e6)
        # 12_500 bytes = 100_000 bits at 1 Mbps = 100ms + 1ms latency
        delay = net.transfer_delay("a", "b", 12_500, reservation.link_rates())
        assert delay == pytest.approx(0.101)


class TestCapacityTraces:
    def test_trace_applies_value_in_effect(self, net, manager):
        link = net.link_between("a", "b")
        manager.set_capacity_trace(link, [(0.0, 10e6), (5.0, 1e6)])
        net.clock.advance_to(6.0)
        manager.apply_traces()
        assert link.capacity_bps == pytest.approx(1e6)

    def test_trace_before_first_step_leaves_capacity(self, net, manager):
        link = net.link_between("a", "b")
        manager.set_capacity_trace(link, [(5.0, 1e6)])
        manager.apply_traces()  # clock at 0, before first step
        assert link.capacity_bps == pytest.approx(10e6)

    def test_unsorted_trace_rejected(self, net, manager):
        link = net.link_between("a", "b")
        with pytest.raises(ValueError):
            manager.set_capacity_trace(link, [(5.0, 1e6), (0.0, 2e6)])

    def test_empty_trace_rejected(self, net, manager):
        link = net.link_between("a", "b")
        with pytest.raises(ValueError):
            manager.set_capacity_trace(link, [])
