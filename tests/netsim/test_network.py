"""Tests for the network topology and transfer-time model."""

import pytest

from repro.netsim.network import (
    BEST_EFFORT_FLOOR,
    Host,
    HostCrashed,
    Link,
    Network,
    NoRoute,
    PacketLost,
)


@pytest.fixture
def net():
    network = Network()
    network.add_host("client")
    network.add_host("server")
    network.connect("client", "server", latency=0.010, bandwidth_bps=1e6)
    return network


class TestTopology:
    def test_duplicate_host_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_host("client")

    def test_unknown_host_raises_noroute(self, net):
        with pytest.raises(NoRoute):
            net.host("ghost")

    def test_self_link_rejected(self, net):
        with pytest.raises(ValueError):
            net.connect("client", "client")

    def test_link_between(self, net):
        link = net.link_between("client", "server")
        assert set(link.endpoints()) == {"client", "server"}

    def test_links_iterates_each_once(self, net):
        net.add_host("third")
        net.connect("server", "third")
        assert sum(1 for _ in net.links()) == 2


class TestHostQueue:
    def test_occupy_fifo(self):
        host = Host("h")
        first = host.occupy(now=0.0, service_time=1.0)
        second = host.occupy(now=0.0, service_time=1.0)
        assert first == 1.0
        assert second == 2.0

    def test_occupy_idle_host_starts_now(self):
        host = Host("h")
        host.occupy(0.0, 1.0)
        completion = host.occupy(10.0, 1.0)
        assert completion == 11.0

    def test_cpu_factor_scales_service(self):
        fast = Host("fast", cpu_factor=2.0)
        assert fast.occupy(0.0, 1.0) == 0.5

    def test_invalid_cpu_factor_rejected(self):
        with pytest.raises(ValueError):
            Host("h", cpu_factor=0.0)

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError):
            Host("h").occupy(0.0, -1.0)

    def test_reset_clears_state(self):
        host = Host("h")
        host.occupy(0.0, 5.0)
        host.crashed = True
        host.reset()
        assert not host.crashed
        assert host.busy_until == 0.0
        assert host.load == 0


class TestRouting:
    def test_direct_route(self, net):
        path = net.route("client", "server")
        assert len(path) == 1

    def test_route_to_self_is_empty(self, net):
        assert net.route("client", "client") == []

    def test_multihop_route_prefers_low_latency(self):
        net = Network()
        for name in ("a", "b", "c"):
            net.add_host(name)
        net.connect("a", "c", latency=0.100)
        net.connect("a", "b", latency=0.010)
        net.connect("b", "c", latency=0.010)
        path = net.route("a", "c")
        assert len(path) == 2  # a-b-c is faster than direct a-c

    def test_disconnected_raises(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        with pytest.raises(NoRoute):
            net.route("a", "b")

    def test_route_cache_invalidated_by_new_link(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        with pytest.raises(NoRoute):
            net.route("a", "b")
        net.connect("a", "b")
        assert len(net.route("a", "b")) == 1


class TestTransferDelay:
    def test_delay_is_latency_plus_serialisation(self, net):
        # 1250 bytes = 10_000 bits over 1 Mbps = 10ms, plus 10ms latency.
        delay = net.transfer_delay("client", "server", 1250)
        assert delay == pytest.approx(0.020)

    def test_zero_bytes_costs_latency_only(self, net):
        assert net.transfer_delay("client", "server", 0) == pytest.approx(0.010)

    def test_negative_bytes_rejected(self, net):
        with pytest.raises(ValueError):
            net.transfer_delay("client", "server", -1)

    def test_multihop_sums_links(self):
        net = Network()
        for name in ("a", "b", "c"):
            net.add_host(name)
        net.connect("a", "b", latency=0.010, bandwidth_bps=1e6)
        net.connect("b", "c", latency=0.010, bandwidth_bps=1e6)
        delay = net.transfer_delay("a", "c", 1250)
        assert delay == pytest.approx(0.040)

    def test_reservation_rate_used_when_given(self, net):
        link = net.link_between("client", "server")
        reservations = {id(link): 0.5e6}
        delay = net.transfer_delay("client", "server", 1250, reservations)
        # 10_000 bits over 0.5 Mbps = 20ms, plus 10ms latency.
        assert delay == pytest.approx(0.030)


class TestEffectiveBandwidth:
    def test_best_effort_gets_unreserved_capacity(self):
        link = Link(Host("a"), Host("b"), 0.0, 1e6)
        link.reserved_bps = 0.4e6
        assert link.effective_bandwidth(None) == pytest.approx(0.6e6)

    def test_best_effort_floor_applies(self):
        link = Link(Host("a"), Host("b"), 0.0, 1e6)
        link.reserved_bps = 1e6
        assert link.effective_bandwidth(None) == pytest.approx(
            1e6 * BEST_EFFORT_FLOOR
        )

    def test_reserved_flow_capped_by_capacity(self):
        link = Link(Host("a"), Host("b"), 0.0, 1e6)
        assert link.effective_bandwidth(2e6) == pytest.approx(1e6)


class TestSendFailures:
    def test_crashed_destination(self, net):
        net.host("server").crashed = True
        with pytest.raises(HostCrashed):
            net.send("client", "server", 100)

    def test_crashed_source(self, net):
        net.host("client").crashed = True
        with pytest.raises(HostCrashed):
            net.send("client", "server", 100)

    def test_partition_blocks_route(self, net):
        net.set_partitions([{"client"}, {"server"}])
        with pytest.raises(NoRoute):
            net.send("client", "server", 100)

    def test_heal_restores_route(self, net):
        net.set_partitions([{"client"}, {"server"}])
        net.heal_partitions()
        assert net.send("client", "server", 100) > 0

    def test_hosts_outside_groups_form_implicit_group(self):
        net = Network()
        for name in ("a", "b", "c"):
            net.add_host(name)
        net.connect("a", "b")
        net.connect("b", "c")
        net.set_partitions([{"a"}])
        with pytest.raises(NoRoute):
            net.route("a", "b")
        assert net.route("b", "c")

    def test_lossy_link_drops_deterministically(self, net):
        link = net.link_between("client", "server")
        link.loss_rate = 0.5
        outcomes = []
        for _ in range(50):
            try:
                net.send("client", "server", 10)
                outcomes.append(True)
            except PacketLost:
                outcomes.append(False)
        assert any(outcomes) and not all(outcomes)
        assert link.messages_lost == outcomes.count(False)

    def test_loss_is_reproducible_for_same_seed(self):
        def run():
            net = Network()
            net.add_host("a")
            net.add_host("b")
            net.connect("a", "b", loss_rate=0.3, seed=42)
            results = []
            for _ in range(30):
                try:
                    net.send("a", "b", 1)
                    results.append(1)
                except PacketLost:
                    results.append(0)
            return results

        assert run() == run()


class TestAccounting:
    def test_send_counts_bytes_and_messages(self, net):
        net.send("client", "server", 100)
        net.send("client", "server", 200)
        assert net.messages_sent == 2
        assert net.bytes_sent == 300
        link = net.link_between("client", "server")
        assert link.bytes_carried == 300
        assert link.messages_carried == 2
