"""Fault injection against the AMI pipeline.

The pipelining contract under partial failure: a fault that hits one
message of a flushed window fails *only that message's* future — with
the same CORBA exception types the synchronous path raises
(``HostCrashed`` → COMM_FAILURE, ``PacketLost``/``NoRoute`` →
TRANSIENT) — while the rest of the window completes normally, and
every future queued at flush time is resolved: none ever hangs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orb import World
from repro.orb.exceptions import COMM_FAILURE, TRANSIENT
from repro.orb.request import reset_request_ids
from repro.orb.servant import Servant
from repro.orb.stub import Stub


class EchoServant(Servant):
    _repo_id = "IDL:amifault/Echo:1.0"
    _default_service_time = 0.001

    def echo(self, text):
        return text.upper()


class EchoStub(Stub):
    def echo(self, text):
        return self._call("echo", text)


def build_world(latency=0.005):
    reset_request_ids()
    world = World()
    world.lan(["client", "server"], latency=latency, bandwidth_bps=10e6)
    ior = world.orb("server").poa.activate_object(EchoServant(), object_key="echo")
    return world, world.orb("client"), ior


def send_window(client, ior, count):
    stub = EchoStub(client, ior)
    return [stub.send_deferred("echo", f"m{i}") for i in range(count)]


class TestCrashMidWindow:
    def test_crash_after_kth_request_splits_the_window(self):
        """Messages received before the crash succeed; the rest fail."""
        count, crash_after = 6, 3
        world, client, ior = build_world()
        server = world.orb("server")
        received = []

        def crash_tap(direction, wire):
            if direction == "in":
                received.append(wire)
                if len(received) == crash_after:
                    world.faults.crash("server")

        server.add_wire_observer(crash_tap)
        futures = send_window(client, ior, count)
        client.ami.flush()

        assert all(f.done for f in futures)
        # The first k-1 made it there and back before the crash.
        for i, future in enumerate(futures[: crash_after - 1]):
            assert future.result() == f"M{i}"
        # The k-th was received but its reply leg hit the dead host;
        # everything after it never even reached the server.
        for future in futures[crash_after - 1 :]:
            assert future.transport_error
            assert isinstance(future.error, COMM_FAILURE)
            with pytest.raises(COMM_FAILURE):
                future.result()
        assert len(received) == crash_after

    def test_full_crash_fails_every_future(self):
        world, client, ior = build_world()
        futures = send_window(client, ior, 5)
        world.faults.crash("server")
        start = world.clock.now
        client.ami.flush()
        assert all(f.done for f in futures)
        for future in futures:
            assert isinstance(future.exception(), COMM_FAILURE)
        # The client still paid its own send-side marshal work.
        assert world.clock.now > start

    def test_crash_exception_matches_sync_path(self):
        world_a, client_a, ior_a = build_world()
        world_a.faults.crash("server")
        with pytest.raises(COMM_FAILURE) as sync_error:
            EchoStub(client_a, ior_a).echo("x")

        world_b, client_b, ior_b = build_world()
        world_b.faults.crash("server")
        future = EchoStub(client_b, ior_b).send_deferred("echo", "x")
        with pytest.raises(COMM_FAILURE) as deferred_error:
            future.result()
        assert type(deferred_error.value) is type(sync_error.value)
        assert deferred_error.value.minor == sync_error.value.minor


class TestLossMidWindow:
    def lossy_world(self, loss, seed):
        world, client, ior = build_world()
        link = world.network.link_between("client", "server")
        link.loss_rate = loss
        link._rng.seed(seed)
        return world, client, ior

    def test_lost_packets_fail_only_their_futures(self):
        # Seed chosen so this window sees both losses and successes.
        world, client, ior = self.lossy_world(0.3, seed=5)
        futures = send_window(client, ior, 10)
        client.ami.flush()
        assert all(f.done for f in futures)
        succeeded = [f for f in futures if f.error is None]
        failed = [f for f in futures if f.error is not None]
        assert succeeded and failed, "seed must exercise both outcomes"
        for i, future in enumerate(futures):
            if future.error is None:
                assert future.result() == f"M{i}"
            else:
                assert future.transport_error
                assert isinstance(future.error, TRANSIENT)

    @settings(max_examples=40, deadline=None)
    @given(
        loss=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**16),
        count=st.integers(min_value=1, max_value=12),
    )
    def test_every_future_resolves_exactly_once(self, loss, seed, count):
        """Whatever the loss pattern: no future hangs, none double-fires."""
        world, client, ior = self.lossy_world(loss, seed)
        fired = []
        futures = send_window(client, ior, count)
        for future in futures:
            future.add_done_callback(lambda f: fired.append(f.request_id))
        assert not any(f.done for f in futures)
        client.ami.flush()
        assert all(f.done for f in futures)
        # One completion callback per future — resolution is exactly-once.
        assert sorted(fired) == sorted(f.request_id for f in futures)
        for i, future in enumerate(futures):
            if future.error is None:
                assert future.result() == f"M{i}"
                assert future.ready_time >= world.clock.now or future.poll()
            else:
                assert future.transport_error
                assert isinstance(future.error, (TRANSIENT, COMM_FAILURE))
                assert isinstance(future.exception(), TRANSIENT)


class TestReliableWindowSeveredMidFlush:
    """AMI windows under the reliability mediator (see repro.reliability).

    When the bound replica dies mid-flush, failover replays *only the
    unacknowledged* futures — an acknowledged future (its reply
    correlated back) is never re-issued, and an ambiguous one (request
    received, reply leg dead) is never replayed for a non-idempotent
    operation.
    """

    def build(self, **overrides):
        from repro.reliability import reliable
        from tests.reliability.helpers import CounterStub, build_replica_world

        world, client, group, servants = build_replica_world()
        overrides.setdefault("seed", 7)
        stub = reliable(CounterStub(client, group), **overrides)
        return world, client, stub, servants

    def crash_after(self, world, host, k):
        """Crash ``host`` upon receipt of its k-th request."""
        server = world.orb(host)
        received = []

        def tap(direction, wire):
            if direction == "in":
                received.append(wire)
                if len(received) == k:
                    world.faults.crash(host)

        server.add_wire_observer(tap)
        return received

    def test_failover_replays_only_unacknowledged_futures(self):
        from repro.orb.exceptions import COMM_FAILURE
        from tests.reliability.helpers import executions

        count, crash_on = 6, 3
        world, client, stub, servants = self.build()
        self.crash_after(world, "a", crash_on)
        futures = [stub.send_deferred("add", f"t{i}", 1) for i in range(count)]
        client.ami.flush()
        assert all(f.done for f in futures)

        # Acknowledged before the crash: executed on the primary only,
        # never replayed.
        for i in range(crash_on - 1):
            assert futures[i].result() == i + 1
            assert servants["a"].executed.get(f"t{i}") == 1
        # The message the server died on: it executed, but the reply
        # leg is dead — ambiguous, so the non-idempotent add must NOT
        # be replayed; the failure surfaces.
        severed = futures[crash_on - 1]
        assert isinstance(severed.error, COMM_FAILURE)
        assert servants["a"].executed.get(f"t{crash_on - 1}") == 1
        # Unacknowledged (never reached the primary): provably
        # unexecuted, replayed through failover onto the survivors.
        for i in range(crash_on, count):
            assert futures[i].error is None
            token = f"t{i}"
            assert token not in servants["a"].executed
            assert executions(servants, token) == 1
        # The global exactly-once ledger: every token ran once.
        for i in range(count):
            assert executions(servants, f"t{i}") == 1

    def test_acknowledged_futures_keep_pipeline_results_verbatim(self):
        """A healthy window through the reliable stub is a transparent
        pass-through: same results, no replays, no retries."""
        from repro.perf.counters import COUNTERS

        world, client, stub, servants = self.build()
        futures = [stub.send_deferred("add", f"t{i}", 1) for i in range(4)]
        client.ami.flush()
        assert [f.result() for f in futures] == [1, 2, 3, 4]
        assert COUNTERS.rel_replays == 0
        assert COUNTERS.rel_retries == 0
        assert all(servants["a"].executed.get(f"t{i}") == 1 for i in range(4))

    def test_full_crash_before_flush_replays_whole_window(self):
        """The window never reached the wire: every future is provably
        unexecuted and fails over as a unit — exactly once each."""
        from repro.perf.counters import COUNTERS
        from tests.reliability.helpers import executions

        world, client, stub, servants = self.build()
        futures = [stub.send_deferred("add", f"t{i}", 1) for i in range(5)]
        world.faults.crash("a")
        client.ami.flush()
        assert all(f.done for f in futures)
        for i, future in enumerate(futures):
            assert future.error is None
            assert executions(servants, f"t{i}") == 1
            assert f"t{i}" not in servants["a"].executed
        assert COUNTERS.rel_replays == 5

    def test_done_callbacks_fire_once_with_final_outcome(self):
        world, client, stub, servants = self.build()
        self.crash_after(world, "a", 2)
        futures = [stub.send_deferred("add", f"t{i}", 1) for i in range(4)]
        fired = []
        for i, future in enumerate(futures):
            future.add_done_callback(lambda f, i=i: fired.append((i, f.error)))
        client.ami.flush()
        assert [i for i, _ in sorted(fired)] == [0, 1, 2, 3]
        assert len(fired) == 4
        # The final outcome is what the callback saw: replayed futures
        # report success, the severed one its COMM_FAILURE.
        from repro.orb.exceptions import COMM_FAILURE

        outcomes = dict(fired)
        assert outcomes[0] is None
        assert isinstance(outcomes[1], COMM_FAILURE)
        assert outcomes[2] is None and outcomes[3] is None

    def test_deadline_bounds_the_replay_too(self):
        """A deferred call's deadline survives into its replay: if the
        budget is gone by recovery time, the future settles TIMEOUT
        rather than retrying forever."""
        from repro.orb.exceptions import TIMEOUT
        from repro.reliability import reliable
        from tests.reliability.helpers import CounterStub, build_replica_world

        # A single member: failover can't save the call, and the
        # backoff would blow the deadline.
        world, client, group, servants = build_replica_world(replicas=("a",))
        stub = reliable(
            CounterStub(client, group),
            deadline=0.003,
            max_retries=5,
            base_backoff=0.01,
            jitter=0.0,
            seed=7,
        )
        future = stub.send_deferred("ping")
        world.faults.crash("a")
        client.ami.flush()
        assert future.done
        assert isinstance(future.exception(), TIMEOUT)
