"""Tier-1 calibration suite: the fluid tier must track the packet tier.

The acceptance bar of the hybrid-simulation work: on every shared
scenario, the fluid tier's per-class mean delay and goodput stay
within the stated tolerance of the per-segment packet-mode ground
truth, while spending far fewer kernel events.
"""

import pytest

from repro.netsim.fluid.calibrate import (
    DEFAULT_TOLERANCE,
    calibrate,
    compare_tiers,
    default_scenarios,
)


@pytest.fixture(scope="module")
def report():
    return calibrate()


class TestCalibration:
    def test_at_least_three_shared_scenarios(self):
        assert len(default_scenarios()) >= 3

    def test_every_scenario_within_tolerance(self, report):
        for scenario in report["scenarios"]:
            assert scenario["max_error"] <= report["tolerance"], (
                f"{scenario['scenario']}: fluid tier off by "
                f"{scenario['max_error']:.1%}"
            )

    def test_per_class_delay_and_goodput_errors(self, report):
        for scenario in report["scenarios"]:
            for name, row in scenario["classes"].items():
                assert row["delay_error"] <= DEFAULT_TOLERANCE
                assert row["goodput_error"] <= DEFAULT_TOLERANCE

    def test_overall_verdict(self, report):
        assert report["ok"] is True
        assert report["max_error"] <= report["tolerance"]

    def test_fluid_tier_is_cheaper(self, report):
        # The point of the coarse tier: far fewer events for the same
        # traffic.  Every scenario must save at least 4x.
        for scenario in report["scenarios"]:
            assert scenario["event_ratio"] >= 4.0

    def test_scenarios_exercise_distinct_regimes(self):
        names = {s.name for s in default_scenarios()}
        assert "lan_bottleneck" in names
        assert "wan_lossy" in names          # loss models engaged
        assert "reserved_contention" in names  # reservations visible

    def test_compare_is_reproducible(self):
        scenario = default_scenarios()[0]
        one = compare_tiers(scenario)
        two = compare_tiers(scenario)
        assert one["classes"] == two["classes"]
