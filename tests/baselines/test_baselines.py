"""Tests for the plain/tangled baselines and the tangling metrics."""

import pytest

from repro.baselines import (
    PlainArchiveServant,
    PlainArchiveStub,
    TangledArchiveServant,
    TangledArchiveStub,
    compare_separation,
    tangling_report,
)
from repro.orb import World


@pytest.fixture
def world():
    w = World()
    w.lan(["client", "server"], latency=0.005, bandwidth_bps=10e6)
    return w


class TestPlainBaseline:
    def test_store_and_fetch(self, world):
        ior = world.orb("server").poa.activate_object(PlainArchiveServant())
        stub = PlainArchiveStub(world.orb("client"), ior)
        stub.store("a", "alpha")
        assert stub.fetch("a") == "alpha"
        assert stub.list_paths() == ["a"]
        assert stub.size() == 1

    def test_missing_path_is_empty(self, world):
        ior = world.orb("server").poa.activate_object(PlainArchiveServant())
        stub = PlainArchiveStub(world.orb("client"), ior)
        assert stub.fetch("ghost") == ""


class TestTangledBaseline:
    @pytest.fixture
    def tangled(self, world):
        ior = world.orb("server").poa.activate_object(TangledArchiveServant())
        stub = TangledArchiveStub(world.orb("client"), ior)
        return stub

    def test_functionally_equivalent_to_woven(self, tangled):
        tangled.establish_key()
        tangled.store("doc", "short")
        assert tangled.fetch("doc") == "short"

    def test_compression_path(self, world, tangled):
        big = "repetition " * 200
        before = world.network.bytes_sent
        tangled.store("big", big)
        sent = world.network.bytes_sent - before
        assert sent < len(big)  # compressed on the wire
        tangled._cache.clear()
        assert tangled.fetch("big") == big

    def test_encryption_path(self, world, tangled):
        tangled.establish_key()
        tangled.store("secret", "classified data")
        tangled._cache.clear()
        assert tangled.fetch("secret") == "classified data"

    def test_cache_path(self, world, tangled):
        tangled.store("doc", "v")
        invoked = world.orb("client").requests_invoked
        tangled.fetch("doc")
        tangled.fetch("doc")
        assert world.orb("client").requests_invoked == invoked + 1

    def test_retry_path(self, world, tangled):
        link = world.network.link_between("client", "server")
        world.faults.set_loss(link, 0.35)
        results = [tangled.size() for _ in range(5)]
        assert all(r == 0 for r in results)


class TestTanglingMetrics:
    def test_tangled_servant_heavily_tangled(self):
        report = tangling_report(TangledArchiveServant)
        assert report.tangling_ratio > 0.4
        assert report.method_spread > 0.5

    def test_tangled_stub_heavily_tangled(self):
        report = tangling_report(TangledArchiveStub)
        assert report.tangling_ratio > 0.5

    def test_plain_servant_is_clean(self):
        report = tangling_report(PlainArchiveServant, use_markers=False)
        assert report.qos_lines == 0

    def test_woven_application_is_clean(self):
        from repro.workloads.apps import make_archive_servant_class

        report = tangling_report(
            make_archive_servant_class(), use_markers=False
        )
        assert report.tangling_ratio < 0.05

    def test_keyword_detector_approximates_markers(self):
        by_marker = tangling_report(TangledArchiveServant, use_markers=True)
        by_keyword = tangling_report(TangledArchiveServant, use_markers=False)
        assert by_keyword.qos_lines >= by_marker.qos_lines * 0.6

    def test_compare_separation_shape(self):
        from repro.workloads.apps import make_archive_servant_class

        reports = compare_separation(
            TangledArchiveServant, make_archive_servant_class()
        )
        assert reports["tangled"].tangling_ratio > 5 * reports["woven"].tangling_ratio

    def test_source_string_input(self):
        source = "def fetch(self):\n    return self.cache  # [qos]\n"
        report = tangling_report(source, "inline")
        assert report.total_lines == 2
        assert report.qos_lines == 1
        assert report.qos_methods == 1

    def test_docstrings_and_comments_excluded(self):
        source = '"""Doc\nstring."""\n# comment\nx = 1\n'
        report = tangling_report(source)
        assert report.total_lines == 1
