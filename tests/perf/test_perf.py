"""Tests for the perf instrumentation package (counters, LRU, taps)."""

import pytest

from repro.orb import World
from repro.orb.servant import Servant
from repro.orb.stub import Stub
from repro.perf import COUNTERS, LRUCache, PerfCounters, WireStats, snapshot


class TestLRUCache:
    def test_get_put_and_len(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert len(cache) == 1
        assert "a" in cache

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" is now the oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_and_miss_counters(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.hits == 2
        assert cache.misses == 1

    def test_clear(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_put_existing_key_updates_without_evicting(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.get("b") == 2


class TestPerfCounters:
    def test_enable_disable_chain(self):
        counters = PerfCounters()
        assert counters.enable() is counters
        assert counters.enabled
        counters.disable()
        assert not counters.enabled

    def test_reset_zeroes_but_keeps_enabled_flag(self):
        counters = PerfCounters().enable()
        counters.encode_calls = 5
        counters.reset()
        assert counters.encode_calls == 0
        assert counters.enabled

    def test_snapshot_derived_rates(self):
        counters = PerfCounters()
        counters.ior_parse_hits = 3
        counters.ior_parse_misses = 1
        counters.encode_calls = 2
        counters.encode_ns = 500
        snap = counters.snapshot()
        assert snap["ior_parse_hit_rate"] == pytest.approx(0.75)
        assert snap["encode_ns_per_call"] == pytest.approx(250.0)

    def test_snapshot_rates_with_no_traffic(self):
        snap = PerfCounters().snapshot()
        assert snap["ior_parse_hit_rate"] == 0.0
        assert snap["encode_ns_per_call"] == 0.0

    def test_snapshot_includes_pipeline_counters(self):
        counters = PerfCounters()
        counters.pipeline_windows = 2
        counters.pipeline_messages = 8
        counters.note_inflight(5)
        counters.note_inflight(3)  # peak never regresses
        counters.pipeline_out_of_order = 1
        snap = counters.snapshot()
        assert snap["pipeline_windows"] == 2
        assert snap["pipeline_messages"] == 8
        assert snap["pipeline_messages_per_window"] == pytest.approx(4.0)
        assert snap["pipeline_inflight_peak"] == 5
        assert snap["pipeline_out_of_order"] == 1


class _Echo(Servant):
    _repo_id = "IDL:perf/Echo:1.0"

    def echo(self, value):
        return value


class _EchoStub(Stub):
    def echo(self, value):
        return self._call("echo", value)


class TestWireStats:
    def _world(self):
        world = World()
        world.lan(["client", "server"], latency=0.001)
        ior = world.orb("server").poa.activate_object(_Echo())
        return world, _EchoStub(world.orb("client"), ior)

    def test_observer_counts_served_traffic(self):
        # The wire-observer hook fires on the serving ORB: requests in,
        # replies out.
        world, stub = self._world()
        stats = WireStats().attach(world.orb("server"))
        stub.echo("x")
        stub.echo("y")
        assert stats.messages_in == 2
        assert stats.messages_out == 2
        assert stats.bytes_in > 0
        assert stats.bytes_out > 0

    def test_detach_stops_counting(self):
        world, stub = self._world()
        stats = WireStats().attach(world.orb("server"))
        stub.echo("x")
        seen = stats.messages_in
        stats.detach(world.orb("server"))
        stub.echo("y")
        assert stats.messages_in == seen

    def test_snapshot_merges_global_counters(self):
        world, stub = self._world()
        stats = WireStats().attach(world.orb("server"))
        COUNTERS.enable()
        COUNTERS.reset()
        try:
            stub.echo("hello")
        finally:
            COUNTERS.disable()
        snap = stats.snapshot()
        assert snap["messages_in"] == 1
        # Request encode on the client plus reply encode on the server.
        assert snap["encode_calls"] >= 2
        assert snap["encode_bytes"] > 0

    def test_hot_loop_hits_wire_caches(self):
        world, stub = self._world()
        COUNTERS.reset()
        for _ in range(10):
            stub.echo("payload")
        # Steady-state: the same target IOR and the same (empty) service
        # contexts recur, so both caches should be mostly hits.
        assert COUNTERS.ior_parse_hits > COUNTERS.ior_parse_misses
        assert COUNTERS.ctx_cache_hits > COUNTERS.ctx_cache_misses


class TestModuleSnapshot:
    """The one-call ``repro.perf.snapshot`` instrument panel."""

    def test_global_snapshot_matches_counters(self):
        assert snapshot() == COUNTERS.snapshot()

    def test_orb_snapshot_merges_broker_figures(self):
        world = World()
        world.lan(["client", "server"], latency=0.001)
        ior = world.orb("server").poa.activate_object(_Echo())
        client = world.orb("client")
        stub = _EchoStub(client, ior)
        stub.echo("one")
        future = stub.send_deferred("echo", "two")
        panel = snapshot(client)
        assert panel["host"] == "client"
        assert panel["requests_invoked"] == 2
        assert panel["oneway_failures"] == 0
        assert panel["backpressure_hints_observed"] == 0
        assert panel["ami_inflight"] == 1
        assert panel["ami_queued"] == 1
        assert future.result() == "two"
        panel = snapshot(client)
        assert panel["ami_inflight"] == 0
        assert panel["ami_inflight_peak"] == 1
        # The global counter block is still present alongside.
        assert "pipeline_windows" in panel

    def test_oneway_failures_surface(self):
        world = World()
        world.lan(["client", "server"], latency=0.001)

        class _Fire(Servant):
            _repo_id = "IDL:perf/Fire:1.0"

            def ping(self):
                return None

        class _FireStub(Stub):
            _oneway_ops = frozenset({"ping"})

            def ping(self):
                return self._call("ping")

        ior = world.orb("server").poa.activate_object(_Fire())
        client = world.orb("client")
        stub = _FireStub(client, ior)
        world.faults.crash("server")
        stub.ping()  # best-effort: swallowed, but counted
        assert snapshot(client)["oneway_failures"] == 1


class TestNetsimSnapshot:
    """Kernel/network instrument panels merged into ``snapshot()``."""

    def _world(self):
        world = World()
        world.lan(["client", "server"], latency=0.001)
        ior = world.orb("server").poa.activate_object(_Echo())
        return world, _EchoStub(world.orb("client"), ior)

    def test_orb_snapshot_includes_kernel_and_network_panels(self):
        world, stub = self._world()
        stub.echo("x")
        stub.echo("y")
        panel = snapshot(world.orb("client"))
        assert panel["net_messages_sent"] == world.network.messages_sent
        assert panel["net_bytes_sent"] > 0
        assert "kernel_events_fired" in panel
        assert "kernel_compactions" in panel
        assert "kernel_cancelled_peak" in panel
        assert "kernel_live_peak" in panel

    def test_route_cache_hit_rate_exported(self):
        world, stub = self._world()
        for _ in range(5):
            stub.echo("x")
        panel = snapshot(world=world)
        assert panel["net_route_cache_misses"] >= 1
        assert panel["net_route_cache_hits"] > panel["net_route_cache_misses"]
        assert 0.0 < panel["net_route_cache_hit_rate"] <= 1.0

    def test_explicit_world_without_orb(self):
        world, _ = self._world()
        event = world.kernel.schedule(1.0, lambda: None)
        event.cancel()
        world.kernel.run()
        panel = snapshot(world=world)
        assert panel["kernel_cancelled_peak"] == 1
        assert panel["kernel_pending"] == 0
        # Global counter block still present alongside.
        assert "fluid_flowlets" in panel

    def test_fluid_counters_in_global_panel(self):
        from repro.netsim.fluid import Flowlet, FluidTier

        COUNTERS.reset()
        world, _ = self._world()
        tier = FluidTier(world.network, world.kernel)
        tier.start(Flowlet("client", "server", 25_000))
        world.kernel.run()
        panel = snapshot(world=world)
        assert panel["fluid_flowlets"] == 1
        assert panel["fluid_completions"] == 1
        assert panel["fluid_flowlet_bytes"] == 25_000
        assert panel["net_fluid_link_bytes"] == 25_000
