"""Retry/backoff semantics and deadline enforcement.

The at-most-once contract under test: retries happen only when they
cannot duplicate an execution — the operation is idempotent, or the
failure provably struck before the servant ran (forward-leg transport
errors, scheduler OVERLOAD).  Deadlines bound the whole recovery
dance and travel to the server as a service context.
"""

import pytest

from repro.orb.exceptions import COMM_FAILURE, OVERLOAD, TIMEOUT, TRANSIENT
from repro.perf.counters import COUNTERS
from repro.reliability import (
    DEADLINE_CONTEXT,
    BackoffSchedule,
    ReliabilityMediator,
    ReliabilityPolicy,
    reliable,
)
from repro.sched.scheduler import OVERLOAD_DEADLINE

from tests.reliability.helpers import (
    CounterStub,
    build_replica_world,
    executions,
)


class TestBackoffSchedule:
    def test_exponential_growth_capped(self):
        policy = ReliabilityPolicy(
            base_backoff=0.001,
            backoff_multiplier=2.0,
            max_backoff=0.004,
            jitter=0.0,
        )
        schedule = BackoffSchedule(policy)
        assert [schedule.delay(n) for n in (1, 2, 3, 4)] == [
            0.001,
            0.002,
            0.004,
            0.004,
        ]

    def test_jitter_stays_within_bounds_and_is_seeded(self):
        policy = ReliabilityPolicy(
            base_backoff=0.01, jitter=0.5, seed=42, max_backoff=1.0
        )
        first = [BackoffSchedule(policy).delay(n) for n in (1, 2, 3)]
        second = [BackoffSchedule(policy).delay(n) for n in (1, 2, 3)]
        assert first == second, "same seed must replay the same delays"
        for n, delay in enumerate(first, start=1):
            raw = 0.01 * 2.0 ** (n - 1)
            assert 0.5 * raw <= delay <= 1.5 * raw

    def test_attempts_are_one_based(self):
        schedule = BackoffSchedule(ReliabilityPolicy())
        with pytest.raises(ValueError):
            schedule.delay(0)

    def test_reseed_restarts_the_jitter_stream(self):
        schedule = BackoffSchedule(ReliabilityPolicy(jitter=0.5, seed=7))
        first = [schedule.delay(n) for n in (1, 2, 3)]
        assert schedule.draws == 3
        schedule.reseed(7)
        assert schedule.draws == 0
        assert [schedule.delay(n) for n in (1, 2, 3)] == first

    def test_policy_validation(self):
        for bad in (
            {"deadline": 0.0},
            {"max_retries": -1},
            {"backoff_multiplier": 0.5},
            {"jitter": 1.0},
            {"breaker_threshold": 0},
        ):
            with pytest.raises(ValueError):
                ReliabilityPolicy(**bad)


class TestRetrySemantics:
    def test_failover_retries_nonidempotent_send_leg_failure(self):
        """A crashed primary fails the *forward* leg: provably never
        executed, so even the non-idempotent add may be replayed on the
        next replica — and runs exactly once."""
        world, client, group, servants = build_replica_world()
        stub = reliable(CounterStub(client, group), seed=1)
        world.faults.crash("a")
        assert stub.add("t1", 5) == 5
        assert executions(servants, "t1") == 1
        assert servants["b"].executed.get("t1") == 1
        assert COUNTERS.rel_retries == 1
        assert COUNTERS.rel_failovers == 1

    def test_rebinding_persists_across_calls(self):
        world, client, group, servants = build_replica_world()
        stub = reliable(CounterStub(client, group), seed=1)
        world.faults.crash("a")
        stub.add("t1", 1)
        retries_after_first = COUNTERS.rel_retries
        stub.add("t2", 1)
        # The second call goes straight to the survivor: no new retry.
        assert COUNTERS.rel_retries == retries_after_first
        assert servants["b"].executed.get("t2") == 1

    def test_ambiguous_reply_leg_failure_never_retries_nonidempotent(self):
        """Crash the server *after* it received the request: the reply
        leg dies, execution state is ambiguous — add must surface the
        COMM_FAILURE rather than risk a duplicate."""
        world, client, group, servants = build_replica_world()
        stub = reliable(CounterStub(client, group), seed=1)
        server = world.orb("a")

        def crash_on_receipt(direction, wire):
            if direction == "in":
                world.faults.crash("a")

        server.add_wire_observer(crash_on_receipt)
        with pytest.raises(COMM_FAILURE):
            stub.add("t1", 5)
        server.remove_wire_observer(crash_on_receipt)
        # It *did* execute, exactly once — retrying would have doubled it.
        assert servants["a"].executed.get("t1") == 1
        assert executions(servants, "t1") == 1
        assert COUNTERS.rel_retries == 0

    def test_idempotent_op_retries_through_ambiguous_failure(self):
        world, client, group, servants = build_replica_world()
        stub = reliable(CounterStub(client, group), seed=1)
        server = world.orb("a")

        def crash_on_receipt(direction, wire):
            if direction == "in":
                world.faults.crash("a")

        server.add_wire_observer(crash_on_receipt)
        assert stub.ping() == "pong"  # declared idempotent on the stub
        server.remove_wire_observer(crash_on_receipt)
        assert COUNTERS.rel_retries == 1

    def test_policy_can_declare_idempotence(self):
        world, client, group, servants = build_replica_world()
        policy = ReliabilityPolicy(idempotent_ops={"add"}, seed=1)
        stub = reliable(CounterStub(client, group), policy)
        server = world.orb("a")

        def crash_on_receipt(direction, wire):
            if direction == "in":
                world.faults.crash("a")

        server.add_wire_observer(crash_on_receipt)
        # Policy says add is safe to replay: the ambiguous failure is
        # retried (and in this scenario genuinely double-executes —
        # that is the caller's declared bargain).
        assert stub.add("t1", 5) == 5
        server.remove_wire_observer(crash_on_receipt)
        assert COUNTERS.rel_retries == 1

    def test_retries_exhaust_and_surface_last_error(self):
        world, client, group, servants = build_replica_world(replicas=("a",))
        stub = reliable(
            CounterStub(client, group),
            max_retries=2,
            base_backoff=0.001,
            jitter=0.0,
            seed=1,
        )
        world.faults.crash("a")
        with pytest.raises(COMM_FAILURE):
            stub.ping()
        assert COUNTERS.rel_retries == 2
        assert COUNTERS.rel_retry_exhausted == 1

    def test_backoff_advances_simulated_time(self):
        world, client, group, servants = build_replica_world(replicas=("a",))
        stub = reliable(
            CounterStub(client, group),
            max_retries=3,
            base_backoff=0.01,
            backoff_multiplier=2.0,
            jitter=0.0,
            seed=1,
        )
        world.faults.crash("a")
        start = world.clock.now
        with pytest.raises(COMM_FAILURE):
            stub.ping()
        # Three retries waited 0.01 + 0.02 + 0.04 (plus wire attempts).
        assert world.clock.now - start >= 0.07

    def test_deterministic_errors_are_never_retried(self):
        from repro.orb.exceptions import BAD_OPERATION

        world, client, group, servants = build_replica_world()
        stub = reliable(CounterStub(client, group), seed=1)
        with pytest.raises(BAD_OPERATION):
            stub._call("no_such_operation")
        assert COUNTERS.rel_retries == 0


class TestDeadlines:
    def test_deadline_context_reaches_the_servant(self):
        world, client, group, servants = build_replica_world()
        stub = reliable(CounterStub(client, group), deadline=0.5, seed=1)
        issued_at = world.clock.now
        stub.ping()
        contexts = servants["a"].last_contexts
        assert contexts is not None
        assert contexts[DEADLINE_CONTEXT] == pytest.approx(issued_at + 0.5)

    def test_expired_budget_raises_timeout_instead_of_backing_off(self):
        world, client, group, servants = build_replica_world(replicas=("a",))
        stub = reliable(
            CounterStub(client, group),
            deadline=0.005,
            max_retries=5,
            base_backoff=0.01,
            jitter=0.0,
            seed=1,
        )
        world.faults.crash("a")
        with pytest.raises(TIMEOUT):
            stub.ping()
        assert COUNTERS.rel_deadline_expired == 1

    def test_deadline_for_next_call_validates(self):
        mediator = ReliabilityMediator(ReliabilityPolicy())
        with pytest.raises(ValueError):
            mediator.deadline_for_next_call(0.0)
        mediator.deadline_for_next_call(None)  # explicit "no deadline" is fine

    def test_deadline_for_next_call_is_one_shot(self):
        world, client, group, servants = build_replica_world()
        mediator = ReliabilityMediator(ReliabilityPolicy(seed=1))
        stub = CounterStub(client, group)
        mediator.install(stub)
        mediator.deadline_for_next_call(0.25)
        issued_at = world.clock.now
        stub.ping()
        assert servants["a"].last_contexts[DEADLINE_CONTEXT] == pytest.approx(
            issued_at + 0.25
        )
        stub.ping()
        assert DEADLINE_CONTEXT not in (servants["a"].last_contexts or {})

    def test_scheduler_sheds_requests_that_cannot_make_the_deadline(self):
        world, client, group, servants = build_replica_world(replicas=("a",))
        servants["a"]._service_times = {"ping": 0.05}
        world.orb("a").install_scheduler(policy="fifo")
        stub = reliable(
            CounterStub(client, group),
            deadline=0.01,
            max_retries=0,
            seed=1,
        )
        with pytest.raises(OVERLOAD) as caught:
            stub.ping()
        assert caught.value.minor == OVERLOAD_DEADLINE
        scheduler = world.orb("a").scheduler
        shed = scheduler.stats_snapshot()["classes"]["best-effort"]["shed_deadline"]
        assert shed == 1
        # Shed at admission — the servant never ran.
        assert servants["a"].total == 0
