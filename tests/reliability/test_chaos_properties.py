"""Deterministic chaos suite for the reliability layer.

Hypothesis draws a *fault schedule* (crashes, recoveries, link loss,
all in simulated time) and a *workload schedule* (synchronous and
deferred calls through a reliable stub), interleaves them on the event
kernel, and checks the layer's core guarantees hold for every drawn
chaos:

- **termination** — every call and every reply future settles with a
  result or a CORBA system exception; nothing hangs, nothing leaks a
  non-CORBA error out of the invocation path.
- **at-most-once** — a non-idempotent operation never executes more
  than once per token, across all replicas, no matter how the retries
  and failovers interleave with the faults.
- **determinism** — the whole simulation is a pure function of the
  drawn schedule: replaying the identical schedule yields the
  identical trace (outcomes, timestamps, execution placement).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orb.exceptions import SystemException
from repro.reliability import reliable

from tests.reliability.helpers import (
    CounterStub,
    build_replica_world,
    executions,
)

REPLICAS = ("a", "b", "c")


@st.composite
def fault_schedules(draw):
    """Crash/recover flips per replica plus optional link loss spells."""
    events = []
    for host in REPLICAS:
        flips = draw(st.integers(min_value=0, max_value=3))
        when = 0.0
        up = True
        for _ in range(flips):
            when += draw(
                st.floats(min_value=0.002, max_value=0.06, allow_nan=False)
            )
            events.append((round(when, 6), "crash" if up else "recover", host))
            up = not up
    spells = draw(st.integers(min_value=0, max_value=2))
    when = 0.0
    for _ in range(spells):
        when += draw(st.floats(min_value=0.002, max_value=0.08, allow_nan=False))
        rate = draw(st.floats(min_value=0.0, max_value=0.6, allow_nan=False))
        host = draw(st.sampled_from(REPLICAS))
        events.append((round(when, 6), "loss", host, round(rate, 3)))
    return sorted(events, key=lambda e: (e[0], e[1:]))


@st.composite
def workload_schedules(draw):
    """(time, kind) call slots; kind is sync add, deferred add, or ping."""
    count = draw(st.integers(min_value=1, max_value=8))
    slots = []
    when = 0.0
    for index in range(count):
        when += draw(st.floats(min_value=0.001, max_value=0.04, allow_nan=False))
        kind = draw(st.sampled_from(("add", "deferred_add", "ping")))
        slots.append((round(when, 6), kind, index))
    return slots


def run_scenario(fault_schedule, workload, seed):
    """Execute one chaos run; returns (trace, servants, tokens)."""
    world, client, group, servants = build_replica_world(replicas=REPLICAS)
    stub = reliable(
        CounterStub(client, group),
        max_retries=3,
        base_backoff=0.002,
        jitter=0.1,
        breaker_threshold=3,
        breaker_cooldown=0.01,
        seed=seed,
    )
    kernel = world.kernel
    trace = []
    pending = []
    tokens = []

    for event in fault_schedule:
        if event[1] == "crash":
            world.faults.crash_at(event[0], event[2])
        elif event[1] == "recover":
            world.faults.recover_at(event[0], event[2])
        else:
            link = world.network.link_between("client", event[2])
            world.faults.set_loss_at(event[0], link, event[3])

    def outcome_of(call):
        try:
            return ("ok", call())
        except SystemException as error:
            return ("err", type(error).__name__, error.minor)

    def run_slot(kind, index, at):
        token = f"t{index}"
        if kind == "add":
            tokens.append(token)
            trace.append((at, index, kind) + outcome_of(lambda: stub.add(token, 1)))
        elif kind == "deferred_add":
            tokens.append(token)
            future = stub.send_deferred("add", token, 1)
            pending.append((index, future))
            trace.append((at, index, kind, "queued"))
        else:
            trace.append((at, index, kind) + outcome_of(stub.ping))

    for at, kind, index in workload:
        kernel.schedule_at(at, run_slot, kind, index, at)
    kernel.run()

    for index, future in pending:
        future.flush()
        assert future.done, f"future {index} never settled"
        error = future.error
        if error is None:
            trace.append(("flush", index, "ok", future.result()))
        else:
            assert isinstance(error, SystemException)
            trace.append(("flush", index, "err", type(error).__name__, error.minor))
    trace.append(("end", round(world.clock.now, 9)))
    return trace, servants, tokens


class TestChaosProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        fault_schedule=fault_schedules(),
        workload=workload_schedules(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_every_call_terminates_and_nonidempotent_runs_at_most_once(
        self, fault_schedule, workload, seed
    ):
        trace, servants, tokens = run_scenario(fault_schedule, workload, seed)
        # Termination: every workload slot produced a settled outcome —
        # sync slots inline, deferred slots again at flush.
        settled = [entry for entry in trace if "ok" in entry or "err" in entry]
        queued = [entry for entry in trace if entry[-1] == "queued"]
        assert len(settled) == len(workload)
        assert all(entry[2] == "deferred_add" for entry in queued)
        # At-most-once: no token ever ran twice, anywhere; a token whose
        # call reported success ran exactly once.
        for index_token in tokens:
            ran = executions(servants, index_token)
            assert ran <= 1, f"{index_token} executed {ran} times"
        for entry in trace:
            if entry[0] == "flush" and entry[2] == "ok":
                assert executions(servants, f"t{entry[1]}") == 1
            elif len(entry) >= 4 and entry[2] == "add" and entry[3] == "ok":
                assert executions(servants, f"t{entry[1]}") == 1

    @settings(max_examples=10, deadline=None)
    @given(
        fault_schedule=fault_schedules(),
        workload=workload_schedules(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_identical_schedules_replay_identical_traces(
        self, fault_schedule, workload, seed
    ):
        first, first_servants, _ = run_scenario(fault_schedule, workload, seed)
        second, second_servants, _ = run_scenario(fault_schedule, workload, seed)
        assert first == second
        # Execution placement is part of the determinism contract too.
        assert {
            host: servant.executed for host, servant in first_servants.items()
        } == {host: servant.executed for host, servant in second_servants.items()}

    @settings(max_examples=10, deadline=None)
    @given(
        fault_schedule=fault_schedules(),
        workload=workload_schedules(),
    )
    def test_different_seeds_still_uphold_at_most_once(
        self, fault_schedule, workload
    ):
        """The safety property is seed-independent; only timing shifts."""
        for seed in (1, 99):
            trace, servants, tokens = run_scenario(fault_schedule, workload, seed)
            for token in tokens:
                assert executions(servants, token) <= 1
