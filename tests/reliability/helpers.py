"""Shared scaffolding for the reliability suites.

A small replicated deployment: one client and N replica hosts, each
serving a :class:`CounterServant` under the same logical group.  The
group IOR carries the ``GROUP_TAG`` member list the failover rotation
walks.  Execution counts are recorded per token, which is what the
at-most-once assertions (non-idempotent operations never execute
twice) key on.
"""

from repro.orb import World
from repro.orb.ior import GROUP_TAG, IOR, TaggedComponent
from repro.orb.request import reset_request_ids
from repro.orb.servant import Servant
from repro.orb.stub import Stub
from repro.perf.counters import COUNTERS


class CounterServant(Servant):
    _repo_id = "IDL:rel/Counter:1.0"
    _default_service_time = 0.0002

    def __init__(self):
        self.total = 0
        #: token -> number of times ``add(token, ...)`` ran here.
        self.executed = {}
        #: Service contexts of the last dispatched request.
        self.last_contexts = None

    def _dispatch(self, operation, args, contexts=None):
        self.last_contexts = contexts
        return super()._dispatch(operation, args, contexts)

    def ping(self):
        return "pong"

    def add(self, token, amount):
        """Non-idempotent: re-execution visibly double-counts."""
        self.executed[token] = self.executed.get(token, 0) + 1
        self.total += amount
        return self.total

    def get_total(self):
        return self.total


class CounterStub(Stub):
    _idempotent_ops = frozenset({"ping", "get_total"})

    def ping(self):
        return self._call("ping")

    def add(self, token, amount):
        return self._call("add", token, amount)

    def get_total(self):
        return self._call("get_total")


def build_replica_world(replicas=("a", "b", "c"), latency=0.0005):
    """Fresh world: client + replica hosts, a servant per replica.

    Returns ``(world, client_orb, group_ior, servants_by_host)``.
    """
    reset_request_ids()
    COUNTERS.reset()
    world = World()
    world.lan(("client",) + tuple(replicas), latency=latency, bandwidth_bps=100e6)
    servants = {}
    members = []
    for host in replicas:
        servant = CounterServant()
        servants[host] = servant
        members.append(
            world.orb(host).poa.activate_object(servant, object_key=f"ctr-{host}")
        )
    group_ior = IOR(
        members[0].type_id,
        members[0].profile,
        [
            TaggedComponent(
                GROUP_TAG,
                {
                    "group": "ctr",
                    "members": [member.to_string() for member in members],
                    "policy": "first",
                },
            )
        ],
    )
    return world, world.orb("client"), group_ior, servants


def executions(servants, token):
    """Total executions of ``token`` across every replica."""
    return sum(servant.executed.get(token, 0) for servant in servants.values())
