"""Circuit breaker state machine and replica failover rotation."""

import pytest

from repro.orb.exceptions import COMM_FAILURE, TRANSIENT
from repro.perf.counters import COUNTERS
from repro.reliability import (
    BREAKER_OPEN_MINOR,
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FailoverRotation,
    ReliabilityPolicy,
    reliable,
)

from tests.reliability.helpers import (
    CounterStub,
    build_replica_world,
    executions,
)


class TestCircuitBreakerUnit:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1.0)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state == CLOSED
        breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert not breaker.allow(0.5)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CLOSED

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1.0)
        breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert breaker.allow(1.0)  # cooldown elapsed: one probe through
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(1.0)  # only one probe at a time
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow(1.0)

    def test_failed_probe_reopens_immediately(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1.0)
        for _ in range(3):
            breaker.record_failure(0.0)
        assert breaker.allow(1.5)
        breaker.record_failure(1.5)  # probe failed: back to OPEN at once
        assert breaker.state == OPEN
        assert not breaker.allow(2.0)
        assert breaker.allow(2.5)  # next cooldown window


class TestFailoverRotationUnit:
    def test_rotation_walks_group_members(self):
        _, _, group, _ = build_replica_world()
        rotation = FailoverRotation(group)
        assert len(rotation) == 3
        hosts = [rotation.active.profile.host]
        hosts.append(rotation.advance().profile.host)
        hosts.append(rotation.advance().profile.host)
        assert hosts == ["a", "b", "c"]
        assert rotation.advance().profile.host == "a"  # wraps around

    def test_plain_ior_is_a_singleton_rotation(self):
        world, client, group, servants = build_replica_world(replicas=("a",))
        from repro.orb.ior import IOR

        plain = IOR(group.type_id, group.profile, [])
        rotation = FailoverRotation(plain)
        assert len(rotation) == 1
        assert rotation.advance() is rotation.active


class TestBreakerOnTheWire:
    def test_open_breaker_fast_fails_without_network_traffic(self):
        world, client, group, servants = build_replica_world(replicas=("a",))
        stub = reliable(
            CounterStub(client, group),
            breaker_threshold=2,
            breaker_cooldown=10.0,
            max_retries=0,
            seed=1,
        )
        world.faults.crash("a")
        for _ in range(2):
            with pytest.raises(COMM_FAILURE):
                stub.ping()
        assert COUNTERS.rel_breaker_opens == 1
        sent_before = world.network.messages_sent
        with pytest.raises(TRANSIENT) as caught:
            stub.add("t1", 1)
        assert caught.value.minor == BREAKER_OPEN_MINOR
        assert world.network.messages_sent == sent_before
        assert COUNTERS.rel_breaker_fast_fails == 1

    def test_fast_fail_is_unexecuted_so_nonidempotent_stays_safe(self):
        world, client, group, servants = build_replica_world(replicas=("a",))
        stub = reliable(
            CounterStub(client, group),
            breaker_threshold=1,
            breaker_cooldown=10.0,
            max_retries=0,
            seed=1,
        )
        world.faults.crash("a")
        with pytest.raises(COMM_FAILURE):
            stub.ping()
        with pytest.raises(TRANSIENT) as caught:
            stub.add("t1", 1)
        assert getattr(caught.value, "unexecuted", False)
        assert executions(servants, "t1") == 0

    def test_open_breaker_fast_fails_deferred_submissions_too(self):
        """A deferred call against an all-open group settles at submit
        time — it never joins a window just to die at flush."""
        world, client, group, servants = build_replica_world(replicas=("a",))
        stub = reliable(
            CounterStub(client, group),
            breaker_threshold=1,
            breaker_cooldown=10.0,
            max_retries=0,
            seed=1,
        )
        world.faults.crash("a")
        with pytest.raises(COMM_FAILURE):
            stub.ping()
        sent_before = world.network.messages_sent
        future = stub.send_deferred("add", "t1", 1)
        assert future.done
        error = future.exception()
        assert isinstance(error, TRANSIENT)
        assert error.minor == BREAKER_OPEN_MINOR
        assert world.network.messages_sent == sent_before
        assert executions(servants, "t1") == 0

    def test_half_open_probe_recovers_the_binding(self):
        world, client, group, servants = build_replica_world(replicas=("a",))
        stub = reliable(
            CounterStub(client, group),
            breaker_threshold=1,
            breaker_cooldown=0.05,
            max_retries=0,
            seed=1,
        )
        world.faults.crash("a")
        with pytest.raises(COMM_FAILURE):
            stub.ping()
        world.faults.recover("a")
        world.clock.advance(0.05)  # cooldown elapses on the sim clock
        assert stub.ping() == "pong"  # the half-open probe
        assert COUNTERS.rel_breaker_probes == 1
        # Probe succeeded: breaker closed, traffic flows normally again.
        assert stub.add("t1", 1) == 1
        assert servants["a"].executed.get("t1") == 1

    def test_breaker_retry_backs_off_into_cooldown(self):
        """When the sole member's breaker is open, the fast-fail is
        retriable-but-backed-off: the backoff advances the sim clock
        toward the cooldown instead of hot-looping."""
        world, client, group, servants = build_replica_world(replicas=("a",))
        stub = reliable(
            CounterStub(client, group),
            breaker_threshold=1,
            breaker_cooldown=0.02,
            max_retries=3,
            base_backoff=0.03,
            jitter=0.0,
            seed=1,
        )
        world.faults.crash("a")
        with pytest.raises(COMM_FAILURE):
            stub.ping()
        # Each retry backed off past the cooldown and probed the dead
        # host rather than fast-failing in a tight loop.
        probes_while_down = COUNTERS.rel_breaker_probes
        assert probes_while_down >= 1
        assert COUNTERS.rel_breaker_fast_fails == 0
        world.faults.recover("a")
        # Next call fast-fails (breaker open, cooldown not yet over),
        # backs off into the cooldown, probes, and succeeds.
        assert stub.ping() == "pong"
        assert COUNTERS.rel_breaker_fast_fails == 1
        assert COUNTERS.rel_breaker_probes == probes_while_down + 1


class TestFailoverOnTheWire:
    def test_breakers_are_per_replica(self):
        """Opening the primary's breaker must not poison the group:
        the selector skips open members and binds a healthy one."""
        world, client, group, servants = build_replica_world()
        stub = reliable(
            CounterStub(client, group),
            breaker_threshold=1,
            breaker_cooldown=10.0,
            seed=1,
        )
        world.faults.crash("a")
        assert stub.ping() == "pong"  # failover already recovered it
        # Primary breaker is open; selection skips straight to "b".
        sent_before = world.network.messages_sent
        assert stub.add("t1", 1) == 1
        assert servants["b"].executed.get("t1") == 1
        # One request/reply pair: no wasted attempt on the dead primary.
        assert world.network.messages_sent == sent_before + 2

    def test_cascading_failover_walks_the_whole_group(self):
        world, client, group, servants = build_replica_world()
        stub = reliable(CounterStub(client, group), max_retries=3, seed=1)
        world.faults.crash("a")
        world.faults.crash("b")
        assert stub.add("t1", 7) == 7
        assert servants["c"].executed.get("t1") == 1
        assert executions(servants, "t1") == 1
        assert COUNTERS.rel_failovers == 2

    def test_all_members_down_surfaces_the_failure(self):
        world, client, group, servants = build_replica_world()
        stub = reliable(
            CounterStub(client, group),
            max_retries=2,
            base_backoff=0.001,
            jitter=0.0,
            seed=1,
        )
        for host in ("a", "b", "c"):
            world.faults.crash(host)
        with pytest.raises(COMM_FAILURE):
            stub.ping()
        assert COUNTERS.rel_retry_exhausted == 1

    def test_bind_reliable_client_convenience(self):
        """End-to-end through the woven stack: a QIDL interface whose
        ``idempotent`` operation feeds the generated stub's
        ``_idempotent_ops``, replicated by the FT group manager and
        bound through :meth:`bind_reliable_client`."""
        import repro.qos as qos
        from repro.orb import World
        from repro.qos.fault_tolerance.replica_group import ReplicaGroupManager

        gen = qos.weave(
            """
            interface RCounter provides FaultTolerance {
                long increment();
                idempotent long value();
            };
            """,
            "rel_tests_counter",
        )
        assert "value" in gen.RCounterStub._idempotent_ops
        assert "increment" not in gen.RCounterStub._idempotent_ops

        class RCounterImpl(gen.RCounterServerBase):
            def __init__(self):
                super().__init__()
                self.count = 0

            def increment(self):
                self.count += 1
                return self.count

            def value(self):
                return self.count

            def get_state(self):
                return {"count": self.count}

            def set_state(self, state):
                self.count = state["count"]

        COUNTERS.reset()
        world = World()
        world.lan(("client", "a", "b"), latency=0.0005, bandwidth_bps=100e6)
        manager = ReplicaGroupManager(world, "rctr", RCounterImpl)
        manager.add_replica("a")
        manager.add_replica("b")
        stub = manager.bind_reliable_client(
            world.orb("client"), gen.RCounterStub, ReliabilityPolicy(seed=3)
        )
        world.faults.crash("a")
        # Forward-leg failure on the dead primary: even the
        # non-idempotent increment is provably unexecuted, so the
        # mediator fails over to "b" and the call runs exactly once.
        assert stub.increment() == 1
        assert manager.replica("b").count == 1
        assert manager.replica("a").count == 0
        assert COUNTERS.rel_failovers == 1
        assert stub.value() == 1
