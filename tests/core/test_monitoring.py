"""Tests for QoS monitoring."""

import math

import pytest

from repro.core.monitoring import (
    Expectation,
    MeasuringMediator,
    MetricWindow,
    QoSMonitor,
)
from repro.core.negotiation import Agreement
from repro.netsim.clock import Clock


class TestMetricWindow:
    def test_aggregates(self):
        window = MetricWindow(size=10)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.observe(value)
        assert window.mean() == 2.5
        assert window.min() == 1.0
        assert window.max() == 4.0
        assert window.last() == 4.0

    def test_p95(self):
        window = MetricWindow(size=100)
        for value in range(1, 101):
            window.observe(float(value))
        assert window.p95() == 95.0

    def test_sliding_eviction(self):
        window = MetricWindow(size=3)
        for value in (1.0, 2.0, 3.0, 10.0):
            window.observe(value)
        assert window.min() == 2.0
        assert window.total_observations == 4

    def test_empty_window_is_nan(self):
        assert math.isnan(MetricWindow().mean())

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MetricWindow(size=0)


class TestExpectation:
    @pytest.mark.parametrize(
        "comparator,bound,value,ok",
        [
            ("<=", 5.0, 5.0, True),
            ("<=", 5.0, 5.1, False),
            (">=", 5.0, 5.0, True),
            ("<", 5.0, 5.0, False),
            (">", 5.0, 6.0, True),
        ],
    )
    def test_holds(self, comparator, bound, value, ok):
        assert Expectation("m", comparator, bound).holds(value) is ok

    def test_unknown_comparator_rejected(self):
        with pytest.raises(ValueError):
            Expectation("m", "!=", 1.0)

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError):
            Expectation("m", "<=", 1.0, aggregate="median")


@pytest.fixture
def monitor():
    return QoSMonitor(Agreement("X", {}), Clock(), min_samples=3)


class TestQoSMonitor:
    def test_no_violation_during_warmup(self, monitor):
        monitor.expect(Expectation("latency", "<=", 0.01))
        assert monitor.observe("latency", 99.0) == []
        assert monitor.observe("latency", 99.0) == []

    def test_violation_after_warmup(self, monitor):
        monitor.expect(Expectation("latency", "<=", 0.01))
        for _ in range(3):
            violations = monitor.observe("latency", 1.0)
        assert violations
        assert monitor.violations

    def test_listener_notified(self, monitor):
        seen = []
        monitor.expect(Expectation("latency", "<=", 0.01)).on_violation(seen.append)
        for _ in range(3):
            monitor.observe("latency", 1.0)
        assert seen

    def test_healthy_when_within_bounds(self, monitor):
        monitor.expect(Expectation("latency", "<=", 0.5))
        for _ in range(5):
            monitor.observe("latency", 0.1)
        assert monitor.healthy()

    def test_unhealthy_on_breach(self, monitor):
        monitor.expect(Expectation("latency", "<=", 0.05))
        for _ in range(5):
            monitor.observe("latency", 0.1)
        assert not monitor.healthy()

    def test_healthy_during_warmup(self, monitor):
        monitor.expect(Expectation("latency", "<=", 0.0))
        monitor.observe("latency", 1.0)
        assert monitor.healthy()

    def test_unrelated_metric_not_checked(self, monitor):
        monitor.expect(Expectation("latency", "<=", 0.01))
        for _ in range(5):
            assert monitor.observe("throughput", 100.0) == []

    def test_report_snapshot(self, monitor):
        monitor.observe("latency", 0.1)
        monitor.observe("latency", 0.3)
        report = monitor.report()
        assert report["latency"]["mean"] == pytest.approx(0.2)
        assert report["latency"]["samples"] == 2.0


class TestMeasuringMediator:
    def test_measures_round_trips(self, world, archive):
        servant, _, _, stub = archive
        monitor = QoSMonitor(Agreement("X", {}), world.clock, min_samples=1)
        MeasuringMediator(monitor).install(stub)
        stub.size()
        stub.size()
        report = monitor.report()
        assert report["latency"]["samples"] == 2.0
        assert report["latency"]["mean"] > 0.0

    def test_measures_even_on_failure(self, world, archive):
        _, _, _, stub = archive
        monitor = QoSMonitor(Agreement("X", {}), world.clock, min_samples=1)
        MeasuringMediator(monitor).install(stub)
        world.faults.crash("server")
        with pytest.raises(Exception):
            stub.size()
        assert monitor.window("latency").total_observations == 1

    def test_stacks_over_inner_mediator(self, world, archive, gen):
        _, _, _, stub = archive
        from repro.core.binding import establish_qos
        from repro.qos.compression.payload import CompressionMediator

        # Bind Compression so the server-side impl restores payloads,
        # then stack the measuring mediator on top of the inner one.
        binding = establish_qos(
            stub, "Compression", mediator=CompressionMediator()
        )
        inner = binding.mediator
        monitor = QoSMonitor(Agreement("X", {}), world.clock, min_samples=1)
        MeasuringMediator(monitor, inner=inner).install(stub)
        stub.store("k", "v" * 1000)
        assert inner.calls_intercepted == 1
        assert monitor.window("latency").total_observations == 1
