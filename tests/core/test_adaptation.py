"""Tests for adaptation: degrade/upgrade along a level ladder."""

import pytest

from repro.core.adaptation import AdaptationLevel, AdaptationManager
from repro.core.binding import establish_qos
from repro.core.monitoring import Expectation, QoSMonitor
from repro.core.negotiation import Range
from repro.qos.actuality.freshness import ActualityMediator


LEVELS = [
    AdaptationLevel("gold", {"max_age": Range(0.1, 0.5)}),
    AdaptationLevel("silver", {"max_age": Range(0.5, 2.0)}),
    AdaptationLevel("bronze", {"max_age": Range(2.0, 10.0)}),
]


@pytest.fixture
def adaptive(world, archive):
    _, _, _, stub = archive
    mediator = ActualityMediator(cacheable={"fetch"})
    binding = establish_qos(
        stub, "Actuality", LEVELS[0].requirements, mediator=mediator
    )
    monitor = QoSMonitor(binding.agreement, world.clock, min_samples=2)
    monitor.expect(Expectation("latency", "<=", 0.05))
    manager = AdaptationManager(
        binding, monitor, LEVELS, upgrade_after_healthy_checks=2
    )
    return world, stub, binding, monitor, manager


class TestLadder:
    def test_starts_at_top(self, adaptive):
        *_, manager = adaptive
        assert manager.current_level.name == "gold"

    def test_empty_ladder_rejected(self, adaptive):
        world, _, binding, monitor, _ = adaptive
        with pytest.raises(ValueError):
            AdaptationManager(binding, monitor, [])

    def test_degrade_on_violation(self, adaptive):
        _, _, binding, monitor, manager = adaptive
        monitor.observe("latency", 1.0)
        monitor.observe("latency", 1.0)
        assert manager.check() == "degrade"
        assert manager.current_level.name == "silver"
        assert binding.agreement.epoch == 2
        assert manager.renegotiations == 1

    def test_degrades_further_on_repeat(self, adaptive):
        _, _, _, monitor, manager = adaptive
        for _ in range(2):
            monitor.observe("latency", 1.0)
            monitor.observe("latency", 1.0)
            manager.check()
        assert manager.current_level.name == "bronze"

    def test_cannot_degrade_below_bottom(self, adaptive):
        _, _, _, monitor, manager = adaptive
        for _ in range(3):
            monitor.observe("latency", 1.0)
            monitor.observe("latency", 1.0)
            manager.check()
        monitor.observe("latency", 1.0)
        monitor.observe("latency", 1.0)
        assert manager.check() is None
        assert manager.current_level.name == "bronze"

    def test_upgrade_after_sustained_health(self, adaptive):
        _, _, _, monitor, manager = adaptive
        monitor.observe("latency", 1.0)
        monitor.observe("latency", 1.0)
        manager.check()  # degrade to silver
        # Two healthy checks (warm-up keeps windows empty => healthy).
        monitor.observe("latency", 0.001)
        monitor.observe("latency", 0.001)
        assert manager.check() is None  # healthy streak 1
        assert manager.check() == "upgrade"
        assert manager.current_level.name == "gold"

    def test_track_records_moves(self, adaptive):
        _, _, _, monitor, manager = adaptive
        monitor.observe("latency", 1.0)
        monitor.observe("latency", 1.0)
        manager.check()
        assert manager.track[0][1] == 1
        assert manager.track[0][2] == "degrade"

    def test_windows_reset_after_move(self, adaptive):
        _, _, _, monitor, manager = adaptive
        monitor.observe("latency", 1.0)
        monitor.observe("latency", 1.0)
        manager.check()
        # Without fresh samples the monitor is healthy again.
        assert monitor.healthy()

    def test_violation_listener_path(self, adaptive):
        _, _, _, monitor, manager = adaptive
        monitor.on_violation(manager.on_violation)
        monitor.observe("latency", 1.0)
        monitor.observe("latency", 1.0)
        assert manager.current_level.name == "silver"
