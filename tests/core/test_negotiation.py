"""Tests for offers, capabilities, agreements and renegotiation."""

import pytest

from repro.core.binding import negotiation_stub_for
from repro.core.negotiation import (
    Agreement,
    NegotiationFailed,
    Negotiator,
    QoSOffer,
    Range,
    UnknownAgreement,
)


class TestRange:
    def test_clamp(self):
        r = Range(1.0, 5.0)
        assert r.clamp(0.0) == 1.0
        assert r.clamp(9.0) == 5.0
        assert r.clamp(3.0) == 3.0

    def test_preferred_defaults_to_maximum(self):
        assert Range(1.0, 5.0).preferred == 5.0

    def test_explicit_preferred(self):
        assert Range(1.0, 5.0, preferred=2.0).preferred == 2.0

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Range(5.0, 1.0)

    def test_preferred_outside_rejected(self):
        with pytest.raises(ValueError):
            Range(1.0, 5.0, preferred=9.0)

    def test_intersection(self):
        assert Range(1, 5).intersects(Range(4, 9))
        assert not Range(1, 3).intersects(Range(4, 9))

    def test_wire_roundtrip(self):
        r = Range(1.0, 5.0, preferred=2.0)
        restored = Range.from_wire(r.as_wire())
        assert (restored.minimum, restored.maximum, restored.preferred) == (1.0, 5.0, 2.0)


class TestOffer:
    def test_satisfied_by(self):
        offer = QoSOffer("X", {"level": Range(3, 9)})
        assert offer.satisfied_by({"level": 5})
        assert not offer.satisfied_by({"level": 2})
        assert not offer.satisfied_by({})


class TestProtocolOverWire:
    def _negotiation(self, world, archive):
        _, _, ior, _ = archive
        return negotiation_stub_for(world.orb("client"), ior)

    def test_characteristics_listed(self, world, archive):
        stub = self._negotiation(world, archive)
        assert stub.characteristics() == ["Actuality", "Compression", "Encryption"]

    def test_capabilities_roundtrip(self, world, archive):
        stub = self._negotiation(world, archive)
        capabilities = stub.capabilities("Compression")
        assert capabilities["threshold"].minimum == 64
        assert capabilities["threshold"].maximum == 4096

    def test_propose_clamps_to_capability(self, world, archive):
        stub = self._negotiation(world, archive)
        counter = stub.propose(
            QoSOffer("Compression", {"threshold": Range(32, 100_000)})
        )
        assert counter["threshold"] == 4096  # preferred=max, clamped

    def test_propose_outside_capability_fails(self, world, archive):
        stub = self._negotiation(world, archive)
        with pytest.raises(NegotiationFailed):
            stub.propose(QoSOffer("Compression", {"threshold": Range(1, 10)}))

    def test_propose_unknown_parameter_fails(self, world, archive):
        stub = self._negotiation(world, archive)
        with pytest.raises(NegotiationFailed):
            stub.propose(QoSOffer("Compression", {"sparkle": Range(0, 1)}))

    def test_propose_unknown_characteristic_fails(self, world, archive):
        stub = self._negotiation(world, archive)
        with pytest.raises(NegotiationFailed):
            stub.propose(QoSOffer("Realtime", {}))

    def test_unconstrained_parameters_granted_at_preference(self, world, archive):
        stub = self._negotiation(world, archive)
        counter = stub.propose(QoSOffer("Compression", {}))
        assert counter["threshold"] == 4096

    def test_commit_activates_characteristic(self, world, archive):
        servant, _, _, _ = archive
        stub = self._negotiation(world, archive)
        counter = stub.propose(QoSOffer("Compression", {"threshold": Range(64, 512)}))
        stub.commit("Compression", counter)
        assert servant.active_qos == "Compression"
        # Granted values were pushed into the impl via accessors.
        assert servant.qos_impl("Compression").threshold == 512

    def test_terminate_deactivates(self, world, archive):
        servant, _, _, _ = archive
        stub = self._negotiation(world, archive)
        agreement_id = stub.commit("Compression", {"threshold": 128})
        stub.terminate(agreement_id)
        assert servant.active_qos is None

    def test_terminate_unknown_agreement(self, world, archive):
        stub = self._negotiation(world, archive)
        with pytest.raises(UnknownAgreement):
            stub.terminate(99_999)

    def test_renegotiate_bumps_epoch(self, world, archive):
        stub = self._negotiation(world, archive)
        agreement_id = stub.commit("Compression", {"threshold": 128})
        assert stub.agreement_epoch(agreement_id) == 1
        granted = stub.renegotiate(agreement_id, {"threshold": Range(64, 256)})
        assert granted["threshold"] == 256
        assert stub.agreement_epoch(agreement_id) == 2


class TestNegotiator:
    def test_full_negotiation(self, world, archive):
        _, _, ior, _ = archive
        negotiator = Negotiator(negotiation_stub_for(world.orb("client"), ior))
        agreement, granted = negotiator.negotiate(
            QoSOffer("Compression", {"threshold": Range(64, 512)})
        )
        assert granted["threshold"] == 512
        assert agreement.characteristic == "Compression"
        assert negotiator.rounds == 1

    def test_unsatisfiable_counter_fails(self, world, archive):
        _, _, ior, _ = archive
        negotiator = Negotiator(negotiation_stub_for(world.orb("client"), ior))
        # Range is inside capabilities but preferred clamp cannot land
        # below the requested min when capability min is higher: force a
        # miss by requiring a minimum above capability maximum.
        with pytest.raises(NegotiationFailed):
            negotiator.negotiate(
                QoSOffer("Compression", {"threshold": Range(8192, 20_000)})
            )

    def test_renegotiate_updates_agreement(self, world, archive):
        _, _, ior, _ = archive
        negotiator = Negotiator(negotiation_stub_for(world.orb("client"), ior))
        agreement, _ = negotiator.negotiate(
            QoSOffer("Compression", {"threshold": Range(64, 512)})
        )
        granted = negotiator.renegotiate(agreement, {"threshold": Range(64, 128)})
        assert granted["threshold"] == 128
        assert agreement.epoch == 2
        assert agreement.granted == {"threshold": 128}


class TestAgreement:
    def test_ids_unique(self):
        first = Agreement("X", {})
        second = Agreement("X", {})
        assert first.agreement_id != second.agreement_id

    def test_renegotiated_replaces_grant(self):
        agreement = Agreement("X", {"a": 1})
        agreement.renegotiated({"a": 2})
        assert agreement.granted == {"a": 2}
        assert agreement.epoch == 2
