"""Tests for QoS binding: provider wiring and client establishment."""

import pytest

from repro.core.binding import (
    BindingError,
    QoSProvider,
    establish_qos,
)
from repro.core.mediator import CHARACTERISTIC_CONTEXT
from repro.core.negotiation import NegotiationFailed, Range
from repro.qos.compression.payload import CompressionImpl, CompressionMediator
from repro.qos.encryption.privacy import EncryptionMediator
from tests.core.conftest import make_archive_class


class TestProvider:
    def test_activate_tags_ior(self, archive):
        _, _, ior, _ = archive
        assert ior.is_qos_aware
        assert ior.qos_characteristics() == [
            "Actuality",
            "Compression",
            "Encryption",
        ]

    def test_tag_names_negotiator_and_modules(self, archive):
        _, _, ior, _ = archive
        from repro.orb.ior import QOS_TAG

        data = ior.component(QOS_TAG).data
        assert data["negotiator"] == "archive-negotiation"
        assert data["modules"] == {"Compression": "compression"}

    def test_mismatched_impl_rejected(self, world, gen):
        servant = make_archive_class(gen)()
        provider = QoSProvider(world, "server", servant)
        with pytest.raises(BindingError):
            provider.support("Encryption", CompressionImpl())

    def test_unassigned_characteristic_rejected(self, world, gen):
        servant = make_archive_class(gen)()
        provider = QoSProvider(world, "server", servant)
        impl = CompressionImpl()
        impl.characteristic = "Realtime"
        with pytest.raises(BindingError):
            provider.support("Realtime", impl)


class TestEstablish:
    def test_full_binding(self, archive):
        servant, _, _, stub = archive
        binding = establish_qos(
            stub,
            "Compression",
            {"threshold": Range(64, 512)},
            mediator=CompressionMediator(),
        )
        assert binding.characteristic == "Compression"
        assert binding.granted == {"threshold": 512}
        assert servant.active_qos == "Compression"
        # Mediator installed and parameterised.
        assert stub._get_mediator() is binding.mediator
        assert binding.mediator.threshold == 512

    def test_transport_module_assigned(self, world, archive):
        _, _, ior, stub = archive
        binding = establish_qos(stub, "Compression", mediator=CompressionMediator())
        client = world.orb("client")
        assert client.qos_transport.assigned_module(ior).name == "compression"
        assert binding.module_name == "compression"

    def test_characteristic_without_module_assigns_none(self, world, archive):
        _, _, ior, stub = archive
        binding = establish_qos(stub, "Encryption", mediator=EncryptionMediator())
        assert binding.module_name is None
        assert world.orb("client").qos_transport.assigned_module(ior) is None

    def test_requests_carry_characteristic_context(self, archive):
        servant, _, _, stub = archive
        establish_qos(stub, "Compression", mediator=CompressionMediator())
        seen = []
        original = servant._dispatch

        def spy(operation, args, contexts=None):
            seen.append(dict(contexts or {}))
            return original(operation, args, contexts)

        servant._dispatch = spy
        stub.size()
        assert seen[0][CHARACTERISTIC_CONTEXT] == "Compression"

    def test_unoffered_characteristic_rejected(self, archive):
        _, _, _, stub = archive
        with pytest.raises(BindingError):
            establish_qos(stub, "Realtime")

    def test_wrong_mediator_rejected(self, archive):
        _, _, _, stub = archive
        with pytest.raises(BindingError):
            establish_qos(stub, "Compression", mediator=EncryptionMediator())

    def test_unsatisfiable_requirement_propagates(self, archive):
        _, _, _, stub = archive
        with pytest.raises(NegotiationFailed):
            establish_qos(stub, "Compression", {"threshold": Range(100_000, 200_000)})

    def test_plain_stub_cannot_bind(self, world, gen):
        from repro.orb.servant import Servant

        class Plain(Servant):
            def fetch(self, path):
                return ""

        ior = world.orb("server").poa.activate_object(Plain())
        stub = gen.ArchiveStub(world.orb("client"), ior)
        with pytest.raises(BindingError):
            establish_qos(stub, "Compression")

    def test_configure_module_hook(self, world, archive):
        _, _, _, stub = archive
        calls = []
        establish_qos(
            stub,
            "Compression",
            mediator=CompressionMediator(),
            configure_module=lambda module, binding: calls.append(
                (module.name, binding)
            ),
        )
        assert calls and calls[0][0] == "compression"


class TestRelease:
    def test_release_restores_plain_stub(self, world, archive):
        servant, _, ior, stub = archive
        binding = establish_qos(stub, "Compression", mediator=CompressionMediator())
        binding.release()
        assert servant.active_qos is None
        assert stub._get_mediator() is None
        assert CHARACTERISTIC_CONTEXT not in stub._contexts
        assert world.orb("client").qos_transport.assigned_module(ior) is None

    def test_release_is_idempotent(self, archive):
        _, _, _, stub = archive
        binding = establish_qos(stub, "Compression", mediator=CompressionMediator())
        binding.release()
        binding.release()

    def test_renegotiate_after_release_rejected(self, archive):
        _, _, _, stub = archive
        binding = establish_qos(stub, "Compression", mediator=CompressionMediator())
        binding.release()
        with pytest.raises(BindingError):
            binding.renegotiate({"threshold": Range(64, 128)})

    def test_renegotiate_updates_mediator(self, archive):
        _, _, _, stub = archive
        binding = establish_qos(
            stub,
            "Compression",
            {"threshold": Range(64, 512)},
            mediator=CompressionMediator(),
        )
        binding.renegotiate({"threshold": Range(64, 128)})
        assert binding.mediator.threshold == 128
        assert binding.agreement.epoch == 2

    def test_rebinding_in_time(self, archive):
        # "This assignment can vary in time" — release one
        # characteristic and establish another on the same stub.
        servant, _, _, stub = archive
        first = establish_qos(stub, "Compression", mediator=CompressionMediator())
        first.release()
        second = establish_qos(stub, "Encryption", mediator=EncryptionMediator())
        assert servant.active_qos == "Encryption"
        second.release()
