"""Tests for the QoS manager facade (trader + contracts + negotiation)."""

import pytest

from repro.core.binding import QoSProvider
from repro.core.contracts import (
    CompositeContract,
    LeafContract,
    linear_utility,
)
from repro.core.manager import NoAcceptableOffer, QoSManager
from repro.core.negotiation import Range
from repro.core.trading import TraderServant, TraderStub
from repro.orb import World
from repro.qos.actuality.freshness import ActualityImpl, ActualityMediator
from repro.qos.compression.payload import CompressionImpl, CompressionMediator
from repro.workloads.apps import archive_module, make_archive_servant_class


@pytest.fixture
def deployment():
    world = World()
    world.lan(["client", "s1", "s2", "registry"], latency=0.003)
    trader_ior = world.orb("registry").poa.activate_object(TraderServant(), "Trader")
    trader = TraderStub(world.orb("client"), trader_ior)

    servants = {}
    # s1 offers Compression only; s2 offers Compression + Actuality.
    for host, with_actuality in (("s1", False), ("s2", True)):
        servant = make_archive_servant_class()()
        provider = QoSProvider(world, host, servant)
        provider.support(
            "Compression",
            CompressionImpl(),
            capabilities={"threshold": Range(64, 4096, preferred=256)},
        )
        if with_actuality:
            provider.support(
                "Actuality",
                ActualityImpl().attach_clock(world.clock),
                capabilities={"max_age": Range(0.1, 5.0, preferred=0.5)},
            )
        ior = provider.activate("archive")
        trader.export(
            "archive", ior,
            ["Compression"] + (["Actuality"] if with_actuality else []),
            {},
        )
        servants[host] = servant

    def price(characteristic, granted):
        return {"Compression": 1.0, "Actuality": 3.0}[characteristic]

    manager = QoSManager(world.orb("client"), trader, price)
    return world, manager, servants


FRESHNESS_FIRST = CompositeContract(
    "priority",
    [
        LeafContract(
            "Actuality", {"max_age": linear_utility(10.0, 0.0)}, budget=5.0
        ),
        LeafContract("Compression", {}, budget=5.0),
    ],
)

CHEAP_ONLY = LeafContract("Compression", {}, budget=2.0)


class TestDiscovery:
    def test_discover_finds_exports(self, deployment):
        _, manager, _ = deployment
        assert len(manager.discover("archive")) == 2

    def test_discover_unknown_type_is_empty(self, deployment):
        _, manager, _ = deployment
        assert manager.discover("database") == []

    def test_collect_offers_per_characteristic(self, deployment):
        _, manager, _ = deployment
        offers = manager.collect_offers("archive")
        kinds = sorted(offer.candidate.characteristic for offer in offers)
        assert kinds == ["Actuality", "Compression", "Compression"]

    def test_offers_carry_prices(self, deployment):
        _, manager, _ = deployment
        offers = manager.collect_offers("archive")
        prices = {o.candidate.characteristic: o.candidate.price for o in offers}
        assert prices["Actuality"] == 3.0

    def test_unreachable_server_skipped(self, deployment):
        world, manager, _ = deployment
        world.faults.crash("s1")
        offers = manager.collect_offers("archive")
        assert all(o.ior.profile.host == "s2" for o in offers)


class TestSelection:
    def test_contract_picks_freshness(self, deployment):
        _, manager, _ = deployment
        offer, score = manager.select("archive", FRESHNESS_FIRST)
        assert offer.candidate.characteristic == "Actuality"
        assert offer.ior.profile.host == "s2"
        assert score > 0.9

    def test_budget_redirects_choice(self, deployment):
        _, manager, _ = deployment
        offer, _ = manager.select("archive", CHEAP_ONLY)
        assert offer.candidate.characteristic == "Compression"

    def test_unsatisfiable_contract_raises(self, deployment):
        _, manager, _ = deployment
        impossible = LeafContract("FaultTolerance", {})
        with pytest.raises(NoAcceptableOffer):
            manager.select("archive", impossible)


class TestSelectAndBind:
    def _mediators(self, characteristic):
        return {
            "Actuality": ActualityMediator(cacheable={"fetch"}),
            "Compression": CompressionMediator(),
        }[characteristic]

    def test_one_call_binding(self, deployment):
        _, manager, servants = deployment
        stub, binding, score = manager.select_and_bind(
            "archive",
            FRESHNESS_FIRST,
            archive_module.ArchiveStub,
            mediator_factory=self._mediators,
        )
        assert binding.characteristic == "Actuality"
        assert servants["s2"].active_qos == "Actuality"
        stub.store("k", "v")
        assert stub.fetch("k") == "v"
        binding.release()

    def test_requirements_applied_for_winner(self, deployment):
        _, manager, _ = deployment
        stub, binding, _ = manager.select_and_bind(
            "archive",
            FRESHNESS_FIRST,
            archive_module.ArchiveStub,
            mediator_factory=self._mediators,
            requirements={"Actuality": {"max_age": Range(0.1, 1.0)}},
        )
        assert binding.granted["max_age"] == 1.0
        assert binding.mediator.max_age == 1.0
        binding.release()

    def test_mediatorless_binding(self, deployment):
        _, manager, servants = deployment
        stub, binding, _ = manager.select_and_bind(
            "archive", CHEAP_ONLY, archive_module.ArchiveStub
        )
        assert binding.mediator is None
        assert servants[stub._ior.profile.host].active_qos == "Compression"
        binding.release()
