"""Edge cases: adaptation when ladder levels become unavailable."""

import pytest

from repro.core.adaptation import AdaptationLevel, AdaptationManager
from repro.core.binding import QoSProvider, establish_qos
from repro.core.monitoring import Expectation, QoSMonitor
from repro.core.negotiation import Range
from repro.orb import World
from repro.qos.actuality.freshness import ActualityImpl, ActualityMediator
from repro.workloads.apps import archive_module, make_archive_servant_class

LEVELS = [
    AdaptationLevel("gold", {"max_age": Range(0.0, 0.5)}),
    AdaptationLevel("silver", {"max_age": Range(0.5, 2.0)}),
    AdaptationLevel("bronze", {"max_age": Range(2.0, 10.0)}),
]


@pytest.fixture
def deployment():
    world = World()
    world.lan(["client", "server"], latency=0.002)
    servant = make_archive_servant_class()()
    provider = QoSProvider(world, "server", servant)

    state = {"capabilities": {"max_age": Range(0.0, 10.0)}}
    provider.support(
        "Actuality",
        ActualityImpl().attach_clock(world.clock),
        capabilities_fn=lambda: dict(state["capabilities"]),
    )
    ior = provider.activate("arch")
    stub = archive_module.ArchiveStub(world.orb("client"), ior)
    binding = establish_qos(
        stub, "Actuality", LEVELS[0].requirements,
        mediator=ActualityMediator(cacheable={"fetch"}),
    )
    monitor = QoSMonitor(binding.agreement, world.clock, min_samples=2)
    monitor.expect(Expectation("latency", "<=", 0.05))
    manager = AdaptationManager(
        binding, monitor, LEVELS, upgrade_after_healthy_checks=1
    )
    return world, state, monitor, manager


def _force_violation(monitor):
    monitor.observe("latency", 1.0)
    monitor.observe("latency", 1.0)


class TestLadderAvailability:
    def test_degrade_skips_unsatisfiable_level(self, deployment):
        world, state, monitor, manager = deployment
        # The server can no longer grant silver's range, only bronze's.
        state["capabilities"] = {"max_age": Range(2.5, 10.0)}
        _force_violation(monitor)
        assert manager.check() == "degrade"
        assert manager.current_level.name == "bronze"

    def test_degrade_fails_when_nothing_grantable(self, deployment):
        world, state, monitor, manager = deployment
        state["capabilities"] = {"max_age": Range(100.0, 200.0)}  # off-ladder
        _force_violation(monitor)
        assert manager.check() is None
        assert manager.current_level.name == "gold"  # stayed put
        assert manager.renegotiations == 0

    def test_upgrade_skips_unavailable_gold(self, deployment):
        world, state, monitor, manager = deployment
        _force_violation(monitor)
        manager.check()  # -> silver
        _force_violation(monitor)
        manager.check()  # -> bronze
        assert manager.current_level.name == "bronze"
        # Gold's range is gone; an upgrade attempt lands on silver.
        state["capabilities"] = {"max_age": Range(0.5, 10.0)}
        monitor.observe("latency", 0.001)
        monitor.observe("latency", 0.001)
        assert manager.check() == "upgrade"
        assert manager.current_level.name == "silver"

    def test_epoch_advances_only_on_successful_moves(self, deployment):
        world, state, monitor, manager = deployment
        epoch_before = manager.binding.agreement.epoch
        state["capabilities"] = {"max_age": Range(100.0, 200.0)}
        _force_violation(monitor)
        manager.check()
        assert manager.binding.agreement.epoch == epoch_before
