"""Tests for preference contracts and the characteristics catalog."""

import pytest

from repro.core.catalog import CATALOG, CatalogEntry, CharacteristicCatalog
from repro.core.contracts import (
    Candidate,
    CompositeContract,
    LeafContract,
    choose,
    linear_utility,
    rank,
    step_utility,
)


class TestUtilities:
    def test_linear_rising(self):
        utility = linear_utility(0.0, 10.0)
        assert utility(0.0) == 0.0
        assert utility(5.0) == 0.5
        assert utility(10.0) == 1.0
        assert utility(20.0) == 1.0  # clamped

    def test_linear_falling(self):
        utility = linear_utility(1.0, 0.0)  # smaller is better
        assert utility(1.0) == 0.0
        assert utility(0.0) == 1.0
        assert utility(0.25) == 0.75

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            linear_utility(1.0, 1.0)

    def test_step(self):
        utility = step_utility(5.0)
        assert utility(5.0) == 1.0
        assert utility(4.9) == 0.0
        falling = step_utility(5.0, greater_is_better=False)
        assert falling(4.0) == 1.0
        assert falling(6.0) == 0.0


class TestLeafContract:
    def test_scores_matching_candidate(self):
        leaf = LeafContract("Compression", {"level": linear_utility(0, 10)})
        assert leaf.score([Candidate("Compression", {"level": 5})]) == 0.5

    def test_ignores_other_characteristics(self):
        leaf = LeafContract("Compression", {})
        assert leaf.score([Candidate("Encryption", {})]) == 0.0

    def test_budget_cap(self):
        leaf = LeafContract("Compression", {}, budget=10.0)
        assert leaf.score([Candidate("Compression", {}, price=5.0)]) == 1.0
        assert leaf.score([Candidate("Compression", {}, price=15.0)]) == 0.0

    def test_missing_parameter_scores_zero(self):
        leaf = LeafContract("Compression", {"level": linear_utility(0, 10)})
        assert leaf.score([Candidate("Compression", {})]) == 0.0

    def test_best_candidate(self):
        leaf = LeafContract("Compression", {"level": linear_utility(0, 10)})
        low = Candidate("Compression", {"level": 2})
        high = Candidate("Compression", {"level": 8})
        assert leaf.best([low, high]) is high

    def test_multiple_parameters_average(self):
        leaf = LeafContract(
            "X",
            {"a": linear_utility(0, 10), "b": linear_utility(0, 10)},
        )
        assert leaf.score([Candidate("X", {"a": 10, "b": 0})]) == 0.5

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            LeafContract("X", {}, weight=-1.0)


class TestComposites:
    def _leaves(self):
        ft = LeafContract("FaultTolerance", {"replicas": linear_utility(1, 5)})
        comp = LeafContract("Compression", {"level": linear_utility(0, 10)})
        return ft, comp

    def test_any_takes_best_child(self):
        ft, comp = self._leaves()
        contract = CompositeContract("any", [ft, comp])
        candidates = [Candidate("Compression", {"level": 8})]
        assert contract.score(candidates) == pytest.approx(0.8)

    def test_all_requires_every_child(self):
        ft, comp = self._leaves()
        contract = CompositeContract("all", [ft, comp])
        only_compression = [Candidate("Compression", {"level": 8})]
        assert contract.score(only_compression) == 0.0
        both = only_compression + [Candidate("FaultTolerance", {"replicas": 3})]
        assert contract.score(both) > 0.0

    def test_all_weighted_mean(self):
        strong = LeafContract("A", {}, weight=3.0)
        weak = LeafContract("B", {}, weight=1.0)
        contract = CompositeContract("all", [strong, weak])
        candidates = [Candidate("A", {}), Candidate("B", {})]
        assert contract.score(candidates) == 1.0

    def test_priority_prefers_first_satisfiable(self):
        ft, comp = self._leaves()
        contract = CompositeContract("priority", [ft, comp])
        # Only the second (compression) is satisfiable: discounted rank.
        score = contract.score([Candidate("Compression", {"level": 10})])
        assert score == pytest.approx(0.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CompositeContract("xor", [LeafContract("A", {})])

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            CompositeContract("all", [])


class TestChooseAndRank:
    def _contract(self):
        return CompositeContract(
            "any",
            [
                LeafContract(
                    "FaultTolerance",
                    {"replicas": linear_utility(1, 5)},
                    budget=100.0,
                ),
                LeafContract(
                    "Compression", {"level": linear_utility(0, 10)}, budget=10.0
                ),
            ],
        )

    def test_choose_picks_preferred(self):
        contract = self._contract()
        candidates = [
            Candidate("Compression", {"level": 6}, price=5.0),
            Candidate("FaultTolerance", {"replicas": 5}, price=50.0),
        ]
        chosen, score = choose(contract, candidates)
        assert chosen.characteristic == "FaultTolerance"
        assert score == 1.0

    def test_price_changes_the_choice(self):
        # "There is no system wide shared view on QoS levels especially
        # when the price is embraced."
        contract = self._contract()
        candidates = [
            Candidate("Compression", {"level": 6}, price=5.0),
            Candidate("FaultTolerance", {"replicas": 5}, price=500.0),
        ]
        chosen, _ = choose(contract, candidates)
        assert chosen.characteristic == "Compression"

    def test_nothing_acceptable(self):
        contract = self._contract()
        chosen, score = choose(
            contract, [Candidate("Compression", {"level": 5}, price=99.0)]
        )
        assert chosen is None
        assert score == 0.0

    def test_rank_orders_best_first(self):
        contract = self._contract()
        candidates = [
            Candidate("Compression", {"level": 2}, price=1.0),
            Candidate("Compression", {"level": 9}, price=1.0),
        ]
        ranking = rank(contract, candidates)
        assert [c.granted["level"] for c, _ in ranking] == [9, 2]


class TestCatalog:
    def test_all_five_characteristics_documented(self):
        import repro.qos  # noqa: F401 - registers entries

        assert set(CATALOG.names()) >= {
            "Actuality",
            "Compression",
            "Encryption",
            "FaultTolerance",
            "LoadBalancing",
        }

    def test_categories_are_diverse(self):
        import repro.qos  # noqa: F401

        assert {"fault-tolerance", "performance", "privacy", "actuality"} <= set(
            CATALOG.categories()
        )

    def test_entry_renders_both_audiences(self):
        import repro.qos  # noqa: F401

        text = CATALOG.entry("FaultTolerance").render()
        assert "For application developers" in text
        assert "For QoS implementors" in text
        assert "qos FaultTolerance" in text

    def test_render_whole_catalog(self):
        import repro.qos  # noqa: F401

        text = CATALOG.render()
        assert text.count("==") >= 10

    def test_duplicate_registration_rejected(self):
        catalog = CharacteristicCatalog()
        entry = CatalogEntry("X", "cat", "i", "a", "b", [])
        catalog.register(entry)
        with pytest.raises(ValueError):
            catalog.register(entry)

    def test_unknown_entry_rejected(self):
        with pytest.raises(KeyError):
            CharacteristicCatalog().entry("Ghost")

    def test_by_category(self):
        import repro.qos  # noqa: F401

        names = [e.name for e in CATALOG.by_category("performance")]
        assert "Compression" in names and "LoadBalancing" in names
