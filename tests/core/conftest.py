"""Shared fixtures: a woven Archive service with full QoS support."""

import pytest

import repro.qos as qos
from repro.core.binding import QoSProvider
from repro.core.negotiation import Range
from repro.orb import World
from repro.qos.actuality.freshness import ActualityImpl
from repro.qos.compression.payload import CompressionImpl
from repro.qos.encryption.privacy import EncryptionImpl

ARCHIVE_QIDL = """
interface Archive provides Compression, Encryption, Actuality {
    string fetch(in string path);
    void store(in string path, in string content);
    long size();
};
"""


@pytest.fixture(scope="session")
def gen():
    return qos.weave(ARCHIVE_QIDL, "core_tests_archive")


@pytest.fixture
def world():
    w = World()
    w.lan(["client", "server", "other"], latency=0.005, bandwidth_bps=10e6)
    return w


def make_archive_class(gen):
    class ArchiveImpl(gen.ArchiveServerBase):
        def __init__(self):
            super().__init__()
            self.files = {}

        def fetch(self, path):
            return self.files.get(path, "")

        def store(self, path, content):
            self.files[path] = content
            return None

        def size(self):
            return len(self.files)

    return ArchiveImpl


@pytest.fixture
def archive(world, gen):
    """Returns (servant, provider, ior, stub)."""
    servant = make_archive_class(gen)()
    provider = QoSProvider(world, "server", servant)
    provider.support(
        "Compression",
        CompressionImpl(),
        capabilities={"threshold": Range(64, 4096)},
        module_name="compression",
    )
    provider.support("Encryption", EncryptionImpl(), capabilities={})
    provider.support(
        "Actuality",
        ActualityImpl().attach_clock(world.clock),
        capabilities={"max_age": Range(0.1, 10.0)},
    )
    ior = provider.activate("archive")
    stub = gen.ArchiveStub(world.orb("client"), ior)
    return servant, provider, ior, stub
