"""Tests for accounting and trading."""

import pytest

from repro.core.accounting import AccountingService, MeteringMediator, Tariff
from repro.core.negotiation import Agreement
from repro.core.trading import NoMatch, TraderServant, TraderStub


class TestTariff:
    def test_linear_pricing(self):
        tariff = Tariff(setup_fee=10.0, per_call=0.5, per_second=2.0)
        assert tariff.price(4, 3.0) == 10.0 + 2.0 + 6.0

    def test_zero_tariff(self):
        assert Tariff().price(100, 100.0) == 0.0


class TestAccountingService:
    def test_usage_accumulates(self):
        service = AccountingService()
        agreement = Agreement("Compression", {})
        service.open_account(agreement, Tariff(per_call=1.0))
        service.record(agreement.agreement_id, 0.5)
        service.record(agreement.agreement_id, 0.25, failed=True)
        usage = service.usage(agreement.agreement_id)
        assert usage.calls == 2
        assert usage.busy_seconds == 0.75
        assert usage.failures == 1

    def test_invoice(self):
        service = AccountingService()
        agreement = Agreement("X", {})
        service.open_account(agreement, Tariff(setup_fee=5.0, per_call=2.0))
        service.record(agreement.agreement_id, 0.1)
        invoice = service.invoice(agreement.agreement_id)
        assert invoice["amount"] == 7.0
        assert invoice["calls"] == 1.0

    def test_unknown_agreement_rejected(self):
        with pytest.raises(KeyError):
            AccountingService().record(42, 0.1)

    def test_total_billed(self):
        service = AccountingService()
        for _ in range(2):
            agreement = Agreement("X", {})
            service.open_account(agreement, Tariff(per_call=1.0))
            service.record(agreement.agreement_id, 0.0)
        assert service.total_billed() == 2.0


class TestMeteringMediator:
    def test_meters_calls_over_wire(self, world, archive):
        _, _, _, stub = archive
        service = AccountingService()
        agreement = Agreement("Compression", {})
        service.open_account(agreement, Tariff(per_call=0.1))
        MeteringMediator(service, agreement).install(stub)
        stub.size()
        stub.size()
        invoice = service.invoice(agreement.agreement_id)
        assert invoice["calls"] == 2.0
        assert invoice["busy_seconds"] > 0.0
        assert invoice["amount"] == pytest.approx(0.2)

    def test_failures_billed_and_flagged(self, world, archive):
        _, _, _, stub = archive
        service = AccountingService()
        agreement = Agreement("Compression", {})
        service.open_account(agreement)
        MeteringMediator(service, agreement).install(stub)
        world.faults.crash("server")
        with pytest.raises(Exception):
            stub.size()
        assert service.usage(agreement.agreement_id).failures == 1


@pytest.fixture
def trader(world):
    servant = TraderServant()
    ior = world.orb("server").poa.activate_object(servant, "Trader")
    return TraderStub(world.orb("client"), ior)


class TestTrader:
    def _export(self, trader, world, name, characteristics, properties):
        from repro.orb.ior import IOR, IIOPProfile

        ior = IOR("IDL:demo/Svc:1.0", IIOPProfile("server", 683, name))
        trader.export("archive", ior, characteristics, properties)
        return ior

    def test_query_by_characteristic(self, trader, world):
        fast = self._export(trader, world, "fast", ["Compression"], {"speed": 9.0})
        self._export(trader, world, "plain", [], {"speed": 5.0})
        matches = trader.query("archive", "Compression")
        assert matches == [fast]

    def test_ranking(self, trader, world):
        slow = self._export(trader, world, "slow", ["Compression"], {"speed": 1.0})
        fast = self._export(trader, world, "fast", ["Compression"], {"speed": 9.0})
        matches = trader.query("archive", "Compression", rank_by="speed")
        assert matches == [fast, slow]

    def test_property_constraints(self, trader, world):
        self._export(trader, world, "slow", ["Compression"], {"speed": 1.0})
        fast = self._export(trader, world, "fast", ["Compression"], {"speed": 9.0})
        matches = trader.query(
            "archive", "Compression", minimum_properties={"speed": 5.0}
        )
        assert matches == [fast]

    def test_no_match_raises(self, trader):
        with pytest.raises(NoMatch):
            trader.query("archive", "Compression")

    def test_withdraw(self, trader, world):
        self._export(trader, world, "svc", ["Compression"], {})
        assert trader.withdraw(0)
        assert not trader.withdraw(0)
        assert trader.offer_count() == 0

    def test_service_type_mismatch(self, trader, world):
        self._export(trader, world, "svc", ["Compression"], {})
        with pytest.raises(NoMatch):
            trader.query("database", "Compression")
