"""Property-based tests for core-layer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contracts import Candidate, LeafContract, linear_utility
from repro.core.monitoring import MetricWindow
from repro.core.negotiation import Range

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(finite, finite, finite)
def test_range_clamp_always_inside(a, b, value):
    low, high = min(a, b), max(a, b)
    r = Range(low, high)
    clamped = r.clamp(value)
    assert low <= clamped <= high
    if r.contains(value):
        assert clamped == value


@given(finite, finite)
def test_range_wire_roundtrip(a, b):
    low, high = min(a, b), max(a, b)
    r = Range(low, high, preferred=(low + high) / 2)
    restored = Range.from_wire(r.as_wire())
    assert restored.minimum == r.minimum
    assert restored.maximum == r.maximum
    assert restored.preferred == r.preferred


@given(finite, finite, finite, finite)
def test_range_intersection_is_symmetric(a, b, c, d):
    first = Range(min(a, b), max(a, b))
    second = Range(min(c, d), max(c, d))
    assert first.intersects(second) == second.intersects(first)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    st.integers(min_value=1, max_value=50),
)
def test_metric_window_aggregates_are_consistent(values, size):
    window = MetricWindow(size=size)
    for value in values:
        window.observe(value)
    kept = values[-size:]
    epsilon = 1e-9 * (1.0 + abs(max(kept)))
    assert window.min() == min(kept)
    assert window.max() == max(kept)
    assert window.min() - epsilon <= window.mean() <= window.max() + epsilon
    assert window.min() <= window.p95() <= window.max()
    assert window.last() == kept[-1]
    assert window.total_observations == len(values)


@given(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.01, max_value=1e3, allow_nan=False),
)
def test_leaf_contract_scores_bounded(value, budget):
    leaf = LeafContract(
        "X", {"p": linear_utility(0.0, 100.0)}, budget=budget
    )
    candidate = Candidate("X", {"p": value}, price=budget / 2)
    score = leaf.score([candidate])
    assert 0.0 <= score <= 1.0


@given(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_utility_monotone(value):
    utility = linear_utility(0.0, 100.0)
    assert utility(value) <= utility(min(value + 1.0, 100.0)) + 1e-12
