"""Genericity: a user-defined characteristic via public extension points.

The paper's headline property (Section 2.1): "Generic QoS management
architectures allow the definition and implementation of arbitrary QoS
characteristics."  This test defines a throttling characteristic that
exists nowhere in the library and runs it through the full pipeline:
registration → weaving → provider → negotiation → enforcement.
"""

import pytest

import repro.qos as qos
from repro.core.binding import QoSProvider, establish_qos
from repro.core.mediator import Mediator
from repro.core.negotiation import Range
from repro.core.qos_skeleton import QoSImplementation
from repro.orb import World
from repro.orb.exceptions import BAD_QOS, NO_RESOURCES

THROTTLE_QIDL = """
qos Throttling {
    attribute double calls_per_second;
    management long denied();
};
"""


class ThrottlingMediator(Mediator):
    characteristic = "Throttling"

    def __init__(self):
        super().__init__()
        self.calls_per_second = 10.0


class ThrottlingImpl(QoSImplementation):
    """Server-side token-bucket admission control in the prolog."""

    characteristic = "Throttling"

    def __init__(self, clock=None):
        self.calls_per_second = 10.0
        self._clock = clock
        self._window_start = 0.0
        self._window_calls = 0
        self._denied = 0

    def attach_clock(self, clock):
        self._clock = clock
        return self

    def get_calls_per_second(self):
        return self.calls_per_second

    def set_calls_per_second(self, value):
        self.calls_per_second = float(value)

    def denied(self):
        return self._denied

    def prolog(self, servant, operation, args, contexts):
        now = contexts.get("maqs.arrival_time", self._clock.now)
        if now - self._window_start >= 1.0:
            self._window_start = now
            self._window_calls = 0
        self._window_calls += 1
        if self._window_calls > self.calls_per_second:
            self._denied += 1
            raise NO_RESOURCES(
                f"rate limit {self.calls_per_second}/s exceeded"
            )
        return None


@pytest.fixture(scope="module", autouse=True)
def registered():
    if "Throttling" not in qos.REGISTRY:
        qos.register_characteristic(
            qos.Characteristic(
                name="Throttling",
                category="load-control",
                qidl=THROTTLE_QIDL,
                mediator_class=ThrottlingMediator,
                impl_class=ThrottlingImpl,
            )
        )
    yield


@pytest.fixture(scope="module")
def gen():
    return qos.weave(
        "interface Api provides Throttling { long hit(); };",
        "custom_char_api",
    )


@pytest.fixture
def deployment(gen):
    world = World()
    world.lan(["client", "server"], latency=0.0001)

    class ApiImpl(gen.ApiServerBase):
        def __init__(self):
            super().__init__()
            self.count = 0

        def hit(self):
            self.count += 1
            return self.count

    servant = ApiImpl()
    provider = QoSProvider(world, "server", servant)
    provider.support(
        "Throttling",
        ThrottlingImpl().attach_clock(world.clock),
        capabilities={"calls_per_second": Range(1.0, 100.0, preferred=5.0)},
    )
    ior = provider.activate("api")
    stub = gen.ApiStub(world.orb("client"), ior)
    return world, servant, stub


class TestCustomCharacteristic:
    def test_registration_visible(self):
        assert "Throttling" in qos.REGISTRY
        assert qos.get_characteristic("Throttling").category == "load-control"

    def test_weaving_generates_server_base(self, gen):
        assert "Throttling" in gen.ApiServerBase._qos_signatures

    def test_qos_ops_gated_before_negotiation(self, deployment):
        _, _, stub = deployment
        with pytest.raises(BAD_QOS):
            stub.denied()

    def test_negotiated_rate_enforced(self, deployment):
        world, servant, stub = deployment
        binding = establish_qos(
            stub,
            "Throttling",
            {"calls_per_second": Range(1.0, 10.0, preferred=5.0)},
            mediator=ThrottlingMediator(),
        )
        assert binding.granted["calls_per_second"] == 5.0

        allowed = 0
        denied = 0
        for _ in range(12):  # all within one 1-second window
            try:
                stub.hit()
                allowed += 1
            except NO_RESOURCES:
                denied += 1
        assert allowed == 5
        assert denied == 7
        assert stub.denied() == 7

    def test_window_resets_over_time(self, deployment):
        world, _, stub = deployment
        binding = establish_qos(
            stub,
            "Throttling",
            {"calls_per_second": Range(1.0, 10.0, preferred=2.0)},
            mediator=ThrottlingMediator(),
        )
        for _ in range(2):
            stub.hit()
        with pytest.raises(NO_RESOURCES):
            stub.hit()
        world.clock.advance(1.1)
        assert stub.hit() > 0  # fresh window

    def test_renegotiation_changes_rate(self, deployment):
        world, servant, stub = deployment
        binding = establish_qos(
            stub,
            "Throttling",
            {"calls_per_second": Range(1.0, 10.0, preferred=2.0)},
            mediator=ThrottlingMediator(),
        )
        binding.renegotiate({"calls_per_second": Range(1.0, 50.0, preferred=50.0)})
        assert servant.qos_impl("Throttling").calls_per_second == 50.0
        for _ in range(20):
            stub.hit()  # far above the old limit

    def test_catalog_independent(self):
        # The characteristic works without a catalog entry — the
        # catalog is documentation, not wiring.
        from repro.core.catalog import CATALOG

        assert "Throttling" not in CATALOG.names() or True
