"""Tests for the payload characteristics: Compression, Encryption, Actuality."""

import pytest

from repro.core.binding import establish_qos
from repro.core.negotiation import Range
from repro.orb.exceptions import BAD_PARAM, NO_PERMISSION
from repro.qos.actuality.freshness import ActualityImpl, ActualityMediator
from repro.qos.compression.payload import (
    CompressionImpl,
    CompressionMediator,
    compress_value,
    decompress_value,
    is_compressed,
)
from repro.qos.encryption.privacy import (
    EncryptionImpl,
    EncryptionMediator,
    decrypt_value,
    encrypt_value,
    is_encrypted,
)


LARGE_TEXT = "the quick brown fox " * 200


class TestCompressionHelpers:
    def test_large_text_compressed(self):
        packed = compress_value(LARGE_TEXT, "lz", 64)
        assert is_compressed(packed)
        assert decompress_value(packed) == LARGE_TEXT

    def test_bytes_roundtrip(self):
        payload = b"\x00\x01" * 500
        packed = compress_value(payload, "rle", 64)
        assert decompress_value(packed) == payload

    def test_small_value_passes_through(self):
        assert compress_value("tiny", "lz", 64) == "tiny"

    def test_non_payload_passes_through(self):
        assert compress_value(42, "lz", 0) == 42

    def test_incompressible_passes_through(self):
        no_runs = bytes(range(256)) * 2  # RLE finds nothing to collapse
        assert compress_value(no_runs, "rle", 64) == no_runs


class TestCompressionBinding:
    def test_wire_bytes_shrink(self, world, archive_deployment):
        _, _, _, stub = archive_deployment
        before = world.network.bytes_sent
        stub.store("plain", LARGE_TEXT)
        plain_bytes = world.network.bytes_sent - before

        binding = establish_qos(
            stub,
            "Compression",
            {"threshold": Range(64, 64)},
            mediator=CompressionMediator(),
        )
        before = world.network.bytes_sent
        stub.store("packed", LARGE_TEXT)
        packed_bytes = world.network.bytes_sent - before
        assert packed_bytes < plain_bytes / 3
        binding.release()

    def test_server_sees_plaintext(self, world, archive_deployment):
        servant, _, _, stub = archive_deployment
        establish_qos(
            stub,
            "Compression",
            {"threshold": Range(64, 64)},
            mediator=CompressionMediator(),
        )
        stub.store("doc", LARGE_TEXT)
        assert servant.files["doc"] == LARGE_TEXT

    def test_results_compressed_and_restored(self, world, archive_deployment):
        servant, _, _, stub = archive_deployment
        servant.files["doc"] = LARGE_TEXT
        establish_qos(
            stub,
            "Compression",
            {"threshold": Range(64, 64)},
            mediator=CompressionMediator(),
        )
        assert stub.fetch("doc") == LARGE_TEXT

    def test_observed_ratio(self, world, archive_deployment):
        _, _, _, stub = archive_deployment
        binding = establish_qos(
            stub,
            "Compression",
            {"threshold": Range(64, 64)},
            mediator=CompressionMediator(),
        )
        stub.store("doc", LARGE_TEXT)
        assert binding.mediator.observed_ratio() < 0.5

    def test_cpu_cost_advances_clock(self, world, archive_deployment):
        _, _, _, stub = archive_deployment
        mediator = CompressionMediator(threshold=64)
        before = world.clock.now
        mediator.before_request(stub, "store", ("k", LARGE_TEXT))
        assert world.clock.now > before

    def test_impl_parameter_validation(self):
        impl = CompressionImpl()
        with pytest.raises(BAD_PARAM):
            impl.set_codec("middle-out")
        with pytest.raises(BAD_PARAM):
            impl.set_threshold(-1)


class TestEncryptionBinding:
    def _bind(self, stub):
        mediator = EncryptionMediator()
        binding = establish_qos(stub, "Encryption", mediator=mediator)
        mediator.establish_key(stub)
        return binding, mediator

    def test_roundtrip(self, world, archive_deployment):
        _, _, _, stub = archive_deployment
        self._bind(stub)
        stub.store("secret", "classified")
        assert stub.fetch("secret") == "classified"

    def test_server_sees_plaintext_app_data(self, world, archive_deployment):
        servant, _, _, stub = archive_deployment
        self._bind(stub)
        stub.store("secret", "classified")
        assert servant.files["secret"] == "classified"

    def test_key_never_crosses_wire(self, world, archive_deployment):
        servant, provider, _, stub = archive_deployment
        binding, mediator = self._bind(stub)
        impl = servant.qos_impl("Encryption")
        key_id = mediator.key_id
        assert impl._keys[key_id] == mediator._keys[key_id]

    def test_call_without_key_rejected(self, world, archive_deployment):
        _, _, _, stub = archive_deployment
        establish_qos(stub, "Encryption", mediator=EncryptionMediator())
        with pytest.raises(NO_PERMISSION):
            stub.store("k", "v")

    def test_key_rotation_on_the_fly(self, world, archive_deployment):
        _, _, _, stub = archive_deployment
        _, mediator = self._bind(stub)
        first = mediator.key_id
        stub.store("a", "1")
        mediator.establish_key(stub)  # rotate
        assert mediator.key_id != first
        stub.store("b", "2")
        assert stub.fetch("b") == "2"
        assert mediator.handshakes == 2

    def test_dropped_server_key_rejected(self, world, archive_deployment):
        servant, _, _, stub = archive_deployment
        _, mediator = self._bind(stub)
        servant.qos_impl("Encryption").drop_key(mediator.key_id)
        with pytest.raises(NO_PERMISSION):
            stub.store("k", "v")

    def test_helpers_roundtrip(self):
        key = b"0123456789abcdef"
        sealed = encrypt_value("secret", "xtea-ctr", "k1", key)
        assert is_encrypted(sealed)
        assert sealed["data"] != b"secret"
        assert decrypt_value(sealed, {"k1": key}) == "secret"

    def test_helpers_missing_key(self):
        key = b"0123456789abcdef"
        sealed = encrypt_value("secret", "arc4", "k1", key)
        with pytest.raises(NO_PERMISSION):
            decrypt_value(sealed, {})

    def test_impl_cipher_validation(self):
        impl = EncryptionImpl()
        with pytest.raises(BAD_PARAM):
            impl.set_cipher("rot13")


class TestActualityBinding:
    def _bind(self, stub, max_age=5.0):
        mediator = ActualityMediator(cacheable={"fetch", "size"}, max_age=max_age)
        binding = establish_qos(
            stub, "Actuality", {"max_age": Range(0.1, max_age)}, mediator=mediator
        )
        return binding, mediator

    def test_cache_hits_save_round_trips(self, world, archive_deployment):
        _, _, _, stub = archive_deployment
        _, mediator = self._bind(stub)
        invoked_before = world.orb("client").requests_invoked
        stub.fetch("doc")
        stub.fetch("doc")
        stub.fetch("doc")
        assert mediator.hits == 2
        assert world.orb("client").requests_invoked == invoked_before + 1

    def test_staleness_bounded_by_max_age(self, world, archive_deployment):
        servant, _, _, stub = archive_deployment
        _, mediator = self._bind(stub, max_age=1.0)
        servant.files["doc"] = "v1"
        assert stub.fetch("doc") == "v1"
        servant.files["doc"] = "v2"
        assert stub.fetch("doc") == "v1"  # cached, inside max_age
        world.clock.advance(2.0)
        assert stub.fetch("doc") == "v2"  # expired: re-fetched

    def test_uncacheable_ops_always_issue(self, world, archive_deployment):
        _, _, _, stub = archive_deployment
        _, mediator = self._bind(stub)
        stub.store("a", "1")
        stub.store("a", "2")
        assert mediator.hits == 0

    def test_invalidate_operation(self, world, archive_deployment):
        servant, _, _, stub = archive_deployment
        _, mediator = self._bind(stub)
        servant.files["doc"] = "v1"
        stub.fetch("doc")
        servant.files["doc"] = "v2"
        mediator.invalidate("fetch")
        assert stub.fetch("doc") == "v2"

    def test_invalidate_all(self, world, archive_deployment):
        _, _, _, stub = archive_deployment
        _, mediator = self._bind(stub)
        stub.fetch("a")
        stub.size()
        assert mediator.invalidate() == 2

    def test_renegotiated_max_age_applies(self, world, archive_deployment):
        _, _, _, stub = archive_deployment
        binding, mediator = self._bind(stub, max_age=5.0)
        binding.renegotiate({"max_age": Range(0.1, 0.5)})
        assert mediator.max_age == 0.5

    def test_impl_stamps_writes(self, world, archive_deployment):
        servant, _, _, stub = archive_deployment
        self._bind(stub)
        impl = servant.qos_impl("Actuality")
        stub.store("k", "v")  # epilog sees operation 'store'... not set_*
        impl.touch()
        assert impl.last_modified() == world.clock.now

    def test_impl_max_age_validation(self):
        with pytest.raises(BAD_PARAM):
            ActualityImpl().set_max_age(-1.0)
