"""Tests for the load-balancing characteristic."""

import pytest

from repro.orb.exceptions import BAD_PARAM, COMM_FAILURE
from repro.qos.load_balancing import (
    AdaptivePolicy,
    LeastUsedPolicy,
    LoadBalancingImpl,
    LoadBalancingMediator,
    RandomPolicy,
    RoundRobinPolicy,
    WorkerPool,
    make_policy,
)
from repro.qos.load_balancing.policies import WorkerStats
from tests.qos.conftest import make_counter_class


class TestPolicies:
    def test_round_robin_cycles(self):
        policy = RoundRobinPolicy()
        stats = [WorkerStats() for _ in range(3)]
        assert [policy.choose(3, stats) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_random_is_seeded(self):
        first = [RandomPolicy(7).choose(4, []) for _ in range(10)]
        second = [RandomPolicy(7).choose(4, []) for _ in range(10)]
        assert first == second

    def test_least_used(self):
        policy = LeastUsedPolicy()
        stats = [WorkerStats(), WorkerStats(), WorkerStats()]
        stats[0].assigned = 5
        stats[1].assigned = 1
        stats[2].assigned = 3
        assert policy.choose(3, stats) == 1

    def test_adaptive_tries_unknown_workers_first(self):
        policy = AdaptivePolicy()
        stats = [WorkerStats(), WorkerStats()]
        stats[0].assigned = 1
        stats[0].ewma_latency = 0.001
        assert policy.choose(2, stats) == 1

    def test_adaptive_prefers_low_latency(self):
        policy = AdaptivePolicy()
        stats = [WorkerStats(), WorkerStats()]
        for s, latency in zip(stats, (0.5, 0.01)):
            s.assigned = 1
            s.ewma_latency = latency
        assert policy.choose(2, stats) == 1

    def test_make_policy(self):
        assert make_policy("round_robin").name == "round_robin"
        with pytest.raises(ValueError):
            make_policy("fastest-finger")

    def test_ewma_update(self):
        stats = WorkerStats()
        stats.record(1.0)
        stats.record(0.0, alpha=0.5)
        assert stats.ewma_latency == 0.5


@pytest.fixture
def pool(world, gen):
    pool = WorkerPool(world, "workers", make_counter_class(gen, service_time=0.01))
    for host in ("a", "b", "c"):
        pool.add_worker(host)
    return pool


@pytest.fixture
def balanced_stub(world, gen, pool):
    stub = gen.CounterStub(world.orb("client"), pool.worker_iors()[0])
    mediator = LoadBalancingMediator("round_robin")
    mediator.set_workers(pool.worker_iors())
    mediator.install(stub)
    return stub, mediator


class TestMediator:
    def test_round_robin_distribution(self, balanced_stub):
        stub, mediator = balanced_stub
        for _ in range(9):
            stub.increment()
        assert [s.assigned for s in mediator.stats()] == [3, 3, 3]

    def test_passthrough_without_workers(self, world, gen, pool):
        stub = gen.CounterStub(world.orb("client"), pool.worker_iors()[0])
        mediator = LoadBalancingMediator()
        mediator.install(stub)
        assert stub.increment() == 1
        assert mediator.redirections == 0

    def test_failover_quarantines_dead_worker(self, world, balanced_stub):
        stub, mediator = balanced_stub
        world.faults.crash("a")
        for _ in range(4):
            stub.increment()
        assert mediator.failovers >= 1
        assert len(mediator.workers) == 2

    def test_all_workers_dead_raises(self, world, balanced_stub):
        stub, mediator = balanced_stub
        for host in ("a", "b", "c"):
            world.faults.crash(host)
        with pytest.raises(COMM_FAILURE):
            stub.increment()

    def test_reinstate_after_recovery(self, world, balanced_stub):
        stub, mediator = balanced_stub
        world.faults.crash("a")
        stub.increment()
        world.faults.recover("a")
        assert mediator.reinstate_quarantined() == 1
        assert len(mediator.workers) == 3

    def test_adaptive_avoids_slow_worker(self, world, gen):
        pool = WorkerPool(world, "mix", make_counter_class(gen, service_time=0.02))
        for host in ("a", "b"):
            pool.add_worker(host)
        world.network.host("a").cpu_factor = 0.05  # 20x slower
        stub = gen.CounterStub(world.orb("client"), pool.worker_iors()[0])
        mediator = LoadBalancingMediator("adaptive")
        mediator.set_workers(pool.worker_iors())
        mediator.install(stub)
        for _ in range(20):
            stub.increment()
        stats = mediator.stats()
        assert stats[1].assigned > stats[0].assigned * 2

    def test_refresh_workers_from_server(self, world, gen, pool):
        servant = make_counter_class(gen)()
        impl = LoadBalancingImpl()
        pool.populate_impl(impl)
        servant.set_qos_impl(impl)
        servant.activate_qos("LoadBalancing")
        director_ior = world.orb("a").poa.activate_object(servant, "director")
        stub = gen.CounterStub(world.orb("client"), director_ior)
        mediator = LoadBalancingMediator()
        mediator.install(stub)
        workers = mediator.refresh_workers(stub)
        assert len(workers) == 3
        stub.increment()
        assert mediator.redirections == 1


class TestImpl:
    def test_policy_validation(self):
        impl = LoadBalancingImpl()
        impl.set_policy("adaptive")
        assert impl.get_policy() == "adaptive"
        with pytest.raises(BAD_PARAM):
            impl.set_policy("warp")

    def test_worker_registry(self):
        impl = LoadBalancingImpl()
        impl.add_worker("IOR:aa")
        impl.add_worker("IOR:aa")
        impl.add_worker("IOR:bb")
        assert impl.workers() == ["IOR:aa", "IOR:bb"]
        impl.remove_worker("IOR:aa")
        assert impl.workers() == ["IOR:bb"]


class TestWorkerPool:
    def test_duplicate_host_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.add_worker("a")

    def test_remove_worker(self, pool):
        pool.remove_worker("a")
        assert pool.hosts() == ["b", "c"]

    def test_queueing_makes_balancing_matter(self, world, gen, pool):
        # One unbalanced worker vs. three balanced: same 12 calls.
        stub = gen.CounterStub(world.orb("client"), pool.worker_iors()[0])
        start = world.clock.now
        for _ in range(12):
            stub.increment()
        single = world.clock.now - start

        mediator = LoadBalancingMediator("round_robin")
        mediator.set_workers(pool.worker_iors())
        mediator.install(stub)
        start = world.clock.now
        for _ in range(12):
            stub.increment()
        balanced = world.clock.now - start
        # Closed-loop sequential calls don't queue, so times are similar;
        # verify balancing at least did not hurt and spread the load.
        assert balanced <= single * 1.2
        assert max(s.assigned for s in mediator.stats()) == 4
