"""Tests for the fault-tolerance characteristic: replica groups."""

import pytest

from repro.orb.exceptions import BAD_PARAM, COMM_FAILURE, TRANSIENT
from repro.orb.modules.base import binding_key
from repro.qos.fault_tolerance import (
    FaultToleranceImpl,
    FaultToleranceMediator,
    ReplicaGroupManager,
)
from tests.qos.conftest import make_counter_class


@pytest.fixture
def manager(world, gen):
    return ReplicaGroupManager(world, "counter", make_counter_class(gen))


@pytest.fixture
def group3(world, manager, gen):
    for host in ("a", "b", "c"):
        manager.add_replica(host)
    stub = manager.bind_client(world.orb("client"), gen.CounterStub)
    return manager, stub


class TestMembership:
    def test_add_replicas(self, manager):
        manager.add_replica("a")
        manager.add_replica("b")
        assert manager.hosts() == ["a", "b"]

    def test_duplicate_host_rejected(self, manager):
        manager.add_replica("a")
        with pytest.raises(ValueError):
            manager.add_replica("a")

    def test_membership_broadcast(self, group3):
        manager, _ = group3
        for host in manager.hosts():
            impl = manager.replica(host).qos_impl("FaultTolerance")
            assert impl.replicas == 3
            assert len(impl.members()) == 3

    def test_remove_replica(self, group3):
        manager, _ = group3
        manager.remove_replica("b")
        assert manager.hosts() == ["a", "c"]
        impl = manager.replica("a").qos_impl("FaultTolerance")
        assert impl.replicas == 2

    def test_remove_unknown_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.remove_replica("z")

    def test_empty_group_has_no_ior(self, manager):
        with pytest.raises(ValueError):
            manager.group_ior()


class TestStateTransfer:
    def test_new_replica_initialised_from_live_member(self, world, manager, gen):
        manager.add_replica("a")
        stub = manager.bind_client(world.orb("client"), gen.CounterStub)
        stub.increment()
        stub.increment()
        manager.add_replica("b")
        assert manager.replica("b").count == 2
        assert manager.state_transfers == 1

    def test_transfer_skips_crashed_members(self, world, manager, gen):
        manager.add_replica("a")
        manager.add_replica("b")
        stub = manager.bind_client(world.orb("client"), gen.CounterStub)
        stub.increment()
        world.faults.crash("a")
        manager.add_replica("c")
        assert manager.replica("c").count == 1

    def test_transfer_fails_when_all_members_dead(self, world, manager):
        manager.add_replica("a")
        world.faults.crash("a")
        with pytest.raises(COMM_FAILURE):
            manager.add_replica("b")


class TestCrashMasking:
    def test_all_replicas_stay_consistent(self, group3):
        manager, stub = group3
        stub.increment()
        stub.increment()
        assert [manager.replica(h).count for h in manager.hosts()] == [2, 2, 2]

    def test_k_availability(self, world, group3):
        _, stub = group3
        stub.increment()
        world.faults.crash("a")
        assert stub.value() == 1
        world.faults.crash("b")
        assert stub.value() == 1  # one replica left: still served

    def test_total_failure_surfaces(self, world, group3):
        _, stub = group3
        for host in ("a", "b", "c"):
            world.faults.crash(host)
        with pytest.raises((COMM_FAILURE, TRANSIENT)):
            stub.value()

    def test_majority_masks_value_fault(self, world, manager, gen):
        for host in ("a", "b", "c"):
            manager.add_replica(host)
        stub = manager.bind_client(world.orb("client"), gen.CounterStub, policy="majority")
        corrupt = manager.replica("b")
        corrupt.value = lambda: 999_999
        assert stub.value() == 0

    def test_mediator_retries_on_transient(self, world, group3):
        _, stub = group3
        mediator = stub._get_mediator()
        assert isinstance(mediator, FaultToleranceMediator)
        # A lossy path makes individual sends fail; the group + retry
        # still gets an answer through.
        link = world.network.link_between("client", "a")
        world.faults.set_loss(link, 0.4)
        results = [stub.value() for _ in range(10)]
        assert all(result == 0 for result in results)


class TestImpl:
    def test_masking_policy_validation(self):
        impl = FaultToleranceImpl()
        impl.set_masking_policy("majority")
        assert impl.get_masking_policy() == "majority"
        with pytest.raises(BAD_PARAM):
            impl.set_masking_policy("quorum")

    def test_join_leave_group(self):
        impl = FaultToleranceImpl()
        impl.join_group("IOR:aa")
        impl.join_group("IOR:bb")
        impl.join_group("IOR:aa")  # idempotent
        assert impl.replicas == 2
        impl.leave_group("IOR:aa")
        assert impl.members() == ["IOR:bb"]

    def test_group_ior_policy_validated(self, manager):
        manager.add_replica("a")
        with pytest.raises(BAD_PARAM):
            manager.group_ior(policy="quorum")

    def test_group_ior_records_members(self, group3):
        manager, _ = group3
        ior = manager.group_ior()
        from repro.orb.ior import GROUP_TAG

        assert len(ior.component(GROUP_TAG).data["members"]) == 3
        assert ior.qos_characteristics() == ["FaultTolerance"]
