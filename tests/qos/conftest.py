"""Shared fixtures: woven Counter and Archive services."""

import pytest

import repro.qos as qos
from repro.core.binding import QoSProvider
from repro.core.negotiation import Range
from repro.orb import World
from repro.qos.actuality.freshness import ActualityImpl
from repro.qos.compression.payload import CompressionImpl
from repro.qos.encryption.privacy import EncryptionImpl

ARCHIVE_QIDL = """
interface Vault provides Compression, Encryption, Actuality {
    string fetch(in string path);
    void store(in string path, in string content);
    long size();
};
"""

COUNTER_QIDL = """
interface Counter provides FaultTolerance, LoadBalancing {
    long increment();
    long value();
};
"""


@pytest.fixture(scope="session")
def gen():
    return qos.weave(COUNTER_QIDL, "qos_tests_counter")


@pytest.fixture
def world():
    w = World()
    w.lan(["client", "a", "b", "c", "d", "e"], latency=0.005, bandwidth_bps=10e6)
    return w


def make_counter_class(gen, service_time=0.0):
    class CounterImpl(gen.CounterServerBase):
        _default_service_time = service_time

        def __init__(self):
            super().__init__()
            self.count = 0

        def increment(self):
            self.count += 1
            return self.count

        def value(self):
            return self.count

        # Integration operations declared by the characteristics.
        def get_state(self):
            return {"count": self.count}

        def set_state(self, state):
            self.count = state["count"]

        def current_load(self):
            return self.count

    return CounterImpl


@pytest.fixture(scope="session")
def vault_gen():
    return qos.weave(ARCHIVE_QIDL, "qos_tests_vault")


@pytest.fixture
def archive_deployment(world, vault_gen):
    """(servant, provider, ior, stub) for a fully QoS-enabled Vault."""

    class VaultImpl(vault_gen.VaultServerBase):
        def __init__(self):
            super().__init__()
            self.files = {}

        def fetch(self, path):
            return self.files.get(path, "")

        def store(self, path, content):
            self.files[path] = content
            return None

        def size(self):
            return len(self.files)

    servant = VaultImpl()
    provider = QoSProvider(world, "a", servant)
    provider.support(
        "Compression",
        CompressionImpl(),
        capabilities={"threshold": Range(64, 4096)},
    )
    provider.support("Encryption", EncryptionImpl(), capabilities={})
    provider.support(
        "Actuality",
        ActualityImpl().attach_clock(world.clock),
        capabilities={"max_age": Range(0.1, 10.0)},
    )
    ior = provider.activate("vault")
    stub = vault_gen.VaultStub(world.orb("client"), ior)
    return servant, provider, ior, stub
