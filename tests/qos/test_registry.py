"""Tests for the characteristic registry and the weave helper."""

import pytest

import repro.qos as qos
from repro.qidl.errors import QIDLSemanticError


class TestRegistry:
    def test_all_five_registered(self):
        # Other tests may register additional (custom) characteristics
        # in the same process; the five built-ins must always be there.
        assert set(qos.REGISTRY) >= {
            "Actuality",
            "Compression",
            "Encryption",
            "FaultTolerance",
            "LoadBalancing",
        }

    def test_get_characteristic(self):
        characteristic = qos.get_characteristic("FaultTolerance")
        assert characteristic.category == "fault-tolerance"
        assert characteristic.default_module == "multicast"

    def test_unknown_characteristic(self):
        with pytest.raises(KeyError):
            qos.get_characteristic("Teleportation")

    def test_categories_are_diverse(self):
        # Multi-category support (Section 2.1): at least four distinct
        # categories among the evaluated characteristics.
        categories = {c.category for c in qos.REGISTRY.values()}
        assert len(categories) >= 4

    def test_mediator_and_impl_classes_match(self):
        for characteristic in qos.REGISTRY.values():
            assert (
                characteristic.mediator_class.characteristic == characteristic.name
            )
            assert characteristic.impl_class.characteristic == characteristic.name

    def test_duplicate_registration_rejected(self):
        existing = qos.REGISTRY["Compression"]
        with pytest.raises(ValueError):
            qos.register_characteristic(existing)


class TestWeave:
    def test_prelude_contains_all_characteristics(self):
        prelude = qos.qidl_prelude()
        for name in qos.REGISTRY:
            assert f"qos {name}" in prelude

    def test_weave_resolves_provides(self):
        generated = qos.weave(
            "interface Probe provides Actuality { double read(); };",
            "weave_test_probe",
        )
        assert generated.ProbeStub.PROVIDES == ("Actuality",)
        assert "Actuality" in generated.ProbeServerBase._qos_signatures

    def test_weave_without_provides(self):
        generated = qos.weave(
            "interface Plain { void noop(); };", "weave_test_plain"
        )
        assert generated.PlainStub.PROVIDES == ()
        assert not hasattr(generated, "PlainServerBase")

    def test_unknown_characteristic_still_rejected(self):
        with pytest.raises(QIDLSemanticError):
            qos.weave("interface X provides Teleportation {};")

    def test_interface_cannot_redeclare_integration_ops(self):
        with pytest.raises(QIDLSemanticError):
            qos.weave(
                "interface X provides FaultTolerance { any get_state(); };"
            )
