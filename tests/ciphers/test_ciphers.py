"""Tests for the cipher primitives and key exchange."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ciphers
from repro.ciphers import arc4, xtea
from repro.ciphers.keyex import KeyExchange, derive_pair

KEY16 = b"0123456789abcdef"


class TestXTEA:
    def test_roundtrip(self):
        sealed = xtea.encrypt(KEY16, b"attack at dawn")
        assert xtea.decrypt(KEY16, sealed) == b"attack at dawn"

    def test_ciphertext_differs_from_plaintext(self):
        assert xtea.encrypt(KEY16, b"attack at dawn") != b"attack at dawn"

    def test_different_keys_give_different_ciphertext(self):
        other = b"fedcba9876543210"
        assert xtea.encrypt(KEY16, b"payload") != xtea.encrypt(other, b"payload")

    def test_different_nonces_give_different_ciphertext(self):
        assert xtea.encrypt(KEY16, b"payload", nonce=1) != xtea.encrypt(
            KEY16, b"payload", nonce=2
        )

    def test_wrong_key_size_rejected(self):
        with pytest.raises(ValueError):
            xtea.encrypt(b"short", b"x")

    def test_empty_payload(self):
        assert xtea.decrypt(KEY16, xtea.encrypt(KEY16, b"")) == b""

    def test_non_block_sized_payload(self):
        payload = b"123456789"  # 9 bytes, not a multiple of 8
        assert xtea.decrypt(KEY16, xtea.encrypt(KEY16, payload)) == payload


class TestARC4:
    def test_roundtrip(self):
        sealed = arc4.encrypt(b"key", b"stream cipher")
        assert arc4.decrypt(b"key", sealed) == b"stream cipher"

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            arc4.encrypt(b"", b"x")

    def test_known_vector(self):
        # Classic RC4 test vector: key "Key", plaintext "Plaintext".
        sealed = arc4.encrypt(b"Key", b"Plaintext")
        assert sealed.hex() == "bbf316e8d940af0ad3"


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(ciphers.CIPHERS))
    def test_registered_roundtrip(self, name):
        encrypt, decrypt = ciphers.get_cipher(name)
        assert decrypt(KEY16, encrypt(KEY16, b"hello")) == b"hello"

    def test_unknown_cipher_rejected(self):
        with pytest.raises(ValueError):
            ciphers.get_cipher("rot13")

    def test_cpu_cost_ordering(self):
        # Block cipher costs more than stream cipher costs more than null.
        assert (
            ciphers.cpu_cost("xtea-ctr", 1000)
            > ciphers.cpu_cost("arc4", 1000)
            > ciphers.cpu_cost("null", 1000)
        )


class TestKeyExchange:
    def test_agreement_matches(self):
        key_a, key_b = derive_pair(1, 2)
        assert key_a == key_b
        assert len(key_a) == 16

    def test_different_sessions_differ(self):
        first, _ = derive_pair(1, 2)
        second, _ = derive_pair(3, 4)
        assert first != second

    def test_out_of_range_public_rejected(self):
        endpoint = KeyExchange(seed=1)
        with pytest.raises(ValueError):
            endpoint.shared_key(1)

    def test_key_length_capped(self):
        endpoint = KeyExchange(seed=1)
        peer = KeyExchange(seed=2)
        with pytest.raises(ValueError):
            endpoint.shared_key(peer.public_value, length=100)

    def test_deterministic_for_seed(self):
        assert derive_pair(9, 10) == derive_pair(9, 10)


@given(st.binary(max_size=2048), st.integers(min_value=0, max_value=2**32))
@settings(max_examples=40)
def test_property_xtea_roundtrip(payload, nonce):
    assert xtea.decrypt(KEY16, xtea.encrypt(KEY16, payload, nonce), nonce) == payload


@given(st.binary(min_size=1, max_size=64), st.binary(max_size=2048))
@settings(max_examples=40)
def test_property_arc4_roundtrip(key, payload):
    assert arc4.decrypt(key, arc4.encrypt(key, payload)) == payload
