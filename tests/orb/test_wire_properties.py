"""Property-based tests for the wire formats (CDR, GIOP, IOR, envelope)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orb import giop
from repro.orb.cdr import CDRDecoder, CDREncoder
from repro.orb.ior import IOR, IIOPProfile, TaggedComponent
from repro.orb.modules.base import decode_envelope, encode_envelope
from repro.orb.request import Request

# Values CDR's `any` can carry, recursively.
any_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**200), max_value=2**200),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=64),
        st.binary(max_size=64),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

identifiers = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=16
)


@given(any_values)
@settings(max_examples=80)
def test_any_roundtrip(value):
    encoder = CDREncoder()
    encoder.write_any(value)
    decoded = CDRDecoder(encoder.getvalue()).read_any()
    # Tuples decode as lists; normalise for comparison.
    assert decoded == _listify(value)


def _listify(value):
    if isinstance(value, tuple):
        return [_listify(item) for item in value]
    if isinstance(value, list):
        return [_listify(item) for item in value]
    if isinstance(value, dict):
        return {key: _listify(item) for key, item in value.items()}
    return value


@given(
    identifiers,
    st.integers(min_value=0, max_value=65535),
    identifiers,
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**32 - 1),
            st.dictionaries(st.text(max_size=8), any_values, max_size=3),
        ),
        max_size=3,
    ),
)
@settings(max_examples=40)
def test_ior_roundtrip(host, port, object_key, components):
    ior = IOR(
        "IDL:prop/Test:1.0",
        IIOPProfile(host, port, object_key),
        [TaggedComponent(tag, data) for tag, data in components],
    )
    restored = IOR.from_string(ior.to_string())
    assert restored.profile.host == host
    assert restored.profile.port == port
    assert restored.profile.object_key == object_key
    assert len(restored.components) == len(components)
    assert restored == IOR.from_string(restored.to_string())


@given(
    identifiers,
    st.lists(any_values, max_size=4),
    st.dictionaries(st.text(max_size=8), any_values, max_size=3),
    st.booleans(),
)
@settings(max_examples=60)
def test_giop_request_roundtrip(operation, args, contexts, response_expected):
    target = IOR("IDL:prop/Test:1.0", IIOPProfile("host", 683, "key"))
    request = Request(
        target,
        operation,
        tuple(args),
        service_contexts=contexts,
        response_expected=response_expected,
    )
    decoded = giop.decode_request(giop.encode_request(request))
    assert decoded.operation == operation
    assert list(decoded.args) == [_listify(a) for a in args]
    assert decoded.service_contexts == _listify(contexts)
    assert decoded.response_expected == response_expected
    assert decoded.request_id == request.request_id


@given(st.integers(min_value=0, max_value=2**32 - 1), any_values)
@settings(max_examples=60)
def test_giop_reply_roundtrip(request_id, result):
    reply = giop.decode_reply(giop.encode_reply(request_id, result))
    assert reply.request_id == request_id
    assert reply.value() == _listify(result)


@given(
    identifiers,
    st.dictionaries(st.text(max_size=8), any_values, max_size=3),
    st.binary(max_size=256),
)
@settings(max_examples=60)
def test_envelope_roundtrip(module_name, params, payload):
    wire = encode_envelope(module_name, params, payload)
    name, decoded_params, decoded_payload = decode_envelope(wire)
    assert name == module_name
    assert decoded_params == _listify(params)
    assert decoded_payload == payload
