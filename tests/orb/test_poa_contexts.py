"""Tests for POA-injected timestamps and loopback accounting."""

import pytest

from repro.orb import World
from repro.orb.servant import Servant
from repro.orb.stub import Stub


class ContextSpy(Servant):
    _repo_id = "IDL:ctx/Spy:1.0"
    _default_service_time = 0.05

    def __init__(self):
        self.contexts = []

    def probe(self):
        return None

    def _dispatch(self, operation, args, contexts=None):
        self.contexts.append(dict(contexts or {}))
        return super()._dispatch(operation, args, contexts)


class SpyStub(Stub):
    def probe(self):
        return self._call("probe")


@pytest.fixture
def deployment():
    world = World()
    world.lan(["client", "server"], latency=0.01)
    servant = ContextSpy()
    ior = world.orb("server").poa.activate_object(servant)
    stub = SpyStub(world.orb("client"), ior)
    return world, servant, stub


class TestPOATimestamps:
    def test_arrival_time_injected(self, deployment):
        world, servant, stub = deployment
        stub.probe()
        contexts = servant.contexts[0]
        assert "maqs.arrival_time" in contexts
        assert "maqs.start_time" in contexts
        # One link traversal of 10ms plus marshalling.
        assert contexts["maqs.arrival_time"] >= 0.01

    def test_start_time_reflects_queueing(self, deployment):
        world, servant, stub = deployment
        # Pre-busy the server for 1 simulated second.
        world.network.host("server").occupy(world.clock.now, 1.0)
        stub.probe()
        contexts = servant.contexts[0]
        assert contexts["maqs.start_time"] >= 1.0
        assert contexts["maqs.start_time"] > contexts["maqs.arrival_time"]

    def test_idle_host_starts_at_arrival(self, deployment):
        world, servant, stub = deployment
        stub.probe()
        contexts = servant.contexts[0]
        assert contexts["maqs.start_time"] == contexts["maqs.arrival_time"]

    def test_caller_contexts_preserved(self, deployment):
        world, servant, stub = deployment
        stub._contexts["custom"] = "value"
        stub.probe()
        assert servant.contexts[0]["custom"] == "value"


class TestLoopbackAccounting:
    def test_same_host_send_counts_as_loopback(self):
        world = World()
        world.add_host("solo")
        servant = ContextSpy()
        ior = world.orb("solo").poa.activate_object(servant)
        stub = SpyStub(world.orb("solo"), ior)
        stub.probe()
        network = world.network
        assert network.loopback_bytes > 0
        assert network.loopback_bytes <= network.bytes_sent
        assert sum(l.bytes_carried for l in network.links()) == 0

    def test_cross_host_send_is_not_loopback(self, deployment):
        world, _, stub = deployment
        stub.probe()
        assert world.network.loopback_bytes == 0
