"""Adversarial wire inputs: malformed and mismatched messages."""

import pytest

from repro.orb import World, giop
from repro.orb.cdr import CDRDecoder
from repro.orb.exceptions import MARSHAL
from repro.orb.modules.base import decode_envelope, encode_envelope
from repro.orb.servant import Servant


class Echo(Servant):
    _repo_id = "IDL:adv/Echo:1.0"

    def echo(self, text):
        return text


@pytest.fixture
def deployment():
    world = World()
    world.lan(["client", "server"], latency=0.001)
    ior = world.orb("server").poa.activate_object(Echo())
    return world, ior


class TestMalformedEnvelopes:
    def test_envelope_magic_required(self):
        with pytest.raises(MARSHAL):
            decode_envelope(b"GIOP....")

    def test_truncated_envelope(self):
        wire = encode_envelope("compression", {"codec": "lz"}, b"payload")
        with pytest.raises(MARSHAL):
            decode_envelope(wire[: len(wire) // 2])

    def test_non_dict_params_rejected(self):
        from repro.orb.cdr import CDREncoder
        from repro.orb.modules.base import ENVELOPE_MAGIC

        encoder = CDREncoder()
        for byte in ENVELOPE_MAGIC:
            encoder.write_octet(byte)
        encoder.write_string("compression")
        encoder.write_any([1, 2, 3])  # not a map
        encoder.write_octets(b"x")
        with pytest.raises(MARSHAL):
            decode_envelope(encoder.getvalue())

    def test_reply_wrapped_by_wrong_module_rejected(self, deployment):
        world, ior = deployment
        client = world.orb("client")
        server = world.orb("server")
        client.qos_transport.assign(ior, "compression")

        # Sabotage the server: its replies come back wrapped as "crypto".
        original = server.handle_incoming

        def relabel(wire, at_time):
            reply, finish = original(wire, at_time)
            name, params, payload = decode_envelope(reply)
            return encode_envelope("crypto", params, payload), finish

        server.handle_incoming = relabel
        from tests.orb.conftest import EchoStub

        with pytest.raises(MARSHAL):
            EchoStub(client, ior).echo("x" * 500)


class TestMalformedGIOP:
    def test_truncated_request_rejected_at_server(self, deployment):
        world, ior = deployment
        from repro.orb.request import Request

        wire = giop.encode_request(Request(ior, "echo", ("hello",)))
        with pytest.raises(MARSHAL):
            world.orb("server").handle_incoming(wire[:-10], 0.0)

    def test_garbage_bytes_rejected(self, deployment):
        world, _ = deployment
        with pytest.raises(MARSHAL):
            world.orb("server").handle_incoming(b"\x00" * 64, 0.0)

    def test_wrong_version_rejected(self, deployment):
        world, ior = deployment
        from repro.orb.request import Request

        wire = bytearray(giop.encode_request(Request(ior, "echo", ("x",))))
        wire[4] = 9  # bogus major version
        with pytest.raises(MARSHAL):
            giop.decode_request(bytes(wire))

    def test_reply_as_request_rejected(self):
        wire = giop.encode_reply(1, "result")
        with pytest.raises(MARSHAL):
            giop.decode_request(wire)

    def test_unknown_reply_status(self):
        from repro.orb.cdr import CDREncoder

        encoder = CDREncoder()
        for byte in b"GIOP":
            encoder.write_octet(byte)
        encoder.write_octet(1)
        encoder.write_octet(2)
        encoder.write_octet(giop.MSG_REPLY)
        encoder.write_ulong(1)
        encoder.write_any({})
        encoder.write_octet(99)  # bogus status
        with pytest.raises(MARSHAL):
            giop.decode_reply(encoder.getvalue())
