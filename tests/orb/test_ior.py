"""Tests for interoperable object references."""

import pytest

from repro.orb.exceptions import MARSHAL
from repro.orb.ior import GROUP_TAG, IOR, IIOPProfile, QOS_TAG, TaggedComponent


@pytest.fixture
def plain_ior():
    return IOR("IDL:demo/Echo:1.0", IIOPProfile("server", 683, "obj-1"))


@pytest.fixture
def qos_ior(plain_ior):
    return plain_ior.with_component(
        TaggedComponent(QOS_TAG, {"characteristics": ["compression", "encryption"]})
    )


class TestComponents:
    def test_plain_ior_is_not_qos_aware(self, plain_ior):
        assert not plain_ior.is_qos_aware
        assert plain_ior.qos_characteristics() == []

    def test_qos_tag_detected(self, qos_ior):
        assert qos_ior.is_qos_aware
        assert qos_ior.qos_characteristics() == ["compression", "encryption"]

    def test_with_component_does_not_mutate_original(self, plain_ior, qos_ior):
        assert not plain_ior.is_qos_aware
        assert len(plain_ior.components) == 0
        assert len(qos_ior.components) == 1

    def test_component_lookup_by_tag(self, qos_ior):
        assert qos_ior.component(QOS_TAG) is not None
        assert qos_ior.component(GROUP_TAG) is None

    def test_group_component(self, plain_ior):
        grouped = plain_ior.with_component(
            TaggedComponent(GROUP_TAG, {"members": ["IOR:00", "IOR:01"]})
        )
        assert grouped.component(GROUP_TAG).data["members"] == ["IOR:00", "IOR:01"]


class TestStringification:
    def test_roundtrip_plain(self, plain_ior):
        assert IOR.from_string(plain_ior.to_string()) == plain_ior

    def test_roundtrip_with_components(self, qos_ior):
        restored = IOR.from_string(qos_ior.to_string())
        assert restored == qos_ior
        assert restored.qos_characteristics() == ["compression", "encryption"]

    def test_string_form_has_prefix(self, plain_ior):
        assert plain_ior.to_string().startswith("IOR:")

    def test_bad_prefix_rejected(self):
        with pytest.raises(MARSHAL):
            IOR.from_string("ior:deadbeef")

    def test_bad_hex_rejected(self):
        with pytest.raises(MARSHAL):
            IOR.from_string("IOR:zzzz")

    def test_truncated_bytes_rejected(self, plain_ior):
        text = plain_ior.to_string()
        with pytest.raises(MARSHAL):
            IOR.from_string(text[: len(text) // 2 * 2 - 8])


class TestIdentity:
    def test_equal_iors_hash_equal(self, plain_ior):
        other = IOR("IDL:demo/Echo:1.0", IIOPProfile("server", 683, "obj-1"))
        assert plain_ior == other
        assert hash(plain_ior) == hash(other)

    def test_different_keys_not_equal(self, plain_ior):
        other = IOR("IDL:demo/Echo:1.0", IIOPProfile("server", 683, "obj-2"))
        assert plain_ior != other

    def test_component_changes_identity(self, plain_ior, qos_ior):
        assert plain_ior != qos_ior
