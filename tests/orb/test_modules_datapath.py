"""Data-plane tests for the compression, crypto and bandwidth modules."""

import pytest

from repro.ciphers.keyex import KeyExchange
from repro.orb.dii import ModuleHandle
from repro.orb.exceptions import BAD_PARAM, NO_PERMISSION, NO_RESOURCES
from repro.orb.modules.base import binding_key
from tests.orb.conftest import EchoStub


COMPRESSIBLE = "abcabcabc" * 500


@pytest.fixture
def compressed_stub(world, client_orb, qos_echo_ior):
    client_orb.qos_transport.assign(qos_echo_ior, "compression")
    return EchoStub(client_orb, qos_echo_ior)


class TestCompressionModule:
    def test_result_is_correct(self, compressed_stub):
        assert compressed_stub.echo("hello") == "HELLO"

    def test_fewer_bytes_cross_the_network(self, world, client_orb, qos_echo_ior):
        plain_stub = EchoStub(client_orb, qos_echo_ior)
        before = world.network.bytes_sent
        plain_stub.echo(COMPRESSIBLE)
        plain_bytes = world.network.bytes_sent - before

        client_orb.qos_transport.assign(qos_echo_ior, "compression")
        before = world.network.bytes_sent
        plain_stub.echo(COMPRESSIBLE)
        compressed_bytes = world.network.bytes_sent - before
        assert compressed_bytes < plain_bytes / 2

    def test_compression_is_faster_on_slow_link(self, world, qos_echo_ior):
        # Make the client->server path slow.
        link = world.network.link_between("client", "server")
        link.set_capacity(64e3)
        stub = EchoStub(world.orb("client"), qos_echo_ior)
        start = world.clock.now
        stub.echo(COMPRESSIBLE)
        plain_time = world.clock.now - start

        world.orb("client").qos_transport.assign(qos_echo_ior, "compression")
        start = world.clock.now
        stub.echo(COMPRESSIBLE)
        compressed_time = world.clock.now - start
        assert compressed_time < plain_time

    def test_codec_selectable_per_binding(self, world, client_orb, qos_echo_ior):
        client_orb.qos_transport.assign(qos_echo_ior, "compression")
        handle = ModuleHandle(client_orb, qos_echo_ior, "compression")
        binding = binding_key(qos_echo_ior)
        # configure the *client* module locally (it wraps outgoing data)
        client_orb.qos_transport.module("compression").set_codec(binding, "rle")
        assert (
            client_orb.qos_transport.module("compression").get_codec(binding) == "rle"
        )
        stub = EchoStub(client_orb, qos_echo_ior)
        assert stub.echo("aaaaaaaaaaa" * 100) == "AAAAAAAAAAA" * 100

    def test_unknown_codec_rejected(self, client_orb):
        module = client_orb.qos_transport.load_module("compression")
        with pytest.raises(BAD_PARAM):
            module.set_codec("b", "middle-out")

    def test_incompressible_payload_passes_through(self, world, client_orb, qos_echo_ior):
        import random

        rng = random.Random(1)
        noise = "".join(chr(rng.randrange(0x20, 0x2500)) for _ in range(500))
        client_orb.qos_transport.assign(qos_echo_ior, "compression")
        stub = EchoStub(client_orb, qos_echo_ior)
        assert stub.echo(noise) == noise.upper()


@pytest.fixture
def crypto_binding(world, client_orb, qos_echo_ior):
    """Set up an encrypted binding with a completed key exchange."""
    client_orb.qos_transport.assign(qos_echo_ior, "crypto")
    local = client_orb.qos_transport.module("crypto")
    endpoint = KeyExchange(seed=11)
    remote = ModuleHandle(client_orb, qos_echo_ior, "crypto")
    server_public = remote.call("dh_exchange", "session-1", endpoint.public_value)
    local.install_key("session-1", endpoint.shared_key(server_public))
    binding = binding_key(qos_echo_ior)
    local.set_cipher(binding, "xtea-ctr", "session-1")
    return EchoStub(client_orb, qos_echo_ior)


class TestCryptoModule:
    def test_encrypted_call_works(self, crypto_binding):
        assert crypto_binding.echo("secret") == "SECRET"

    def test_key_agreement_matches(self, world, client_orb, qos_echo_ior):
        endpoint = KeyExchange(seed=3)
        remote = ModuleHandle(client_orb, qos_echo_ior, "crypto")
        server_public = remote.call("dh_exchange", "k9", endpoint.public_value)
        client_key = endpoint.shared_key(server_public)
        server_module = world.orb("server").qos_transport.module("crypto")
        assert server_module._keys["k9"] == client_key

    def test_plaintext_never_crosses_the_wire(
        self, world, client_orb, qos_echo_ior, crypto_binding, monkeypatch
    ):
        captured = []
        network = world.network
        original_send = network.send

        def spying_send(src, dst, nbytes, reservations=None, _orig=original_send):
            return _orig(src, dst, nbytes, reservations)

        # Capture at the ORB level where the actual bytes are visible.
        server = world.orb("server")
        original = server.handle_incoming

        def spy(wire, at_time):
            captured.append(bytes(wire))
            return original(wire, at_time)

        monkeypatch.setattr(server, "handle_incoming", spy)
        crypto_binding.echo("topsecretpayload")
        assert captured
        assert all(b"topsecretpayload" not in wire for wire in captured)

    def test_missing_key_raises_no_permission(self, client_orb, qos_echo_ior):
        client_orb.qos_transport.assign(qos_echo_ior, "crypto")
        module = client_orb.qos_transport.module("crypto")
        module.set_cipher(binding_key(qos_echo_ior), "arc4", "ghost-key")
        stub = EchoStub(client_orb, qos_echo_ior)
        with pytest.raises(NO_PERMISSION):
            stub.echo("x")

    def test_server_missing_key_reported(self, world, client_orb, qos_echo_ior):
        client_orb.qos_transport.assign(qos_echo_ior, "crypto")
        local = client_orb.qos_transport.module("crypto")
        local.install_key("one-sided", b"0123456789abcdef")
        local.set_cipher(binding_key(qos_echo_ior), "xtea-ctr", "one-sided")
        stub = EchoStub(client_orb, qos_echo_ior)
        with pytest.raises(NO_PERMISSION):
            stub.echo("x")

    def test_key_rotation_on_the_fly(self, world, client_orb, qos_echo_ior, crypto_binding):
        # "on the fly change of encryption keys" (Section 3.2)
        assert crypto_binding.echo("one") == "ONE"
        local = client_orb.qos_transport.module("crypto")
        endpoint = KeyExchange(seed=21)
        remote = ModuleHandle(client_orb, qos_echo_ior, "crypto")
        server_public = remote.call("dh_exchange", "session-2", endpoint.public_value)
        local.install_key("session-2", endpoint.shared_key(server_public))
        local.set_cipher(binding_key(qos_echo_ior), "xtea-ctr", "session-2")
        assert crypto_binding.echo("two") == "TWO"

    def test_drop_key(self, client_orb):
        module = client_orb.qos_transport.load_module("crypto")
        module.install_key("k", b"0123456789abcdef")
        assert module.drop_key("k")
        assert not module.drop_key("k")
        assert "k" not in module.active_keys()


class TestBandwidthModule:
    def test_reservation_isolates_from_cross_traffic(
        self, world, client_orb, qos_echo_ior
    ):
        link = world.network.link_between("client", "server")
        link.set_capacity(1e6)
        link.background_flows = 9  # heavy best-effort contention
        stub = EchoStub(client_orb, qos_echo_ior)
        payload = "y" * 20000

        start = world.clock.now
        stub.echo(payload)
        best_effort = world.clock.now - start

        client_orb.qos_transport.assign(qos_echo_ior, "bandwidth")
        module = client_orb.qos_transport.module("bandwidth")
        module.reserve("server", 0.5e6)
        start = world.clock.now
        stub.echo(payload)
        reserved = world.clock.now - start
        assert reserved < best_effort / 2

    def test_admission_rejection_is_no_resources(self, world, client_orb, qos_echo_ior):
        client_orb.qos_transport.assign(qos_echo_ior, "bandwidth")
        module = client_orb.qos_transport.module("bandwidth")
        with pytest.raises(NO_RESOURCES):
            module.reserve("server", 1e12)

    def test_release_returns_flag(self, client_orb, qos_echo_ior):
        client_orb.qos_transport.assign(qos_echo_ior, "bandwidth")
        module = client_orb.qos_transport.module("bandwidth")
        module.reserve("server", 1e5)
        assert module.release("server")
        assert not module.release("server")

    def test_re_reserve_replaces(self, world, client_orb):
        module = client_orb.qos_transport.load_module("bandwidth")
        module.reserve("server", 1e5)
        module.reserve("server", 2e5)
        assert module.reserved_rate("server") == 2e5
        link = world.network.link_between("client", "server")
        assert link.reserved_bps == pytest.approx(2e5)

    def test_unload_releases_reservations(self, world, client_orb):
        module = client_orb.qos_transport.load_module("bandwidth")
        module.reserve("server", 1e5)
        client_orb.qos_transport.unload_module("bandwidth")
        link = world.network.link_between("client", "server")
        assert link.reserved_bps == 0.0

    def test_dynamic_interface_over_wire(self, world, client_orb, echo_ior):
        handle = ModuleHandle(client_orb, echo_ior, "bandwidth")
        # This reserves *from the server's host* toward the named
        # destination — the command runs on the server's ORB.
        granted = handle.call("reserve", "client", 1e5)
        assert granted == 1e5
        assert handle.call("reservations") == ["client"]
        assert handle.call("release", "client")
