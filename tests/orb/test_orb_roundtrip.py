"""End-to-end invocation tests over the simulated wire."""

import pytest

from repro.orb.exceptions import (
    BAD_OPERATION,
    COMM_FAILURE,
    OBJECT_NOT_EXIST,
    SystemException,
    TRANSIENT,
)
from tests.orb.conftest import EchoServant, EchoStub


class TestBasicInvocation:
    def test_echo_roundtrip(self, echo_stub):
        assert echo_stub.echo("hello") == "HELLO"

    def test_result_types_cross_wire(self, echo_stub):
        assert echo_stub.add(2, 3) == 5
        assert echo_stub.add(2.5, 0.5) == 3.0
        assert echo_stub.add("a", "b") == "ab"
        assert echo_stub.add([1], [2]) == [1, 2]

    def test_clock_advances_per_call(self, world, echo_stub):
        before = world.clock.now
        echo_stub.echo("x")
        after = world.clock.now
        # two link traversals at 5ms plus 1ms service time, minimum
        assert after - before >= 0.011

    def test_servant_saw_the_call(self, echo_stub, echo_servant):
        echo_stub.echo("x")
        assert echo_servant.calls == 1

    def test_server_exception_crosses_wire(self, echo_stub):
        with pytest.raises(SystemException) as excinfo:
            echo_stub.fail("kaput")
        assert "kaput" in str(excinfo.value)

    def test_unknown_operation_raises_bad_operation(self, client_orb, echo_ior):
        from repro.orb.request import Request

        with pytest.raises(BAD_OPERATION):
            client_orb.invoke(Request(echo_ior, "no_such_op"))

    def test_private_operation_rejected(self, client_orb, echo_ior):
        from repro.orb.request import Request

        with pytest.raises(BAD_OPERATION):
            client_orb.invoke(Request(echo_ior, "_dispatch"))


class TestFailures:
    def test_crashed_server_raises_comm_failure(self, world, echo_stub):
        world.faults.crash("server")
        with pytest.raises(COMM_FAILURE):
            echo_stub.echo("x")

    def test_recovered_server_works_again(self, world, echo_stub):
        world.faults.crash("server")
        with pytest.raises(COMM_FAILURE):
            echo_stub.echo("x")
        world.faults.recover("server")
        assert echo_stub.echo("x") == "X"

    def test_partition_raises_transient(self, world, echo_stub):
        world.faults.partition({"client"}, {"server", "s1", "s2", "s3"})
        with pytest.raises(TRANSIENT):
            echo_stub.echo("x")

    def test_deactivated_object_raises_object_not_exist(
        self, world, echo_stub, echo_ior
    ):
        world.orb("server").poa.deactivate_object(echo_ior.profile.object_key)
        with pytest.raises(OBJECT_NOT_EXIST):
            echo_stub.echo("x")

    def test_no_orb_on_host_raises_comm_failure(self, world, client_orb):
        world.add_host("silent")
        world.connect("client", "silent")
        from repro.orb.ior import IOR, IIOPProfile
        from repro.orb.request import Request

        ghost = IOR("IDL:test/Echo:1.0", IIOPProfile("silent", 683, "k"))
        with pytest.raises(COMM_FAILURE):
            client_orb.invoke(Request(ghost, "echo", ("x",)))


class TestQueueing:
    def test_serial_calls_queue_on_one_host(self, world):
        servant = EchoServant()
        servant._default_service_time = 0.1
        ior = world.orb("server").poa.activate_object(servant)
        stub = EchoStub(world.orb("client"), ior)
        start = world.clock.now
        stub.echo("a")
        first = world.clock.now - start
        stub.echo("b")
        second = world.clock.now - start
        assert first >= 0.11
        assert second >= 2 * 0.1

    def test_fast_host_serves_faster(self, world):
        world.add_host("fast", cpu_factor=10.0)
        world.connect("client", "fast", latency=0.005, bandwidth_bps=10e6)
        servant = EchoServant()
        servant._default_service_time = 0.1
        slow_ior = world.orb("server").poa.activate_object(EchoServant())
        fast_ior = world.orb("fast").poa.activate_object(servant)
        stub = EchoStub(world.orb("client"), fast_ior)
        start = world.clock.now
        stub.echo("x")
        elapsed = world.clock.now - start
        # 100ms of work at 10x speed is 10ms
        assert 0.01 <= elapsed - 0.01 < 0.1


class TestStatistics:
    def test_request_counters(self, world, echo_stub):
        echo_stub.echo("x")
        echo_stub.echo("y")
        assert world.orb("client").requests_invoked == 2
        assert world.orb("server").requests_received == 2

    def test_network_bytes_accounted(self, world, echo_stub):
        before = world.network.bytes_sent
        echo_stub.echo("payload")
        assert world.network.bytes_sent > before
