"""Wire-path object pooling: recycled encoders and requests.

Pooling must be invisible except in the perf counters: identical bytes
on the wire, identical results, fresh request ids.
"""

from repro.orb import giop
from repro.orb.cdr import CDREncoder
from repro.orb.ior import IIOPProfile, IOR
from repro.orb.pool import WirePools
from repro.orb.request import Request
from repro.perf.counters import COUNTERS


def make_request(op="echo", args=("x",)):
    ior = IOR("IDL:test/Echo:1.0", IIOPProfile("server", 683, "obj-1"))
    return Request(ior, op, args)


class TestEncoderPool:
    def test_bytes_identical_with_and_without_pool(self):
        pools = WirePools()
        request = make_request()
        plain = giop.encode_request(request)
        pooled_cold = giop.encode_request(request, pools=pools)
        pooled_warm = giop.encode_request(request, pools=pools)
        assert plain == pooled_cold == pooled_warm

    def test_hit_after_release_cycle(self):
        COUNTERS.reset()
        pools = WirePools()
        giop.encode_request(make_request(), pools=pools)  # miss, then release
        giop.encode_request(make_request(), pools=pools)  # hit
        assert COUNTERS.encoder_pool_misses == 1
        assert COUNTERS.encoder_pool_hits == 1

    def test_reset_clears_buffer(self):
        encoder = CDREncoder()
        encoder.write_string("leftover")
        assert encoder.reset() is encoder
        assert encoder.getvalue() == b""

    def test_pool_is_bounded(self):
        pools = WirePools(max_encoders=2)
        encoders = [CDREncoder() for _ in range(5)]
        for encoder in encoders:
            pools.release_encoder(encoder)
        assert len(pools._encoders) == 2

    def test_reply_path_uses_pool_identically(self):
        pools = WirePools()
        plain = giop.encode_reply(7, result="ok")
        pooled = giop.encode_reply(7, result="ok", pools=pools)
        assert plain == pooled


class TestRequestPool:
    def test_acquire_recycles_released_instance(self):
        COUNTERS.reset()
        pools = WirePools()
        ior = IOR("IDL:test/Echo:1.0", IIOPProfile("server", 683, "obj-1"))
        first = pools.acquire_request(ior, "echo", ("a",), {}, True)
        first_id = first.request_id
        pools.release_request(first)
        second = pools.acquire_request(ior, "echo", ("b",), {}, True)
        assert second is first  # recycled object...
        assert second.request_id > first_id  # ...with a fresh id
        assert second.args == ("b",)
        assert COUNTERS.request_pool_misses == 1
        assert COUNTERS.request_pool_hits == 1

    def test_commands_are_never_pooled(self):
        pools = WirePools()
        ior = IOR("IDL:test/Echo:1.0", IIOPProfile("server", 683, "obj-1"))
        command = Request(
            ior, "load_module", ("trace",), kind="command",
            command_target="transport",
        )
        pools.release_request(command)
        assert len(pools._requests) == 0


class TestPooledEchoPath:
    def test_hot_path_hits_pool_and_stays_correct(self, echo_stub):
        COUNTERS.reset()
        results = [echo_stub.echo(f"msg-{i}") for i in range(10)]
        assert results == [f"MSG-{i}".upper() for i in range(10)]
        assert COUNTERS.request_pool_hits >= 9
        assert COUNTERS.encoder_pool_hits > 0

    def test_pooled_and_plain_runs_agree(self, world, echo_stub, echo_servant):
        before = echo_servant.calls
        assert echo_stub.echo("alpha") == "ALPHA"
        assert echo_stub.echo("alpha") == "ALPHA"
        assert echo_servant.calls == before + 2
