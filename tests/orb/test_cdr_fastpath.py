"""The batched `any` fast path must be invisible on the wire.

The encoder batches homogeneous float/int64 sequences and the decoder
bulk-unpacks them; both must produce bytes and values identical to the
generic tag-per-element path.  These tests force the generic path by
raising the batching threshold and compare against the fast path
byte for byte.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.orb.cdr as cdr
from repro.orb.cdr import (
    CDRDecoder,
    CDREncoder,
    decode_values,
    encode_values,
)
from repro.perf import COUNTERS


def _generic_encoding(value, monkeypatch):
    """Encode with batching disabled (threshold no list can reach)."""
    monkeypatch.setattr(cdr, "_BATCH_MIN", 2**31)
    try:
        encoder = CDREncoder()
        encoder.write_any(value)
        return encoder.getvalue()
    finally:
        monkeypatch.undo()


def _fast_encoding(value):
    encoder = CDREncoder()
    encoder.write_any(value)
    return encoder.getvalue()


class TestByteIdentity:
    @pytest.mark.parametrize("prefix", range(9))
    @pytest.mark.parametrize("length", [0, 1, 3, 4, 5, 8, 17, 600])
    def test_float_batch_matches_generic(self, prefix, length, monkeypatch):
        # The prefix octets shift the sequence start across every
        # alignment class; batching pads relative to absolute offset.
        value = [b"x"] * prefix + [[float(i) * 0.5 for i in range(length)]]
        assert _fast_encoding(value) == _generic_encoding(value, monkeypatch)

    @pytest.mark.parametrize("prefix", range(9))
    @pytest.mark.parametrize("length", [0, 1, 3, 4, 5, 8, 17, 600])
    def test_int_batch_matches_generic(self, prefix, length, monkeypatch):
        value = [b"x"] * prefix + [[i * 31 - 7 for i in range(length)]]
        assert _fast_encoding(value) == _generic_encoding(value, monkeypatch)

    def test_mixed_sequence_matches_generic(self, monkeypatch):
        value = [1.0, 2.0, 3.0, "not a float", 5.0]
        assert _fast_encoding(value) == _generic_encoding(value, monkeypatch)

    def test_special_floats_match_generic(self, monkeypatch):
        value = [0.0, -0.0, float("inf"), float("-inf"), float("nan"), 1e308]
        assert _fast_encoding(value) == _generic_encoding(value, monkeypatch)

    def test_int64_boundaries_match_generic(self, monkeypatch):
        value = [2**63 - 1, -(2**63), 0, 1]
        assert _fast_encoding(value) == _generic_encoding(value, monkeypatch)

    def test_bignum_defeats_batching_identically(self, monkeypatch):
        # One element outside int64 forces the generic loop either way.
        value = [1, 2, 3, 2**70]
        assert _fast_encoding(value) == _generic_encoding(value, monkeypatch)

    def test_bool_in_int_sequence_matches_generic(self, monkeypatch):
        # bool is an int subclass but encodes with a different tag; the
        # batcher must not treat [1, 2, True, 4] as homogeneous ints.
        value = [1, 2, True, 4]
        assert _fast_encoding(value) == _generic_encoding(value, monkeypatch)


class TestBatchDecoding:
    def test_batched_floats_roundtrip(self):
        value = [float(i) for i in range(100)]
        COUNTERS.reset()
        wire = _fast_encoding(value)
        assert CDRDecoder(wire).read_any() == value
        assert COUNTERS.cdr_batch_encodes == 1
        assert COUNTERS.cdr_batch_decodes == 1

    def test_batched_ints_roundtrip(self):
        value = list(range(-50, 50))
        wire = _fast_encoding(value)
        assert CDRDecoder(wire).read_any() == value

    def test_mixed_sequence_decoder_falls_back(self, monkeypatch):
        # Starts with enough doubles to tempt the bulk decoder, then a
        # string: the decoder must rewind and replay element by element.
        value = [1.0, 2.0, 3.0, 4.0, 5.0, "tail"]
        wire = _generic_encoding(value, monkeypatch)
        assert CDRDecoder(wire).read_any() == value

    def test_generic_wire_decodes_on_fast_decoder(self, monkeypatch):
        # Bytes produced by the generic encoder feed the batched decoder.
        value = [0.25 * i for i in range(32)]
        wire = _generic_encoding(value, monkeypatch)
        assert CDRDecoder(wire).read_any() == value


# Property-style round-trip over the full `any` domain, weighted
# toward the homogeneous sequences the fast path special-cases.
any_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**100), max_value=2**100),
        st.floats(allow_nan=False),
        st.text(max_size=32),
        st.binary(max_size=32),
        st.lists(st.floats(allow_nan=False), max_size=24),
        st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1),
                 max_size=24),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=16,
)


@given(st.lists(any_values, max_size=4))
@settings(max_examples=120)
def test_property_values_roundtrip(values):
    decoded = decode_values(encode_values(*values))
    assert list(decoded) == [_listify(v) for v in values]


@given(any_values)
@settings(max_examples=120)
def test_property_fast_path_bytes_match_generic(value):
    fast = _fast_encoding(value)
    # hypothesis does not mix with pytest fixtures; patch manually.
    original = cdr._BATCH_MIN
    cdr._BATCH_MIN = 2**31
    try:
        encoder = CDREncoder()
        encoder.write_any(value)
        generic = encoder.getvalue()
    finally:
        cdr._BATCH_MIN = original
    assert fast == generic
    assert CDRDecoder(fast).read_any() == _listify(value)


def _listify(value):
    if isinstance(value, (list, tuple)):
        return [_listify(item) for item in value]
    if isinstance(value, dict):
        return {key: _listify(item) for key, item in value.items()}
    return value
