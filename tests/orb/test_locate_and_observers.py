"""Tests for GIOP locate requests and ORB wire observers."""

import pytest

from repro.orb import World, giop
from repro.orb.exceptions import COMM_FAILURE, MARSHAL
from repro.orb.servant import Servant
from repro.orb.stub import Stub


class EchoServant(Servant):
    _repo_id = "IDL:loc/Echo:1.0"

    def echo(self, text):
        return text


class EchoStub(Stub):
    def echo(self, text):
        return self._call("echo", text)


@pytest.fixture
def deployment():
    world = World()
    world.lan(["client", "server"], latency=0.002)
    ior = world.orb("server").poa.activate_object(EchoServant(), "echo-1")
    return world, ior


class TestLocate:
    def test_existing_object_located(self, deployment):
        world, ior = deployment
        assert world.orb("client").locate(ior)

    def test_unknown_object_not_located(self, deployment):
        world, ior = deployment
        from repro.orb.ior import IOR, IIOPProfile

        ghost = IOR("IDL:loc/Echo:1.0", IIOPProfile("server", 683, "nope"))
        assert not world.orb("client").locate(ghost)

    def test_deactivated_object_not_located(self, deployment):
        world, ior = deployment
        world.orb("server").poa.deactivate_object("echo-1")
        assert not world.orb("client").locate(ior)

    def test_crashed_host_raises(self, deployment):
        world, ior = deployment
        world.faults.crash("server")
        with pytest.raises(COMM_FAILURE):
            world.orb("client").locate(ior)

    def test_locate_costs_a_round_trip(self, deployment):
        world, ior = deployment
        start = world.clock.now
        world.orb("client").locate(ior)
        assert world.clock.now - start >= 0.004

    def test_wire_format_roundtrip(self):
        wire = giop.encode_locate_request(7, "obj-key")
        assert giop.message_type(wire) == giop.MSG_LOCATE_REQUEST
        assert giop.decode_locate_request(wire) == (7, "obj-key")
        reply = giop.encode_locate_reply(7, giop.OBJECT_HERE)
        assert giop.decode_locate_reply(reply) == (7, giop.OBJECT_HERE)

    def test_wrong_message_type_rejected(self):
        wire = giop.encode_locate_request(1, "k")
        with pytest.raises(MARSHAL):
            giop.decode_locate_reply(wire)


class TestWireObservers:
    def test_observer_sees_both_directions(self, deployment):
        world, ior = deployment
        seen = []
        world.orb("server").add_wire_observer(
            lambda direction, wire: seen.append(direction)
        )
        EchoStub(world.orb("client"), ior).echo("x")
        assert seen == ["in", "out"]

    def test_observer_sees_raw_bytes(self, deployment):
        world, ior = deployment
        frames = []
        world.orb("server").add_wire_observer(
            lambda direction, wire: frames.append(wire)
        )
        EchoStub(world.orb("client"), ior).echo("needle")
        assert any(b"needle" in frame for frame in frames)

    def test_observer_removal(self, deployment):
        world, ior = deployment
        seen = []
        observer = lambda direction, wire: seen.append(direction)  # noqa: E731
        server = world.orb("server")
        server.add_wire_observer(observer)
        stub = EchoStub(world.orb("client"), ior)
        stub.echo("x")
        server.remove_wire_observer(observer)
        stub.echo("y")
        assert len(seen) == 2

    def test_locate_also_observed(self, deployment):
        world, ior = deployment
        seen = []
        world.orb("server").add_wire_observer(
            lambda direction, wire: seen.append((direction, giop.message_type(wire)))
        )
        world.orb("client").locate(ior)
        assert (
            ("in", giop.MSG_LOCATE_REQUEST) in seen
            and ("out", giop.MSG_LOCATE_REPLY) in seen
        )
