"""Tests for deferred synchronous invocation (DII)."""

import pytest

from repro.orb import World
from repro.orb.dii import DIIRequest
from repro.orb.exceptions import COMM_FAILURE, SystemException
from repro.orb.servant import Servant


class SlowCalc(Servant):
    _repo_id = "IDL:def/Calc:1.0"
    _default_service_time = 0.1

    def square(self, x):
        return x * x

    def fail(self):
        raise ValueError("boom")


@pytest.fixture
def deployment():
    world = World()
    world.lan(["client", "s1", "s2"], latency=0.005)
    ior1 = world.orb("s1").poa.activate_object(SlowCalc())
    ior2 = world.orb("s2").poa.activate_object(SlowCalc())
    return world, ior1, ior2


class TestDeferred:
    def test_caller_keeps_the_clock(self, deployment):
        world, ior1, _ = deployment
        start = world.clock.now
        request = DIIRequest(world.orb("client"), ior1, "square").add_argument(3)
        request.send_deferred()
        # Sending costs only the marshal step, not the round trip.
        assert world.clock.now - start < 0.01

    def test_poll_then_get(self, deployment):
        world, ior1, _ = deployment
        request = (
            DIIRequest(world.orb("client"), ior1, "square")
            .add_argument(4)
            .send_deferred()
        )
        assert not request.poll_response()
        world.clock.advance(1.0)
        assert request.poll_response()
        assert request.get_response() == 16

    def test_get_blocks_until_arrival(self, deployment):
        world, ior1, _ = deployment
        request = (
            DIIRequest(world.orb("client"), ior1, "square")
            .add_argument(5)
            .send_deferred()
        )
        assert request.get_response() == 25
        # The clock advanced past service time + both link traversals.
        assert world.clock.now >= 0.11

    def test_overlapping_requests(self, deployment):
        world, ior1, ior2 = deployment
        client = world.orb("client")
        first = DIIRequest(client, ior1, "square").add_argument(2).send_deferred()
        second = DIIRequest(client, ior2, "square").add_argument(3).send_deferred()
        sent_at = world.clock.now
        assert first.get_response() == 4
        assert second.get_response() == 9
        # Both were in flight simultaneously: total elapsed is one
        # round trip (different hosts), not two.
        assert world.clock.now - sent_at < 0.2

    def test_exception_surfaces_at_get(self, deployment):
        world, ior1, _ = deployment
        request = DIIRequest(world.orb("client"), ior1, "fail").send_deferred()
        with pytest.raises(SystemException):
            request.get_response()

    def test_transport_failure_surfaces_at_send(self, deployment):
        world, ior1, _ = deployment
        world.faults.crash("s1")
        with pytest.raises(COMM_FAILURE):
            DIIRequest(world.orb("client"), ior1, "square").add_argument(
                1
            ).send_deferred()

    def test_double_send_rejected(self, deployment):
        world, ior1, _ = deployment
        request = DIIRequest(world.orb("client"), ior1, "square").add_argument(1)
        request.send_deferred()
        with pytest.raises(RuntimeError):
            request.send_deferred()

    def test_poll_before_send_rejected(self, deployment):
        world, ior1, _ = deployment
        request = DIIRequest(world.orb("client"), ior1, "square")
        with pytest.raises(RuntimeError):
            request.poll_response()
        with pytest.raises(RuntimeError):
            request.get_response()
