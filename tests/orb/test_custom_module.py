"""Module-layer genericity: registering a user-defined QoS module."""

import pytest

from repro.orb import World
from repro.orb.modules import (
    MODULE_REGISTRY,
    QoSModule,
    available_modules,
    create_module,
    register_module,
)
from repro.orb.modules.base import binding_key
from tests.orb.conftest import EchoStub


class ChecksumModule(QoSModule):
    """A toy integrity module: wraps bodies with a checksum and verifies."""

    name = "checksum-test"
    description = "test-only integrity module"
    uses_envelope = True
    dynamic_ops = ("verified_count",)

    def __init__(self):
        super().__init__()
        self.verified = 0

    def verified_count(self):
        return self.verified

    def wrap(self, body, context):
        digest = sum(body) % 65536
        return {"sum": digest}, body, 0.0

    def unwrap(self, params, body):
        if sum(body) % 65536 != params.get("sum"):
            from repro.orb.exceptions import MARSHAL

            raise MARSHAL("checksum mismatch")
        self.verified += 1
        return body, 0.0


@pytest.fixture(scope="module", autouse=True)
def registered():
    if ChecksumModule.name not in MODULE_REGISTRY:
        register_module(ChecksumModule)
    yield


class TestCustomModule:
    def test_appears_in_registry(self):
        assert "checksum-test" in available_modules()
        assert create_module("checksum-test").name == "checksum-test"

    def test_carries_requests_end_to_end(self, world, client_orb, qos_echo_ior):
        client_orb.qos_transport.assign(qos_echo_ior, "checksum-test")
        stub = EchoStub(client_orb, qos_echo_ior)
        assert stub.echo("integrity") == "INTEGRITY"
        # Both sides verified one message each way.
        client_module = client_orb.qos_transport.module("checksum-test")
        server_module = world.orb("server").qos_transport.module("checksum-test")
        assert client_module.verified == 1  # reply verified by client
        assert server_module.verified == 1  # request verified by server

    def test_dynamic_interface(self, world, client_orb, qos_echo_ior, echo_ior):
        from repro.orb.dii import ModuleHandle

        client_orb.qos_transport.assign(qos_echo_ior, "checksum-test")
        EchoStub(client_orb, qos_echo_ior).echo("x")
        handle = ModuleHandle(client_orb, echo_ior, "checksum-test")
        assert handle.call("verified_count") >= 1


class TestRegistryValidation:
    def test_duplicate_name_rejected(self):
        class Dup(QoSModule):
            name = "checksum-test"

        with pytest.raises(ValueError):
            register_module(Dup)

    def test_empty_name_rejected(self):
        class Nameless(QoSModule):
            name = ""

        with pytest.raises(ValueError):
            register_module(Nameless)

    def test_unknown_module_lookup(self):
        with pytest.raises(KeyError):
            create_module("does-not-exist")
