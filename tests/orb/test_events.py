"""Tests for the event channel and push-invalidated actuality."""

import pytest

from repro.orb import World
from repro.orb.events import (
    CacheInvalidator,
    EventChannelServant,
    EventChannelStub,
    SubscriberServant,
    UnknownTopic,
)


class Recorder(SubscriberServant):
    def __init__(self):
        super().__init__()
        self.log = []

    def on_event(self, topic, payload):
        self.log.append((topic, payload))


@pytest.fixture
def world():
    w = World()
    w.lan(["hub", "sub1", "sub2", "pub"], latency=0.003)
    return w


@pytest.fixture
def channel(world):
    servant = EventChannelServant(world.orb("hub"))
    ior = world.orb("hub").poa.activate_object(servant, "events")
    return servant, ior


class TestChannel:
    def _subscriber(self, world, host, name):
        recorder = Recorder()
        ior = world.orb(host).poa.activate_object(recorder, name)
        return recorder, ior

    def test_publish_reaches_subscribers(self, world, channel):
        servant, channel_ior = channel
        recorder1, sub1 = self._subscriber(world, "sub1", "r1")
        recorder2, sub2 = self._subscriber(world, "sub2", "r2")
        stub = EventChannelStub(world.orb("pub"), channel_ior)
        stub.subscribe("quotes", sub1)
        stub.subscribe("quotes", sub2)
        assert stub.publish("quotes", {"symbol": "ACME"}) == 2
        assert recorder1.log == [("quotes", {"symbol": "ACME"})]
        assert recorder2.log == [("quotes", {"symbol": "ACME"})]

    def test_topics_are_isolated(self, world, channel):
        _, channel_ior = channel
        recorder, sub = self._subscriber(world, "sub1", "r1")
        stub = EventChannelStub(world.orb("pub"), channel_ior)
        stub.subscribe("alpha", sub)
        stub.publish("beta", "x")
        assert recorder.log == []

    def test_subscribe_is_idempotent(self, world, channel):
        _, channel_ior = channel
        _, sub = self._subscriber(world, "sub1", "r1")
        stub = EventChannelStub(world.orb("pub"), channel_ior)
        stub.subscribe("t", sub)
        stub.subscribe("t", sub)
        assert stub.subscriber_count("t") == 1

    def test_unsubscribe(self, world, channel):
        _, channel_ior = channel
        recorder, sub = self._subscriber(world, "sub1", "r1")
        stub = EventChannelStub(world.orb("pub"), channel_ior)
        stub.subscribe("t", sub)
        stub.unsubscribe("t", sub)
        stub.publish("t", 1)
        assert recorder.log == []

    def test_unsubscribe_unknown_raises(self, world, channel):
        _, channel_ior = channel
        _, sub = self._subscriber(world, "sub1", "r1")
        stub = EventChannelStub(world.orb("pub"), channel_ior)
        with pytest.raises(UnknownTopic):
            stub.unsubscribe("ghost", sub)

    def test_dead_subscriber_does_not_stall_publication(self, world, channel):
        servant, channel_ior = channel
        recorder1, sub1 = self._subscriber(world, "sub1", "r1")
        recorder2, sub2 = self._subscriber(world, "sub2", "r2")
        stub = EventChannelStub(world.orb("pub"), channel_ior)
        stub.subscribe("t", sub1)
        stub.subscribe("t", sub2)
        world.faults.crash("sub1")
        stub.publish("t", "still-flows")
        assert recorder2.log == [("t", "still-flows")]
        assert world.orb("hub").oneway_failures == 1

    def test_publication_is_oneway_fast(self, world, channel):
        servant, channel_ior = channel
        # Many subscribers: publication cost must not include waiting
        # for each notify round trip.
        for index in range(5):
            recorder = Recorder()
            sub = world.orb("sub1").poa.activate_object(recorder, f"r{index}")
            servant.subscribe("t", sub.to_string())
        stub = EventChannelStub(world.orb("pub"), channel_ior)
        start = world.clock.now
        stub.publish("t", "fanout")
        # One publish round trip, not 1 + 5 notify round trips.
        assert world.clock.now - start < 0.02


class TestPushInvalidatedActuality:
    def test_push_keeps_cache_fresh_with_huge_max_age(self, world, channel):
        from repro.core.binding import QoSProvider, establish_qos
        from repro.core.negotiation import Range
        from repro.qos.actuality.freshness import ActualityImpl, ActualityMediator
        from repro.workloads.apps import archive_module, make_archive_servant_class

        channel_servant, channel_ior = channel

        # Server side: archive on 'pub' publishing invalidations.
        archive = make_archive_servant_class()()
        provider = QoSProvider(world, "pub", archive)
        provider.support(
            "Actuality",
            ActualityImpl().attach_clock(world.clock),
            capabilities={"max_age": Range(0.1, 1e6)},
        )
        archive_ior = provider.activate("arch")

        # Client side on 'sub1': mediator + push invalidator.
        client = world.orb("sub1")
        stub = archive_module.ArchiveStub(client, archive_ior)
        mediator = ActualityMediator(cacheable={"fetch"}, max_age=1e6)
        establish_qos(
            stub, "Actuality",
            {"max_age": Range(0.1, 1e6, preferred=1e6)},
            mediator=mediator,
        )
        invalidator = CacheInvalidator(mediator)
        invalidator_ior = client.poa.activate_object(invalidator, "inv")
        channel_stub = EventChannelStub(client, channel_ior)
        channel_stub.subscribe("arch-writes", invalidator_ior)

        # Populate and cache.
        archive.files["doc"] = "v1"
        assert stub.fetch("doc") == "v1"
        assert stub.fetch("doc") == "v1"
        assert mediator.hits == 1

        # A write on the server pushes an invalidation to the client.
        archive.files["doc"] = "v2"
        publisher = EventChannelStub(world.orb("pub"), channel_ior)
        publisher.publish("arch-writes", "fetch")
        assert invalidator.invalidations >= 1

        # Despite max_age = 1e6, the next read is fresh.
        assert stub.fetch("doc") == "v2"
