"""Tests for CDR marshalling."""

import pytest

import repro.orb.cdr as cdr
from repro.orb.cdr import (
    CDRDecoder,
    CDREncoder,
    decode_values,
    encode_values,
)
from repro.orb.exceptions import MARSHAL


class TestPrimitives:
    @pytest.mark.parametrize(
        "writer,reader,value",
        [
            ("write_octet", "read_octet", 255),
            ("write_boolean", "read_boolean", True),
            ("write_boolean", "read_boolean", False),
            ("write_short", "read_short", -12345),
            ("write_ushort", "read_ushort", 54321),
            ("write_long", "read_long", -(2**31)),
            ("write_ulong", "read_ulong", 2**32 - 1),
            ("write_longlong", "read_longlong", -(2**63)),
            ("write_double", "read_double", 3.14159),
            ("write_string", "read_string", "hello κόσμος"),
            ("write_octets", "read_octets", b"\x00\x01\xff"),
        ],
    )
    def test_roundtrip(self, writer, reader, value):
        encoder = CDREncoder()
        getattr(encoder, writer)(value)
        decoder = CDRDecoder(encoder.getvalue())
        assert getattr(decoder, reader)() == value

    def test_float_roundtrip_approximate(self):
        encoder = CDREncoder()
        encoder.write_float(1.5)
        assert CDRDecoder(encoder.getvalue()).read_float() == 1.5

    def test_out_of_range_raises_marshal(self):
        encoder = CDREncoder()
        with pytest.raises(MARSHAL):
            encoder.write_octet(256)

    def test_wrong_type_raises_marshal(self):
        encoder = CDREncoder()
        with pytest.raises(MARSHAL):
            encoder.write_string(42)


class TestAlignment:
    def test_long_after_octet_is_aligned(self):
        encoder = CDREncoder()
        encoder.write_octet(1)
        encoder.write_long(7)
        data = encoder.getvalue()
        # 1 octet + 3 padding + 4 long
        assert len(data) == 8
        decoder = CDRDecoder(data)
        assert decoder.read_octet() == 1
        assert decoder.read_long() == 7

    def test_double_alignment(self):
        encoder = CDREncoder()
        encoder.write_octet(1)
        encoder.write_double(2.0)
        assert len(encoder.getvalue()) == 16

    def test_mixed_sequence_roundtrip(self):
        encoder = CDREncoder()
        encoder.write_octet(9)
        encoder.write_string("pad")
        encoder.write_short(-3)
        encoder.write_double(1.25)
        encoder.write_octets(b"xyz")
        decoder = CDRDecoder(encoder.getvalue())
        assert decoder.read_octet() == 9
        assert decoder.read_string() == "pad"
        assert decoder.read_short() == -3
        assert decoder.read_double() == 1.25
        assert decoder.read_octets() == b"xyz"
        assert decoder.at_end()


class TestAny:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            2**100,          # bignum path
            -(2**100),
            1.75,
            "text",
            b"bytes",
            [1, "two", 3.0],
            {"a": 1, "b": [True, None]},
            [],
            {},
        ],
    )
    def test_any_roundtrip(self, value):
        encoder = CDREncoder()
        encoder.write_any(value)
        assert CDRDecoder(encoder.getvalue()).read_any() == value

    def test_bool_is_not_confused_with_int(self):
        encoder = CDREncoder()
        encoder.write_any(True)
        result = CDRDecoder(encoder.getvalue()).read_any()
        assert result is True

    def test_nested_structures(self):
        value = {"rows": [{"id": 1, "blob": b"\x00"}, {"id": 2, "blob": b"\x01"}]}
        encoder = CDREncoder()
        encoder.write_any(value)
        assert CDRDecoder(encoder.getvalue()).read_any() == value

    def test_unmarshalable_value_raises(self):
        encoder = CDREncoder()
        with pytest.raises(MARSHAL):
            encoder.write_any(object())

    def test_non_string_map_key_raises(self):
        encoder = CDREncoder()
        with pytest.raises(MARSHAL):
            encoder.write_any({1: "x"})


class TestErrors:
    def test_underrun_raises_marshal(self):
        with pytest.raises(MARSHAL):
            CDRDecoder(b"\x00").read_long()

    def test_truncated_string_raises_marshal(self):
        encoder = CDREncoder()
        encoder.write_string("hello")
        data = encoder.getvalue()[:-2]
        with pytest.raises(MARSHAL):
            CDRDecoder(data).read_string()

    def test_unknown_any_tag_raises(self):
        with pytest.raises(MARSHAL):
            CDRDecoder(b"\xfe").read_any()


class TestValueHelpers:
    def test_encode_decode_values(self):
        values = ("a", 1, [2.5], {"k": b"v"})
        assert decode_values(encode_values(*values)) == values

    def test_empty_values(self):
        assert decode_values(encode_values()) == ()


class TestStringDecoding:
    """Malformed UTF-8 on the wire must surface as MARSHAL, not a bare
    UnicodeDecodeError leaking out of the decoder."""

    @staticmethod
    def _string_wire(raw: bytes) -> bytes:
        encoder = CDREncoder()
        encoder.write_ulong(len(raw))
        encoder.write_raw(raw)
        return encoder.getvalue()

    def test_truncated_multibyte_sequence_raises_marshal(self):
        # First two bytes of the three-byte encoding of the euro sign.
        wire = self._string_wire(b"\xe2\x82")
        with pytest.raises(MARSHAL, match="UTF-8"):
            CDRDecoder(wire).read_string()

    def test_invalid_byte_raises_marshal(self):
        wire = self._string_wire(b"ab\xff")
        with pytest.raises(MARSHAL, match="UTF-8"):
            CDRDecoder(wire).read_string()

    def test_lone_continuation_byte_raises_marshal(self):
        wire = self._string_wire(b"\x80")
        with pytest.raises(MARSHAL, match="UTF-8"):
            CDRDecoder(wire).read_string()

    def test_valid_multibyte_still_decodes(self):
        encoder = CDREncoder()
        encoder.write_string("€λ")
        assert CDRDecoder(encoder.getvalue()).read_string() == "€λ"


class TestTagCoverage:
    """Every `any` tag decodes; encoder-producible ones round-trip."""

    @pytest.mark.parametrize(
        "value,expected_tag",
        [
            (None, cdr.TAG_NULL),
            (True, cdr.TAG_BOOLEAN),
            (False, cdr.TAG_BOOLEAN),
            (7, cdr.TAG_LONGLONG),
            (-(2**63), cdr.TAG_LONGLONG),
            (2**63 - 1, cdr.TAG_LONGLONG),
            (2**63, cdr.TAG_BIGNUM),
            (-(2**63) - 1, cdr.TAG_BIGNUM),
            (2.5, cdr.TAG_DOUBLE),
            ("hi", cdr.TAG_STRING),
            (b"\x00\x01", cdr.TAG_OCTETS),
            ([1, "two"], cdr.TAG_SEQUENCE),
            ({"k": 1}, cdr.TAG_MAP),
        ],
    )
    def test_encoded_tag_and_roundtrip(self, value, expected_tag):
        encoder = CDREncoder()
        encoder.write_any(value)
        wire = encoder.getvalue()
        assert wire[0] == expected_tag
        assert CDRDecoder(wire).read_any() == value

    def test_bytearray_encodes_as_octets(self):
        encoder = CDREncoder()
        encoder.write_any(bytearray(b"xy"))
        wire = encoder.getvalue()
        assert wire[0] == cdr.TAG_OCTETS
        assert CDRDecoder(wire).read_any() == b"xy"

    def test_tuple_decodes_as_list(self):
        encoder = CDREncoder()
        encoder.write_any((1, 2))
        assert CDRDecoder(encoder.getvalue()).read_any() == [1, 2]

    @pytest.mark.parametrize("value", [2**80, -(2**80), 2**200, -(2**200)])
    def test_bignum_sign_roundtrip(self, value):
        encoder = CDREncoder()
        encoder.write_any(value)
        wire = encoder.getvalue()
        assert wire[0] == cdr.TAG_BIGNUM
        decoded = CDRDecoder(wire).read_any()
        assert decoded == value
        assert (decoded < 0) == (value < 0)

    @pytest.mark.parametrize(
        "tag,writer,value",
        [
            (cdr.TAG_OCTET, "write_octet", 200),
            (cdr.TAG_SHORT, "write_short", -1234),
            (cdr.TAG_USHORT, "write_ushort", 65535),
            (cdr.TAG_LONG, "write_long", -(2**31)),
            (cdr.TAG_ULONG, "write_ulong", 2**32 - 1),
            (cdr.TAG_FLOAT, "write_float", 1.5),
        ],
    )
    def test_decode_only_tags(self, tag, writer, value):
        # The encoder never emits these tags for `any`, but a peer may;
        # hand-build the tagged buffer and decode it.
        encoder = CDREncoder()
        encoder.write_octet(tag)
        getattr(encoder, writer)(value)
        assert CDRDecoder(encoder.getvalue()).read_any() == value
