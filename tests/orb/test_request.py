"""Tests for the dual-use request object."""

import pytest

from repro.orb.ior import IOR, IIOPProfile
from repro.orb.request import COMMAND, REQUEST, Request, command


@pytest.fixture
def target():
    return IOR("IDL:t/I:1.0", IIOPProfile("h", 683, "k"))


class TestConstruction:
    def test_defaults(self, target):
        request = Request(target, "op", (1,))
        assert request.kind == REQUEST
        assert not request.is_command
        assert request.response_expected
        assert request.service_contexts == {}

    def test_ids_are_unique_and_increasing(self, target):
        first = Request(target, "a")
        second = Request(target, "b")
        assert second.request_id > first.request_id

    def test_command_requires_target(self, target):
        with pytest.raises(ValueError):
            Request(target, "op", kind=COMMAND)

    def test_request_must_not_name_command_target(self, target):
        with pytest.raises(ValueError):
            Request(target, "op", command_target="compression")

    def test_unknown_kind_rejected(self, target):
        with pytest.raises(ValueError):
            Request(target, "op", kind="weird")

    def test_args_are_tuple_copies(self, target):
        args = [1, 2]
        request = Request(target, "op", args)
        args.append(3)
        assert request.args == (1, 2)


class TestCommandHelper:
    def test_command_builder(self, target):
        request = command(target, "compression", "set_codec", "b", "rle")
        assert request.is_command
        assert request.command_target == "compression"
        assert request.operation == "set_codec"
        assert request.args == ("b", "rle")

    def test_command_to_transport(self, target):
        request = command(target, "transport", "loaded_modules")
        assert request.command_target == "transport"
