"""AMI deferred invocation and GIOP request pipelining.

The load-bearing invariants of :mod:`repro.orb.ami`:

- ``send_deferred(...).result()`` is *exactly* the synchronous call —
  same value, same simulated clock, same bytes on the wire (request
  ids are aligned across worlds with ``reset_request_ids``).
- A pipelined window pays ~one RTT plus serialized service instead of
  N round trips.
- Replies correlate by GIOP request id even when the server's
  scheduler completes them out of order.
- QoS interception (mediators, module envelopes) wraps deferred calls
  the same way it wraps synchronous ones.
"""

import pytest

from repro.core.mediator import Mediator, MediatorChain
from repro.orb import QOS_TAG, TaggedComponent, World
from repro.orb.dii import DIIRequest
from repro.orb.modules.base import binding_key
from repro.orb.ami import ReplyFuture
from repro.orb.request import reset_request_ids
from repro.orb.servant import Servant
from repro.orb.stub import Stub
from repro.perf import snapshot
from repro.perf.counters import COUNTERS
from repro.sched import CLASS_CONTEXT


class EchoServant(Servant):
    _repo_id = "IDL:ami/Echo:1.0"
    _default_service_time = 0.001

    def __init__(self):
        self.calls = 0

    def echo(self, text):
        self.calls += 1
        return text.upper()

    def fail(self, message):
        self.calls += 1
        raise ValueError(message)

    def notify(self, text):
        self.calls += 1


class EchoStub(Stub):
    _oneway_ops = frozenset({"notify"})

    def echo(self, text):
        return self._call("echo", text)

    def fail(self, message):
        return self._call("fail", message)

    def notify(self, text):
        return self._call("notify", text)


def build_world(latency=0.005, qos=False, servant=None):
    """One deterministic client/server deployment, ids reset to 1."""
    reset_request_ids()
    world = World()
    world.lan(["client", "server"], latency=latency, bandwidth_bps=10e6)
    servant = servant if servant is not None else EchoServant()
    components = (
        [TaggedComponent(QOS_TAG, {"characteristics": ["compression"]})]
        if qos
        else None
    )
    ior = world.orb("server").poa.activate_object(
        servant, object_key="echo", components=components
    )
    return world, world.orb("client"), ior, servant


class TestReplyFuture:
    def test_lifecycle_queued_then_done(self):
        _, client, ior, servant = build_world()
        stub = EchoStub(client, ior)
        future = stub.send_deferred("echo", "hi")
        assert isinstance(future, ReplyFuture)
        assert not future.done
        assert not future.poll()  # not even flushed yet
        assert servant.calls == 0
        assert client.ami.queued == 1
        future.flush()
        assert future.done
        assert servant.calls == 1
        assert client.ami.queued == 0
        # Outcome known to the simulation, not yet to the caller.
        assert not future.poll()
        assert future.result() == "HI"
        assert future.poll()

    def test_result_is_idempotent(self):
        _, client, ior, _ = build_world()
        future = EchoStub(client, ior).send_deferred("echo", "x")
        assert future.result() == "X"
        assert future.result() == "X"

    def test_application_exception_raises_at_result(self):
        _, client, ior, _ = build_world()
        future = EchoStub(client, ior).send_deferred("fail", "boom")
        future.flush()
        assert not future.transport_error
        with pytest.raises(Exception, match="boom"):
            future.result()
        assert future.exception() is not None

    def test_callback_fires_on_flush(self):
        _, client, ior, _ = build_world()
        seen = []
        future = EchoStub(client, ior).send_deferred("echo", "cb")
        future.add_done_callback(lambda f: seen.append(f.request_id))
        assert seen == []
        future.flush()
        assert seen == [future.request_id]
        # A done future fires immediately.
        future.add_done_callback(lambda f: seen.append("again"))
        assert seen == [future.request_id, "again"]

    def test_oneway_via_send_deferred(self):
        _, client, ior, servant = build_world()
        future = EchoStub(client, ior).send_deferred("notify", "fire")
        # Fire-and-forget resolves on the spot through the sync path.
        assert future.done
        assert future.result() is None
        assert servant.calls == 1


class TestSyncEquivalence:
    """``invoke`` must be re-expressible as ``send_deferred().result()``."""

    @pytest.mark.parametrize("qos", [False, True], ids=["plain", "compressed"])
    def test_value_clock_and_bytes_match_sync(self, qos):
        texts = ["abcabc" * 50, "zzz", "qrs" * 120]

        def bind(client, ior):
            if qos:
                client.qos_transport.assign(ior, "compression")
                client.qos_transport.module("compression").set_codec(
                    binding_key(ior), "rle"
                )
            return EchoStub(client, ior)

        world_a, client_a, ior_a, _ = build_world(qos=qos)
        stub_a = bind(client_a, ior_a)
        wires_a = []
        world_a.orb("server").add_wire_observer(
            lambda d, w: wires_a.append((d, bytes(w)))
        )
        values_a = [stub_a.echo(text) for text in texts]

        world_b, client_b, ior_b, _ = build_world(qos=qos)
        stub_b = bind(client_b, ior_b)
        wires_b = []
        world_b.orb("server").add_wire_observer(
            lambda d, w: wires_b.append((d, bytes(w)))
        )
        values_b = [stub_b.send_deferred("echo", text).result() for text in texts]

        assert values_b == values_a == [t.upper() for t in texts]
        assert world_b.clock.now == pytest.approx(world_a.clock.now, abs=1e-12)
        # Byte-level wire format identical per message, both directions.
        assert wires_b == wires_a
        assert world_b.network.bytes_sent == world_a.network.bytes_sent

    @pytest.mark.parametrize("qos", [False, True], ids=["plain", "compressed"])
    def test_pipelined_window_sends_identical_bytes(self, qos):
        """Batching changes *when* messages leave, never their bytes."""
        texts = ["pipelined" * 30, "aa" * 200, "tail"]

        def bind(client, ior):
            if qos:
                client.qos_transport.assign(ior, "compression")
            return EchoStub(client, ior)

        world_a, client_a, ior_a, _ = build_world(qos=qos)
        stub_a = bind(client_a, ior_a)
        wires_a = []
        world_a.orb("server").add_wire_observer(
            lambda d, w: wires_a.append((d, bytes(w)))
        )
        for text in texts:
            stub_a.echo(text)

        world_b, client_b, ior_b, _ = build_world(qos=qos)
        stub_b = bind(client_b, ior_b)
        wires_b = []
        world_b.orb("server").add_wire_observer(
            lambda d, w: wires_b.append((d, bytes(w)))
        )
        futures = [stub_b.send_deferred("echo", text) for text in texts]
        results = [future.result() for future in futures]

        assert results == [t.upper() for t in texts]
        assert wires_b == wires_a

    def test_pipelined_window_beats_sync_latency(self):
        count = 8
        world_a, client_a, ior_a, _ = build_world()
        stub_a = EchoStub(client_a, ior_a)
        start = world_a.clock.now
        for i in range(count):
            stub_a.echo(f"m{i}")
        sync_elapsed = world_a.clock.now - start

        world_b, client_b, ior_b, _ = build_world()
        stub_b = EchoStub(client_b, ior_b)
        start = world_b.clock.now
        futures = [stub_b.send_deferred("echo", f"m{i}") for i in range(count)]
        assert [f.result() for f in futures] == [f"M{i}" for i in range(count)]
        pipelined_elapsed = world_b.clock.now - start

        # One RTT + serialized service instead of N round trips.
        assert pipelined_elapsed < 0.5 * sync_elapsed


class TestPipelineMechanics:
    def test_window_auto_flush(self):
        _, client, ior, servant = build_world()
        client.ami.window = 3
        stub = EchoStub(client, ior)
        futures = [stub.send_deferred("echo", f"w{i}") for i in range(5)]
        # The third submission crossed the window: one flush happened.
        assert [f.done for f in futures] == [True, True, True, False, False]
        assert servant.calls == 3
        assert client.ami.flush() == 2
        assert all(f.done for f in futures)

    def test_out_of_order_completion_correlates_by_request_id(self):
        """Server-side priority scheduling reorders reply completion."""
        COUNTERS.reset()
        servant = EchoServant()
        servant._default_service_time = 0.010
        world, client, ior, _ = build_world(servant=servant)
        scheduler = world.orb("server").install_scheduler(policy="priority")
        scheduler.define_class("gold", weight=4.0, priority=1)
        scheduler.define_class("bronze", weight=1.0, priority=6)

        stub = EchoStub(client, ior)
        labels = ["bronze", "bronze", "bronze", "gold"]
        futures = []
        for i, label in enumerate(labels):
            stub._contexts[CLASS_CONTEXT] = label
            futures.append(stub.send_deferred("echo", f"{label}{i}"))
        client.ami.flush()

        # The later-sent gold request overtook the bronze backlog.
        gold = futures[3]
        assert gold.ready_time < futures[1].ready_time
        assert gold.ready_time < futures[2].ready_time
        assert COUNTERS.pipeline_out_of_order >= 1
        # And every future still carries *its own* reply.
        assert [f.result() for f in futures] == [
            f"{label.upper()}{i}" for i, label in enumerate(labels)
        ]

    def test_channels_are_per_binding(self):
        reset_request_ids()
        world = World()
        world.lan(["client", "s1", "s2"], latency=0.005)
        ior1 = world.orb("s1").poa.activate_object(EchoServant(), object_key="e1")
        ior2 = world.orb("s2").poa.activate_object(EchoServant(), object_key="e2")
        client = world.orb("client")
        f1 = EchoStub(client, ior1).send_deferred("echo", "a")
        f2 = EchoStub(client, ior2).send_deferred("echo", "b")
        assert len(client.ami.channels()) == 2
        assert {f1.result(), f2.result()} == {"A", "B"}

    def test_perf_snapshot_surfaces_pipeline_counters(self):
        COUNTERS.reset()
        _, client, ior, _ = build_world()
        stub = EchoStub(client, ior)
        futures = [stub.send_deferred("echo", f"s{i}") for i in range(4)]
        panel = snapshot(client)
        assert panel["ami_inflight"] == 4
        assert panel["ami_queued"] == 4
        client.ami.flush()
        for future in futures:
            future.result()
        panel = snapshot(client)
        assert panel["host"] == "client"
        assert panel["requests_invoked"] == 4
        assert panel["oneway_failures"] == 0
        assert panel["pipeline_windows"] == 1
        assert panel["pipeline_messages"] == 4
        assert panel["pipeline_messages_per_window"] == 4.0
        assert panel["pipeline_inflight_peak"] == 4
        assert panel["ami_inflight"] == 0
        assert panel["ami_inflight_peak"] == 4


class CountingMediator(Mediator):
    characteristic = "counting"


class TestQoSInterception:
    def test_mediator_intercepts_deferred_calls(self):
        _, client, ior, _ = build_world()
        stub = EchoStub(client, ior)
        mediator = CountingMediator().install(stub)
        future = stub.send_deferred("echo", "via-mediator")
        assert mediator.calls_intercepted == 1
        assert future.result() == "VIA-MEDIATOR"

    def test_mediator_chain_passes_future_through(self):
        _, client, ior, _ = build_world()
        stub = EchoStub(client, ior)
        outer, inner = CountingMediator(), CountingMediator()
        MediatorChain(outer, inner).install(stub)
        future = stub.send_deferred("echo", "chained")
        assert (outer.calls_intercepted, inner.calls_intercepted) == (1, 1)
        assert future.result() == "CHAINED"

    def test_short_circuiting_mediator_yields_resolved_future(self):
        class CacheMediator(Mediator):
            characteristic = "cache"

            def invoke(self, stub, operation, args):
                self.calls_intercepted += 1
                return "CACHED"  # answers without issuing

        _, client, ior, servant = build_world()
        stub = EchoStub(client, ior)
        CacheMediator().install(stub)
        future = stub.send_deferred("echo", "anything")
        assert future.done
        assert future.request_id == 0  # never crossed the wire
        assert future.result() == "CACHED"
        assert servant.calls == 0


class TestDIIDeferredOnAMI:
    def test_dii_future_is_exposed(self):
        _, client, ior, _ = build_world()
        request = DIIRequest(client, ior, "echo").add_argument("dii")
        assert request.future is None
        request.send_deferred()
        assert isinstance(request.future, ReplyFuture)
        assert request.get_response() == "DII"

    def test_unflushed_dii_requests_share_a_window(self):
        COUNTERS.reset()
        _, client, ior, servant = build_world()
        requests = [
            DIIRequest(client, ior, "echo").add_argument(f"d{i}").send_deferred(
                flush=False
            )
            for i in range(3)
        ]
        assert servant.calls == 0
        assert [r.get_response() for r in requests] == ["D0", "D1", "D2"]
        assert COUNTERS.pipeline_windows == 1
        assert COUNTERS.pipeline_messages == 3


class TestLocateRequestIds:
    def test_locate_ids_come_from_the_shared_allocator(self):
        """Satellite fix: locate() must not hardcode request_id=0."""
        from repro.orb import giop

        _, client, ior, _ = build_world()
        locate_ids = []

        def tap(direction, wire):
            if (
                direction == "in"
                and giop.message_type(wire) == giop.MSG_LOCATE_REQUEST
            ):
                locate_ids.append(giop.decode_locate_request(wire)[0])

        server = client.world.orb_at("server")
        server.add_wire_observer(tap)
        stub = EchoStub(client, ior)
        assert client.locate(ior) is True
        future = stub.send_deferred("echo", "interleaved")
        assert client.locate(ior) is True
        assert future.result() == "INTERLEAVED"
        assert len(locate_ids) == 2
        # Fresh, distinct ids — never the hardwired 0, and never
        # colliding with the pipelined request in flight between them.
        assert 0 not in locate_ids
        assert len(set(locate_ids)) == 2
        assert future.request_id not in locate_ids
