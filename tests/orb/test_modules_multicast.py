"""Tests for the multicast (replica group) module."""

import pytest

from repro.orb.exceptions import BAD_PARAM, COMM_FAILURE, TRANSIENT
from repro.orb.modules.base import binding_key
from tests.orb.conftest import EchoStub


@pytest.fixture
def group_stub(world, client_orb, group_ior):
    client_orb.qos_transport.assign(group_ior, "multicast")
    return EchoStub(client_orb, group_ior)


def set_policy(client_orb, group_ior, policy):
    module = client_orb.qos_transport.module("multicast")
    module.set_policy(binding_key(group_ior), policy)


class TestFirstPolicy:
    def test_returns_result(self, group_stub):
        assert group_stub.echo("hi") == "HI"

    def test_all_replicas_execute(self, world, group_stub):
        group_stub.echo("x")
        for name in ("s1", "s2", "s3"):
            assert world.orb(name).poa.requests_dispatched == 1

    def test_masks_single_crash(self, world, group_stub):
        world.faults.crash("s1")
        assert group_stub.echo("still-alive") == "STILL-ALIVE"

    def test_masks_all_but_one_crash(self, world, group_stub):
        world.faults.crash("s1")
        world.faults.crash("s3")
        assert group_stub.echo("last-one") == "LAST-ONE"

    def test_total_failure_raises_comm_failure(self, world, group_stub):
        for name in ("s1", "s2", "s3"):
            world.faults.crash(name)
        with pytest.raises(COMM_FAILURE):
            group_stub.echo("anyone")

    def test_latency_is_fastest_member(self, world, client_orb, group_ior, group_stub):
        # Slow s1 and s2 down drastically; 'first' should still be quick.
        world.network.host("s1").cpu_factor = 0.01
        world.network.host("s2").cpu_factor = 0.01
        start = world.clock.now
        group_stub.echo("quick")
        elapsed = world.clock.now - start
        assert elapsed < 0.1  # dominated by the fast member, not 100x ones


class TestAllPolicy:
    def test_succeeds_when_all_up(self, world, client_orb, group_ior, group_stub):
        set_policy(client_orb, group_ior, "all")
        assert group_stub.echo("x") == "X"

    def test_single_crash_fails_call(self, world, client_orb, group_ior, group_stub):
        set_policy(client_orb, group_ior, "all")
        world.faults.crash("s2")
        with pytest.raises(COMM_FAILURE):
            group_stub.echo("x")

    def test_latency_is_slowest_member(self, world, client_orb, group_ior, group_stub):
        set_policy(client_orb, group_ior, "all")
        world.network.host("s3").cpu_factor = 0.01  # 100x slower
        start = world.clock.now
        group_stub.echo("x")
        assert world.clock.now - start >= 0.05


class TestMajorityPolicy:
    def test_agreeing_replicas_win(self, world, client_orb, group_ior, group_stub):
        set_policy(client_orb, group_ior, "majority")
        assert group_stub.echo("vote") == "VOTE"

    def test_masks_one_value_fault(self, world, client_orb, group_ior, group_stub):
        set_policy(client_orb, group_ior, "majority")
        # Corrupt one replica: it answers differently.
        bad = world.orb("s2").poa.servant("rep-s2")
        bad.echo = lambda text: "CORRUPTED"
        assert group_stub.echo("vote") == "VOTE"

    def test_two_value_faults_break_majority(
        self, world, client_orb, group_ior, group_stub
    ):
        set_policy(client_orb, group_ior, "majority")
        world.orb("s1").poa.servant("rep-s1").echo = lambda text: "BAD-A"
        world.orb("s2").poa.servant("rep-s2").echo = lambda text: "BAD-B"
        with pytest.raises(TRANSIENT):
            group_stub.echo("vote")

    def test_crash_plus_agreement_still_wins(
        self, world, client_orb, group_ior, group_stub
    ):
        set_policy(client_orb, group_ior, "majority")
        world.faults.crash("s3")
        assert group_stub.echo("vote") == "VOTE"

    def test_crash_leaving_minority_fails(
        self, world, client_orb, group_ior, group_stub
    ):
        set_policy(client_orb, group_ior, "majority")
        world.faults.crash("s2")
        world.faults.crash("s3")
        with pytest.raises(TRANSIENT):
            group_stub.echo("vote")


class TestGroupPlumbing:
    def test_non_group_ior_rejected(self, world, client_orb, qos_echo_ior):
        # QoS-aware (so the assignment engages) but lacking a group
        # component: the module must refuse it.
        client_orb.qos_transport.assign(qos_echo_ior, "multicast")
        stub = EchoStub(client_orb, qos_echo_ior)
        with pytest.raises(BAD_PARAM):
            stub.echo("x")

    def test_unknown_policy_rejected(self, client_orb):
        module = client_orb.qos_transport.load_module("multicast")
        with pytest.raises(BAD_PARAM):
            module.set_policy("b", "quorum-of-one")

    def test_group_members_introspection(self, client_orb, group_ior):
        module = client_orb.qos_transport.load_module("multicast")
        hosts = module.group_members(group_ior.to_string())
        assert hosts == ["s1", "s2", "s3"]

    def test_failure_statistics(self, world, client_orb, group_ior, group_stub):
        world.faults.crash("s1")
        group_stub.echo("x")
        module = client_orb.qos_transport.module("multicast")
        assert module.fanouts == 1
        assert module.member_failures == 1
