"""Tests for the tracing transport module."""

import pytest

from repro.orb.dii import ModuleHandle
from repro.orb.modules.base import binding_key
from tests.orb.conftest import EchoStub


@pytest.fixture
def traced_stub(world, client_orb, qos_echo_ior):
    client_orb.qos_transport.assign(qos_echo_ior, "trace")
    return EchoStub(client_orb, qos_echo_ior), binding_key(qos_echo_ior)


class TestTraceModule:
    def test_registered_in_registry(self, client_orb):
        assert "trace" in client_orb.qos_transport.loadable_modules()

    def test_requests_pass_through_untouched(self, traced_stub):
        stub, _ = traced_stub
        assert stub.echo("hello") == "HELLO"

    def test_records_accumulate(self, traced_stub, client_orb):
        stub, binding = traced_stub
        stub.echo("one")
        stub.add(1, 2)
        module = client_orb.qos_transport.module("trace")
        records = module.recent(binding)
        assert [record[0] for record in records] == ["echo", "add"]
        assert all(record[1] > 0 for record in records)  # wire bytes
        assert all(record[2] > 0 for record in records)  # simulated rtt

    def test_totals(self, traced_stub, client_orb):
        stub, binding = traced_stub
        for _ in range(3):
            stub.echo("x")
        totals = client_orb.qos_transport.module("trace").totals(binding)
        assert totals["calls"] == 3.0
        assert totals["bytes"] > 0
        assert totals["seconds"] > 0

    def test_clear(self, traced_stub, client_orb):
        stub, binding = traced_stub
        stub.echo("x")
        module = client_orb.qos_transport.module("trace")
        module.clear(binding)
        assert module.totals(binding)["calls"] == 0.0
        assert module.recent(binding) == []

    def test_dynamic_interface_over_wire(self, world, traced_stub, echo_ior):
        stub, binding = traced_stub
        stub.echo("x")
        # Ask the *client's* module via local call and a remote module
        # (on the server) via command — the remote one saw nothing, it
        # never carried the client's outgoing requests.
        handle = ModuleHandle(world.orb("client"), echo_ior, "trace")
        remote_totals = handle.call("totals", binding)
        assert remote_totals["calls"] == 0.0

    def test_unknown_binding_is_empty(self, client_orb):
        module = client_orb.qos_transport.load_module("trace")
        assert module.recent("nothing") == []
        assert module.totals("nothing")["calls"] == 0.0

    def test_history_bounded(self, traced_stub, client_orb):
        from repro.orb.modules.trace import HISTORY

        stub, binding = traced_stub
        for index in range(HISTORY + 20):
            stub.echo(str(index))
        module = client_orb.qos_transport.module("trace")
        assert len(module.recent(binding, count=HISTORY * 2)) == HISTORY
        assert module.totals(binding)["calls"] == HISTORY + 20
