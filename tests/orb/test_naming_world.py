"""Tests for the naming service and the World bootstrap."""

import pytest

from repro.orb import World
from repro.orb.exceptions import COMM_FAILURE, TRANSIENT
from repro.orb.naming import AlreadyBound, NotFound


@pytest.fixture
def named_world(world, echo_ior):
    world.start_naming("server")
    return world


class TestNaming:
    def test_bind_and_resolve(self, named_world, echo_ior):
        naming = named_world.naming("client")
        naming.bind("echo", echo_ior)
        assert naming.resolve("echo") == echo_ior

    def test_resolve_unknown_raises_not_found(self, named_world):
        naming = named_world.naming("client")
        with pytest.raises(NotFound):
            naming.resolve("ghost")

    def test_double_bind_raises_already_bound(self, named_world, echo_ior):
        naming = named_world.naming("client")
        naming.bind("echo", echo_ior)
        with pytest.raises(AlreadyBound):
            naming.bind("echo", echo_ior)

    def test_rebind_replaces(self, named_world, echo_ior, qos_echo_ior):
        naming = named_world.naming("client")
        naming.bind("echo", echo_ior)
        naming.rebind("echo", qos_echo_ior)
        assert naming.resolve("echo") == qos_echo_ior

    def test_unbind(self, named_world, echo_ior):
        naming = named_world.naming("client")
        naming.bind("echo", echo_ior)
        naming.unbind("echo")
        with pytest.raises(NotFound):
            naming.resolve("echo")

    def test_unbind_unknown_raises(self, named_world):
        naming = named_world.naming("client")
        with pytest.raises(NotFound):
            naming.unbind("ghost")

    def test_list_names_sorted(self, named_world, echo_ior):
        naming = named_world.naming("client")
        naming.bind("zeta", echo_ior)
        naming.bind("alpha", echo_ior)
        assert naming.list_names() == ["alpha", "zeta"]

    def test_naming_crosses_the_wire(self, named_world, echo_ior):
        before = named_world.network.messages_sent
        named_world.naming("client").bind("echo", echo_ior)
        assert named_world.network.messages_sent > before


class TestWorld:
    def test_orb_created_lazily_once(self, world):
        first = world.orb("client")
        assert world.orb("client") is first

    def test_orb_at_requires_listener(self, world):
        world.add_host("quiet")
        with pytest.raises(COMM_FAILURE):
            world.orb_at("quiet")

    def test_naming_requires_start(self, world):
        with pytest.raises(TRANSIENT):
            world.naming("client")

    def test_lan_full_mesh(self):
        world = World()
        world.lan(["a", "b", "c"])
        assert world.network.route("a", "c")
        assert world.network.route("b", "c")

    def test_lan_is_idempotent(self):
        world = World()
        world.lan(["a", "b"])
        world.lan(["a", "b", "c"])
        assert len(world.network.hosts) == 3

    def test_initial_reference_unknown(self, world):
        with pytest.raises(TRANSIENT):
            world.orb("client").resolve_initial_references("TimeService")
