"""Shared fixtures: a small world with echo servers."""

import pytest

from repro.orb import QOS_TAG, TaggedComponent, World
from repro.orb.ior import GROUP_TAG, IOR
from repro.orb.servant import Servant
from repro.orb.stub import Stub


class EchoServant(Servant):
    """A deterministic test servant."""

    _repo_id = "IDL:test/Echo:1.0"
    _default_service_time = 0.001

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.calls = 0

    def echo(self, text):
        self.calls += 1
        return text.upper()

    def whoami(self):
        self.calls += 1
        return self.label

    def fail(self, message):
        self.calls += 1
        raise ValueError(message)

    def add(self, a, b):
        self.calls += 1
        return a + b


class EchoStub(Stub):
    def echo(self, text):
        return self._call("echo", text)

    def whoami(self):
        return self._call("whoami")

    def fail(self, message):
        return self._call("fail", message)

    def add(self, a, b):
        return self._call("add", a, b)


@pytest.fixture
def world():
    w = World()
    w.lan(["client", "server", "s1", "s2", "s3"], latency=0.005, bandwidth_bps=10e6)
    return w


@pytest.fixture
def client_orb(world):
    return world.orb("client")


@pytest.fixture
def echo_servant():
    return EchoServant("server")


@pytest.fixture
def echo_ior(world, echo_servant):
    return world.orb("server").poa.activate_object(echo_servant)


@pytest.fixture
def echo_stub(client_orb, echo_ior):
    return EchoStub(client_orb, echo_ior)


@pytest.fixture
def qos_echo_ior(world):
    """An echo object advertising QoS awareness."""
    component = TaggedComponent(QOS_TAG, {"characteristics": ["compression"]})
    return world.orb("server").poa.activate_object(
        EchoServant("qos-server"), components=[component]
    )


@pytest.fixture
def group_ior(world):
    """A three-member replica group reference."""
    members = []
    for name in ("s1", "s2", "s3"):
        ior = world.orb(name).poa.activate_object(
            EchoServant(name), object_key=f"rep-{name}"
        )
        members.append(ior)
    return IOR(
        "IDL:test/Echo:1.0",
        members[0].profile,
        [
            TaggedComponent(QOS_TAG, {"characteristics": ["fault_tolerance"]}),
            TaggedComponent(
                GROUP_TAG,
                {"group": "echo-group", "members": [m.to_string() for m in members]},
            ),
        ],
    )
