"""Tests for the QoS transport: loading, assignment, command dispatch."""

import pytest

from repro.orb.dii import ModuleHandle, TransportHandle
from repro.orb.exceptions import BAD_OPERATION, NO_RESOURCES
from repro.orb.modules import available_modules


class TestModuleAdministration:
    def test_iiop_always_loaded(self, client_orb):
        assert client_orb.qos_transport.loaded_modules() == ["iiop"]

    def test_load_by_name(self, client_orb):
        module = client_orb.qos_transport.load_module("compression")
        assert module.name == "compression"
        assert "compression" in client_orb.qos_transport.loaded_modules()

    def test_load_is_idempotent(self, client_orb):
        first = client_orb.qos_transport.load_module("compression")
        second = client_orb.qos_transport.load_module("compression")
        assert first is second

    def test_unknown_module_raises_no_resources(self, client_orb):
        with pytest.raises(NO_RESOURCES):
            client_orb.qos_transport.load_module("wormhole")

    def test_unload(self, client_orb):
        client_orb.qos_transport.load_module("compression")
        assert client_orb.qos_transport.unload_module("compression")
        assert "compression" not in client_orb.qos_transport.loaded_modules()

    def test_unload_missing_returns_false(self, client_orb):
        assert not client_orb.qos_transport.unload_module("compression")

    def test_iiop_cannot_be_unloaded(self, client_orb):
        with pytest.raises(BAD_OPERATION):
            client_orb.qos_transport.unload_module("iiop")

    def test_registry_lists_all_modules(self, client_orb):
        loadable = client_orb.qos_transport.loadable_modules()
        assert set(loadable) >= {
            "iiop",
            "compression",
            "crypto",
            "bandwidth",
            "multicast",
        }
        assert loadable == available_modules()


class TestAssignments:
    def test_assign_loads_and_records(self, client_orb, qos_echo_ior):
        client_orb.qos_transport.assign(qos_echo_ior, "compression")
        module = client_orb.qos_transport.assigned_module(qos_echo_ior)
        assert module.name == "compression"

    def test_unassigned_returns_none(self, client_orb, qos_echo_ior):
        assert client_orb.qos_transport.assigned_module(qos_echo_ior) is None

    def test_unassign(self, client_orb, qos_echo_ior):
        client_orb.qos_transport.assign(qos_echo_ior, "compression")
        assert client_orb.qos_transport.unassign(qos_echo_ior)
        assert client_orb.qos_transport.assigned_module(qos_echo_ior) is None

    def test_unload_clears_assignments(self, client_orb, qos_echo_ior):
        client_orb.qos_transport.assign(qos_echo_ior, "compression")
        client_orb.qos_transport.unload_module("compression")
        assert client_orb.qos_transport.assigned_module(qos_echo_ior) is None


class TestCommands:
    def test_transport_command_over_wire(self, client_orb, echo_ior):
        handle = TransportHandle(client_orb, echo_ior)
        assert handle.call("loaded_modules") == ["iiop"]

    def test_remote_dynamic_loading(self, world, client_orb, echo_ior):
        handle = TransportHandle(client_orb, echo_ior)
        handle.call("load_module", "compression")
        assert "compression" in world.orb("server").qos_transport.loaded_modules()

    def test_module_command_autoloads_module(self, world, client_orb, echo_ior):
        # Sending a command to an unloaded module loads it on demand
        # ("dynamic loading of QoS modules on request", Section 4).
        handle = ModuleHandle(client_orb, echo_ior, "compression")
        codec = handle.call("get_codec", "any-binding")
        assert codec == "lz"
        assert "compression" in world.orb("server").qos_transport.loaded_modules()

    def test_unknown_transport_command_raises(self, client_orb, echo_ior):
        handle = TransportHandle(client_orb, echo_ior)
        with pytest.raises(BAD_OPERATION):
            handle.call("self_destruct")

    def test_unknown_module_command_raises(self, client_orb, echo_ior):
        handle = ModuleHandle(client_orb, echo_ior, "iiop")
        with pytest.raises(BAD_OPERATION):
            handle.call("warp")

    def test_module_statistics_command(self, client_orb, echo_ior, echo_stub):
        echo_stub.echo("x")
        handle = TransportHandle(client_orb, echo_ior)
        stats = handle.call("module_statistics", "iiop")
        assert stats["requests_served"] == 0  # iiop serves but doesn't wrap
        assert stats["commands_handled"] == 0


class TestPseudoObject:
    def test_static_interface_resolves_locally(self, client_orb):
        pseudo = client_orb.resolve_initial_references("QoSTransport")
        assert "load_module" in pseudo.operations()
        assert pseudo.call("loaded_modules") == ["iiop"]

    def test_pseudo_object_load(self, client_orb):
        pseudo = client_orb.resolve_initial_references("QoSTransport")
        pseudo.call("load_module", "bandwidth")
        assert "bandwidth" in client_orb.qos_transport.loaded_modules()

    def test_module_pseudo_object(self, client_orb):
        module = client_orb.qos_transport.load_module("compression")
        pseudo = module.pseudo_object()
        assert pseudo.call("name") == "compression"
        assert "set_codec" in pseudo.call("dynamic_ops")
