"""Direct unit tests for the DII and the typed-skeleton runtime."""

import pytest

from repro.orb import World
from repro.orb.dii import DIIRequest, PseudoObject
from repro.orb.exceptions import BAD_OPERATION, BAD_PARAM
from repro.orb.servant import Servant
from repro.orb.skeleton import OperationSignature, TypedSkeleton


class Calc(Servant):
    _repo_id = "IDL:unit/Calc:1.0"

    def add(self, a, b):
        return a + b

    def noop(self):
        return None


@pytest.fixture
def deployment():
    world = World()
    world.lan(["client", "server"], latency=0.001)
    ior = world.orb("server").poa.activate_object(Calc())
    return world, ior


class TestDIIRequest:
    def test_build_and_invoke(self, deployment):
        world, ior = deployment
        result = (
            DIIRequest(world.orb("client"), ior, "add")
            .add_argument(2)
            .add_argument(3)
            .invoke()
        )
        assert result == 5

    def test_context_travels(self, deployment):
        world, ior = deployment
        servant = world.orb("server").poa.servant(ior.profile.object_key)
        seen = {}
        original = servant._dispatch

        def spy(operation, args, contexts=None):
            seen.update(contexts or {})
            return original(operation, args, contexts)

        servant._dispatch = spy
        DIIRequest(world.orb("client"), ior, "noop").set_context(
            "trace-id", "abc"
        ).invoke()
        assert seen["trace-id"] == "abc"

    def test_unknown_operation_raises(self, deployment):
        world, ior = deployment
        with pytest.raises(BAD_OPERATION):
            DIIRequest(world.orb("client"), ior, "subtract").invoke()


class TestPseudoObject:
    def test_call_and_reflection(self):
        pseudo = PseudoObject("thing", {"ping": lambda: "pong", "double": lambda x: 2 * x})
        assert pseudo.call("ping") == "pong"
        assert pseudo.call("double", 4) == 8
        assert pseudo.operations() == ["double", "ping"]

    def test_unknown_operation(self):
        with pytest.raises(BAD_OPERATION):
            PseudoObject("thing", {}).call("vanish")


class TestOperationSignature:
    def test_arity_check(self):
        signature = OperationSignature("op", ("long", "string"), "void")
        signature.check_args((1, "x"))
        with pytest.raises(BAD_PARAM):
            signature.check_args((1,))

    def test_type_check(self):
        signature = OperationSignature("op", ("long",), "void")
        with pytest.raises(BAD_PARAM):
            signature.check_args(("not-an-int",))

    def test_simple_result(self):
        signature = OperationSignature("op", (), "double")
        signature.check_result(1.5)
        with pytest.raises(BAD_PARAM):
            signature.check_result("nope")

    def test_composite_result_with_out_params(self):
        signature = OperationSignature(
            "op", ("string",), "double", out_types=("long", "string")
        )
        signature.check_result((1.0, 2, "x"))
        with pytest.raises(BAD_PARAM):
            signature.check_result((1.0, 2))  # wrong arity
        with pytest.raises(BAD_PARAM):
            signature.check_result((1.0, "two", "x"))  # wrong element type
        with pytest.raises(BAD_PARAM):
            signature.check_result(1.0)  # not a tuple at all

    def test_void_result_with_out_params(self):
        signature = OperationSignature("op", (), "void", out_types=("long",))
        signature.check_result((7,))
        with pytest.raises(BAD_PARAM):
            signature.check_result(7)


class TestTypedSkeleton:
    class Typed(TypedSkeleton):
        _signatures = {
            "add": OperationSignature("add", ("long", "long"), "long"),
            "ghost": OperationSignature("ghost", (), "void"),
        }

        def add(self, a, b):
            return a + b

    def test_typed_dispatch(self):
        servant = self.Typed()
        assert servant._dispatch("add", (2, 3)) == 5

    def test_unknown_operation(self):
        with pytest.raises(BAD_OPERATION):
            self.Typed()._dispatch("multiply", ())

    def test_declared_but_unimplemented(self):
        with pytest.raises(BAD_OPERATION):
            self.Typed()._dispatch("ghost", ())

    def test_argument_validation(self):
        with pytest.raises(BAD_PARAM):
            self.Typed()._dispatch("add", (2, "three"))

    def test_result_validation(self):
        class Lying(self.Typed):
            def add(self, a, b):
                return "not-a-long"

        with pytest.raises(BAD_PARAM):
            Lying()._dispatch("add", (1, 2))
