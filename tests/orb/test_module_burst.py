"""Burst batching through QoS modules must be invisible on the wire.

``wrap_burst``/``unwrap_burst``/``send_pipeline`` amortise only the
Python-level transform setup (codec lookup, key resolution) across a
batch; the produced bytes, envelope params, simulated CPU charges and
end-to-end timing are asserted byte-for-byte identical to the
per-message path.
"""

import random

import pytest

from repro.orb import World
from repro.orb.modules.base import binding_key
from repro.orb.modules.compression import CompressionModule
from repro.orb.modules.crypto import CryptoModule
from repro.orb.request import Request
from repro.perf.counters import COUNTERS
from tests.orb.conftest import EchoServant

COMPRESSIBLE = ("abcabcabc" * 200).encode()


def noise(n, seed=7):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


def make_bodies():
    """A mix of compressible and incompressible message bodies."""
    return [COMPRESSIBLE, noise(600), b"x" * 400, noise(300, seed=9), b"y" * 5]


class TestCompressionBurst:
    def test_wrap_burst_matches_single_wraps(self):
        module = CompressionModule()
        context = {"codec": "lz"}
        bodies = make_bodies()
        single = [module.wrap(body, context) for body in bodies]
        burst_module = CompressionModule()
        burst = burst_module.wrap_burst(bodies, context)
        assert burst == single
        assert burst_module.bytes_in == module.bytes_in
        assert burst_module.bytes_out == module.bytes_out
        # The mix really exercised the identity fallback.
        assert {params["codec"] for params, _, _ in burst} >= {"lz", "identity"}

    def test_unwrap_burst_matches_single_unwraps(self):
        module = CompressionModule()
        wrapped = module.wrap_burst(make_bodies(), {"codec": "lz"})
        items = [(params, payload) for params, payload, _ in wrapped]
        single = [module.unwrap(params, payload) for params, payload in items]
        burst = module.unwrap_burst(items)
        assert burst == single
        assert [body for body, _ in burst] == make_bodies()

    def test_burst_counters_account_messages(self):
        COUNTERS.reset()
        module = CompressionModule()
        wrapped = module.wrap_burst(make_bodies(), {"codec": "lz"})
        module.unwrap_burst([(p, b) for p, b, _ in wrapped])
        assert COUNTERS.module_bursts == 2
        assert COUNTERS.module_burst_messages == 2 * len(make_bodies())

    def test_empty_burst_is_a_noop(self):
        module = CompressionModule()
        assert module.unwrap_burst([]) == []


class TestCryptoBurst:
    def make_module(self):
        module = CryptoModule()
        module.install_key("s1", b"0123456789abcdef")
        return module

    def test_wrap_burst_matches_single_wraps(self):
        context = {"cipher": "xtea-ctr", "key_id": "s1"}
        bodies = make_bodies()
        single_module = self.make_module()
        single = [single_module.wrap(body, context) for body in bodies]
        burst = self.make_module().wrap_burst(bodies, context)
        assert burst == single

    def test_unwrap_burst_roundtrips(self):
        module = self.make_module()
        context = {"cipher": "xtea-ctr", "key_id": "s1"}
        wrapped = module.wrap_burst(make_bodies(), context)
        items = [(params, payload) for params, payload, _ in wrapped]
        single = [module.unwrap(params, payload) for params, payload in items]
        burst = module.unwrap_burst(items)
        assert burst == single
        assert [body for body, _ in burst] == make_bodies()


def pipeline_world():
    """One deterministic world with a compressed echo binding."""
    world = World()
    world.lan(["client", "server"], latency=0.002, bandwidth_bps=1e6)
    servant = EchoServant("server")
    ior = world.orb("server").poa.activate_object(servant, object_key="echo")
    client = world.orb("client")
    client.qos_transport.assign(ior, "compression")
    module = client.qos_transport.module("compression")
    module.set_codec(binding_key(ior), "rle")
    payloads = ["a" * 300, "bcd" * 150, "e" * 20, "fgfgfg" * 80]
    requests = [Request(ior, "echo", (text,)) for text in payloads]
    return world, client, module, requests, [t.upper() for t in payloads]


class TestSendPipeline:
    def test_pipeline_equals_sequential_sends(self):
        # Two identically-built worlds: one drains the batch through
        # send_request N times, the other through one send_pipeline.
        world_a, client_a, module_a, requests_a, expected = pipeline_world()
        seq_replies = [module_a.send_request(client_a, r) for r in requests_a]

        world_b, client_b, module_b, requests_b, _ = pipeline_world()
        pipe_replies = module_b.send_pipeline(client_b, requests_b)

        assert [r.value() for r in seq_replies] == expected
        assert [r.value() for r in pipe_replies] == expected
        # Identical simulated timing and wire traffic, not just results.
        assert world_b.clock.now == pytest.approx(world_a.clock.now)
        assert world_b.network.bytes_sent == world_a.network.bytes_sent
        assert module_b.requests_sent == module_a.requests_sent

    def test_pipeline_counts_one_burst(self):
        COUNTERS.reset()
        _, client, module, requests, expected = pipeline_world()
        replies = module.send_pipeline(client, requests)
        assert [r.value() for r in replies] == expected
        assert COUNTERS.module_bursts >= 1
        assert COUNTERS.module_burst_messages >= len(requests)

    def test_oneway_batch_falls_back_to_sequential(self):
        _, client, module, requests, expected = pipeline_world()
        requests[1].response_expected = False
        replies = module.send_pipeline(client, requests)
        assert replies[0].value() == expected[0]
        assert replies[1].value() is None
        assert [r.value() for r in replies[2:]] == expected[2:]
