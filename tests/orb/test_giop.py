"""Tests for the GIOP message protocol."""

import pytest

from repro.orb import giop
from repro.orb.exceptions import (
    BAD_QOS,
    COMM_FAILURE,
    MARSHAL,
    SystemException,
    UserException,
    register_user_exception,
)
from repro.orb.ior import IOR, IIOPProfile
from repro.orb.request import COMMAND, Request


@pytest.fixture
def target():
    return IOR("IDL:demo/Echo:1.0", IIOPProfile("server", 683, "obj-1"))


class TestRequestMessages:
    def test_request_roundtrip(self, target):
        request = Request(target, "echo", ("hello", 42), service_contexts={"qos": "c1"})
        decoded = giop.decode_request(giop.encode_request(request))
        assert decoded.operation == "echo"
        assert decoded.args == ("hello", 42)
        assert decoded.service_contexts == {"qos": "c1"}
        assert decoded.kind == "request"
        assert decoded.command_target is None
        assert decoded.request_id == request.request_id
        assert decoded.target == target

    def test_command_roundtrip(self, target):
        request = Request(
            target, "set_codec", ("b", "rle"), kind=COMMAND, command_target="compression"
        )
        decoded = giop.decode_request(giop.encode_request(request))
        assert decoded.is_command
        assert decoded.command_target == "compression"

    def test_no_args_roundtrip(self, target):
        request = Request(target, "ping")
        decoded = giop.decode_request(giop.encode_request(request))
        assert decoded.args == ()

    def test_bad_magic_rejected(self, target):
        wire = bytearray(giop.encode_request(Request(target, "x")))
        wire[0] = ord("X")
        with pytest.raises(MARSHAL):
            giop.decode_request(bytes(wire))

    def test_reply_is_not_a_request(self, target):
        wire = giop.encode_reply(1, "ok")
        with pytest.raises(MARSHAL):
            giop.decode_request(wire)


class TestReplyMessages:
    def test_result_roundtrip(self):
        reply = giop.decode_reply(giop.encode_reply(7, {"value": [1, 2]}))
        assert reply.request_id == 7
        assert reply.value() == {"value": [1, 2]}

    def test_none_result(self):
        reply = giop.decode_reply(giop.encode_reply(1, None))
        assert reply.value() is None

    def test_system_exception_rethrown(self):
        wire = giop.encode_reply(3, exception=COMM_FAILURE("link down", minor=2))
        reply = giop.decode_reply(wire)
        with pytest.raises(COMM_FAILURE) as excinfo:
            reply.value()
        assert "link down" in str(excinfo.value)
        assert excinfo.value.minor == 2

    def test_bad_qos_crosses_wire(self):
        wire = giop.encode_reply(3, exception=BAD_QOS("not negotiated"))
        with pytest.raises(BAD_QOS):
            giop.decode_reply(wire).value()

    def test_user_exception_roundtrip(self):
        @register_user_exception
        class Overdrawn(UserException):
            repo_id = "IDL:test/Overdrawn:1.0"

        wire = giop.encode_reply(4, exception=Overdrawn("no funds", balance=-5))
        reply = giop.decode_reply(wire)
        with pytest.raises(Overdrawn) as excinfo:
            reply.value()
        assert excinfo.value.balance == -5

    def test_unregistered_user_exception_becomes_generic(self):
        class Unknown(UserException):
            repo_id = "IDL:test/Unknown:1.0"

        wire = giop.encode_reply(5, exception=Unknown("mystery", code=9))
        reply = giop.decode_reply(wire)
        with pytest.raises(UserException) as excinfo:
            reply.value()
        assert excinfo.value.code == 9
        assert excinfo.value.repo_id == "IDL:test/Unknown:1.0"

    def test_non_corba_exception_becomes_system_exception(self):
        wire = giop.encode_reply(6, exception=ValueError("oops"))
        reply = giop.decode_reply(wire)
        with pytest.raises(SystemException) as excinfo:
            reply.value()
        assert "ValueError" in str(excinfo.value)

    def test_service_contexts_roundtrip(self):
        wire = giop.encode_reply(8, "r", service_contexts={"measured": 1.5})
        assert giop.decode_reply(wire).service_contexts == {"measured": 1.5}


class TestAnySpanCaches:
    """The args/result span replay caches must be invisible: identical
    bytes on the wire, fresh mutable values on every decode."""

    def setup_method(self):
        giop.clear_caches()

    def _target(self):
        return IOR("IDL:demo/Echo:1.0", IIOPProfile("server", 683, "obj-1"))

    def test_encode_replay_is_byte_identical(self):
        payload = {"s": "x", "n": [1.5, -0.0], "m": {"deep": True}}
        request = Request(self._target(), "echo", (payload,))
        first = giop.encode_request(request)
        # Same id, same args: the second encode replays the cached span.
        second = giop.encode_request(
            Request(self._target(), "echo", (payload,),
                    request_id=request.request_id)
        )
        assert first == second

    def test_float_bit_patterns_do_not_collide(self):
        target = self._target()
        wire_pos = giop.encode_request(Request(target, "op", (0.0,)))
        wire_neg = giop.encode_request(Request(target, "op", (-0.0,)))
        # 0.0 == -0.0 in Python, but their encodings differ; the cache
        # keys by bit pattern so each decodes back to its own sign.
        assert wire_pos[:-8] != wire_neg[:-8] or wire_pos != wire_neg
        import math

        assert math.copysign(1.0, giop.decode_request(wire_neg).args[0]) < 0

    def test_decoded_args_are_mutation_isolated(self):
        payload = {"counts": [1, 2], "meta": {"tag": "a"}}
        request = Request(self._target(), "echo", (payload,))
        wire = giop.encode_request(request)
        # Decode twice (second run hits the preamble + span caches) and
        # mutate the first result in place.
        giop.decode_request(wire)  # populate
        first = giop.decode_request(wire)
        first.args[0]["counts"].append(99)
        first.args[0]["meta"]["tag"] = "mutated"
        second = giop.decode_request(wire)
        assert second.args[0] == payload

    def test_decoded_result_is_mutation_isolated(self):
        wire = giop.encode_reply(7, result={"values": [1, 2, 3]})
        giop.decode_reply(wire)  # populate
        first = giop.decode_reply(wire)
        first.result["values"].append(4)
        assert giop.decode_reply(wire).result == {"values": [1, 2, 3]}

    def test_none_result_hits_span_cache(self):
        from repro.perf import COUNTERS

        wire = giop.encode_reply(9, result=None)
        giop.decode_reply(wire)
        before = COUNTERS.any_span_hits
        assert giop.decode_reply(wire).result is None
        assert COUNTERS.any_span_hits == before + 1

    def test_unfreezable_args_bypass_the_cache(self):
        payload = bytearray(b"mutable")  # _freeze rejects bytearray
        request = Request(self._target(), "echo", (payload,))
        wire = giop.encode_request(request)
        assert giop.decode_request(wire).args == (b"mutable",)
