"""RtServer/RtClient: the ORB over real sockets, in-process."""

import pytest

from repro.orb.exceptions import COMM_FAILURE, OVERLOAD, SystemException, is_unexecuted
from repro.orb.ior import IIOPProfile, IOR
from repro.orb.request import Request, reset_request_ids
from repro.perf.counters import COUNTERS
from repro.reliability.policy import ReliabilityPolicy
from repro.rt.client import ReliableInvoker, RtClient
from repro.rt.scenarios import ConformanceEchoServant, SlowEchoServant
from repro.rt.server import RtServer, make_rt_orb


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_request_ids()


@pytest.fixture()
def served():
    orb = make_rt_orb("server")
    ior = orb.poa.activate_object(ConformanceEchoServant("wall"), object_key="echo")
    with RtServer(orb) as server:
        with RtClient({"server": server.address}) as client:
            yield server, client, ior


class TestRoundTrips:
    def test_echo(self, served):
        _, client, ior = served
        assert client.invoke(Request(ior, "echo", ("over tcp",))) == "OVER TCP"

    def test_unicode_payload(self, served):
        _, client, ior = served
        assert client.invoke(Request(ior, "echo", ("ünï ✓",))) == "ÜNÏ ✓"

    def test_user_exception_travels_encoded(self, served):
        _, client, ior = served
        with pytest.raises(SystemException) as excinfo:
            client.invoke(Request(ior, "fail", ("boom",)))
        assert "ValueError: boom" in str(excinfo.value)

    def test_oneway_ack_is_discarded(self, served):
        server, client, ior = served
        value = client.invoke(Request(ior, "echo", ("x",), response_expected=False))
        assert value is None
        # The stream stays aligned: the next two-way call still works.
        assert client.invoke(Request(ior, "whoami", ())) == "wall"

    def test_locate(self, served):
        _, client, ior = served
        assert client.locate(ior) is True
        missing = IOR("IDL:test/Echo:1.0", IIOPProfile("server", 683, "nope"), [])
        assert client.locate(missing) is False

    def test_pipelined_window_correlates_by_request_id(self, served):
        _, client, ior = served
        requests = [Request(ior, "echo", (f"m{i}",)) for i in range(10)]
        replies = client.invoke_window(requests)
        assert [r.value() for r in replies] == [f"M{i}" for i in range(10)]
        assert [r.request_id for r in replies] == [r.request_id for r in requests]

    def test_counters_track_frames(self, served):
        COUNTERS.reset()
        _, client, ior = served
        client.invoke(Request(ior, "echo", ("count me",)))
        assert COUNTERS.rt_frames_out >= 1
        assert COUNTERS.rt_frames_in >= 1
        assert COUNTERS.rt_bytes_out > 0
        assert COUNTERS.rt_bytes_in > 0


class TestConnectionFailures:
    def test_unknown_logical_host_is_unexecuted(self, served):
        _, client, _ = served
        ior = IOR("IDL:test/Echo:1.0", IIOPProfile("elsewhere", 683, "k"), [])
        with pytest.raises(COMM_FAILURE) as excinfo:
            client.invoke(Request(ior, "echo", ("hi",)))
        assert is_unexecuted(excinfo.value)

    def test_connection_refused_is_unexecuted(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead = probe.getsockname()
        probe.close()
        with RtClient({"server": dead}) as client:
            ior = IOR("IDL:test/Echo:1.0", IIOPProfile("server", 683, "k"), [])
            with pytest.raises(COMM_FAILURE) as excinfo:
                client.invoke(Request(ior, "echo", ("hi",)))
            assert is_unexecuted(excinfo.value)

    def test_server_stop_surfaces_comm_failure(self, served):
        server, client, ior = served
        assert client.invoke(Request(ior, "whoami", ())) == "wall"
        server.stop()
        with pytest.raises(COMM_FAILURE):
            client.invoke(Request(ior, "whoami", ()))


class TestWallClockQoS:
    def test_scheduler_sheds_and_hints_on_wall_time(self):
        orb = make_rt_orb("server")
        orb.install_scheduler("fifo", max_depth=2)
        ior = orb.poa.activate_object(SlowEchoServant("busy"), object_key="slow")
        with RtServer(orb) as server:
            with RtClient({"server": server.address}) as client:
                requests = [Request(ior, "echo", (f"r{i}",)) for i in range(8)]
                replies = client.invoke_window(requests)
                shed = [r for r in replies if isinstance(r.exception, OVERLOAD)]
                served_ok = [r for r in replies if r.exception is None]
                assert len(served_ok) == 2
                assert len(shed) == 6
                # Rejections carried wall-clock retry-after hints, and
                # the client's backpressure tracker absorbed them.
                assert all(
                    getattr(r.exception, "retry_after", None) for r in shed
                )
                assert client.backpressure.hints_observed >= len(shed)

    def test_reliable_invoker_fails_over_to_live_replica(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead = probe.getsockname()
        probe.close()
        orb = make_rt_orb("s2")
        live = orb.poa.activate_object(
            ConformanceEchoServant("replica-2"), object_key="rep"
        )
        from repro.orb.ior import GROUP_TAG, TaggedComponent

        primary = IOR("IDL:test/Echo:1.0", IIOPProfile("s1", 683, "rep"), [])
        group = IOR(
            "IDL:test/Echo:1.0",
            primary.profile,
            [
                TaggedComponent(
                    GROUP_TAG,
                    {
                        "group": "g",
                        "members": [primary.to_string(), live.to_string()],
                    },
                )
            ],
        )
        with RtServer(orb) as server:
            with RtClient({"s1": dead, "s2": server.address}) as client:
                invoker = ReliableInvoker(
                    client, group, policy=ReliabilityPolicy(max_retries=3)
                )
                assert invoker.call("whoami") == "replica-2"
                assert invoker.failovers == 1
                assert invoker.retries_used == 1
