"""MQRT framing: partial reads down to one byte at a time."""

import pytest

from repro.orb import giop
from repro.orb.ior import IIOPProfile, IOR
from repro.orb.request import Request
from repro.rt.framing import (
    FRAME_MAGIC,
    HEADER_SIZE,
    MAX_FRAME,
    FrameDecoder,
    FramingError,
    encode_frame,
)


def _some_giop_wire():
    ior = IOR("IDL:test/Echo:1.0", IIOPProfile("server", 683, "echo"), [])
    return giop.encode_request(Request(ior, "echo", ("payload",)))


class TestEncodeFrame:
    def test_layout(self):
        frame = encode_frame(b"abc")
        assert frame[:4] == FRAME_MAGIC
        assert frame[4:8] == (3).to_bytes(4, "big")
        assert frame[8:] == b"abc"

    def test_empty_payload(self):
        assert encode_frame(b"") == FRAME_MAGIC + b"\x00\x00\x00\x00"

    def test_oversize_payload_rejected(self):
        with pytest.raises(FramingError):
            encode_frame(b"\x00" * (MAX_FRAME + 1))


class TestFrameDecoder:
    def test_roundtrip_single_frame(self):
        wire = _some_giop_wire()
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(wire)) == [wire]
        assert decoder.pending == 0

    def test_one_byte_at_a_time(self):
        wire = _some_giop_wire()
        frame = encode_frame(wire)
        decoder = FrameDecoder()
        collected = []
        for index in range(len(frame)):
            got = decoder.feed(frame[index : index + 1])
            if index < len(frame) - 1:
                assert got == []
            collected.extend(got)
        assert collected == [wire]
        assert decoder.pending == 0
        assert decoder.partial_feeds == len(frame) - 1

    def test_two_frames_one_byte_at_a_time(self):
        wires = [b"first", _some_giop_wire()]
        stream = b"".join(encode_frame(w) for w in wires)
        decoder = FrameDecoder()
        collected = []
        for index in range(len(stream)):
            collected.extend(decoder.feed(stream[index : index + 1]))
        assert collected == wires

    def test_many_frames_in_one_chunk(self):
        wires = [bytes([i]) * (i + 1) for i in range(10)]
        stream = b"".join(encode_frame(w) for w in wires)
        decoder = FrameDecoder()
        assert decoder.feed(stream) == wires
        assert decoder.frames_decoded == 10

    def test_split_across_uneven_chunks(self):
        wires = [b"x" * 100, b"y" * 3, b"z" * 57]
        stream = b"".join(encode_frame(w) for w in wires)
        decoder = FrameDecoder()
        collected = []
        cut1, cut2 = 7, 113  # mid-header and mid-body
        for chunk in (stream[:cut1], stream[cut1:cut2], stream[cut2:]):
            collected.extend(decoder.feed(chunk))
        assert collected == wires

    def test_empty_frame_decodes(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"")) == [b""]

    def test_bad_magic_raises(self):
        decoder = FrameDecoder()
        with pytest.raises(FramingError):
            decoder.feed(b"GIOP" + b"\x00" * 10)

    def test_bad_magic_detected_even_fed_bytewise(self):
        decoder = FrameDecoder()
        bad = b"MQRX" + (4).to_bytes(4, "big")
        with pytest.raises(FramingError):
            for index in range(len(bad)):
                decoder.feed(bad[index : index + 1])

    def test_oversize_announcement_raises(self):
        decoder = FrameDecoder()
        header = FRAME_MAGIC + (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(FramingError):
            decoder.feed(header)

    def test_pending_counts_buffered_bytes(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"hello")
        decoder.feed(frame[: HEADER_SIZE + 2])
        assert decoder.pending == HEADER_SIZE + 2
        assert decoder.feed(frame[HEADER_SIZE + 2 :]) == [b"hello"]
        assert decoder.pending == 0
