"""The process harness: server and client in separate OS processes."""

import pytest

from repro.rt.harness import resolve, run_client, spawn_server


class TestResolve:
    def test_resolves_module_attr(self):
        fn = resolve("repro.rt.scenarios:echo_server")
        assert callable(fn)

    def test_rejects_malformed_spec(self):
        with pytest.raises(ValueError):
            resolve("no.colon.here")


class TestTwoProcesses:
    def test_cross_process_round_trips(self):
        with spawn_server("repro.rt.scenarios:echo_server") as server:
            host, port = server.address
            result = run_client(
                "repro.rt.scenarios:echo_client", host, port, {"count": 50}
            )
        assert result["count"] == 50
        assert result["correct"] == 50
        assert result["requests_per_s"] > 0

    def test_two_clients_share_one_server(self):
        with spawn_server("repro.rt.scenarios:echo_server") as server:
            host, port = server.address
            first = run_client(
                "repro.rt.scenarios:echo_client", host, port, {"count": 20}
            )
            second = run_client(
                "repro.rt.scenarios:echo_client", host, port, {"count": 20}
            )
        assert first["correct"] == 20
        assert second["correct"] == 20
