"""The transport seam: the ORB binds against Transport, not netsim."""

import pytest

from repro.orb.exceptions import COMM_FAILURE, TRANSIENT, is_unexecuted
from repro.orb.ior import IIOPProfile, IOR
from repro.orb.request import Request
from repro.orb.servant import Servant
from repro.orb.world import World
from repro.rt.transport import NetsimTransport, Transport


class _Echo(Servant):
    _repo_id = "IDL:test/Echo:1.0"
    _default_service_time = 0.001

    def echo(self, text):
        return text.upper()


def _world():
    world = World()
    world.lan(["client", "server", "ghost"])
    return world


class TestNetsimTransport:
    def test_orb_installs_it_by_default(self):
        world = _world()
        orb = world.orb("client")
        assert isinstance(orb.transport, NetsimTransport)
        assert isinstance(orb.transport, Transport)

    def test_round_trip_still_invokes(self):
        world = _world()
        server = world.orb("server")
        ior = server.poa.activate_object(_Echo())
        client = world.orb("client")
        assert client.invoke(Request(ior, "echo", ("hi",))) == "HI"

    def test_peer_lookup_failure_is_unexecuted_comm_failure(self):
        # "ghost" has links but no ORB: the forward leg succeeds, the
        # peer lookup fails, and the request provably never executed.
        world = _world()
        client = world.orb("client")
        ior = IOR("IDL:test/Echo:1.0", IIOPProfile("ghost", 683, "k"), [])
        with pytest.raises(COMM_FAILURE) as excinfo:
            client.invoke(Request(ior, "echo", ("hi",)))
        assert is_unexecuted(excinfo.value)

    def test_forward_leg_crash_is_unexecuted(self):
        world = _world()
        world.orb("server").poa.activate_object(_Echo(), object_key="e")
        world.network.host("server").crashed = True
        client = world.orb("client")
        ior = IOR("IDL:test/Echo:1.0", IIOPProfile("server", 683, "e"), [])
        with pytest.raises(COMM_FAILURE) as excinfo:
            client.invoke(Request(ior, "echo", ("hi",)))
        assert is_unexecuted(excinfo.value)

    def test_no_route_is_transient(self):
        world = World()
        world.add_host("client")
        world.add_host("island")  # no link
        world.orb("island").poa.activate_object(_Echo(), object_key="e")
        client = world.orb("client")
        ior = IOR("IDL:test/Echo:1.0", IIOPProfile("island", 683, "e"), [])
        with pytest.raises(TRANSIENT) as excinfo:
            client.invoke(Request(ior, "echo", ("hi",)))
        assert is_unexecuted(excinfo.value)

    def test_oneway_failure_swallowed_and_counted(self):
        world = _world()
        client = world.orb("client")
        ior = IOR("IDL:test/Echo:1.0", IIOPProfile("ghost", 683, "k"), [])
        client.invoke(Request(ior, "echo", ("hi",), response_expected=False))
        assert client.oneway_failures == 1

    def test_install_transport_swaps_the_seam(self):
        calls = []

        class Recording(Transport):
            def round_trip(self, dest_host, wire, depart_time, reservations=None):
                calls.append((dest_host, bytes(wire)))
                raise COMM_FAILURE("recorded, not delivered")

        world = _world()
        client = world.orb("client")
        client.install_transport(Recording())
        ior = IOR("IDL:test/Echo:1.0", IIOPProfile("server", 683, "e"), [])
        with pytest.raises(COMM_FAILURE):
            client.invoke(Request(ior, "echo", ("hi",)))
        assert len(calls) == 1 and calls[0][0] == "server"
