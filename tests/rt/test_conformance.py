"""The netsim/real conformance suite: identical bytes, identical QoS.

Each scenario runs once over the simulated network and once over
asyncio TCP; the runner asserts outcome records match exactly and the
wire traffic reaching each server is byte-identical (reply streams
canonicalized only where the scheduler embeds clock-derived hint
values — see ``canonical_reply``).
"""

import pytest

from repro.orb.exceptions import OVERLOAD
from repro.rt.conformance import (
    ConformanceFailure,
    canonical_reply,
    compare_runs,
    run_conformance,
    run_scenario_netsim,
    run_scenario_rt,
)
from repro.rt.scenarios import (
    ALL_SCENARIOS,
    BackpressureScenario,
    EchoScenario,
    FailoverScenario,
    WfqOverloadScenario,
)


@pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=lambda s: s.name)
def test_scenario_conforms(scenario):
    run_conformance(scenario)


class TestScenarioOutcomes:
    def test_echo_wire_capture_is_byte_identical(self):
        result = run_conformance(EchoScenario())
        sim = result["netsim"]["wires"]["server"]
        rt = result["rt"]["wires"]["server"]
        assert sim["in"] == rt["in"]
        assert sim["out"] == rt["out"]
        assert len(sim["in"]) == 6  # every request, including the oneway

    def test_wfq_overload_sheds_the_same_requests(self):
        result = run_conformance(WfqOverloadScenario())
        for run in (result["netsim"], result["rt"]):
            records = run["records"]
            assert [r["ok"] for r in records].count(True) == 2
            rejected = [r for r in records if not r["ok"]]
            assert len(rejected) == 6
            assert all(r["error"] == "OVERLOAD" for r in rejected)
            assert all(r["unexecuted"] for r in rejected)
            assert all(r["retry_after_hint"] for r in rejected)

    def test_backpressure_hints_identical_positions(self):
        result = run_conformance(BackpressureScenario())
        sim_flags = [r["retry_after_hint"] for r in result["netsim"]["records"]]
        rt_flags = [r["retry_after_hint"] for r in result["rt"]["records"]]
        assert sim_flags == rt_flags
        assert any(sim_flags), "the burst should cross the watermark"

    def test_failover_reaches_the_replica_in_one_retry(self):
        result = run_conformance(FailoverScenario())
        for run in (result["netsim"], result["rt"]):
            first, second = run["records"]
            assert first == {
                "op": "whoami",
                "ok": True,
                "value": "s2",
                "retry_after_hint": False,
                "retries": 1,
            }
            assert second["value"] == "STILL HERE"
            # Each reliable call builds a fresh rotation, so it pays
            # the same single discovery retry — on both substrates.
            assert second["retries"] == 1


class TestComparisonMachinery:
    def test_canonical_reply_scrubs_only_the_hint_value(self):
        from repro.orb import giop

        wire_a = giop.encode_reply(
            7,
            exception=OVERLOAD("queue full", retry_after=0.123),
            service_contexts={"maqs.sched.retry_after": 0.123},
        )
        wire_b = giop.encode_reply(
            7,
            exception=OVERLOAD("queue full", retry_after=0.456),
            service_contexts={"maqs.sched.retry_after": 0.456},
        )
        assert wire_a != wire_b
        assert canonical_reply(wire_a) == canonical_reply(wire_b)

    def test_divergent_records_fail_loudly(self):
        scenario = EchoScenario()
        netsim = run_scenario_netsim(scenario)
        rt = run_scenario_rt(scenario)
        rt["records"][0]["value"] = "TAMPERED"
        with pytest.raises(ConformanceFailure, match="records diverge"):
            compare_runs(scenario, netsim, rt)

    def test_divergent_bytes_fail_with_offset(self):
        scenario = EchoScenario()
        netsim = run_scenario_netsim(scenario)
        rt = run_scenario_rt(scenario)
        tampered = bytearray(rt["wires"]["server"]["in"][0])
        tampered[-1] ^= 0xFF
        rt["wires"]["server"]["in"][0] = bytes(tampered)
        with pytest.raises(ConformanceFailure, match="diverge at offset"):
            compare_runs(scenario, netsim, rt)
