"""The Clock protocol: simulated and wall-clock implementations."""

import threading
import time

import pytest

from repro.orb.world import World
from repro.rt.clock import MonotonicClock, SimClock


class TestSimClock:
    def test_now_tracks_the_kernel_clock(self):
        world = World()
        clock = SimClock(world.clock, world.kernel)
        assert clock.now() == world.clock.now
        world.clock.advance(1.5)
        assert clock.now() == pytest.approx(1.5)

    def test_wait_advances_simulated_time(self):
        world = World()
        clock = SimClock(world.clock, world.kernel)
        clock.wait(0.25)
        assert world.clock.now == pytest.approx(0.25)

    def test_wait_until_never_goes_backwards(self):
        world = World()
        clock = SimClock(world.clock, world.kernel)
        clock.wait_until(0.5)
        clock.wait_until(0.1)  # already past; must not rewind
        assert world.clock.now == pytest.approx(0.5)

    def test_schedule_after_fires_through_the_kernel(self):
        world = World()
        clock = SimClock(world.clock, world.kernel)
        fired = []
        clock.schedule_after(0.3, fired.append, "tick")
        assert fired == []
        world.kernel.run_until(1.0)
        assert fired == ["tick"]

    def test_schedule_after_without_kernel_is_an_error(self):
        world = World()
        clock = SimClock(world.clock, kernel=None)
        with pytest.raises(RuntimeError):
            clock.schedule_after(0.1, lambda: None)

    def test_orb_default_time_source_is_sim(self):
        world = World()
        world.add_host("a")
        orb = world.orb("a")
        assert isinstance(orb.time_source, SimClock)
        orb.time_source.wait(0.1)
        assert world.clock.now == pytest.approx(0.1)


class TestMonotonicClock:
    def test_now_starts_near_zero_and_increases(self):
        clock = MonotonicClock()
        first = clock.now()
        assert 0.0 <= first < 1.0
        assert clock.now() >= first

    def test_wait_really_sleeps(self):
        clock = MonotonicClock()
        before = clock.now()
        clock.wait(0.02)
        assert clock.now() - before >= 0.015

    def test_wait_until_past_instant_returns_immediately(self):
        clock = MonotonicClock()
        start = time.monotonic()
        clock.wait_until(clock.now() - 10.0)
        assert time.monotonic() - start < 0.05

    def test_schedule_after_fires_on_a_timer(self):
        clock = MonotonicClock()
        fired = threading.Event()
        clock.schedule_after(0.01, fired.set)
        assert fired.wait(2.0)

    def test_schedule_after_is_cancellable(self):
        clock = MonotonicClock()
        fired = threading.Event()
        handle = clock.schedule_after(5.0, fired.set)
        handle.cancel()
        assert not fired.wait(0.05)

    def test_installed_on_an_orb(self):
        world = World()
        world.add_host("a")
        orb = world.orb("a")
        wall = MonotonicClock()
        orb.use_time_source(wall)
        assert orb.time_source is wall
