"""Decision traces: canonical rendering and the determinism digest."""

from repro.control.trace import Decision, DecisionTrace


class TestDecision:
    def test_canonical_line_sorts_detail_keys(self):
        decision = Decision(1.5, "scale-up", {"pressure": 2.0, "host": "b"})
        assert decision.as_line() == (
            "1.500000000 scale-up host='b' pressure=2.000000000"
        )

    def test_floats_render_fixed_precision(self):
        decision = Decision(0.1 + 0.2, "x", {"v": 1 / 3})
        assert decision.as_line() == "0.300000000 x v=0.333333333"

    def test_as_dict_flattens_detail(self):
        decision = Decision(2.0, "migrate", {"source": "a"})
        assert decision.as_dict() == {
            "time": 2.0,
            "kind": "migrate",
            "source": "a",
        }


class TestDecisionTrace:
    def build(self):
        trace = DecisionTrace()
        trace.record(0.0, "scale-up", host="b")
        trace.record(1.0, "drain-begin", host="c")
        trace.record(2.0, "scale-up", host="d")
        return trace

    def test_record_order_and_kinds(self):
        trace = self.build()
        assert len(trace) == 3
        assert trace.kinds() == ["scale-up", "drain-begin", "scale-up"]
        assert [d.detail["host"] for d in trace.of_kind("scale-up")] == ["b", "d"]

    def test_identical_traces_share_a_digest(self):
        assert self.build().digest() == self.build().digest()

    def test_any_difference_changes_the_digest(self):
        base = self.build()
        other = self.build()
        other.record(3.0, "drain-finish", host="c")
        assert base.digest() != other.digest()
        reordered = DecisionTrace()
        reordered.record(1.0, "drain-begin", host="c")
        reordered.record(0.0, "scale-up", host="b")
        reordered.record(2.0, "scale-up", host="d")
        assert base.digest() != reordered.digest()

    def test_as_dicts_is_json_shaped(self):
        import json

        payload = json.dumps(self.build().as_dicts())
        assert json.loads(payload)[0]["kind"] == "scale-up"
