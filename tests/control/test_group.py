"""ManagedGroup: membership publication, drain safety, migration."""

import pytest

from repro.control import ManagedGroup, MigrationPlanner
from repro.orb.exceptions import TRANSIENT

from tests.control.helpers import build_control_world, ctl_module, executions


class TestPublication:
    def test_register_requires_a_reliability_mediator(self):
        world, manager, group, _, _ = build_control_world()
        bare = ctl_module.CtlCounterStub(world.orb("client"), manager.group_ior())
        with pytest.raises(ValueError):
            group.register_client(bare)

    def test_scale_up_publishes_to_client_rotations(self):
        world, manager, group, stub, registry = build_control_world()
        group.scale_up("b", world.clock.now)
        rotation = stub._get_mediator().rotation_for(stub)
        assert len(rotation.members) == 2
        assert group.hosts() == ["a", "b"]

    def test_clients_spread_across_serving_members(self):
        world, manager, group, stub, registry = build_control_world()
        group.scale_up("b", world.clock.now)
        from repro.reliability import ReliabilityPolicy

        second = group.bind_reliable_client(
            world.orb("client"), ctl_module.CtlCounterStub, ReliabilityPolicy()
        )
        first_rotation = stub._get_mediator().rotation_for(stub)
        second_rotation = second._get_mediator().rotation_for(second)
        assert (
            first_rotation.active.binding_key()
            != second_rotation.active.binding_key()
        )

    def test_route_for_skips_draining_members(self):
        world, _, group, _, _ = build_control_world()
        group.scale_up("b", world.clock.now)
        group.begin_retire("a", world.clock.now)
        drained_key = group.members()[0].binding_key()
        for index in range(4):
            assert group.route_for(index).binding_key() != drained_key


class TestDrainSafety:
    def test_draining_member_receives_no_new_requests(self):
        world, manager, group, stub, registry = build_control_world()
        group.scale_up("b", world.clock.now)
        stub.add("before", 1)
        victim = manager.replica("a")
        executed_before = dict(victim.executed)
        group.begin_retire("a", world.clock.now)
        for index in range(8):
            stub.add(f"after-{index}", 1)
        assert victim.executed == executed_before

    def test_cannot_drain_the_last_serving_member(self):
        world, _, group, _, _ = build_control_world()
        with pytest.raises(ValueError):
            group.begin_retire("a", world.clock.now)
        group.scale_up("b", world.clock.now)
        group.begin_retire("a", world.clock.now)
        with pytest.raises(ValueError):
            group.begin_retire("b", world.clock.now)

    def test_busy_member_is_not_drained_until_idle(self):
        world, _, group, _, _ = build_control_world()
        group.scale_up("b", world.clock.now)
        group.begin_retire("a", world.clock.now)
        world.network.host("a").busy_until = world.clock.now + 0.01
        assert group.poll_retirements(world.clock.now) == []
        assert group.hosts() == ["a", "b"]
        world.clock.advance(0.02)
        assert group.poll_retirements(world.clock.now) == ["a"]
        assert group.hosts() == ["b"]

    def test_inflight_deferred_replies_survive_the_drain(self):
        world, manager, group, stub, registry = build_control_world()
        group.scale_up("b", world.clock.now)
        futures = [stub.send_deferred("add", f"w{i}", 1) for i in range(4)]
        group.begin_retire("a", world.clock.now)
        values = [future.result() for future in futures]
        assert sorted(values) == [1, 2, 3, 4]
        for index in range(4):
            assert executions(registry, f"w{index}") == 1


class TestMigration:
    def test_state_moves_with_the_member(self):
        world, manager, group, stub, registry = build_control_world()
        for index in range(5):
            stub.add(f"t{index}", 1)
        assert stub.total() == 5
        planner = MigrationPlanner(group, ["b", "c", "d"])
        planner.migrate("a", "b", world.clock.now)
        group.poll_retirements(world.clock.now)
        assert group.hosts() == ["b"]
        assert manager.replica("b").count == 5
        assert stub.total() == 5

    def test_no_call_is_lost_or_duplicated_across_migration(self):
        world, manager, group, stub, registry = build_control_world()
        planner = MigrationPlanner(group, ["b", "c", "d"])
        for index in range(3):
            stub.add(f"pre-{index}", 1)
        planner.migrate("a", "b", world.clock.now)
        for index in range(3):
            stub.add(f"post-{index}", 1)
        group.poll_retirements(world.clock.now)
        for index in range(3):
            assert executions(registry, f"pre-{index}") == 1
            assert executions(registry, f"post-{index}") == 1
        assert stub.total() == 6
        # Every post-migration call ran on the destination, none on the
        # retired source.
        source = registry[0]
        assert not any(token.startswith("post-") for token in source.executed)

    def test_migration_records_the_decision(self):
        world, _, group, _, _ = build_control_world()
        planner = MigrationPlanner(group, ["b", "c", "d"])
        planner.migrate("a", "c", world.clock.now)
        kinds = group.trace.kinds()
        assert "member-add" in kinds
        assert "drain-begin" in kinds
        assert "migrate" in kinds


class TestRotationUnderFaults:
    def test_failover_never_lands_on_a_draining_member(self):
        world, manager, group, stub, registry = build_control_world(
            replicas=("a", "b", "c"), spares=()
        )
        group.begin_retire("a", world.clock.now)
        rotation = stub._get_mediator().rotation_for(stub)
        drained_key = manager.member_ior("a").binding_key()
        active_keys = set()
        for _ in range(2 * len(rotation.members)):
            active_keys.add(rotation.advance().binding_key())
        assert drained_key not in active_keys

    def test_crash_of_serving_member_fails_over_around_the_drain(self):
        world, manager, group, stub, registry = build_control_world(
            replicas=("a", "b", "c"), spares=()
        )
        group.begin_retire("a", world.clock.now)
        world.faults.crash("b")
        # "a" is draining, "b" is dead: the call must land on "c".
        assert stub.add("survivor", 1) == 1
        assert manager.replica("c").executed.get("survivor") == 1
        assert "survivor" not in manager.replica("a").executed
