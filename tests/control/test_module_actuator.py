"""ModuleActuator: live QoS-module redeployment and renegotiation."""

import repro.qos as qos
from repro.control import ControlLoop, Hysteresis, ModuleActuator
from repro.core.binding import QoSProvider, establish_qos
from repro.core.mediator import Mediator
from repro.core.negotiation import Range
from repro.core.qos_skeleton import QoSImplementation
from repro.orb import QOS_TAG, TaggedComponent, World
from repro.orb.modules.base import binding_key
from repro.orb.request import reset_request_ids
from repro.perf.counters import COUNTERS

from tests.orb.conftest import EchoServant, EchoStub

CTL_SERVING_QIDL = """
qos CtlServing {
    attribute double rate;
    attribute double delay;
};
"""


class CtlServingMediator(Mediator):
    characteristic = "CtlServing"

    def __init__(self):
        super().__init__()
        self.rate = 10.0
        self.delay = 1.0


class CtlServingImpl(QoSImplementation):
    characteristic = "CtlServing"

    def __init__(self):
        self.rate = 10.0
        self.delay = 1.0

    def get_rate(self):
        return self.rate

    def set_rate(self, value):
        self.rate = float(value)

    def get_delay(self):
        return self.delay

    def set_delay(self, value):
        self.delay = float(value)


def register_serving():
    if "CtlServing" not in qos.REGISTRY:
        qos.register_characteristic(
            qos.Characteristic(
                name="CtlServing",
                category="load-control",
                qidl=CTL_SERVING_QIDL,
                mediator_class=CtlServingMediator,
                impl_class=CtlServingImpl,
            )
        )


def build_link_world():
    reset_request_ids()
    COUNTERS.reset()
    world = World()
    world.lan(["client", "server"], latency=0.001, bandwidth_bps=10e6)
    component = TaggedComponent(QOS_TAG, {"characteristics": ["compression"]})
    ior = world.orb("server").poa.activate_object(
        EchoServant("server"), components=[component]
    )
    stub = EchoStub(world.orb("client"), ior)
    link = world.network.link_between("client", "server")
    return world, stub, link, ior


def build_actuator(world, stub, link, **kw):
    kw.setdefault("configure", {"set_codec": ("rle",)})
    kw.setdefault(
        "hysteresis", Hysteresis(high=1.25, low=1.0, up_ticks=2, down_ticks=2)
    )
    actuator = ModuleActuator(stub, link, floor_bps=2e6, **kw)
    loop = ControlLoop(world, period=0.05).attach()
    loop.add_policy(actuator)
    return actuator, loop


class TestModuleSwap:
    def test_bandwidth_drop_engages_compression_mid_session(self):
        world, stub, link, ior = build_link_world()
        actuator, loop = build_actuator(world, stub, link)
        assert stub.echo("plain") == "PLAIN"
        client_transport = world.orb("client").qos_transport
        assert client_transport.assigned_module(ior) is None

        # Background fluid traffic swallows most of the link.
        link.fluid_bps = 9.5e6
        for _ in range(2):
            world.clock.advance(0.05)
            loop.tick_once()

        assert actuator.engaged
        module = client_transport.module("compression")
        assert client_transport.assigned_module(ior) is module
        key = binding_key(ior)
        assert module.get_codec(key) == "rle"
        server_module = world.orb("server").qos_transport.module("compression")
        assert server_module.get_codec(key) == "rle"
        assert COUNTERS.ctl_module_swaps == 1
        # Traffic now rides the compressed envelope.
        assert stub.echo("x" * 400) == "X" * 400
        assert module.bytes_in > 0

    def test_recovery_disengages(self):
        world, stub, link, ior = build_link_world()
        actuator, loop = build_actuator(world, stub, link)
        link.fluid_bps = 9.5e6
        for _ in range(2):
            world.clock.advance(0.05)
            loop.tick_once()
        assert actuator.engaged

        link.fluid_bps = 0.0
        for _ in range(2):
            world.clock.advance(0.05)
            loop.tick_once()
        assert not actuator.engaged
        assert world.orb("client").qos_transport.assigned_module(ior) is None
        assert COUNTERS.ctl_module_swaps == 2
        assert stub.echo("after") == "AFTER"
        kinds = loop.trace.kinds()
        assert kinds.count("module-engage") == 1
        assert kinds.count("module-disengage") == 1

    def test_steady_bandwidth_never_actuates(self):
        world, stub, link, ior = build_link_world()
        actuator, loop = build_actuator(world, stub, link)
        for _ in range(10):
            world.clock.advance(0.05)
            loop.tick_once()
        assert not actuator.engaged
        assert COUNTERS.ctl_module_swaps == 0


class TestRenegotiation:
    def deploy(self):
        register_serving()
        gen = qos.weave(
            "interface CtlApi provides CtlServing, Compression { long hit(); };",
            "ctl_mod_api",
        )
        reset_request_ids()
        COUNTERS.reset()
        world = World()
        world.lan(["client", "server"], latency=0.001, bandwidth_bps=10e6)
        server = world.orb("server")
        scheduler = server.install_scheduler(policy="wfq")
        scheduler.define_class("gold", weight=4.0, priority=1)

        class CtlApiImpl(gen.CtlApiServerBase):
            def __init__(self):
                super().__init__()
                self.count = 0

            def hit(self):
                self.count += 1
                return self.count

        provider = QoSProvider(world, "server", CtlApiImpl())
        provider.support(
            "CtlServing",
            CtlServingImpl(),
            capabilities={
                "rate": Range(1.0, 50.0, preferred=10.0),
                "delay": Range(0.01, 2.0, preferred=0.5),
            },
            sched_class="gold",
        )
        ior = provider.activate("ctl-api")
        stub = gen.CtlApiStub(world.orb("client"), ior)
        binding = establish_qos(
            stub, "CtlServing", {"rate": Range(1.0, 50.0, preferred=20.0)}
        )
        link = world.network.link_between("client", "server")
        return world, scheduler, stub, binding, link

    def test_degraded_link_renegotiates_the_contract(self):
        world, scheduler, stub, binding, link = self.deploy()
        actuator = ModuleActuator(
            stub,
            link,
            floor_bps=2e6,
            binding=binding,
            degraded_requirements={"rate": Range(1.0, 50.0, preferred=5.0)},
            normal_requirements={"rate": Range(1.0, 50.0, preferred=20.0)},
            hysteresis=Hysteresis(high=1.25, low=1.0, up_ticks=2, down_ticks=2),
        )
        loop = ControlLoop(world, period=0.05).attach()
        loop.add_policy(actuator)
        assert scheduler.qos_class("gold").rate == 20.0

        link.fluid_bps = 9.5e6
        for _ in range(2):
            world.clock.advance(0.05)
            loop.tick_once()
        assert actuator.engaged
        assert scheduler.qos_class("gold").rate == 5.0
        assert COUNTERS.ctl_renegotiations == 1

        link.fluid_bps = 0.0
        for _ in range(2):
            world.clock.advance(0.05)
            loop.tick_once()
        assert not actuator.engaged
        assert scheduler.qos_class("gold").rate == 20.0
        assert COUNTERS.ctl_renegotiations == 2
        assert loop.trace.of_kind("renegotiate-degrade")
        assert loop.trace.of_kind("renegotiate-restore")
