"""Renegotiation concurrent with pipelined AMI windows.

Hypothesis draws an interleaving of deferred sends, window flushes and
contract renegotiations and checks the binding-layer guarantees:

- **no reply is dropped or duplicated** — every future settles exactly
  once with its own reply (values are the servant's running counter,
  so duplication or loss shifts every subsequent value);
- **old-contract calls complete under old terms** — requests admitted
  before a renegotiation keep their committed schedule: they all
  complete successfully even though the contract changed while they
  were queued or in flight;
- the final scheduler contract reflects the *last* renegotiation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.qos as qos
from repro.core.binding import QoSProvider, establish_qos
from repro.core.negotiation import Range
from repro.orb import World
from repro.orb.request import reset_request_ids
from repro.perf.counters import COUNTERS

from tests.control.test_module_actuator import CtlServingImpl, register_serving

_GEN = None


def gen_module():
    global _GEN
    if _GEN is None:
        register_serving()
        _GEN = qos.weave(
            """
            interface AmiApi provides CtlServing {
                long add(in string token, in long amount);
                idempotent long total();
            };
            """,
            "ctl_ami_api",
        )
    return _GEN


def deploy():
    gen = gen_module()
    reset_request_ids()
    COUNTERS.reset()
    world = World()
    world.lan(["client", "server"], latency=0.001, bandwidth_bps=100e6)
    server = world.orb("server")
    scheduler = server.install_scheduler(policy="wfq")
    # Burst sized above the deepest drawable window, so the property
    # exercises renegotiation, not token-bucket shedding.
    scheduler.define_class("gold", weight=4.0, priority=1, burst=32.0)

    class AmiApiImpl(gen.AmiApiServerBase):
        _default_service_time = 0.0002

        def __init__(self):
            super().__init__()
            self.count = 0
            self.executed = {}

        def add(self, token, amount):
            self.executed[token] = self.executed.get(token, 0) + 1
            self.count += amount
            return self.count

        def total(self):
            return self.count

    servant = AmiApiImpl()
    provider = QoSProvider(world, "server", servant)
    provider.support(
        "CtlServing",
        CtlServingImpl(),
        capabilities={
            "rate": Range(1.0, 2000.0, preferred=1000.0),
            "delay": Range(0.001, 2.0, preferred=0.5),
        },
        sched_class="gold",
    )
    ior = provider.activate("ami-api")
    stub = gen.AmiApiStub(world.orb("client"), ior)
    binding = establish_qos(
        stub, "CtlServing", {"rate": Range(1.0, 2000.0, preferred=1000.0)}
    )
    return world, scheduler, stub, binding, servant


@st.composite
def interleavings(draw):
    """A script of sends, flushes and renegotiations."""
    count = draw(st.integers(min_value=3, max_value=14))
    steps = []
    for _ in range(count):
        kind = draw(
            st.sampled_from(("send", "send", "send", "flush", "renegotiate"))
        )
        if kind == "renegotiate":
            rate = draw(st.sampled_from((200.0, 500.0, 800.0, 1500.0)))
            steps.append(("renegotiate", rate))
        else:
            steps.append((kind, None))
    return steps


def run_script(steps):
    world, scheduler, stub, binding, servant = deploy()
    futures = []
    resolutions = []
    rates = []

    def watch(index, future):
        future.add_done_callback(lambda f: resolutions.append(index))
        futures.append(future)

    sends = 0
    for kind, value in steps:
        if kind == "send":
            token = f"t{sends}"
            sends += 1
            watch(sends - 1, stub.send_deferred("add", token, 1))
        elif kind == "flush":
            for future in futures:
                future.flush()
        else:
            binding.renegotiate({"rate": Range(1.0, 2000.0, preferred=value)})
            rates.append(value)

    results = [future.result() for future in futures]
    return world, scheduler, servant, futures, resolutions, results, rates, sends


class TestRenegotiateWithAMI:
    @settings(max_examples=30, deadline=None)
    @given(steps=interleavings())
    def test_no_reply_dropped_or_duplicated(self, steps):
        _, scheduler, servant, futures, resolutions, results, rates, sends = (
            run_script(steps)
        )
        # Every send settled, exactly once, in order: the servant's
        # running counter makes any drop or duplication visible as a
        # gap or repeat in the results.
        assert len(futures) == sends
        assert sorted(resolutions) == list(range(sends))
        assert len(resolutions) == len(set(resolutions))
        assert results == list(range(1, sends + 1))
        # Exactly-once execution per token on the servant.
        for index in range(sends):
            assert servant.executed[f"t{index}"] == 1
        # The live contract is the last renegotiated one.
        if rates:
            assert scheduler.qos_class("gold").rate == rates[-1]

    @settings(max_examples=10, deadline=None)
    @given(steps=interleavings())
    def test_interleaving_replays_deterministically(self, steps):
        first = run_script(steps)
        second = run_script(steps)
        # outcomes, timestamps and executions all replay identically
        assert first[5] == second[5]
        assert first[0].clock.now == second[0].clock.now
        assert first[2].executed == second[2].executed
