"""AutoscalePolicy on a live ControlLoop: growth, shrink, determinism."""

from repro.control import AutoscalePolicy, ControlLoop, Hysteresis
from repro.perf.counters import COUNTERS, snapshot

from tests.control.helpers import build_control_world


def run_scenario(pressure_schedule, until=1.0, spares=("b", "c", "d"), **policy_kw):
    """Drive a controlled deployment with a scripted pressure signal.

    ``pressure_schedule`` maps a simulated time to the pressure value
    in force from that time on; returns (world, group, loop).
    """
    world, _, group, _, _ = build_control_world(spares=spares)
    times = sorted(pressure_schedule)

    def signal(now):
        value = None
        for time in times:
            if now >= time:
                value = pressure_schedule[time]
        return value

    loop = ControlLoop(world, period=0.05).attach()
    loop.add_policy(AutoscalePolicy(group, list(spares), signal=signal, **policy_kw))
    loop.start(until=until)
    world.kernel.run_until(until)
    return world, group, loop


class TestScaleUp:
    def test_sustained_pressure_grows_the_group(self):
        _, group, loop = run_scenario({0.0: 2.0}, until=0.25)
        assert len(group.serving_hosts()) > 1
        assert COUNTERS.ctl_scale_ups >= 1
        assert loop.trace.of_kind("scale-up")

    def test_warmup_none_signal_never_actuates(self):
        _, group, loop = run_scenario({10.0: 2.0}, until=0.5)
        assert group.serving_hosts() == ["a"]
        assert loop.decisions == 0

    def test_single_spike_does_not_actuate(self):
        world, _, group, _, _ = build_control_world()
        spike = {"value": 5.0}

        def signal(now):
            value = spike["value"]
            spike["value"] = 0.8  # back in the dead band next tick
            return value

        loop = ControlLoop(world, period=0.05).attach()
        loop.add_policy(AutoscalePolicy(group, ["b"], signal=signal))
        loop.start(until=0.5)
        world.kernel.run_until(0.5)
        assert group.serving_hosts() == ["a"]
        assert COUNTERS.ctl_scale_ups == 0

    def test_max_replicas_caps_growth(self):
        _, group, loop = run_scenario({0.0: 2.0}, until=0.5, max_replicas=2)
        assert len(group.serving_hosts()) == 2
        assert loop.trace.of_kind("scale-up-capped")

    def test_saturation_is_traced_not_fatal(self):
        _, group, loop = run_scenario({0.0: 2.0}, until=0.6, spares=("b",))
        assert group.hosts() == ["a", "b"]
        assert loop.trace.of_kind("scale-up-saturated")

    def test_crashed_candidate_is_skipped(self):
        world, _, group, _, _ = build_control_world()
        world.network.host("b").crashed = True
        loop = ControlLoop(world, period=0.05).attach()
        loop.add_policy(
            AutoscalePolicy(group, ["b", "c"], signal=lambda now: 2.0)
        )
        loop.start(until=0.2)
        world.kernel.run_until(0.2)
        assert "c" in group.hosts()
        assert "b" not in group.hosts()


class TestScaleDown:
    def test_calm_signal_shrinks_back_with_drain(self):
        _, group, loop = run_scenario(
            {0.0: 2.0, 0.3: 0.1}, until=1.5, max_replicas=3
        )
        assert COUNTERS.ctl_scale_downs >= 1
        kinds = loop.trace.kinds()
        assert "drain-begin" in kinds
        assert "drain-finish" in kinds
        # Every retirement that began also finished (idle group).
        assert len(loop.trace.of_kind("drain-begin")) == len(
            loop.trace.of_kind("drain-finish")
        )

    def test_min_replicas_floor_holds(self):
        _, group, _ = run_scenario({0.0: 0.01}, until=2.0, min_replicas=1)
        assert group.serving_hosts() == ["a"]
        assert COUNTERS.ctl_scale_downs == 0


class TestDeterminism:
    SCHEDULE = {0.0: 2.0, 0.3: 0.1, 0.6: 3.0}

    def test_identical_runs_produce_identical_traces(self):
        _, _, first = run_scenario(dict(self.SCHEDULE), until=1.2)
        first_lines = first.trace.lines()
        first_digest = first.trace.digest()
        _, _, second = run_scenario(dict(self.SCHEDULE), until=1.2)
        assert second.trace.lines() == first_lines
        assert second.trace.digest() == first_digest

    def test_different_schedules_diverge(self):
        _, _, first = run_scenario(dict(self.SCHEDULE), until=1.2)
        digest = first.trace.digest()
        _, _, second = run_scenario({0.0: 2.0}, until=1.2)
        assert second.trace.digest() != digest


class TestInstrumentPanel:
    def test_ctl_counters_surface_in_snapshot(self):
        world, group, loop = run_scenario({0.0: 2.0}, until=0.25)
        panel = snapshot(world.orb("client"), world)
        assert panel["ctl_samples"] == loop.ticks
        assert panel["ctl_scale_ups"] == COUNTERS.ctl_scale_ups >= 1
        assert panel["ctl_actuations"] >= 1
        assert panel["ctl_actuation_time_mean"] >= 0.0
        # The attached loop's own stats ride along.
        assert panel["ctl_trace_records"] == len(loop.trace)
        assert "scale-up" in panel["ctl_trace_kinds"]

    def test_transport_commands_expose_the_trace(self):
        from repro.orb.dii import TransportHandle

        world, group, loop = run_scenario({0.0: 2.0}, until=0.25)
        handle = TransportHandle(world.orb("client"), group.members()[0])
        stats = handle.call("ctl_stats")
        assert stats["ticks"] == loop.ticks
        trace = handle.call("ctl_trace")
        assert trace == loop.trace.as_dicts()
        assert handle.call("ctl_trace_digest") == loop.trace.digest()

    def test_loop_stop_ends_the_recurrence(self):
        world, _, group, _, _ = build_control_world()
        loop = ControlLoop(world, period=0.05).attach()
        loop.add_policy(
            AutoscalePolicy(group, ["b"], signal=lambda now: 2.0)
        )
        loop.start()
        world.kernel.run_until(0.2)
        loop.stop()
        ticks = loop.ticks
        # The kernel drains: the chained recurrence ended with stop().
        world.kernel.run()
        assert loop.ticks == ticks
