"""Signal conditioning: rate differentiation and hysteresis gating."""

import pytest

from repro.control.signals import Hysteresis, RateTracker, breaker_open_count
from repro.reliability.breaker import CircuitBreaker


class TestRateTracker:
    def test_first_sample_is_its_own_delta(self):
        tracker = RateTracker()
        assert tracker.delta({"admitted": 10.0, "shed": 2.0}) == {
            "admitted": 10.0,
            "shed": 2.0,
        }

    def test_subsequent_samples_differentiate(self):
        tracker = RateTracker()
        tracker.delta({"admitted": 10.0})
        assert tracker.delta({"admitted": 25.0}) == {"admitted": 15.0}
        assert tracker.delta({"admitted": 25.0}) == {"admitted": 0.0}

    def test_new_keys_join_mid_stream(self):
        tracker = RateTracker()
        tracker.delta({"admitted": 5.0})
        deltas = tracker.delta({"admitted": 7.0, "shed": 3.0})
        assert deltas == {"admitted": 2.0, "shed": 3.0}

    def test_reset_forgets_history(self):
        tracker = RateTracker()
        tracker.delta({"admitted": 100.0})
        tracker.reset()
        assert tracker.delta({"admitted": 100.0}) == {"admitted": 100.0}


class TestHysteresis:
    def test_single_spike_does_not_trip(self):
        gate = Hysteresis(high=1.0, low=0.5, up_ticks=2)
        assert gate.update(5.0, 0.0) is None

    def test_sustained_high_trips_up(self):
        gate = Hysteresis(high=1.0, low=0.5, up_ticks=3)
        assert gate.update(2.0, 0.0) is None
        assert gate.update(2.0, 1.0) is None
        assert gate.update(2.0, 2.0) == "up"

    def test_sustained_low_trips_down(self):
        gate = Hysteresis(high=1.0, low=0.5, up_ticks=2, down_ticks=2)
        assert gate.update(0.1, 0.0) is None
        assert gate.update(0.1, 1.0) == "down"

    def test_dead_band_clears_both_streaks(self):
        gate = Hysteresis(high=1.0, low=0.5, up_ticks=2, down_ticks=2)
        gate.update(2.0, 0.0)
        gate.update(0.7, 1.0)  # inside [low, high]: streak resets
        assert gate.update(2.0, 2.0) is None
        assert gate.update(2.0, 3.0) == "up"

    def test_opposite_samples_reset_each_other(self):
        gate = Hysteresis(high=1.0, low=0.5, up_ticks=2, down_ticks=2)
        gate.update(2.0, 0.0)
        gate.update(0.1, 1.0)  # below low: clears the above-streak
        assert gate.update(2.0, 2.0) is None

    def test_cooldown_swallows_evidence(self):
        gate = Hysteresis(high=1.0, low=0.5, up_ticks=2, cooldown=10.0)
        gate.update(2.0, 0.0)
        assert gate.update(2.0, 1.0) == "up"
        # Quiet until t=11: samples neither trip nor accumulate.
        assert gate.update(2.0, 5.0) is None
        assert gate.update(2.0, 10.9) is None
        assert gate.update(2.0, 11.0) is None  # streak restarts here
        assert gate.update(2.0, 12.0) == "up"

    def test_hold_off_quiets_an_external_actuation(self):
        gate = Hysteresis(high=1.0, low=0.5, up_ticks=1)
        gate.hold_off(0.0, seconds=5.0)
        assert gate.update(9.0, 4.0) is None
        assert gate.update(9.0, 5.0) == "up"

    def test_watermark_and_streak_validation(self):
        with pytest.raises(ValueError):
            Hysteresis(high=1.0, low=2.0)
        with pytest.raises(ValueError):
            Hysteresis(high=1.0, low=0.5, up_ticks=0)
        with pytest.raises(ValueError):
            Hysteresis(high=1.0, low=0.5, cooldown=-1.0)


class _FakeMediator:
    def __init__(self, breakers):
        self._breakers = breakers


class TestBreakerSensor:
    def test_counts_non_closed_breakers(self):
        open_breaker = CircuitBreaker(threshold=1, cooldown=10.0)
        open_breaker.record_failure(0.0)
        closed_breaker = CircuitBreaker(threshold=1, cooldown=10.0)
        mediator = _FakeMediator({"a": open_breaker, "b": closed_breaker})
        assert breaker_open_count(mediator) == 1

    def test_sensor_does_not_perturb_breaker_state(self):
        # allow() would flip an open breaker whose cooldown elapsed to
        # half-open; the sensor must observe without transitioning.
        breaker = CircuitBreaker(threshold=1, cooldown=0.0)
        breaker.record_failure(0.0)
        mediator = _FakeMediator({"a": breaker})
        breaker_open_count(mediator)
        assert breaker.state == "open"
