"""Chaos suite for drain-safe retirement.

Hypothesis draws a fault schedule (crashes, recoveries, partitions of
the other members), a workload of non-idempotent calls, and a drain
instant for one member.  Whatever the interleaving:

- the retiring member **never executes a request issued after its
  drain began** — the "no new dispatch after drain begins" guarantee;
- every call still terminates (result or CORBA system exception) and
  non-idempotent tokens run at most once anywhere;
- replaying the identical schedule yields the identical trace.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orb.exceptions import SystemException
from repro.reliability import ReliabilityPolicy

from tests.control.helpers import build_control_world, executions

REPLICAS = ("a", "b", "c")
VICTIM = "b"
OTHERS = tuple(h for h in REPLICAS if h != VICTIM)


@st.composite
def fault_schedules(draw):
    """Crash/recover flips for non-victims, plus partition spells.

    The victim is left fault-free: the property under test is that the
    *control plane* keeps requests away from it, not that crashes do.
    """
    events = []
    for host in OTHERS:
        flips = draw(st.integers(min_value=0, max_value=2))
        when = 0.0
        up = True
        for _ in range(flips):
            when += draw(
                st.floats(min_value=0.002, max_value=0.06, allow_nan=False)
            )
            events.append((round(when, 6), "crash" if up else "recover", host))
            up = not up
    spells = draw(st.integers(min_value=0, max_value=1))
    when = 0.0
    for _ in range(spells):
        when += draw(st.floats(min_value=0.002, max_value=0.05, allow_nan=False))
        start = round(when, 6)
        duration = draw(
            st.floats(min_value=0.005, max_value=0.04, allow_nan=False)
        )
        cut = draw(st.sampled_from(OTHERS))
        events.append((start, "partition", cut))
        events.append((round(start + duration, 6), "heal", cut))
    return sorted(events, key=lambda e: (e[0], e[1:]))


@st.composite
def workloads(draw):
    count = draw(st.integers(min_value=2, max_value=8))
    slots = []
    when = 0.0
    for index in range(count):
        when += draw(st.floats(min_value=0.001, max_value=0.03, allow_nan=False))
        slots.append((round(when, 6), index))
    return slots


def run_drain_scenario(fault_schedule, workload, drain_at, seed):
    """One chaos run; returns (trace, registry, victim_servant, drain_at)."""
    world, manager, group, stub, registry = build_control_world(
        replicas=REPLICAS,
        spares=(),
        seed=seed,
    )
    stub._get_mediator().policy.breaker_cooldown = 0.01
    victim_servant = manager.replica(VICTIM)
    kernel = world.kernel
    trace = []
    issued = {}
    # Replica setup (state transfers) consumed simulated time; the
    # drawn schedule is relative to this base instant.
    base = world.clock.now

    for event in fault_schedule:
        if event[1] == "crash":
            world.faults.crash_at(base + event[0], event[2])
        elif event[1] == "recover":
            world.faults.recover_at(base + event[0], event[2])
        elif event[1] == "partition":
            world.faults.partition_at(
                base + event[0],
                [event[2]],
                [h for h in ("client",) + REPLICAS if h != event[2]],
            )
        else:
            world.faults.heal_at(base + event[0])

    def begin_drain(at):
        group.begin_retire(VICTIM, world.clock.now)
        trace.append((at, "drain-begin"))

    def run_slot(index, at):
        token = f"t{index}"
        issued[token] = at
        try:
            outcome = ("ok", stub.add(token, 1))
        except SystemException as error:
            outcome = ("err", type(error).__name__, error.minor)
        trace.append((at, index) + outcome)

    kernel.schedule_at(base + drain_at, begin_drain, drain_at)
    for at, index in workload:
        kernel.schedule_at(base + at, run_slot, index, at)
    kernel.run()
    group.poll_retirements(world.clock.now)
    trace.append(("end", round(world.clock.now, 9), tuple(group.hosts())))
    return trace, registry, victim_servant, issued


class TestDrainChaos:
    @settings(max_examples=25, deadline=None)
    @given(
        fault_schedule=fault_schedules(),
        workload=workloads(),
        drain_at=st.floats(min_value=0.0, max_value=0.15, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_retiring_member_never_runs_a_post_drain_request(
        self, fault_schedule, workload, drain_at, seed
    ):
        trace, registry, victim, issued = run_drain_scenario(
            fault_schedule, workload, round(drain_at, 6), seed
        )
        drain_began = round(drain_at, 6)
        for token, at in issued.items():
            if token in victim.executed:
                assert at < drain_began, (
                    f"{token} issued at {at} ran on the draining member "
                    f"(drain began {drain_began})"
                )
        # Liveness and at-most-once still hold under the chaos.
        settled = [entry for entry in trace if len(entry) >= 3 and entry[2] in ("ok", "err")]
        assert len(settled) == len(workload)
        for token in issued:
            assert executions(registry, token) <= 1
        for entry in trace:
            if len(entry) >= 3 and entry[2] == "ok":
                assert executions(registry, f"t{entry[1]}") == 1

    @settings(max_examples=10, deadline=None)
    @given(
        fault_schedule=fault_schedules(),
        workload=workloads(),
        drain_at=st.floats(min_value=0.0, max_value=0.15, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_identical_schedules_replay_identically(
        self, fault_schedule, workload, drain_at, seed
    ):
        first = run_drain_scenario(fault_schedule, workload, round(drain_at, 6), seed)
        second = run_drain_scenario(fault_schedule, workload, round(drain_at, 6), seed)
        assert first[0] == second[0]
        assert [s.executed for s in first[1]] == [s.executed for s in second[1]]
