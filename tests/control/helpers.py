"""Shared scaffolding for the control-plane suites.

A replicated deployment under control: N replica hosts serving a
token-recording counter (so exactly-once assertions can key on which
servant ran what), a pool of spare hosts the autoscaler may place on,
and a reliability-bound client whose rotation the
:class:`~repro.control.group.ManagedGroup` publishes membership to.
"""

import repro.qos as qos
from repro.control import ManagedGroup
from repro.orb import World
from repro.orb.request import reset_request_ids
from repro.perf.counters import COUNTERS
from repro.qos.fault_tolerance.replica_group import ReplicaGroupManager
from repro.reliability import ReliabilityPolicy

ctl_module = qos.weave(
    """
    interface CtlCounter provides FaultTolerance {
        long add(in string token, in long amount);
        idempotent long total();
    };
    """,
    "ctl_tests_counter",
)


def make_counter_factory(registry, service_time=0.0005):
    """A servant factory recording every incarnation in ``registry``.

    Retired members stay in the registry, so tests can assert over the
    full history of who executed what — including servants that no
    longer belong to the group.
    """

    class CtlCounterImpl(ctl_module.CtlCounterServerBase):
        _default_service_time = service_time

        def __init__(self):
            super().__init__()
            self.count = 0
            #: token -> number of times ``add(token, ...)`` ran here.
            self.executed = {}

        def add(self, token, amount):
            self.executed[token] = self.executed.get(token, 0) + 1
            self.count += amount
            return self.count

        def total(self):
            return self.count

        def get_state(self):
            return {"count": self.count}

        def set_state(self, state):
            self.count = state["count"]

    def factory():
        servant = CtlCounterImpl()
        registry.append(servant)
        return servant

    return factory


def executions(registry, token):
    """Total executions of ``token`` across every servant ever created."""
    return sum(servant.executed.get(token, 0) for servant in registry)


def build_control_world(
    replicas=("a",),
    spares=("b", "c", "d"),
    latency=0.0005,
    bandwidth=100e6,
    seed=0,
    service_time=0.0005,
):
    """Fresh controlled deployment.

    Returns ``(world, manager, group, stub, registry)`` — the registry
    holds every servant incarnation in creation order.
    """
    reset_request_ids()
    COUNTERS.reset()
    world = World()
    world.lan(
        ("client",) + tuple(replicas) + tuple(spares),
        latency=latency,
        bandwidth_bps=bandwidth,
    )
    registry = []
    manager = ReplicaGroupManager(
        world, "ctlgrp", make_counter_factory(registry, service_time)
    )
    for host in replicas:
        manager.add_replica(host)
    group = ManagedGroup(world, manager)
    stub = group.bind_reliable_client(
        world.orb("client"),
        ctl_module.CtlCounterStub,
        ReliabilityPolicy(seed=seed),
    )
    return world, manager, group, stub, registry
