"""Spec loading and validation: every rejection names the offending field."""

import copy

import pytest

from repro.scenario.spec import Spec, SpecError, load_spec

BASE = {
    "name": "base",
    "seed": 3,
    "duration": 1.0,
    "topology": {
        "lan": {"hosts": ["client", "s1", "s2"], "latency": 0.0005},
    },
    "group": {"hosts": ["s1", "s2"]},
    "traffic": {"kind": "poisson", "rate": 50.0, "sources": ["client"]},
}


def variant(**overrides):
    data = copy.deepcopy(BASE)
    for key, value in overrides.items():
        if value is None:
            data.pop(key, None)
        else:
            data[key] = value
    return data


class TestLoading:
    def test_base_spec_loads(self):
        spec = Spec.from_dict(BASE)
        assert spec.name == "base"
        assert spec.seed == 3
        assert sorted(spec.host_names()) == ["client", "s1", "s2"]
        # The LAN shorthand meshes all three hosts.
        assert len(spec.links) == 3

    def test_load_spec_accepts_dict(self):
        assert load_spec(BASE).name == "base"

    def test_name_falls_back_to_argument(self):
        spec = Spec.from_dict(variant(name=None), name="from-file")
        assert spec.name == "from-file"

    def test_missing_name_rejected(self):
        with pytest.raises(SpecError, match="missing 'name'"):
            Spec.from_dict(variant(name=None))

    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "tiny.toml"
        path.write_text(
            """
            duration = 0.5

            [topology.lan]
            hosts = ["client", "s1"]

            [group]
            hosts = ["s1"]

            [traffic]
            sources = ["client"]
            """
        )
        spec = Spec.from_toml(str(path))
        assert spec.name == "tiny"  # defaults to the file stem
        assert spec.duration == 0.5

    def test_invalid_toml_names_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[topology\n")
        with pytest.raises(SpecError, match="invalid TOML"):
            Spec.from_toml(str(path))


class TestUnknownKeys:
    def test_top_level(self):
        with pytest.raises(SpecError, match="unknown key"):
            Spec.from_dict(variant(tarffic={"rate": 5}))

    def test_nested_section(self):
        data = variant()
        data["traffic"]["rte"] = 5.0
        with pytest.raises(SpecError, match="traffic.*'rte'"):
            Spec.from_dict(data)

    def test_link_entry(self):
        data = variant(
            topology={
                "hosts": ["a", "b"],
                "links": [{"a": "a", "b": "b", "lateny": 1.0}],
            },
            group={"hosts": ["b"]},
            traffic={"sources": ["a"]},
        )
        with pytest.raises(SpecError, match="'lateny'"):
            Spec.from_dict(data)


class TestTopologyValidation:
    def test_dangling_link_host(self):
        data = variant(
            topology={
                "hosts": ["a", "b"],
                "links": [{"a": "a", "b": "ghost"}],
            },
            group={"hosts": ["b"]},
            traffic={"sources": ["a"]},
        )
        with pytest.raises(SpecError, match="unknown host 'ghost'"):
            Spec.from_dict(data)

    def test_self_link(self):
        data = variant(
            topology={"hosts": ["a", "b"], "links": [{"a": "a", "b": "a"}]},
            group={"hosts": ["b"]},
            traffic={"sources": ["a"]},
        )
        with pytest.raises(SpecError, match="itself"):
            Spec.from_dict(data)

    def test_dangling_cohort_gateway(self):
        data = variant()
        data["topology"]["cohorts"] = [
            {"name": "edge", "clients": 2, "gateway": "nowhere"}
        ]
        with pytest.raises(SpecError, match="gateway 'nowhere'"):
            Spec.from_dict(data)

    def test_cohort_needs_clients(self):
        data = variant()
        data["topology"]["cohorts"] = [
            {"name": "edge", "clients": 0, "gateway": "s1"}
        ]
        with pytest.raises(SpecError, match="clients must be >= 1"):
            Spec.from_dict(data)

    def test_duplicate_host_names(self):
        data = variant()
        # The "edge" cohort expands to edge00 — colliding with the
        # explicitly declared host of the same name.
        data["topology"]["hosts"] = ["edge00"]
        data["topology"]["cohorts"] = [
            {"name": "edge", "clients": 1, "gateway": "s2"}
        ]
        with pytest.raises(SpecError, match="duplicate host"):
            Spec.from_dict(data)

    def test_no_hosts_at_all(self):
        with pytest.raises(SpecError, match="no hosts"):
            Spec.from_dict(
                variant(topology={}, group={"hosts": ["s1"]})
            )

    def test_negative_latency(self):
        data = variant()
        data["topology"]["lan"]["latency"] = -1.0
        with pytest.raises(SpecError, match="latency must be non-negative"):
            Spec.from_dict(data)

    def test_loss_rate_range(self):
        data = variant(
            topology={
                "hosts": ["a", "b"],
                "links": [{"a": "a", "b": "b", "loss_rate": 1.0}],
            },
            group={"hosts": ["b"]},
            traffic={"sources": ["a"]},
        )
        with pytest.raises(SpecError, match="loss_rate"):
            Spec.from_dict(data)


class TestRateValidation:
    @pytest.mark.parametrize("rate", [0.0, -5.0])
    def test_negative_or_zero_traffic_rate(self, rate):
        data = variant()
        data["traffic"]["rate"] = rate
        with pytest.raises(SpecError, match="traffic.rate must be positive"):
            Spec.from_dict(data)

    def test_negative_duration(self):
        with pytest.raises(SpecError, match="duration must be positive"):
            Spec.from_dict(variant(duration=-1.0))

    def test_negative_service_time(self):
        data = variant(group={"hosts": ["s1"], "service_time": -0.01})
        with pytest.raises(SpecError, match="service_time"):
            Spec.from_dict(data)

    def test_on_max_must_exceed_on_min(self):
        data = variant()
        data["traffic"].update(kind="onoff", on_min=10.0, on_max=5.0)
        with pytest.raises(SpecError, match="on_max .* must exceed on_min"):
            Spec.from_dict(data)

    def test_amplitude_below_one(self):
        data = variant()
        data["traffic"].update(kind="diurnal", amplitude=1.0)
        with pytest.raises(SpecError, match="amplitude"):
            Spec.from_dict(data)

    def test_peak_below_base(self):
        data = variant()
        data["traffic"].update(
            kind="flash_crowd", base_rate=200.0, peak_rate=100.0
        )
        with pytest.raises(SpecError, match="peak_rate"):
            Spec.from_dict(data)

    def test_class_shares_positive(self):
        data = variant()
        data["traffic"]["classes"] = {"gold": 1.0, "bronze": 0.0}
        with pytest.raises(SpecError, match="classes shares"):
            Spec.from_dict(data)


class TestCrossSections:
    def test_group_hosts_must_exist(self):
        with pytest.raises(SpecError, match="group.hosts.*'ghost'"):
            Spec.from_dict(variant(group={"hosts": ["ghost"]}))

    def test_group_needs_a_host(self):
        with pytest.raises(SpecError, match="at least one serving host"):
            Spec.from_dict(variant(group={"hosts": []}))

    def test_traffic_sources_must_exist(self):
        data = variant()
        data["traffic"]["sources"] = ["ghost"]
        with pytest.raises(SpecError, match="traffic.sources.*'ghost'"):
            Spec.from_dict(data)

    def test_source_cannot_serve(self):
        data = variant()
        data["traffic"]["sources"] = ["s1"]
        with pytest.raises(SpecError, match="both traffic sources and group"):
            Spec.from_dict(data)

    def test_glob_expansion(self):
        data = variant()
        data["topology"]["cohorts"] = [
            {"name": "edge", "clients": 3, "gateway": "s1"}
        ]
        data["traffic"]["sources"] = ["edge*"]
        spec = Spec.from_dict(data)
        assert spec.traffic.sources == ["edge00", "edge01", "edge02"]

    def test_glob_with_no_match(self):
        data = variant()
        data["traffic"]["sources"] = ["nomatch*"]
        with pytest.raises(SpecError, match="matches no host"):
            Spec.from_dict(data)

    def test_fluid_hosts_must_exist(self):
        data = variant(
            fluid={"n_clients": 10, "src": "client", "dst": "ghost"}
        )
        with pytest.raises(SpecError, match="fluid.dst 'ghost'"):
            Spec.from_dict(data)

    def test_fluid_needs_src_and_dst(self):
        with pytest.raises(SpecError, match="both 'src' and 'dst'"):
            Spec.from_dict(variant(fluid={"n_clients": 10}))

    def test_bad_sched_policy(self):
        with pytest.raises(SpecError, match="sched.policy"):
            Spec.from_dict(variant(sched={"policy": "lifo"}))

    def test_bad_tier(self):
        with pytest.raises(SpecError, match="spec.tier"):
            Spec.from_dict(variant(tier="gpu"))


class TestShardTierConstraints:
    def shard_variant(self, **extra):
        data = variant(
            tier="shard",
            topology={"clusters": {"clusters": 2, "hosts_per_cluster": 2}},
            group={"hosts": ["c*h00"]},
            traffic={"kind": "onoff", "sources": ["c*h01"]},
        )
        data.update(extra)
        return data

    def test_shard_spec_loads(self):
        spec = Spec.from_dict(self.shard_variant())
        assert spec.tier == "shard"
        assert len(spec.host_names()) == 4
        assert spec.group.hosts == ["c00h00", "c01h00"]

    def test_shard_rejects_non_onoff_traffic(self):
        data = self.shard_variant()
        data["traffic"] = {"kind": "poisson", "sources": ["c*h01"]}
        with pytest.raises(SpecError, match="tier = 'orb'"):
            Spec.from_dict(data)

    def test_shard_rejects_chaos(self):
        data = self.shard_variant(
            chaos=[{"kind": "crash", "at": 0.1, "host": "c00h01"}]
        )
        with pytest.raises(SpecError, match="chaos requires the orb tier"):
            Spec.from_dict(data)

    def test_shard_rejects_reliability(self):
        data = self.shard_variant(reliability={"enabled": True})
        with pytest.raises(SpecError, match="reliability requires the orb"):
            Spec.from_dict(data)


class TestChaosInSpec:
    def test_overlapping_partitions_rejected(self):
        data = variant(
            chaos=[
                {"kind": "partition", "at": 0.2,
                 "groups": [["client"], ["s1", "s2"]]},
                {"kind": "partition", "at": 0.4,
                 "groups": [["client"], ["s1", "s2"]]},
                {"kind": "heal", "at": 0.6},
            ]
        )
        with pytest.raises(SpecError, match="overlapping chaos windows"):
            Spec.from_dict(data)

    def test_chaos_after_duration_rejected(self):
        data = variant(
            chaos=[{"kind": "crash", "at": 5.0, "host": "s1"}]
        )
        with pytest.raises(SpecError, match="after the scenario ends"):
            Spec.from_dict(data)

    def test_chaos_host_must_exist(self):
        data = variant(
            chaos=[{"kind": "crash", "at": 0.1, "host": "ghost"}]
        )
        with pytest.raises(SpecError, match="unknown host 'ghost'"):
            Spec.from_dict(data)

    def test_chaos_must_be_a_list(self):
        with pytest.raises(SpecError, match="list of event tables"):
            Spec.from_dict(variant(chaos={"kind": "heal", "at": 0.1}))


class TestSLOValidation:
    def test_goodput_floor_range(self):
        with pytest.raises(SpecError, match="goodput_floor"):
            Spec.from_dict(variant(slo={"goodput_floor": 1.5}))

    def test_failure_ratio_range(self):
        with pytest.raises(SpecError, match="max_failure_ratio"):
            Spec.from_dict(variant(slo={"max_failure_ratio": -0.1}))

    def test_p95_positive(self):
        with pytest.raises(SpecError, match="p95_ms"):
            Spec.from_dict(variant(slo={"p95_ms": 0.0}))


class TestShippedSpecs:
    """Every spec shipped under scenarios/ must load and validate."""

    def test_all_shipped_specs_load(self, shipped_specs):
        assert len(shipped_specs) >= 8
        names = {spec.name for spec in shipped_specs}
        for required in (
            "diurnal", "flash_crowd", "regional_partition", "slow_link_cohort"
        ):
            assert required in names

    def test_shipped_specs_cover_the_traffic_kinds(self, shipped_specs):
        kinds = {spec.traffic.kind for spec in shipped_specs}
        assert {"poisson", "onoff", "diurnal", "flash_crowd"} <= kinds

    def test_shipped_specs_cover_both_tiers(self, shipped_specs):
        tiers = {spec.tier for spec in shipped_specs}
        assert tiers == {"orb", "shard"}
