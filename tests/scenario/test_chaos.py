"""Chaos campaigns: expansion, validation, digests, live installation."""

import pytest

from repro.netsim.faults import FaultInjector
from repro.netsim.kernel import EventKernel
from repro.netsim.network import Network, NoRoute
from repro.scenario.chaos import Campaign, ChaosError, ChaosEvent


def campaign(entries, **kwargs):
    return Campaign.from_dicts(entries, **kwargs)


class TestExpansion:
    def test_literal_events_sorted_by_time(self):
        c = campaign(
            [
                {"kind": "recover", "at": 0.4, "host": "a"},
                {"kind": "crash", "at": 0.2, "host": "a"},
            ]
        )
        assert [e.kind for e in c.events] == ["crash", "recover"]

    def test_crash_wave_expands_to_pairs(self):
        c = campaign(
            [
                {"kind": "crash_wave", "at": 0.1, "hosts": ["a", "b"],
                 "interval": 0.3, "downtime": 0.2, "waves": 2}
            ],
            seed=5,
        )
        kinds = [e.kind for e in c.events]
        assert kinds.count("crash") == 4
        assert kinds.count("recover") == 4

    def test_crash_wave_order_is_seeded(self):
        entry = {"kind": "crash_wave", "at": 0.0, "hosts": list("abcdef"),
                 "interval": 0.5, "downtime": 0.1}
        assert campaign([entry], seed=1).digest() == campaign([entry], seed=1).digest()
        assert campaign([entry], seed=1).digest() != campaign([entry], seed=2).digest()

    def test_loss_ramp_steps_up_then_heals(self):
        c = campaign(
            [{"kind": "loss_ramp", "at": 0.0, "link": ["a", "b"],
              "steps": 4, "step_every": 0.1, "max_rate": 0.2}]
        )
        rates = [e.args[1] for e in c.events]
        assert rates == [0.05, 0.1, 0.15, 0.2, 0.0]

    def test_unknown_kind(self):
        with pytest.raises(ChaosError, match="unknown kind 'meteor'"):
            campaign([{"kind": "meteor", "at": 0.1}])

    def test_missing_at(self):
        with pytest.raises(ChaosError, match="missing 'at'"):
            campaign([{"kind": "heal"}])

    def test_negative_at(self):
        with pytest.raises(ChaosError, match="non-negative"):
            campaign([{"kind": "crash", "at": -1.0, "host": "a"}])

    def test_partition_needs_groups(self):
        with pytest.raises(ChaosError, match="non-empty 'groups'"):
            campaign([{"kind": "partition", "at": 0.1, "groups": [[]]}])

    def test_loss_needs_two_host_link(self):
        with pytest.raises(ChaosError, match="two hosts"):
            campaign([{"kind": "loss", "at": 0.1, "link": ["a"]}])


class TestWindowValidation:
    def test_heal_before_any_partition(self):
        with pytest.raises(ChaosError, match="precedes every partition"):
            campaign(
                [
                    {"kind": "heal", "at": 0.1},
                    {"kind": "partition", "at": 0.5, "groups": [["a"], ["b"]]},
                    {"kind": "heal", "at": 0.8},
                ]
            )

    def test_overlapping_partitions(self):
        with pytest.raises(ChaosError, match="overlapping chaos windows"):
            campaign(
                [
                    {"kind": "partition", "at": 0.1, "groups": [["a"], ["b"]]},
                    {"kind": "partition", "at": 0.2, "groups": [["a"], ["b"]]},
                    {"kind": "heal", "at": 0.3},
                ]
            )

    def test_unhealed_partition(self):
        with pytest.raises(ChaosError, match="never healed"):
            campaign(
                [{"kind": "partition", "at": 0.1, "groups": [["a"], ["b"]]}]
            )

    def test_double_crash_without_recover(self):
        with pytest.raises(ChaosError, match="already down"):
            campaign(
                [
                    {"kind": "crash", "at": 0.1, "host": "a"},
                    {"kind": "crash", "at": 0.2, "host": "a"},
                ]
            )

    def test_recover_before_crash(self):
        with pytest.raises(ChaosError, match="precedes its crash"):
            campaign([{"kind": "recover", "at": 0.1, "host": "a"}])

    def test_event_after_duration(self):
        with pytest.raises(ChaosError, match="after the scenario ends"):
            campaign(
                [{"kind": "crash", "at": 2.0, "host": "a"}], duration=1.0
            )

    def test_unknown_host_reference(self):
        with pytest.raises(ChaosError, match="unknown host 'ghost'"):
            campaign(
                [{"kind": "crash", "at": 0.1, "host": "ghost"}],
                hosts=["a", "b"],
            )

    def test_valid_script_passes(self):
        c = campaign(
            [
                {"kind": "partition", "at": 0.1, "groups": [["a"], ["b"]]},
                {"kind": "heal", "at": 0.5},
                {"kind": "crash", "at": 0.6, "host": "a"},
                {"kind": "recover", "at": 0.7, "host": "a"},
            ],
            hosts=["a", "b"],
            duration=1.0,
        )
        assert len(c) == 4


class TestDigest:
    def test_digest_is_stable(self):
        entries = [
            {"kind": "crash", "at": 0.25, "host": "a"},
            {"kind": "recover", "at": 0.5, "host": "a"},
        ]
        assert campaign(entries).digest() == campaign(entries).digest()

    def test_digest_sees_timing(self):
        a = campaign([{"kind": "crash", "at": 0.25, "host": "a"},
                      {"kind": "recover", "at": 0.5, "host": "a"}])
        b = campaign([{"kind": "crash", "at": 0.26, "host": "a"},
                      {"kind": "recover", "at": 0.5, "host": "a"}])
        assert a.digest() != b.digest()

    def test_empty_campaign_digest(self):
        # SHA-256 of the empty string: the "no chaos" sentinel every
        # chaos-free scenario reports.
        assert campaign([]).digest().startswith("e3b0c44298fc1c14")

    def test_canonical_lines_round_trip_order(self):
        c = campaign(
            [
                {"kind": "heal", "at": 0.5},
                {"kind": "partition", "at": 0.2, "groups": [["b"], ["a"]]},
            ]
        )
        assert c.canonical_lines() == sorted(c.canonical_lines())


class TestInstallation:
    @pytest.fixture
    def world(self):
        kernel = EventKernel()
        net = Network(kernel.clock)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b")
        return kernel, net, FaultInjector(net, kernel)

    def test_partition_window_applies_and_heals(self, world):
        kernel, net, faults = world
        c = campaign(
            [
                {"kind": "partition", "at": 0.2, "groups": [["a"], ["b"]]},
                {"kind": "heal", "at": 0.6},
            ]
        )
        assert c.install(faults, net) == 2
        kernel.run_until(0.3)
        with pytest.raises(NoRoute):
            net.send("a", "b", 1)
        kernel.run_until(0.7)
        assert net.send("a", "b", 1) >= 0

    def test_loss_ramp_applies(self, world):
        kernel, net, faults = world
        link = net.link_between("a", "b")
        c = campaign(
            [{"kind": "loss_ramp", "at": 0.1, "link": ["a", "b"],
              "steps": 2, "step_every": 0.1, "max_rate": 0.4}]
        )
        c.install(faults, net)
        kernel.run_until(0.15)
        assert link.loss_rate == pytest.approx(0.2)
        kernel.run_until(0.35)
        assert link.loss_rate == 0.0  # ramps end healed

    def test_install_logs_every_event(self, world):
        kernel, net, faults = world
        c = campaign(
            [
                {"kind": "crash", "at": 0.1, "host": "b"},
                {"kind": "recover", "at": 0.2, "host": "b"},
            ]
        )
        c.install(faults, net)
        kernel.run()
        assert [entry for _, entry in faults.log] == ["crash b", "recover b"]


class TestFaultInjectorHealGuard:
    """The fix this PR ships: FaultInjector.heal_at used to accept a
    heal scheduled before any partition and silently leave the
    partition in place forever."""

    @pytest.fixture
    def world(self):
        kernel = EventKernel()
        net = Network(kernel.clock)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b")
        return kernel, net, FaultInjector(net, kernel)

    def test_heal_before_partition_rejected(self, world):
        _, _, faults = world
        faults.partition_at(1.0, {"a"}, {"b"})
        with pytest.raises(ValueError, match="nothing to heal"):
            faults.heal_at(0.5)

    def test_heal_with_no_partition_rejected(self, world):
        _, _, faults = world
        with pytest.raises(ValueError, match="no partition is active"):
            faults.heal_at(0.5)

    def test_error_names_the_earliest_partition(self, world):
        _, _, faults = world
        faults.partition_at(2.0, {"a"}, {"b"})
        with pytest.raises(ValueError, match="fires at 2.0"):
            faults.heal_at(1.0)

    def test_heal_after_scheduled_partition_ok(self, world):
        kernel, net, faults = world
        faults.partition_at(0.2, {"a"}, {"b"})
        faults.heal_at(0.6)
        kernel.run()
        assert net.send("a", "b", 1) >= 0

    def test_heal_of_active_partition_ok(self, world):
        kernel, net, faults = world
        faults.partition({"a"}, {"b"})
        faults.heal_at(0.5)
        kernel.run()
        assert net.send("a", "b", 1) >= 0

    def test_heal_at_partition_instant_ok(self, world):
        kernel, _, faults = world
        faults.partition_at(0.5, {"a"}, {"b"})
        faults.heal_at(0.5)  # same instant: partition fires first
        kernel.run()
        kinds = [entry.split()[0] for _, entry in faults.log]
        assert kinds == ["partition", "heal"]


class TestChaosEvent:
    def test_canonical_is_fixed_precision(self):
        event = ChaosEvent(0.1, "crash", ("a",))
        assert event.canonical() == "0.100000000 crash ('a',)"
