"""The ``python -m repro.scenario`` command line."""

import json

import pytest

from repro.scenario.__main__ import main
from tests.scenario.conftest import SCENARIO_DIR, scenario_paths


def spec_path(name):
    return f"{SCENARIO_DIR}/{name}.toml"


class TestRunCommand:
    def test_run_passes_and_reports(self, capsys):
        assert main(["run", spec_path("steady_poisson")]) == 0
        out = capsys.readouterr().out
        assert "SLOs: pass" in out
        assert "goodput" in out
        assert "campaign" in out or "flows" in out

    def test_run_with_stack_override(self, capsys):
        assert main(
            ["run", spec_path("steady_poisson"), "--stack", "wfq-reliable"]
        ) == 0
        assert "stack=wfq-reliable" in capsys.readouterr().out

    def test_run_unknown_stack_lists_known(self):
        with pytest.raises(SystemExit, match="known stacks"):
            main(["run", spec_path("steady_poisson"), "--stack", "nope"])

    def test_run_writes_flowexport(self, tmp_path, capsys):
        out = tmp_path / "flows.jsonl"
        assert main(
            ["run", spec_path("shard_onoff"), "--shards", "2",
             "--flowexport", str(out)]
        ) == 0
        lines = out.read_text().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert {"flow_id", "klass", "src", "dst", "nbytes", "start", "end",
                "drops", "retries"} <= set(record)

    def test_run_missing_spec_is_error(self, capsys):
        assert main(["run", "scenarios/does_not_exist.toml"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_invalid_spec_is_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('duration = -1.0\n[group]\nhosts = ["x"]\n')
        assert main(["run", str(bad)]) == 2
        assert "duration" in capsys.readouterr().err

    def test_run_reports_slo_violation(self, tmp_path, capsys):
        strict = tmp_path / "strict.toml"
        strict.write_text(
            """
            duration = 0.4

            [topology.lan]
            hosts = ["client", "s1"]

            [group]
            hosts = ["s1"]
            service_time = 0.004

            [traffic]
            kind = "poisson"
            rate = 50.0
            sources = ["client"]

            [slo]
            p95_ms = 0.001
            """
        )
        assert main(["run", str(strict)]) == 1
        assert "SLO VIOLATIONS" in capsys.readouterr().out


class TestValidateCommand:
    def test_all_shipped_specs_validate(self, capsys):
        assert main(["validate", *scenario_paths()]) == 0
        out = capsys.readouterr().out
        assert out.count("ok   ") >= 8
        assert "FAIL" not in out

    def test_invalid_spec_fails_with_reason(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text(
            """
            duration = 1.0

            [topology]
            hosts = ["a"]

            [group]
            hosts = ["ghost"]

            [traffic]
            sources = ["a"]
            """
        )
        assert main(["validate", str(bad)]) == 1
        assert "ghost" in capsys.readouterr().out
