"""Flow-export telemetry: canonical JSONL, digests, trace parsing."""

import json

import pytest

from repro.scenario.flowexport import FlowExporter, FlowRecord, flows_from_trace


def record(flow_id="c:00000", start=0.0, end=0.01, **kw):
    defaults = dict(
        klass="std", src="c", dst="s", nbytes=128, requests=1,
        drops=0, retries=0, status="ok",
    )
    defaults.update(kw)
    return FlowRecord(flow_id=flow_id, start=start, end=end, **defaults)


class TestFlowRecord:
    def test_duration(self):
        assert record(start=1.0, end=1.25).duration() == pytest.approx(0.25)

    def test_json_is_canonical(self):
        line = record().to_json()
        data = json.loads(line)
        assert list(data) == sorted(data)  # keys sorted
        assert " " not in line  # compact separators

    def test_floats_rounded_to_nanoseconds(self):
        a = record(start=0.1234567891234, end=0.2)
        b = record(start=0.1234567894321, end=0.2)
        assert a.to_json() == b.to_json()


class TestFlowExporter:
    def test_lines_ordered_by_start_then_id(self):
        exporter = FlowExporter(
            [
                record(flow_id="b:1", start=0.5),
                record(flow_id="a:2", start=0.5),
                record(flow_id="z:0", start=0.1),
            ]
        )
        ids = [json.loads(line)["flow_id"] for line in exporter.lines()]
        assert ids == ["z:0", "a:2", "b:1"]

    def test_insertion_order_does_not_change_bytes(self):
        records = [record(flow_id=f"c:{i}", start=i / 10.0) for i in range(5)]
        forward = FlowExporter(records)
        backward = FlowExporter(list(reversed(records)))
        assert forward.dumps() == backward.dumps()
        assert forward.digest() == backward.digest()

    def test_dumps_ends_with_newline(self):
        assert FlowExporter([record()]).dumps().endswith("\n")
        assert FlowExporter([]).dumps() == ""

    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "flows.jsonl"
        exporter = FlowExporter([record(), record(flow_id="c:00001", start=0.2)])
        assert exporter.write(str(path)) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["flow_id"] == "c:00000"

    def test_digest_sees_payload_changes(self):
        base = FlowExporter([record()])
        changed = FlowExporter([record(nbytes=129)])
        assert base.digest() != changed.digest()

    def test_summary_totals(self):
        exporter = FlowExporter(
            [
                record(nbytes=100, requests=2),
                record(flow_id="c:1", nbytes=50, drops=1, retries=3,
                       status="failed"),
            ]
        )
        summary = exporter.summary()
        assert summary["flows"] == 2
        assert summary["requests"] == 3
        assert summary["bytes"] == 150
        assert summary["drops"] == 1
        assert summary["retries"] == 3
        assert summary["failed"] == 1


class TestFlowsFromTrace:
    def entry(self, host="c00h01", flow_id="c00h01:0000"):
        payload = repr(
            ("flow", flow_id, "std", "c00h00", 800, 0.125, 0.25, 2, 0, 0)
        )
        return (0.25, host, "record", payload)

    def test_parses_flow_entries(self):
        flows = flows_from_trace([self.entry()])
        assert len(flows) == 1
        flow = flows[0]
        assert flow.src == "c00h01"  # the recording host
        assert flow.dst == "c00h00"
        assert flow.nbytes == 800
        assert flow.requests == 2
        assert flow.status == "ok"

    def test_skips_non_record_refs(self):
        entries = [(0.1, "a", "tick", "()"), self.entry()]
        assert len(flows_from_trace(entries)) == 1

    def test_skips_other_record_tags(self):
        entries = [(0.1, "a", "record", repr(("metric", 1))), self.entry()]
        assert len(flows_from_trace(entries)) == 1

    def test_drops_mark_degraded(self):
        payload = repr(
            ("flow", "c:0", "std", "s", 100, 0.0, 0.1, 1, 2, 0)
        )
        flows = flows_from_trace([(0.1, "c", "record", payload)])
        assert flows[0].status == "degraded"
