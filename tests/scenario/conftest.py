"""Shared fixtures: the shipped scenario fleet under scenarios/."""

import glob
import os

import pytest

from repro.scenario.spec import Spec

SCENARIO_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "scenarios",
)


def scenario_paths():
    return sorted(glob.glob(os.path.join(SCENARIO_DIR, "*.toml")))


@pytest.fixture(scope="session")
def shipped_specs():
    """Every TOML spec shipped under scenarios/, loaded and validated."""
    paths = scenario_paths()
    assert paths, f"no scenario specs found under {SCENARIO_DIR}"
    return [Spec.from_toml(path) for path in paths]


@pytest.fixture(scope="session")
def spec_by_name(shipped_specs):
    return {spec.name: spec for spec in shipped_specs}
