"""Property tests for the scenario traffic generators (hypothesis)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario.traffic import (
    bounded_pareto,
    diurnal_arrivals,
    diurnal_rate,
    flash_crowd_arrivals,
    flash_crowd_rate,
    hill_estimator,
    onoff_arrivals,
    onoff_sessions,
)
from repro.workloads.generators import thinned_arrivals


class TestBoundedPareto:
    def test_support(self):
        rng = random.Random(1)
        for _ in range(1000):
            value = bounded_pareto(rng.random(), 1.5, 2.0, 500.0)
            assert 2.0 <= value <= 500.0

    def test_monotone_in_u(self):
        low = bounded_pareto(0.1, 1.5, 1.0, 1000.0)
        high = bounded_pareto(0.9, 1.5, 1.0, 1000.0)
        assert low < high

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            bounded_pareto(0.5, 0.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            bounded_pareto(0.5, 1.5, 10.0, 1.0)
        with pytest.raises(ValueError):
            bounded_pareto(1.0, 1.5, 1.0, 10.0)

    @settings(max_examples=15, deadline=None)
    @given(
        alpha=st.floats(min_value=1.2, max_value=2.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_hill_recovers_tail_index(self, alpha, seed):
        """The Hill estimate of generated samples matches the configured
        tail index to within 30% — the generator really is Pareto."""
        rng = random.Random(seed)
        # A huge cap keeps truncation bias out of the tail estimate.
        values = [
            bounded_pareto(rng.random(), alpha, 1.0, 1e9) for _ in range(4000)
        ]
        estimate = hill_estimator(values)
        assert abs(estimate - alpha) / alpha < 0.30

    def test_hill_needs_enough_samples(self):
        with pytest.raises(ValueError):
            hill_estimator([1.0, 2.0, 3.0])


class TestOnOff:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_identical_seed_identical_arrivals(self, seed):
        config = dict(sources=3, burst_rate=300.0, seed=seed)
        assert onoff_arrivals(0.5, **config) == onoff_arrivals(0.5, **config)

    def test_different_seed_differs(self):
        assert onoff_arrivals(0.5, seed=1) != onoff_arrivals(0.5, seed=2)

    def test_arrivals_sorted_and_bounded(self):
        times = onoff_arrivals(0.5, sources=4, seed=3, start=10.0)
        assert times == sorted(times)
        assert all(10.0 <= t < 10.5 for t in times)

    def test_sessions_pace_at_burst_rate(self):
        for session in onoff_sessions(1.0, sources=2, burst_rate=200.0, seed=4):
            gaps = [
                b - a for a, b in zip(session.arrivals, session.arrivals[1:])
            ]
            assert all(abs(gap - 1 / 200.0) < 1e-9 for gap in gaps)

    def test_source_streams_stable_under_recomposition(self):
        """Source i's sessions do not depend on how many sources run."""
        small = [
            s for s in onoff_sessions(0.5, sources=2, seed=5) if s.source == 0
        ]
        large = [
            s for s in onoff_sessions(0.5, sources=6, seed=5) if s.source == 0
        ]
        assert [s.arrivals for s in small] == [s.arrivals for s in large]

    def test_heavy_tail_in_generated_sizes(self):
        sizes = [
            float(s.size)
            for s in onoff_sessions(
                400.0, sources=4, on_alpha=1.5, on_min=2.0, on_max=1e7, seed=6
            )
        ]
        assert len(sizes) > 500
        estimate = hill_estimator(sizes)
        assert abs(estimate - 1.5) / 1.5 < 0.35

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            onoff_sessions(-1.0)
        with pytest.raises(ValueError):
            onoff_sessions(1.0, sources=0)
        with pytest.raises(ValueError):
            onoff_sessions(1.0, burst_rate=0.0)


class TestDiurnal:
    @settings(max_examples=20, deadline=None)
    @given(
        mean_rate=st.floats(min_value=10.0, max_value=500.0),
        amplitude=st.floats(min_value=0.0, max_value=0.95),
        phase=st.floats(min_value=0.0, max_value=6.28),
    )
    def test_integral_over_period_is_mean(self, mean_rate, amplitude, phase):
        """The sinusoid integrates away over a whole period, so the
        diurnal curve's integral equals ``mean_rate * period``."""
        period = 2.0
        steps = 4000
        dt = period / steps
        total = sum(
            diurnal_rate((i + 0.5) * dt, mean_rate, period, amplitude, phase)
            * dt
            for i in range(steps)
        )
        assert total == pytest.approx(mean_rate * period, rel=1e-4)

    def test_rate_never_negative(self):
        for tau in range(0, 100):
            assert diurnal_rate(tau / 10.0, 50.0, 3.0, 0.95, 1.0) >= 0.0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_identical_seed_identical_arrivals(self, seed):
        a = diurnal_arrivals(100.0, 1.0, amplitude=0.5, seed=seed)
        b = diurnal_arrivals(100.0, 1.0, amplitude=0.5, seed=seed)
        assert a == b

    def test_count_tracks_mean_rate(self):
        times = diurnal_arrivals(200.0, 4.0, period=1.0, seed=7)
        assert len(times) == pytest.approx(800, rel=0.15)

    def test_peaks_where_the_sine_peaks(self):
        times = diurnal_arrivals(200.0, 1.0, period=1.0, amplitude=0.9, seed=8)
        first_half = sum(1 for t in times if t < 0.5)
        assert first_half > len(times) * 0.6  # sin >= 0 on the first half

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            diurnal_arrivals(100.0, 1.0, amplitude=1.0)


class TestFlashCrowd:
    def test_piecewise_shape(self):
        kw = dict(base_rate=100.0, peak_rate=400.0, ramp_at=1.0,
                  ramp=0.5, hold=1.0, decay=0.5)
        assert flash_crowd_rate(0.5, **kw) == 100.0
        assert flash_crowd_rate(1.25, **kw) == pytest.approx(250.0)
        assert flash_crowd_rate(2.0, **kw) == 400.0
        assert flash_crowd_rate(2.75, **kw) == pytest.approx(250.0)
        assert flash_crowd_rate(5.0, **kw) == 100.0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_identical_seed_identical_arrivals(self, seed):
        a = flash_crowd_arrivals(2.0, 100.0, 400.0, 0.5, seed=seed)
        b = flash_crowd_arrivals(2.0, 100.0, 400.0, 0.5, seed=seed)
        assert a == b

    def test_crowd_concentrates_in_the_spike(self):
        times = flash_crowd_arrivals(
            2.0, 50.0, 500.0, 0.8, ramp=0.1, hold=0.4, decay=0.1, seed=9
        )
        spike = sum(1 for t in times if 0.8 <= t <= 1.4)
        before = sum(1 for t in times if t < 0.8)
        assert spike > before  # 0.6 s of spike beats 0.8 s of base load

    def test_rejects_peak_below_base(self):
        with pytest.raises(ValueError):
            flash_crowd_rate(0.0, 200.0, 100.0, 1.0)


class TestThinning:
    def test_constant_rate_matches_poisson_count(self):
        times = thinned_arrivals(lambda tau: 100.0, 100.0, 4.0, seed=10)
        assert len(times) == pytest.approx(400, rel=0.15)

    def test_rejects_rate_above_bound(self):
        with pytest.raises(ValueError):
            thinned_arrivals(lambda tau: 200.0, 100.0, 1.0, seed=11)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            thinned_arrivals(lambda tau: -1.0, 100.0, 1.0, seed=12)

    def test_zero_duration_is_empty(self):
        assert thinned_arrivals(lambda tau: 50.0, 100.0, 0.0) == []

    def test_start_offsets_absolute_times(self):
        times = thinned_arrivals(lambda tau: 50.0, 50.0, 1.0, seed=13, start=5.0)
        assert all(5.0 <= t < 6.0 for t in times)
