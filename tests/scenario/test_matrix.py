"""The CI quick matrix (tier-1) and the determinism gates.

This is the archetype deliverable: the scenario matrix itself runs as
a test.  The quick subset (4 scenarios x 2 stacks) executes in every
CI run and asserts each cell's SLOs; the full fleet x stack product
runs behind ``--full`` in ``benchmarks/run_scenario_bench.py``.
"""

import pytest

from repro.scenario import (
    DEFAULT_STACKS,
    QUICK_STACKS,
    ScenarioMatrix,
    StackConfig,
    run_scenario,
)

#: The CI quick subset: one scenario per execution path plus chaos.
QUICK_SPECS = (
    "steady_poisson",     # orb/open baseline
    "flash_crowd",        # orb/open, WFQ classes under a 4x spike
    "regional_partition", # orb/txn, partition + failover + at-most-once
    "shard_onoff",        # shard tier, heavy-tailed ON/OFF
)


@pytest.fixture(scope="module")
def quick_matrix(spec_by_name):
    specs = [spec_by_name[name] for name in QUICK_SPECS]
    matrix = ScenarioMatrix(specs, QUICK_STACKS)
    matrix.run()
    return matrix


class TestQuickMatrix:
    def test_every_cell_ran(self, quick_matrix):
        # 3 orb specs x 2 stacks + 1 shard spec (stacks collapse) = 7.
        assert len(quick_matrix.cells) == 7

    def test_slos_pass(self, quick_matrix):
        quick_matrix.assert_slos()

    def test_every_cell_served_traffic(self, quick_matrix):
        for cell in quick_matrix.cells:
            assert cell.result.offered > 0, cell.key()
            assert cell.result.served > 0, cell.key()
            assert len(cell.result.exporter) == cell.result.offered, cell.key()

    def test_zero_duplicate_commits_everywhere(self, quick_matrix):
        for cell in quick_matrix.cells:
            assert cell.result.duplicate_commits == 0, cell.key()

    def test_reliability_stack_recovers_the_partition(self, quick_matrix):
        cells = {cell.key(): cell.result for cell in quick_matrix.cells}
        bare = cells["regional_partition/fifo-bare"]
        reliable = cells["regional_partition/wfq-reliable"]
        # The partition window kills bare transactions; the reliability
        # layer retries/fails over, so its goodput must beat bare's.
        assert bare.failures > 0
        assert reliable.goodput() > bare.goodput()
        assert reliable.goodput() >= 0.9
        assert reliable.retries > 0

    def test_wfq_protects_gold_through_the_flash_crowd(self, quick_matrix):
        cells = {cell.key(): cell.result for cell in quick_matrix.cells}
        wfq = cells["flash_crowd/wfq-reliable"]
        summary = wfq.latency_summary()
        assert summary["gold"]["p95_ms"] < summary["bronze"]["p95_ms"]

    def test_payload_is_json_serialisable(self, quick_matrix):
        import json

        payload = quick_matrix.to_payload()
        blob = json.loads(json.dumps(payload))
        assert len(blob["cells"]) == 7
        assert blob["violations"] == {}

    def test_matrix_rejects_empty_inputs(self, spec_by_name):
        with pytest.raises(ValueError, match="at least one spec"):
            ScenarioMatrix([], QUICK_STACKS)
        with pytest.raises(ValueError, match="at least one stack"):
            ScenarioMatrix([spec_by_name["steady_poisson"]], [])


class TestDeterminism:
    """Identical seed -> identical digests, byte-identical flow export."""

    def test_same_seed_same_flow_bytes(self, spec_by_name):
        spec = spec_by_name["steady_poisson"]
        a = run_scenario(spec, QUICK_STACKS[0])
        b = run_scenario(spec, QUICK_STACKS[0])
        assert a.exporter.dumps() == b.exporter.dumps()
        assert a.exporter.digest() == b.exporter.digest()

    def test_same_seed_same_campaign_digest(self, spec_by_name):
        spec = spec_by_name["regional_partition"]
        a = run_scenario(spec, QUICK_STACKS[0])
        b = run_scenario(spec, QUICK_STACKS[0])
        assert a.campaign_digest == b.campaign_digest
        assert a.campaign_digest  # chaos scenarios carry a real digest

    @pytest.mark.parametrize("shards", [1, 4])
    def test_shard_counts_agree_with_serial(self, spec_by_name, shards):
        """The acceptance gate: byte-identical flow export at shard
        counts {1, 4}."""
        spec = spec_by_name["shard_onoff"]
        serial = run_scenario(spec, shards=1)
        sharded = run_scenario(spec, shards=shards)
        assert serial.exporter.dumps() == sharded.exporter.dumps()
        assert serial.exporter.digest() == sharded.exporter.digest()

    def test_chaos_txn_replay_is_byte_identical(self, spec_by_name):
        """The hardest replay: retries, backoff and failover under a
        partition still produce identical telemetry bytes."""
        spec = spec_by_name["regional_partition"]
        stack = DEFAULT_STACKS[1]  # wfq-reliable
        a = run_scenario(spec, stack)
        b = run_scenario(spec, stack)
        assert a.exporter.dumps() == b.exporter.dumps()

    def test_different_seed_changes_flows(self, spec_by_name):
        import dataclasses

        spec = spec_by_name["steady_poisson"]
        reseeded = dataclasses.replace(spec, seed=spec.seed + 1)
        a = run_scenario(spec, QUICK_STACKS[0])
        b = run_scenario(reseeded, QUICK_STACKS[0])
        assert a.exporter.digest() != b.exporter.digest()


class TestStackAxes:
    def test_default_stacks_cover_the_axes(self):
        policies = {s.sched for s in DEFAULT_STACKS}
        assert policies == {"fifo", "wfq"}
        assert {s.reliability for s in DEFAULT_STACKS} == {True, False}
        assert any(s.codec for s in DEFAULT_STACKS)       # compression on
        assert any(s.codec == "" for s in DEFAULT_STACKS)  # stripped
        assert any(s.replicas == 1 for s in DEFAULT_STACKS)  # group size

    def test_replica_axis_caps_at_spec_hosts(self, spec_by_name):
        spec = spec_by_name["steady_poisson"]
        from repro.scenario.spec import SpecError

        with pytest.raises(SpecError, match="replicas=5"):
            StackConfig("too-big", replicas=5).resolve(spec)

    def test_solo_replica_runs(self, spec_by_name):
        spec = spec_by_name["steady_poisson"]
        result = run_scenario(spec, DEFAULT_STACKS[3])  # fifo-bare-solo
        assert result.served > 0
        dsts = {record.dst for record in result.exporter.records}
        assert len(dsts) == 1  # all traffic lands on the one replica
