"""Deployment construction: topology, groups, stacks, fluid, routing."""

import pytest

from repro.scenario import Spec, StackConfig, build_deployment, run_scenario
from repro.scenario.configurator import DEFAULT_STACKS
from repro.scenario.spec import SpecError


def tiny_spec(**overrides):
    data = {
        "name": "tiny",
        "duration": 0.4,
        "topology": {"lan": {"hosts": ["client", "s1", "s2"]}},
        "group": {"hosts": ["s1", "s2"], "service_time": 0.001},
        "traffic": {"kind": "poisson", "rate": 40.0, "sources": ["client"]},
    }
    data.update(overrides)
    return Spec.from_dict(data)


class TestStackResolution:
    def test_spec_as_is(self):
        spec = tiny_spec()
        resolved = StackConfig("plain").resolve(spec)
        assert resolved.policy == "fifo"  # the spec default
        assert not resolved.reliability
        assert resolved.codec is None
        assert resolved.group_hosts == ["s1", "s2"]

    def test_overrides_win(self):
        spec = tiny_spec()
        resolved = StackConfig(
            "wfq", sched="wfq", reliability=True, codec="rle", replicas=1
        ).resolve(spec)
        assert resolved.policy == "wfq"
        assert resolved.reliability
        assert resolved.codec == "rle"
        assert resolved.group_hosts == ["s1"]

    def test_empty_codec_strips_spec_modules(self):
        spec = tiny_spec(modules=[{"kind": "compression", "codec": "rle"}])
        assert StackConfig("strip", codec="").resolve(spec).codec is None
        assert StackConfig("keep").resolve(spec).codec == "rle"

    def test_describe_is_readable(self):
        spec = tiny_spec()
        resolved = DEFAULT_STACKS[1].resolve(spec)
        assert resolved.describe() == "wfq+rel+x2"


class TestDeployment:
    def test_builds_topology_and_group(self):
        deployment = build_deployment(tiny_spec())
        net = deployment.world.network
        assert net.host("client") is not None
        assert len(deployment.member_iors) == 2
        assert deployment.group_ior is not None
        assert set(deployment.schedulers) == {"s1", "s2"}

    def test_cohort_clients_get_hosts_and_links(self):
        spec = tiny_spec(
            topology={
                "hosts": ["gw", "s1"],
                "links": [{"a": "gw", "b": "s1"}],
                "cohorts": [
                    {"name": "edge", "clients": 2, "gateway": "gw",
                     "latency": 0.01, "bandwidth_mbps": 8.0}
                ],
            },
            group={"hosts": ["s1"], "service_time": 0.001},
            traffic={"kind": "poisson", "rate": 20.0, "sources": ["edge*"]},
        )
        deployment = build_deployment(spec)
        net = deployment.world.network
        link = net.link_between("edge00", "gw")
        assert link.latency == pytest.approx(0.01)
        assert link.capacity_bps == pytest.approx(8e6)

    def test_cluster_fabric_builds_ring(self):
        spec = Spec.from_dict(
            {
                "name": "fabric",
                "duration": 0.2,
                "tier": "shard",
                "topology": {
                    "clusters": {"clusters": 3, "hosts_per_cluster": 2}
                },
                "group": {"hosts": ["c*h00"]},
                "traffic": {"kind": "onoff", "sources": ["c*h01"]},
            }
        )
        assert len(spec.host_names()) == 6

    def test_txn_stub_requires_txn_mode(self):
        deployment = build_deployment(tiny_spec())
        with pytest.raises(SpecError, match="txn"):
            deployment.make_txn_stub("client")

    def test_compression_module_assigned_per_source(self):
        spec = tiny_spec(
            traffic={"kind": "poisson", "rate": 40.0, "mode": "txn",
                     "sources": ["client"]},
            modules=[{"kind": "compression", "codec": "rle"}],
        )
        deployment = build_deployment(spec)
        client = deployment.world.orb("client")
        module = client.qos_transport.module("compression")
        assert module is not None

    def test_campaign_installed_on_kernel(self):
        spec = tiny_spec(
            duration=1.0,
            chaos=[
                {"kind": "crash", "at": 0.2, "host": "s2"},
                {"kind": "recover", "at": 0.4, "host": "s2"},
            ],
        )
        deployment = build_deployment(spec)
        deployment.world.kernel.run_until(0.3)
        assert deployment.world.network.host("s2").crashed
        deployment.world.kernel.run_until(0.5)
        assert not deployment.world.network.host("s2").crashed

    def test_fluid_cohort_installed(self):
        spec = tiny_spec(
            fluid={"n_clients": 500, "src": "client", "dst": "s1",
                   "flowlets_per_client": 0.1, "max_flowlets": 100},
        )
        deployment = build_deployment(spec)
        assert len(deployment.cohorts) == 1
        assert deployment.cohorts[0].scheduled > 0


class TestRouting:
    def test_routes_around_a_crashed_member(self):
        spec = tiny_spec(
            duration=1.0,
            chaos=[
                {"kind": "crash", "at": 0.1, "host": "s1"},
                {"kind": "recover", "at": 0.9, "host": "s1"},
            ],
        )
        deployment = build_deployment(spec)
        deployment.world.kernel.run_until(0.2)
        target = deployment.route_least_backlog(None, 0.2)
        assert target.profile.host == "s2"

    def test_full_outage_returns_primary(self):
        spec = tiny_spec(
            duration=1.0,
            chaos=[
                {"kind": "crash", "at": 0.1, "host": "s1"},
                {"kind": "crash", "at": 0.1, "host": "s2"},
                {"kind": "recover", "at": 0.9, "host": "s1"},
                {"kind": "recover", "at": 0.9, "host": "s2"},
            ],
        )
        deployment = build_deployment(spec)
        deployment.world.kernel.run_until(0.2)
        target = deployment.route_least_backlog(None, 0.2)
        assert target is deployment.member_iors[0]


class TestDuplicateCommitAccounting:
    def test_counts_multi_executed_commits(self):
        spec = tiny_spec(
            traffic={"kind": "poisson", "rate": 40.0, "mode": "txn",
                     "sources": ["client"]},
        )
        deployment = build_deployment(spec)
        servant = next(iter(deployment.servants.values()))
        servant.commit("t1")
        assert deployment.duplicate_commits() == 0
        servant.commit("t1")
        assert deployment.duplicate_commits() == 1


class TestTxnPath:
    def test_txn_scenario_counts_commits_once(self, spec_by_name):
        result = run_scenario(spec_by_name["loss_ramp"], DEFAULT_STACKS[1])
        assert result.served > 0
        assert result.duplicate_commits == 0
        assert result.retries > 0  # the loss ramp forces retries
