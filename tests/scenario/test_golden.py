"""Golden-trace regression pins: spec or kernel drift fails loudly.

Two small shipped scenarios are pinned by SHA-256 digest — the chaos
campaign scripts, the seeded arrival schedules, and the end-to-end
flow-export bytes.  These digests are *contracts*: they only change
when the spec files, the seeded generators, the chaos expansion, or
the simulation kernels change behaviour.  If a refactor trips one,
either the refactor leaked a behaviour change (fix it) or the change
is intentional — then re-pin the digest **in the same PR** and say why
in the commit message.
"""

import hashlib

from repro.scenario import QUICK_STACKS, run_scenario
from repro.scenario.runner import arrival_times

GOLDEN_CAMPAIGNS = {
    "regional_partition":
        "e441818740f54ca77c91f949e84df6220f5ed50cd288fafe7afc81016ebb410c",
    "crash_waves":
        "c70e40b429503c838b0ae12340382cddb786ab5f1c5b000100448aca6bbd682c",
}

GOLDEN_ARRIVALS = {
    "steady_poisson":
        "c089fa616ff00cae4659049e69f935cbf8922ea7ff1134dda1db11ef305de2a6",
    "flash_crowd":
        "acf91f737e202efc1aa2f3873cb1d5665be2a85524dcc2bbdb0587656ce774c1",
}

GOLDEN_FLOWS = {
    # orb tier: arrivals + routing + queueing + the whole wire path.
    "steady_poisson":
        "d52e548aed1766c99a702726770db4247c231b639fd568a55900d06865aaefd2",
    # shard tier: the conservative-sync kernel end to end.
    "shard_onoff":
        "3790ac2ea6b6f656d2ad56b76abb85dfa5dc29f8b7648f765fde5860f5380944",
}


def arrivals_digest(spec):
    blob = ",".join(f"{t:.9f}" for t in arrival_times(spec)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class TestGoldenCampaigns:
    def test_campaign_digests_pinned(self, spec_by_name):
        for name, expected in GOLDEN_CAMPAIGNS.items():
            assert spec_by_name[name].campaign().digest() == expected, (
                f"{name}: chaos campaign drifted from its golden digest — "
                "the spec file or the campaign expansion changed behaviour"
            )


class TestGoldenArrivals:
    def test_arrival_schedules_pinned(self, spec_by_name):
        for name, expected in GOLDEN_ARRIVALS.items():
            assert arrivals_digest(spec_by_name[name]) == expected, (
                f"{name}: the seeded arrival schedule drifted — a traffic "
                "generator changed behaviour under an unchanged seed"
            )


class TestGoldenFlows:
    def test_orb_tier_flow_bytes_pinned(self, spec_by_name):
        result = run_scenario(spec_by_name["steady_poisson"], QUICK_STACKS[0])
        assert result.exporter.digest() == GOLDEN_FLOWS["steady_poisson"], (
            "steady_poisson: end-to-end flow export drifted — the ORB "
            "datapath, router or kernel changed behaviour under an "
            "unchanged seed"
        )

    def test_shard_tier_flow_bytes_pinned(self, spec_by_name):
        result = run_scenario(spec_by_name["shard_onoff"], shards=4)
        assert result.exporter.digest() == GOLDEN_FLOWS["shard_onoff"], (
            "shard_onoff: sharded-kernel flow export drifted — the "
            "conservative-sync kernel or the ON/OFF program changed "
            "behaviour under an unchanged seed"
        )
