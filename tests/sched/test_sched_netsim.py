"""Deterministic overload scenarios on the simulated network.

The acceptance scenario of the scheduler subsystem: a server at ~2x
its capacity with mixed gold/bronze traffic.  Under FIFO the gold
class collapses with the bronze flood; under WFQ gold keeps its
latency while bronze absorbs the overload (or is shed once a deadline
contract is attached).  Everything runs on the simulated clock, so
each scenario is exactly reproducible.
"""

import pytest

from repro.orb import World
from repro.orb.exceptions import OVERLOAD
from repro.sched import CLASS_CONTEXT, OVERLOAD_DEADLINE
from repro.workloads.drivers import Arrival, ClosedLoopResult, open_loop_fanout
from tests.sched.conftest import EchoServant

SERVICE_TIME = 0.010  # 100 req/s capacity
CADENCE = 0.005  # 200 req/s offered -> 2x overload
COUNT = 200


def overload_scenario(policy, bronze_deadline=None, max_depth=10_000):
    """Run the canonical 2x overload and return per-class outcomes."""
    world = World()
    world.lan(["client", "server"], latency=0.001, bandwidth_bps=10e6)
    server = world.orb("server")
    scheduler = server.install_scheduler(policy=policy, max_depth=max_depth)
    scheduler.define_class("gold", weight=4.0, priority=1)
    scheduler.define_class("bronze", weight=1.0, priority=6, deadline=bronze_deadline)
    servant = EchoServant()
    servant._default_service_time = SERVICE_TIME
    ior = server.poa.activate_object(servant, object_key="echo")
    client = world.orb("client")

    latencies = {"gold": [], "bronze": []}
    errors = {"gold": [], "bronze": []}

    def observer(arrival, latency, error):
        if latency is not None:
            latencies[arrival.label].append(latency)
        else:
            errors[arrival.label].append(error)

    arrivals = [
        Arrival(
            i * CADENCE,
            ior,
            "echo",
            ("x",),
            contexts={CLASS_CONTEXT: "gold" if i % 2 == 0 else "bronze"},
            label="gold" if i % 2 == 0 else "bronze",
        )
        for i in range(COUNT)
    ]
    open_loop_fanout(client, arrivals, observer=observer)
    return latencies, errors, scheduler


def p95(series):
    return ClosedLoopResult(series, 0, 1.0).p95()


class TestOverloadScenario:
    def test_fifo_collapses_gold_with_bronze(self):
        latencies, _, _ = overload_scenario("fifo")
        assert p95(latencies["gold"]) > 0.5
        assert p95(latencies["gold"]) == pytest.approx(
            p95(latencies["bronze"]), rel=0.1
        )

    def test_wfq_holds_gold_p95_where_fifo_collapses(self):
        fifo_latencies, _, _ = overload_scenario("fifo")
        wfq_latencies, _, _ = overload_scenario("wfq")
        # The acceptance bar: gold p95 under WFQ at most half of FIFO's.
        assert p95(wfq_latencies["gold"]) <= 0.5 * p95(fifo_latencies["gold"])
        # Bronze pays for it: the overload lands on the flooding class.
        assert p95(wfq_latencies["bronze"]) > p95(wfq_latencies["gold"])

    def test_priority_shields_gold_entirely(self):
        latencies, _, _ = overload_scenario("priority")
        assert p95(latencies["gold"]) < 0.05
        assert p95(latencies["bronze"]) > 0.5

    def test_deadline_contract_sheds_bronze_instead_of_serving_late(self):
        latencies, errors, scheduler = overload_scenario(
            "wfq", bronze_deadline=0.05
        )
        shed = errors["bronze"]
        assert len(shed) > 0
        assert all(isinstance(e, OVERLOAD) for e in shed)
        assert {e.minor for e in shed} == {OVERLOAD_DEADLINE}
        # Served bronze requests were served in time, not late.
        stats = scheduler.stats_snapshot()["classes"]["bronze"]
        assert stats["wait_max"] <= 0.05 + 1e-9
        assert stats["shed_deadline"] == len(shed)
        # Gold saw no shedding at all.
        assert errors["gold"] == []

    def test_scenario_is_deterministic(self):
        first = overload_scenario("wfq", bronze_deadline=0.05)
        second = overload_scenario("wfq", bronze_deadline=0.05)
        assert first[0] == second[0]
        assert [e.minor for e in first[1]["bronze"]] == [
            e.minor for e in second[1]["bronze"]
        ]
        assert (
            first[2].stats_snapshot() == second[2].stats_snapshot()
        )
