"""Negotiated contracts driving the scheduler through the binding layer.

A characteristic declared with ``sched_class=...`` ties the negotiation
plane to the enforcement plane: committing an agreement binds the
granted rate/delay into the named scheduling class, the client's stub
is tagged with the class and a per-client binding key, and commits the
scheduler cannot cover are vetoed during negotiation.
"""

import pytest

import repro.qos as qos
from repro.core.binding import QoSProvider, establish_qos
from repro.core.mediator import Mediator
from repro.core.negotiation import NegotiationFailed, Range
from repro.core.qos_skeleton import QoSImplementation
from repro.orb import World
from repro.orb.exceptions import OVERLOAD
from repro.sched import BINDING_CONTEXT, CLASS_CONTEXT

SERVING_QIDL = """
qos Serving {
    attribute double rate;
    attribute double delay;
};
"""


class ServingMediator(Mediator):
    characteristic = "Serving"

    def __init__(self):
        super().__init__()
        self.rate = 10.0
        self.delay = 1.0


class ServingImpl(QoSImplementation):
    characteristic = "Serving"

    def __init__(self):
        self.rate = 10.0
        self.delay = 1.0

    def get_rate(self):
        return self.rate

    def set_rate(self, value):
        self.rate = float(value)

    def get_delay(self):
        return self.delay

    def set_delay(self, value):
        self.delay = float(value)


@pytest.fixture(scope="module", autouse=True)
def registered():
    if "Serving" not in qos.REGISTRY:
        qos.register_characteristic(
            qos.Characteristic(
                name="Serving",
                category="load-control",
                qidl=SERVING_QIDL,
                mediator_class=ServingMediator,
                impl_class=ServingImpl,
            )
        )
    yield


@pytest.fixture(scope="module")
def gen():
    return qos.weave(
        "interface Api provides Serving { long hit(); };",
        "sched_binding_api",
    )


def deploy(gen, capacity_rps=None):
    world = World()
    world.lan(["client", "server"], latency=0.001, bandwidth_bps=10e6)
    server = world.orb("server")
    scheduler = server.install_scheduler(
        policy="wfq", capacity_rps=capacity_rps
    )
    scheduler.define_class("gold", weight=4.0, priority=1)

    class ApiImpl(gen.ApiServerBase):
        def __init__(self):
            super().__init__()
            self.count = 0

        def hit(self):
            self.count += 1
            return self.count

    servant = ApiImpl()
    provider = QoSProvider(world, "server", servant)
    provider.support(
        "Serving",
        ServingImpl(),
        capabilities={
            "rate": Range(1.0, 50.0, preferred=10.0),
            "delay": Range(0.01, 2.0, preferred=0.5),
        },
        sched_class="gold",
    )
    ior = provider.activate("api")
    stub = gen.ApiStub(world.orb("client"), ior)
    return world, scheduler, provider, ior, stub


class TestContractBinding:
    def test_commit_binds_rate_and_deadline_into_class(self, gen):
        _, scheduler, _, _, stub = deploy(gen)
        establish_qos(
            stub,
            "Serving",
            {"rate": Range(1.0, 20.0, preferred=4.0), "delay": Range(0.01, 0.2)},
        )
        gold = scheduler.qos_class("gold")
        assert gold.rate == 4.0
        assert gold.deadline == 0.2
        assert scheduler._characteristic_classes["Serving"] == "gold"

    def test_stub_is_tagged_with_class_and_binding(self, gen):
        _, _, _, ior, stub = deploy(gen)
        binding = establish_qos(stub, "Serving", {"rate": Range(1.0, 20.0)})
        assert stub._contexts[CLASS_CONTEXT] == "gold"
        assert stub._contexts[BINDING_CONTEXT].startswith("client->")
        binding.release()
        assert CLASS_CONTEXT not in stub._contexts
        assert BINDING_CONTEXT not in stub._contexts

    def test_negotiated_rate_is_enforced_per_binding(self, gen):
        _, _, _, _, stub = deploy(gen)
        establish_qos(
            stub,
            "Serving",
            {"rate": Range(1.0, 50.0, preferred=2.0)},
        )
        # burst defaults to 4 tokens: four immediate calls pass, the
        # fifth exceeds the negotiated 2/s contract.
        for _ in range(4):
            stub.hit()
        with pytest.raises(OVERLOAD):
            stub.hit()

    def test_negotiation_endpoint_is_control_traffic(self, gen):
        _, scheduler, provider, _, _ = deploy(gen)
        key = provider.negotiation_ior.profile.object_key
        assert key in scheduler._control_keys

    def test_renegotiation_retunes_the_live_contract(self, gen):
        _, scheduler, _, _, stub = deploy(gen)
        binding = establish_qos(
            stub, "Serving", {"rate": Range(1.0, 50.0, preferred=5.0)}
        )
        assert scheduler.qos_class("gold").rate == 5.0
        binding.renegotiate({"rate": Range(1.0, 50.0, preferred=30.0)})
        assert scheduler.qos_class("gold").rate == 30.0


class TestCapacityVeto:
    def test_commit_beyond_capacity_fails_negotiation(self, gen):
        _, _, _, _, stub = deploy(gen, capacity_rps=10.0)
        with pytest.raises(NegotiationFailed):
            establish_qos(
                stub,
                "Serving",
                {"rate": Range(20.0, 50.0, preferred=20.0)},
            )

    def test_commit_within_capacity_succeeds(self, gen):
        _, scheduler, _, _, stub = deploy(gen, capacity_rps=10.0)
        establish_qos(
            stub, "Serving", {"rate": Range(1.0, 50.0, preferred=8.0)}
        )
        assert scheduler.qos_class("gold").rate == 8.0

    def test_renegotiation_respects_capacity_too(self, gen):
        _, _, _, _, stub = deploy(gen, capacity_rps=10.0)
        binding = establish_qos(
            stub, "Serving", {"rate": Range(1.0, 50.0, preferred=8.0)}
        )
        with pytest.raises(NegotiationFailed):
            binding.renegotiate({"rate": Range(20.0, 50.0, preferred=20.0)})
