"""Policy-level properties, driven through a real scheduler instance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orb import World
from repro.orb.exceptions import OVERLOAD
from repro.orb.ior import IIOPProfile, IOR
from repro.orb.request import Request
from repro.sched.scheduler import CLASS_CONTEXT, RequestScheduler


def make_scheduler(policy, **config):
    world = World()
    world.lan(["server"], latency=0.001, bandwidth_bps=10e6)
    orb = world.orb("server")
    return orb.install_scheduler(policy=policy, **config)


def class_request(name, key="obj-1"):
    ior = IOR("IDL:test/Echo:1.0", IIOPProfile("server", 683, key))
    return Request(ior, "echo", ("x",), service_contexts={CLASS_CONTEXT: name})


def overload_run(scheduler, service=0.01, count=200, cadence=0.005):
    """Admit interleaved gold/bronze arrivals at 2x a 1/service server."""
    waits = {"gold": [], "bronze": []}
    for index in range(count):
        name = "gold" if index % 2 == 0 else "bronze"
        grant = scheduler.admit(class_request(name), index * cadence, service)
        waits[name].append(grant.wait)
    return waits


class TestWFQFairness:
    def test_heavier_class_waits_less_under_overload(self):
        scheduler = make_scheduler("wfq", max_depth=10_000)
        scheduler.define_class("gold", weight=4.0)
        scheduler.define_class("bronze", weight=1.0)
        waits = overload_run(scheduler)
        assert max(waits["gold"]) < max(waits["bronze"])

    @settings(deadline=None, max_examples=25)
    @given(
        heavy=st.floats(min_value=2.0, max_value=16.0, allow_nan=False),
        light=st.floats(min_value=0.25, max_value=1.0, allow_nan=False),
    )
    def test_wait_ordering_follows_weights(self, heavy, light):
        """Whatever the weights, the heavier class never ends up with a
        larger backlog-induced wait than the lighter one."""
        scheduler = make_scheduler("wfq", max_depth=10_000)
        scheduler.define_class("gold", weight=heavy)
        scheduler.define_class("bronze", weight=light)
        waits = overload_run(scheduler, count=120)
        assert waits["gold"][-1] <= waits["bronze"][-1] + 1e-9

    def test_equal_weights_split_evenly(self):
        scheduler = make_scheduler("wfq", max_depth=10_000)
        scheduler.define_class("gold", weight=1.0)
        scheduler.define_class("bronze", weight=1.0)
        waits = overload_run(scheduler, count=100)
        assert waits["gold"][-1] == pytest.approx(waits["bronze"][-1], rel=0.2)

    def test_isolated_class_does_not_queue(self):
        """A class inside its fair share never queues behind a flooder.

        Gold offers half its 4/5 share; bronze floods.  Under FIFO gold
        would collapse with bronze — under WFQ its wait stays bounded
        by a few service times.
        """
        scheduler = make_scheduler("wfq", max_depth=10_000)
        scheduler.define_class("gold", weight=4.0)
        scheduler.define_class("bronze", weight=1.0)
        service = 0.01
        now = 0.0
        gold_waits = []
        for index in range(300):
            # bronze floods at 2x capacity, gold ticks at 0.4x.
            scheduler.admit(class_request("bronze"), now, service)
            if index % 5 == 0:
                grant = scheduler.admit(class_request("gold"), now, service)
                gold_waits.append(grant.wait)
            now += 0.005
        assert max(gold_waits) < 0.1  # bronze backlog is seconds deep


class TestStrictPriority:
    def test_urgent_class_preempts_backlog_visibility(self):
        scheduler = make_scheduler("priority", max_depth=10_000)
        scheduler.define_class("gold", priority=1)
        scheduler.define_class("bronze", priority=6)
        waits = overload_run(scheduler)
        assert max(waits["gold"]) < 0.05
        assert max(waits["bronze"]) > 0.5

    def test_capacity_is_conserved_across_priorities(self):
        """Work admitted at high priority consumes low-priority capacity:
        the two classes cannot both run at full server rate."""
        scheduler = make_scheduler("priority", max_depth=10_000)
        scheduler.define_class("gold", priority=1)
        scheduler.define_class("bronze", priority=6)
        overload_run(scheduler, count=200, cadence=0.005)
        end = 200 * 0.005
        # Each stream alone is exactly at capacity; together the bronze
        # ledger must hold roughly one stream's worth of unserved work.
        assert scheduler.ledger("bronze").remaining(end) > 0.4

    def test_equal_priority_classes_share_fifo(self):
        scheduler = make_scheduler("priority", max_depth=10_000)
        scheduler.define_class("gold", priority=3)
        scheduler.define_class("bronze", priority=3)
        waits = overload_run(scheduler, count=100)
        assert waits["gold"][-1] == pytest.approx(waits["bronze"][-1], rel=0.2)


class TestFIFO:
    def test_classes_are_indistinguishable(self):
        scheduler = make_scheduler("fifo", max_depth=10_000)
        scheduler.define_class("gold", weight=4.0, priority=1)
        scheduler.define_class("bronze", weight=1.0, priority=6)
        waits = overload_run(scheduler, count=100)
        assert waits["gold"][-1] == pytest.approx(waits["bronze"][-1], abs=0.02)


class TestDeadlineShedding:
    def test_requests_are_shed_not_served_late(self):
        scheduler = make_scheduler("wfq", max_depth=10_000)
        scheduler.define_class("gold", weight=1.0, deadline=0.05)
        served, shed = 0, 0
        for index in range(100):
            try:
                scheduler.admit(class_request("gold"), index * 0.005, 0.01)
                served += 1
            except OVERLOAD as error:
                shed += 1
                assert error.retry_after is not None
        assert shed > 0
        # Every served request's wait respected the deadline bound.
        stats = scheduler.stats_snapshot()["classes"]["gold"]
        assert stats["wait_max"] <= 0.05 + 1e-9
        assert stats["shed_deadline"] == shed
