"""Pipelined bursts against the server's admission control.

A flushed AMI window is N back-to-back requests: the server's
:class:`~repro.sched.scheduler.RequestScheduler` must treat them
exactly like N synchronous arrivals — token-bucket admission applies
per message, over-rate requests are rejected per-request with
OVERLOAD(minor=OVERLOAD_RATE) carrying a ``maqs.sched.retry_after``
hint, and the client-side :class:`PacingMediator` uses those hints to
pace subsequent flushes.
"""

import pytest

from repro.orb import World
from repro.orb.exceptions import OVERLOAD
from repro.orb.request import reset_request_ids
from repro.sched import CLASS_CONTEXT, OVERLOAD_RATE
from repro.sched.backpressure import PacingMediator
from tests.sched.conftest import EchoServant, EchoStub

RATE = 50.0  # tokens per second
BURST = 2.0  # bucket depth: only 2 admitted from a back-to-back window


@pytest.fixture
def deployment():
    reset_request_ids()
    world = World()
    world.lan(["client", "server"], latency=0.001, bandwidth_bps=10e6)
    server = world.orb("server")
    scheduler = server.install_scheduler(policy="wfq")
    scheduler.define_class("limited", weight=1.0, priority=4, rate=RATE, burst=BURST)
    servant = EchoServant()
    servant._default_service_time = 0.001
    ior = server.poa.activate_object(servant, object_key="echo")
    stub = EchoStub(world.orb("client"), ior)
    stub._contexts[CLASS_CONTEXT] = "limited"
    return world, world.orb("client"), stub, scheduler


class TestPipelinedAdmission:
    def test_over_rate_window_rejected_per_request(self, deployment):
        _, client, stub, scheduler = deployment
        futures = [stub.send_deferred("echo", f"x{i}") for i in range(8)]
        client.ami.flush()

        admitted = [f for f in futures if f.error is None]
        rejected = [f for f in futures if f.error is not None]
        # The bucket held BURST tokens; a back-to-back window refills
        # essentially nothing, so exactly the burst is admitted.
        assert len(admitted) == int(BURST)
        assert admitted == futures[: int(BURST)]
        assert [f.result() for f in admitted] == ["X0", "X1"]

        for future in rejected:
            # A scheduler rejection is an *encoded reply*, not a
            # transport fault: the request crossed the wire and came
            # back with the same OVERLOAD the sync path would raise.
            assert not future.transport_error
            error = future.exception()
            assert isinstance(error, OVERLOAD)
            assert error.minor == OVERLOAD_RATE
            assert error.retry_after > 0.0

        stats = scheduler.stats_snapshot()["classes"]["limited"]
        assert stats["admitted"] == len(admitted)
        assert stats["rejected_rate"] == len(rejected)

    def test_rejections_feed_client_backpressure(self, deployment):
        _, client, stub, _ = deployment
        assert client.backpressure.hints_observed == 0
        futures = [stub.send_deferred("echo", f"x{i}") for i in range(6)]
        client.ami.flush()
        rejected = sum(1 for f in futures if f.error is not None)
        assert rejected > 0
        for future in futures:
            future.exception()
        assert client.backpressure.hints_observed >= rejected
        host_delay = client.backpressure.suggested_delay(
            "server", client.clock.now
        )
        assert host_delay > 0.0

    def test_pacing_mediator_paces_the_next_flush(self, deployment):
        world, client, stub, _ = deployment
        pacer = PacingMediator().install(stub)

        first = [stub.send_deferred("echo", f"a{i}") for i in range(6)]
        client.ami.flush()
        for future in first:
            future.exception()  # advance to every reply; harvest hints
        assert pacer.delays_taken == 0  # no hints existed when these left

        # The mediator now waits the advertised retry-after out before
        # the next deferred call joins its window...
        before = world.clock.now
        follow_up = stub.send_deferred("echo", "later")
        assert pacer.delays_taken == 1
        assert world.clock.now > before
        # ...so the paced request finds a refilled bucket and succeeds.
        assert follow_up.result() == "LATER"
