"""Shared fixtures: a scheduled echo deployment on a tiny LAN."""

import pytest

from repro.orb import World
from repro.orb.servant import Servant
from repro.orb.stub import Stub


class EchoServant(Servant):
    _repo_id = "IDL:test/Echo:1.0"
    _default_service_time = 0.010  # 100 req/s of server capacity

    def __init__(self):
        self.calls = 0

    def echo(self, text):
        self.calls += 1
        return text.upper()


class EchoStub(Stub):
    def echo(self, text):
        return self._call("echo", text)


@pytest.fixture
def world():
    w = World()
    w.lan(["client", "server"], latency=0.001, bandwidth_bps=10e6)
    return w


@pytest.fixture
def server_orb(world):
    return world.orb("server")


@pytest.fixture
def client_orb(world):
    return world.orb("client")


@pytest.fixture
def echo_servant():
    return EchoServant()


@pytest.fixture
def echo_ior(server_orb, echo_servant):
    return server_orb.poa.activate_object(echo_servant, object_key="echo")


@pytest.fixture
def echo_stub(client_orb, echo_ior):
    return EchoStub(client_orb, echo_ior)
