"""Token-bucket conformance: unit checks plus property tests."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.sched.token_bucket import TokenBucket


class TestBasics:
    def test_burst_then_starve(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_consume(0.0)
        assert bucket.try_consume(0.0)
        assert not bucket.try_consume(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.try_consume(0.0)
        assert not bucket.try_consume(0.05)
        assert bucket.try_consume(0.1)

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0)
        assert bucket.available(1000.0) == 3.0

    def test_time_until_matches_refill(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.try_consume(0.0)
        wait = bucket.time_until(0.0)
        assert math.isclose(wait, 0.5)
        assert bucket.try_consume(0.0 + wait)

    def test_time_until_zero_when_token_ready(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.time_until(0.0) == 0.0

    def test_reconfigure_applies_new_rate(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_consume(0.0)
        bucket.reconfigure(rate=100.0, burst=1.0)
        assert bucket.try_consume(0.01)


class TestConformanceProperties:
    @given(
        rate=st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
        burst=st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=80,
        ),
    )
    def test_admissions_never_exceed_contract(self, rate, burst, gaps):
        """Over any run, admits <= burst + rate * elapsed (the defining
        property of a (rate, burst) regulator)."""
        bucket = TokenBucket(rate=rate, burst=burst)
        now = 0.0
        admitted = 0
        for gap in gaps:
            now += gap
            if bucket.try_consume(now):
                admitted += 1
        assert admitted <= burst + rate * now + 1e-6

    @given(
        rate=st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
        burst=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            max_size=40,
        ),
    )
    def test_tokens_stay_within_bounds(self, rate, burst, gaps):
        bucket = TokenBucket(rate=rate, burst=burst)
        now = 0.0
        for gap in gaps:
            now += gap
            bucket.try_consume(now)
            level = bucket.available(now)
            assert -1e-9 <= level <= burst + 1e-9

    @given(
        rate=st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
        start=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    def test_time_until_is_sufficient(self, rate, start):
        """Waiting exactly the hinted time always yields a token."""
        bucket = TokenBucket(rate=rate, burst=1.0)
        assert bucket.try_consume(start)
        hint = bucket.time_until(start)
        assert hint >= 0.0
        assert bucket.try_consume(start + hint + 1e-9)
