"""The sorted-inflight retry hint must match the old heap-based oracle."""

import heapq
import random

import pytest

from repro.sched.scheduler import RequestScheduler


@pytest.fixture
def scheduler(server_orb):
    return RequestScheduler(server_orb, max_depth=2048)


def oracle_retry_hint(inflight, now, below):
    """The pre-rewrite computation, verbatim (heap layout is irrelevant:
    ``nsmallest`` only needs the multiset of completion times)."""
    if len(inflight) < below or not inflight:
        return 0.0
    index = len(inflight) - below
    kth = heapq.nsmallest(index + 1, inflight)[-1]
    return max(0.0, kth - now)


class TestRetryHint:
    def test_matches_oracle_on_random_completions(self, scheduler):
        rng = random.Random(7)
        completions = sorted(rng.uniform(0.0, 10.0) for _ in range(1500))
        scheduler._inflight[:] = completions
        for below in (1, 2, 100, 750, 1499, 1500, 1501, 4000):
            assert scheduler._retry_hint(3.0, below) == pytest.approx(
                oracle_retry_hint(list(completions), 3.0, below)
            )

    def test_empty_and_shallow_queues_hint_zero(self, scheduler):
        assert scheduler._retry_hint(0.0, 1) == 0.0
        scheduler._inflight[:] = [1.0, 2.0]
        assert scheduler._retry_hint(0.0, 3) == 0.0

    def test_hint_is_time_until_kth_completion(self, scheduler):
        scheduler._inflight[:] = [1.0, 2.0, 3.0, 4.0]
        # To fall below 4 in flight, one completion must pass: the
        # first (earliest) completion.
        assert scheduler._retry_hint(0.5, 4) == pytest.approx(0.5)
        # To fall below 2, three must pass: the third completion.
        assert scheduler._retry_hint(0.5, 2) == pytest.approx(2.5)

    def test_drain_keeps_inflight_sorted(self, scheduler):
        rng = random.Random(11)
        times = [rng.uniform(0.0, 5.0) for _ in range(500)]
        for t in sorted(times):
            scheduler._inflight.append(t)
        scheduler._drain(2.5)
        inflight = scheduler._inflight
        assert inflight == sorted(inflight)
        assert all(t > 2.5 for t in inflight)
        assert len(inflight) == sum(1 for t in times if t > 2.5)
