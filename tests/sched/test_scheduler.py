"""Scheduler integration through the real wire path."""

import pytest

from repro.orb.dii import TransportHandle
from repro.orb.exceptions import NO_RESOURCES, OVERLOAD, TRANSIENT
from repro.sched import (
    CLASS_CONTEXT,
    OVERLOAD_QUEUE,
    OVERLOAD_RATE,
    PacingMediator,
)
from repro.workloads.drivers import Arrival, open_loop_fanout


class TestAdmissionOverWire:
    def test_unscheduled_orb_serves_as_before(self, echo_stub, server_orb):
        assert server_orb.scheduler is None
        assert echo_stub.echo("hi") == "HI"

    def test_scheduled_happy_path(self, echo_stub, server_orb):
        server_orb.install_scheduler(policy="wfq")
        assert echo_stub.echo("hi") == "HI"
        stats = server_orb.scheduler.stats_snapshot()
        assert stats["classes"]["best-effort"]["admitted"] == 1

    def test_rate_limit_raises_overload_client_side(self, echo_stub, server_orb):
        scheduler = server_orb.install_scheduler(policy="wfq")
        scheduler.define_class("metered", rate=0.5, burst=1.0)
        echo_stub._contexts[CLASS_CONTEXT] = "metered"
        assert echo_stub.echo("one") == "ONE"
        with pytest.raises(OVERLOAD) as excinfo:
            echo_stub.echo("two")
        error = excinfo.value
        assert isinstance(error, TRANSIENT)  # CORBA mapping: overload is transient
        assert error.minor == OVERLOAD_RATE
        # The retry-after hint crossed the wire in the reply service
        # contexts and was re-attached to the decoded exception.
        assert error.retry_after is not None and error.retry_after > 0.0

    def test_rejection_feeds_client_backpressure(self, echo_stub, client_orb, server_orb):
        scheduler = server_orb.install_scheduler(policy="wfq")
        scheduler.define_class("metered", rate=0.5, burst=1.0)
        echo_stub._contexts[CLASS_CONTEXT] = "metered"
        echo_stub.echo("one")
        with pytest.raises(OVERLOAD):
            echo_stub.echo("two")
        delay = client_orb.backpressure.suggested_delay(
            "server", client_orb.clock.now
        )
        assert delay > 0.0
        assert client_orb.backpressure.hints_observed >= 1

    def test_pacing_mediator_waits_out_the_hint(self, echo_stub, server_orb):
        scheduler = server_orb.install_scheduler(policy="wfq")
        scheduler.define_class("metered", rate=2.0, burst=1.0)
        echo_stub._contexts[CLASS_CONTEXT] = "metered"
        pacer = PacingMediator().install(echo_stub)
        assert echo_stub.echo("one") == "ONE"
        with pytest.raises(OVERLOAD):
            echo_stub.echo("two")
        # The pacer honours the hint: it advances simulated time far
        # enough for the bucket to refill, so the retry succeeds.
        assert echo_stub.echo("three") == "THREE"
        assert pacer.delays_taken == 1
        assert pacer.delay_total > 0.0

    def test_queue_limit_sheds_under_fanout(self, client_orb, server_orb, echo_ior):
        scheduler = server_orb.install_scheduler(policy="fifo", max_depth=5)
        rejected = []

        def observer(arrival, latency, error):
            if error is not None:
                rejected.append(error)

        arrivals = [Arrival(i * 0.0001, echo_ior, "echo", ("x",)) for i in range(40)]
        result = open_loop_fanout(client_orb, arrivals, observer=observer)
        assert result.failures == len(rejected) > 0
        assert all(isinstance(e, OVERLOAD) for e in rejected)
        assert {e.minor for e in rejected} == {OVERLOAD_QUEUE}
        stats = scheduler.stats_snapshot()
        assert stats["classes"]["best-effort"]["rejected_queue"] == len(rejected)
        assert stats["depth_peak"] <= 5

    def test_overloaded_replies_carry_backpressure_hint(
        self, client_orb, server_orb, echo_ior
    ):
        server_orb.install_scheduler(policy="fifo", max_depth=8)
        arrivals = [Arrival(i * 0.0001, echo_ior, "echo", ("x",)) for i in range(8)]
        open_loop_fanout(client_orb, arrivals)
        # Admitted replies past the watermark advertised retry-after.
        assert client_orb.backpressure.hints_observed > 0

    def test_control_traffic_is_never_shed(
        self, client_orb, server_orb, echo_ior, echo_servant
    ):
        scheduler = server_orb.install_scheduler(policy="fifo", max_depth=2)
        control_ior = server_orb.poa.activate_object(
            type(echo_servant)(), object_key="ctl"
        )
        scheduler.mark_control("ctl")
        # Saturate the queue with best-effort traffic; control arrivals
        # inside the same burst must still be admitted.
        outcomes = {"echo": [], "ctl": []}

        def observer(arrival, latency, error):
            outcomes[arrival.label].append(error)

        arrivals = [
            Arrival(i * 0.0001, echo_ior, "echo", ("x",), label="echo")
            for i in range(10)
        ] + [
            Arrival(0.0005 + i * 0.0001, control_ior, "echo", ("c",), label="ctl")
            for i in range(4)
        ]
        open_loop_fanout(client_orb, arrivals, observer=observer)
        assert any(isinstance(e, OVERLOAD) for e in outcomes["echo"])
        assert all(e is None for e in outcomes["ctl"])


class TestControlPlaneCommands:
    def test_policy_swap_at_runtime(self, client_orb, server_orb, echo_ior, echo_stub):
        server_orb.install_scheduler(policy="wfq")
        handle = TransportHandle(client_orb, echo_ior)
        assert handle.call("sched_policy") == "wfq"
        assert handle.call("set_sched_policy", "priority") == "priority"
        assert server_orb.scheduler.policy_name == "priority"
        assert echo_stub.echo("still") == "STILL"

    def test_unknown_policy_rejected(self, client_orb, server_orb, echo_ior):
        server_orb.install_scheduler(policy="wfq")
        handle = TransportHandle(client_orb, echo_ior)
        with pytest.raises(NO_RESOURCES):
            handle.call("set_sched_policy", "lottery")

    def test_commands_without_scheduler_raise(self, client_orb, echo_ior):
        handle = TransportHandle(client_orb, echo_ior)
        with pytest.raises(NO_RESOURCES):
            handle.call("sched_policy")

    def test_stats_and_classes_snapshot(self, client_orb, server_orb, echo_ior, echo_stub):
        scheduler = server_orb.install_scheduler(policy="wfq")
        scheduler.define_class("gold", weight=4.0, priority=1)
        echo_stub.echo("x")
        handle = TransportHandle(client_orb, echo_ior)
        stats = handle.call("sched_stats")
        assert stats["policy"] == "wfq"
        assert stats["classes"]["best-effort"]["admitted"] >= 1
        classes = handle.call("sched_classes")
        assert classes["gold"]["weight"] == 4.0
        assert classes["control"]["control"] is True
