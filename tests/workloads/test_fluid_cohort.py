"""Tests for the FluidCohort background-population driver."""

import pytest

from repro.netsim import EventKernel, Network
from repro.netsim.fluid import FluidTier
from repro.orb import World
from repro.orb.servant import Servant
from repro.workloads import Arrival, FluidCohort, open_loop_fanout


def _fluid_world():
    kernel = EventKernel()
    network = Network(kernel.clock)
    network.add_host("bg")
    network.add_host("server")
    link = network.connect("bg", "server", latency=0.002, bandwidth_bps=50e6)
    return kernel, network, link, FluidTier(network, kernel)


class TestAggregationPlan:
    def test_small_population_is_unbatched(self):
        _, _, _, tier = _fluid_world()
        cohort = FluidCohort(tier, "bg", "server", n_clients=100,
                             flowlets_per_client=0.1, max_flowlets=10_000)
        plan = cohort.plan(10.0)
        assert plan["batch"] == 1.0
        assert plan["offered_flowlets"] == pytest.approx(100.0)

    def test_million_clients_capped_by_max_flowlets(self):
        _, _, _, tier = _fluid_world()
        cohort = FluidCohort(tier, "bg", "server", n_clients=1_000_000,
                             flowlets_per_client=0.05, max_flowlets=50_000)
        plan = cohort.plan(30.0)
        assert plan["offered_flowlets"] == pytest.approx(1_500_000.0)
        assert plan["scheduled_arrivals"] <= 50_000.0

    def test_validation(self):
        _, _, _, tier = _fluid_world()
        with pytest.raises(ValueError):
            FluidCohort(tier, "bg", "server", n_clients=0)
        with pytest.raises(ValueError):
            FluidCohort(tier, "bg", "server", n_clients=10,
                        flowlets_per_client=0.0)


class TestCohortRuns:
    def test_install_and_drain(self):
        kernel, _, link, tier = _fluid_world()
        cohort = FluidCohort(tier, "bg", "server", n_clients=5_000,
                             flowlets_per_client=0.1, seed=3,
                             max_flowlets=2_000)
        scheduled = cohort.install(duration=5.0)
        assert 0 < scheduled <= 2_000 + 10
        kernel.run()
        stats = cohort.stats()
        assert stats["flowlets_completed"] == stats["flowlets_started"]
        assert stats["bytes_completed"] > 0
        assert link.fluid_flows == 0

    def test_identical_seed_identical_trace(self):
        def run():
            kernel, _, _, tier = _fluid_world()
            cohort = FluidCohort(tier, "bg", "server", n_clients=10_000,
                                 flowlets_per_client=0.05, seed=17,
                                 max_flowlets=1_000)
            cohort.install(duration=5.0)
            kernel.run()
            return tier.trace_digest()

        assert run() == run()

    def test_different_seed_different_trace(self):
        def run(seed):
            kernel, _, _, tier = _fluid_world()
            cohort = FluidCohort(tier, "bg", "server", n_clients=10_000,
                                 flowlets_per_client=0.05, seed=seed,
                                 max_flowlets=1_000)
            cohort.install(duration=5.0)
            kernel.run()
            return tier.trace_digest()

        assert run(1) != run(2)

    def test_aggregated_flowlets_scale_bytes_by_batch(self):
        kernel, _, _, tier = _fluid_world()
        cohort = FluidCohort(tier, "bg", "server", n_clients=100_000,
                             flowlets_per_client=0.1, seed=5,
                             max_flowlets=500)
        cohort.install(duration=2.0)
        kernel.run()
        assert cohort.batch > 1
        # Aggregation preserves offered bytes: per-arrival sizes carry
        # the batch factor, so mean flowlet size >> one client's burst.
        mean_size = (tier.bytes_completed / tier.flowlets_completed)
        assert mean_size > cohort.batch * 8_192 / 2


class _Echo(Servant):
    _repo_id = "IDL:fluidtest/Echo:1.0"
    _default_service_time = 0.0005

    def echo(self, text):
        return text


class TestHybridFanout:
    """Foreground ORB probes over a fluid-loaded bottleneck."""

    def _probe(self, n_clients):
        world = World()
        world.lan(["client", "server"], latency=0.002, bandwidth_bps=20e6)
        ior = world.orb("server").poa.activate_object(_Echo(), "echo")
        tier = FluidTier(world.network, world.kernel)
        if n_clients:
            # The cohort crosses the same client->server bottleneck the
            # probes use, so its fluid demand is what they contend with.
            cohort = FluidCohort(tier, "client", "server",
                                 n_clients=n_clients,
                                 flowlets_per_client=0.2, seed=7,
                                 max_flowlets=2_000)
            cohort.install(duration=2.0)
        arrivals = [
            Arrival(0.05 * i, ior, "echo", ("x" * 2_000,), label="probe")
            for i in range(30)
        ]
        result = open_loop_fanout(world.orb("client"), arrivals,
                                  kernel=world.kernel)
        world.kernel.run()
        return result

    def test_background_load_slows_foreground_probes(self):
        quiet = self._probe(0)
        busy = self._probe(50_000)
        assert busy.count == quiet.count == 30
        assert busy.mean() > quiet.mean()

    def test_hybrid_run_is_deterministic(self):
        one = self._probe(20_000)
        two = self._probe(20_000)
        assert one.latencies == two.latencies
