"""Edge cases for workloads/soak.py and workloads/drivers.py.

The thin-coverage corners named in the scenario-fleet issue: empty and
zero-duration runs, degenerate cohorts, the soak program driven by a
ShardedKernel, and the boundary behaviour of the measurement drivers.
"""

import math

import pytest

from repro.netsim import EventKernel, Network
from repro.netsim.fluid import FluidTier
from repro.netsim.parallel.kernel import ShardedKernel
from repro.orb import World
from repro.workloads import (
    Arrival,
    FluidCohort,
    open_loop_fanout,
    run_closed_loop,
)
from repro.workloads.apps import make_compute_servant_class
from repro.workloads.drivers import ClosedLoopResult, OpenLoopDriver
from repro.workloads.soak import (
    SerialScenarioDriver,
    schedule_soak,
    soak_config,
    soak_topology,
    zero_lookahead_topology,
)


class TestClosedLoopResultEdges:
    def test_empty_series_statistics(self):
        result = ClosedLoopResult([], 0, 0.0)
        assert result.count == 0
        assert math.isnan(result.mean())
        assert math.isnan(result.p50())
        assert math.isnan(result.max())
        assert result.throughput() == 0.0

    def test_zero_elapsed_throughput(self):
        result = ClosedLoopResult([0.1], 0, 0.0)
        assert result.throughput() == 0.0

    def test_single_sample_percentiles_agree(self):
        result = ClosedLoopResult([0.25], 0, 1.0)
        assert result.p50() == result.p95() == result.p99() == 0.25

    def test_summary_of_empty_run_is_finite_where_it_should_be(self):
        summary = ClosedLoopResult([], 2, 1.0).summary()
        assert summary["count"] == 0.0
        assert summary["failures"] == 2.0
        assert summary["throughput"] == 0.0


class TestClosedLoopDriverEdges:
    def test_zero_calls(self):
        kernel = EventKernel()
        result = run_closed_loop(kernel.clock, lambda i: None, 0)
        assert result.count == 0
        assert result.elapsed == 0.0

    def test_all_calls_swallowed(self):
        kernel = EventKernel()

        def boom(index):
            raise RuntimeError("down")

        result = run_closed_loop(kernel.clock, boom, 3, swallow=(RuntimeError,))
        assert result.count == 0
        assert result.failures == 3

    def test_unswallowed_exception_propagates(self):
        kernel = EventKernel()

        def boom(index):
            raise RuntimeError("down")

        with pytest.raises(RuntimeError):
            run_closed_loop(kernel.clock, boom, 1)


class TestOpenLoopDriverEdges:
    def test_empty_schedule_runs_clean(self):
        kernel = EventKernel()
        driver = OpenLoopDriver(kernel, lambda i: None).schedule([])
        result = driver.run()
        assert result.count == 0
        assert result.failures == 0

    def test_indices_arrive_in_order(self):
        kernel = EventKernel()
        seen = []
        driver = OpenLoopDriver(kernel, seen.append)
        driver.schedule([0.3, 0.1, 0.2])
        driver.run()
        assert seen == [0, 1, 2]


class TestOpenLoopFanoutEdges:
    @pytest.fixture
    def world(self):
        world = World()
        world.add_host("client")
        world.add_host("server")
        world.connect("client", "server")
        ior = world.orb("server").poa.activate_object(
            make_compute_servant_class(unit_cost=0.001)()
        )
        return world, ior

    def test_empty_arrivals(self, world):
        w, _ = world
        result = open_loop_fanout(w.orb("client"), [])
        assert result.count == 0
        assert result.elapsed == 0.0

    def test_zero_duration_burst_all_at_once(self, world):
        """Every arrival at t=0: pure queueing, still all served."""
        w, ior = world
        arrivals = [Arrival(0.0, ior, "busy_work", (1,)) for _ in range(5)]
        result = open_loop_fanout(w.orb("client"), arrivals)
        assert result.count == 5
        # FIFO queueing: later requests wait behind earlier ones.
        assert result.max() > result.percentile(0.01)

    def test_observer_sees_failures_with_none_latency(self, world):
        w, ior = world
        w.faults.crash("server")
        seen = []
        result = open_loop_fanout(
            w.orb("client"),
            [Arrival(0.0, ior, "busy_work", (1,))],
            observer=lambda a, latency, error: seen.append((latency, error)),
        )
        assert result.failures == 1
        assert seen[0][0] is None
        assert seen[0][1] is not None


class TestFluidCohortEdges:
    def _tier(self):
        kernel = EventKernel()
        network = Network(kernel.clock)
        network.add_host("bg")
        network.add_host("server")
        network.connect("bg", "server", latency=0.001, bandwidth_bps=50e6)
        return kernel, FluidTier(network, kernel)

    def test_empty_cohort_rejected(self):
        _, tier = self._tier()
        with pytest.raises(ValueError, match="n_clients"):
            FluidCohort(tier, "bg", "server", n_clients=0)

    def test_zero_duration_installs_nothing(self):
        kernel, tier = self._tier()
        cohort = FluidCohort(tier, "bg", "server", n_clients=100)
        assert cohort.install(duration=0.0) == 0
        kernel.run()
        assert cohort.stats()["flowlets_started"] == 0.0

    def test_explicit_arrivals_drive_the_cohort(self):
        kernel, tier = self._tier()
        cohort = FluidCohort(tier, "bg", "server", n_clients=100)
        assert cohort.install(duration=1.0, arrivals=[0.1, 0.2, 0.9]) == 3
        kernel.run()
        assert cohort.stats()["flowlets_started"] == 3.0

    def test_explicit_arrivals_outside_window_rejected(self):
        _, tier = self._tier()
        cohort = FluidCohort(tier, "bg", "server", n_clients=100)
        with pytest.raises(ValueError, match=r"\[0, duration\]"):
            cohort.install(duration=1.0, arrivals=[0.5, 1.5])
        with pytest.raises(ValueError, match=r"\[0, duration\]"):
            cohort.install(duration=1.0, arrivals=[-0.1])

    def test_empty_explicit_arrivals(self):
        kernel, tier = self._tier()
        cohort = FluidCohort(tier, "bg", "server", n_clients=100)
        assert cohort.install(duration=1.0, arrivals=[]) == 0
        kernel.run()
        assert cohort.stats()["flowlets_started"] == 0.0


class TestSoakEdges:
    def test_zero_duration_soak_boots_but_never_ticks(self):
        """duration=0: boots fire at t=0, the first tick lands after
        ``until`` and re-arms nothing — the run terminates."""
        topo = soak_topology(clusters=2, hosts_per_cluster=2)
        driver = SerialScenarioDriver(EventKernel(), topo, seed=1)
        schedule_soak(driver, soak_config(topo, duration=0.0))
        driver.run()
        cfg = soak_config(topo, duration=0.0)
        for host in topo.hosts:
            state = driver.host_state(host)
            # The pre-armed first tick may still fire once; it must
            # not re-arm, so the probe traffic is bounded by one
            # fanout burst per host.
            assert state["ticks"] <= 1
            assert state["beats"] == 0
        total_ticks = sum(driver.host_state(h)["ticks"] for h in topo.hosts)
        total_probes = sum(driver.host_state(h)["probes"] for h in topo.hosts)
        assert total_probes <= total_ticks * cfg["fanout"]

    def test_single_host_topology_probes_nothing(self):
        """A cluster of one: no local peers, remote draws may pick the
        host itself and are skipped — the soak must not self-send."""
        topo = soak_topology(clusters=1, hosts_per_cluster=1)
        driver = SerialScenarioDriver(EventKernel(), topo, seed=2)
        schedule_soak(driver, soak_config(topo, duration=0.1, remote_ratio=1.0))
        driver.run()
        state = driver.host_state(topo.hosts[0])
        assert state["ticks"] > 0
        assert state["probes"] == 0

    def test_soak_topology_validates_shape(self):
        with pytest.raises(ValueError):
            soak_topology(clusters=0)
        with pytest.raises(ValueError):
            soak_topology(clusters=100)

    def test_zero_lookahead_topology_is_all_zero_latency(self):
        topo = zero_lookahead_topology(hosts=4)
        assert len(topo.links) == 6
        assert all(link.latency == 0.0 for link in topo.links)


class TestSoakOnShardedKernel:
    def run_soak(self, shards, duration=0.15):
        topo = soak_topology(clusters=4, hosts_per_cluster=2)
        kernel = ShardedKernel(topo, shards=shards, seed=9, trace=True)
        schedule_soak(kernel, soak_config(topo, duration=duration))
        fired = kernel.run()
        return kernel, fired

    def test_soak_runs_on_sharded_kernel(self):
        kernel, fired = self.run_soak(shards=4)
        assert fired > 0
        stats = kernel.stats()
        assert stats["shards"] == 4
        assert stats["backend"] == "inline"
        assert not stats["fallback_serial"]

    def test_zero_duration_on_sharded_kernel(self):
        kernel, fired = self.run_soak(shards=2, duration=0.0)
        # The boots and their first (never re-armed) ticks still fire.
        assert fired > 0
        assert kernel.stats()["events_fired"] == fired

    def test_sharded_matches_serial_trace(self):
        serial, _ = self.run_soak(shards=1)
        sharded, _ = self.run_soak(shards=4)
        assert serial.trace_digest() == sharded.trace_digest()

    def test_zero_lookahead_falls_back_to_serial(self):
        topo = zero_lookahead_topology(hosts=4)
        kernel = ShardedKernel(topo, shards=4, seed=9)
        schedule_soak(kernel, soak_config(topo, duration=0.05))
        kernel.run()
        stats = kernel.stats()
        assert stats["fallback_serial"]
        assert stats["backend"] == "serial"
