"""Tests for workload generators, demo apps and drivers."""

import pytest

from repro.orb import World
from repro.workloads import (
    Arrival,
    bursty_arrivals,
    compressible_text,
    compute_module,
    make_archive_servant_class,
    make_compute_servant_class,
    make_quote_servant_class,
    market_ticks,
    open_loop_fanout,
    poisson_arrivals,
    random_bytes,
    run_closed_loop,
    sensor_samples,
    uniform_arrivals,
)
from repro.workloads.apps import archive_module, quote_module


class TestArrivals:
    def test_poisson_mean_rate(self):
        times = poisson_arrivals(rate=100.0, duration=10.0, seed=1)
        assert 800 < len(times) < 1200
        assert times == sorted(times)
        assert all(0 < t <= 10.0 for t in times)

    def test_poisson_deterministic_per_seed(self):
        assert poisson_arrivals(10, 5, seed=3) == poisson_arrivals(10, 5, seed=3)
        assert poisson_arrivals(10, 5, seed=3) != poisson_arrivals(10, 5, seed=4)

    def test_poisson_invalid_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1)

    def test_uniform_spacing(self):
        times = uniform_arrivals(rate=10.0, duration=1.0)
        assert len(times) == 10
        assert times[1] - times[0] == pytest.approx(0.1)

    def test_bursty_has_dense_and_sparse_phases(self):
        times = bursty_arrivals(
            burst_rate=200.0, idle_rate=5.0, period=1.0, duty=0.3,
            duration=4.0, seed=2,
        )
        on_phase = [t for t in times if (t % 1.0) < 0.3]
        off_phase = [t for t in times if (t % 1.0) >= 0.3]
        assert len(on_phase) > 3 * len(off_phase)

    def test_bursty_duty_validation(self):
        with pytest.raises(ValueError):
            bursty_arrivals(1, 1, 1, 1.5, 1)


class TestPayloads:
    def test_compressible_text_compresses(self):
        from repro.codecs import lz

        text = compressible_text(4000, seed=1)
        assert len(text) == 4000
        assert len(lz.compress(text.encode())) < 2600

    def test_random_bytes_do_not_compress(self):
        from repro.codecs import rle

        noise = random_bytes(2000, seed=1)
        assert len(rle.compress(noise)) > 1900

    def test_market_ticks_deterministic(self):
        assert market_ticks("ACME", 10) == market_ticks("ACME", 10)
        assert market_ticks("ACME", 10) != market_ticks("OTHER", 10)

    def test_sensor_samples_delta_friendly(self):
        from repro.codecs import delta

        samples = sensor_samples(2000, seed=1)
        assert len(delta.compress(samples)) < len(samples) / 3


@pytest.fixture
def world():
    w = World()
    w.lan(["client", "s1", "s2"], latency=0.002, bandwidth_bps=10e6)
    return w


class TestDemoApps:
    def test_archive_app(self, world):
        servant = make_archive_servant_class()()
        ior = world.orb("s1").poa.activate_object(servant)
        stub = archive_module.ArchiveStub(world.orb("client"), ior)
        stub.store("k", "v")
        assert stub.fetch("k") == "v"
        assert stub.list_paths() == ["k"]

    def test_quote_app(self, world):
        servant = make_quote_servant_class()()
        ior = world.orb("s1").poa.activate_object(servant)
        stub = quote_module.QuoteFeedStub(world.orb("client"), ior)
        price = stub.quote("ACME")
        assert price > 0
        stub.publish("ACME", 42.0)
        assert stub.quote("ACME") == 42.0
        assert len(stub.history("ACME", 5)) == 5

    def test_compute_app_service_time_scales(self, world):
        servant = make_compute_servant_class(unit_cost=0.01)()
        ior = world.orb("s1").poa.activate_object(servant)
        stub = compute_module.ComputeStub(world.orb("client"), ior)
        start = world.clock.now
        stub.busy_work(10)
        assert world.clock.now - start >= 0.1
        assert stub.transform("aBc") == "AbC"
        assert stub.completed() == 2


class TestDrivers:
    def test_closed_loop_summary(self, world):
        servant = make_archive_servant_class()()
        ior = world.orb("s1").poa.activate_object(servant)
        stub = archive_module.ArchiveStub(world.orb("client"), ior)
        result = run_closed_loop(world.clock, lambda i: stub.size(), 10)
        assert result.count == 10
        assert result.mean() > 0
        assert result.p95() >= result.mean() * 0.5
        assert result.throughput() > 0

    def test_closed_loop_swallows_declared_failures(self, world):
        from repro.orb.exceptions import COMM_FAILURE

        servant = make_archive_servant_class()()
        ior = world.orb("s1").poa.activate_object(servant)
        stub = archive_module.ArchiveStub(world.orb("client"), ior)
        world.faults.crash("s1")
        result = run_closed_loop(
            world.clock, lambda i: stub.size(), 5, swallow=(COMM_FAILURE,)
        )
        assert result.failures == 5

    def test_open_loop_queueing_builds_up(self, world):
        # Offered load 2x the service rate: queueing latency must grow
        # far beyond a single service time.
        servant_class = make_compute_servant_class(unit_cost=0.01)
        servant = servant_class()
        ior = world.orb("s1").poa.activate_object(servant)
        arrivals = [
            Arrival(t, ior, "busy_work", (1,))
            for t in uniform_arrivals(rate=200.0, duration=0.5)
        ]
        result = open_loop_fanout(world.orb("client"), arrivals)
        assert result.count == 100
        assert result.max() > 0.2  # ~half the backlog queued behind

    def test_open_loop_under_capacity_stays_flat(self, world):
        servant = make_compute_servant_class(unit_cost=0.001)()
        ior = world.orb("s1").poa.activate_object(servant)
        arrivals = [
            Arrival(t, ior, "busy_work", (1,))
            for t in uniform_arrivals(rate=50.0, duration=0.5)
        ]
        result = open_loop_fanout(world.orb("client"), arrivals)
        assert result.max() < 0.05

    def test_open_loop_counts_failures(self, world):
        servant = make_archive_servant_class()()
        ior = world.orb("s1").poa.activate_object(servant)
        world.faults.crash("s1")
        arrivals = [Arrival(0.1, ior, "size")]
        result = open_loop_fanout(world.orb("client"), arrivals)
        assert result.failures == 1

    def test_open_loop_empty(self, world):
        result = open_loop_fanout(world.orb("client"), [])
        assert result.count == 0

    def test_open_loop_driver_kernel_based(self, world):
        servant = make_archive_servant_class()()
        ior = world.orb("s1").poa.activate_object(servant)
        stub = archive_module.ArchiveStub(world.orb("client"), ior)
        from repro.workloads import OpenLoopDriver

        driver = OpenLoopDriver(world.kernel, lambda i: stub.size())
        driver.schedule([0.1, 0.2, 0.3])
        result = driver.run()
        assert result.count == 3


class TestPercentiles:
    def make_result(self, latencies):
        from repro.workloads.drivers import ClosedLoopResult

        return ClosedLoopResult(list(latencies), 0, 1.0)

    def test_nearest_rank_quantiles(self):
        result = self.make_result(float(i) for i in range(1, 101))
        assert result.p50() == 50.0
        assert result.p95() == 95.0
        assert result.p99() == 99.0
        assert result.percentile(1.0) == 100.0

    def test_quantiles_are_ordered(self):
        result = self.make_result([0.4, 0.1, 9.0, 0.2, 0.3])
        assert result.p50() <= result.p95() <= result.p99() <= result.max()

    def test_single_sample_collapses(self):
        result = self.make_result([0.25])
        assert result.p50() == result.p95() == result.p99() == 0.25

    def test_empty_result_is_nan(self):
        import math

        result = self.make_result([])
        assert math.isnan(result.p99())

    def test_summary_reports_all_quantiles(self, world):
        servant = make_archive_servant_class()()
        ior = world.orb("s1").poa.activate_object(servant)
        stub = archive_module.ArchiveStub(world.orb("client"), ior)
        summary = run_closed_loop(world.clock, lambda i: stub.size(), 20).summary()
        for key in ("p50", "p95", "p99"):
            assert key in summary
            assert summary[key] > 0
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
