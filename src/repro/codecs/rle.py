"""Byte run-length encoding.

Format: a sequence of ``(count, byte)`` pairs for runs, escaped so that
incompressible data grows by at most 1/128.  Encoding:

- ``0x00..0x7F`` control byte ``n``: copy the next ``n + 1`` literal
  bytes verbatim.
- ``0x80..0xFF`` control byte ``n``: repeat the next byte
  ``n - 0x80 + 3`` times (runs of 3..130).
"""

from __future__ import annotations

_MAX_LITERAL = 0x80  # up to 128 literals per control byte
_MIN_RUN = 3
_MAX_RUN = 0x7F + _MIN_RUN  # 130


def compress(data: bytes) -> bytes:
    """Run-length encode ``data``."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    out = bytearray()
    literals = bytearray()
    index = 0
    length = len(data)

    def flush_literals() -> None:
        position = 0
        while position < len(literals):
            chunk = literals[position : position + _MAX_LITERAL]
            out.append(len(chunk) - 1)
            out.extend(chunk)
            position += len(chunk)
        literals.clear()

    while index < length:
        byte = data[index]
        run = 1
        while (
            index + run < length
            and data[index + run] == byte
            and run < _MAX_RUN
        ):
            run += 1
        if run >= _MIN_RUN:
            flush_literals()
            out.append(0x80 + (run - _MIN_RUN))
            out.append(byte)
            index += run
        else:
            literals.extend(data[index : index + run])
            index += run
    flush_literals()
    return bytes(out)


def decompress(data: bytes) -> bytes:
    """Invert :func:`compress`."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    out = bytearray()
    index = 0
    length = len(data)
    while index < length:
        control = data[index]
        index += 1
        if control < _MAX_LITERAL:
            count = control + 1
            if index + count > length:
                raise ValueError("truncated RLE literal block")
            out.extend(data[index : index + count])
            index += count
        else:
            if index >= length:
                raise ValueError("truncated RLE run block")
            run = control - 0x80 + _MIN_RUN
            out.extend(bytes([data[index]]) * run)
            index += 1
    return bytes(out)
