"""From-scratch compression codecs.

The paper evaluates "compression for channels with small bandwidth"
(Section 6).  No external compression libraries are used: the codecs
here are real, reversible implementations whose compression ratio and
(simulated) CPU cost drive the E6 experiments.

- :mod:`repro.codecs.rle` — byte run-length encoding; cheap, effective
  on highly repetitive payloads.
- :mod:`repro.codecs.lz` — an LZ77-style sliding-window codec;
  moderate cost, effective on structured text.
- :mod:`repro.codecs.delta` — delta encoding for numeric sample
  streams, as used by the actuality/sensor examples.

Every codec implements ``compress(bytes) -> bytes`` and
``decompress(bytes) -> bytes`` with ``decompress(compress(x)) == x``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.codecs import delta, lz, rle

Codec = Tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]

#: Registered codecs: name -> (compress, decompress).
CODECS: Dict[str, Codec] = {
    "rle": (rle.compress, rle.decompress),
    "lz": (lz.compress, lz.decompress),
    "delta": (delta.compress, delta.decompress),
    "identity": (lambda data: bytes(data), lambda data: bytes(data)),
}

#: Simulated CPU seconds per input byte, used by the time model.  LZ is
#: an order of magnitude more expensive than RLE, mirroring real codecs.
CPU_COST_PER_BYTE: Dict[str, float] = {
    "rle": 10e-9,
    "lz": 120e-9,
    "delta": 15e-9,
    "identity": 0.0,
}


def get_codec(name: str) -> Codec:
    """Look up a codec pair by name."""
    try:
        return CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; available: {sorted(CODECS)}"
        ) from None


def cpu_cost(name: str, nbytes: int) -> float:
    """Simulated CPU seconds to (de)compress ``nbytes`` with ``name``."""
    return CPU_COST_PER_BYTE.get(name, 0.0) * nbytes


__all__ = ["CODECS", "CPU_COST_PER_BYTE", "Codec", "cpu_cost", "get_codec"]
