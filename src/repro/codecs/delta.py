"""Delta encoding for byte streams.

Stores the first byte verbatim and each subsequent byte as the
difference to its predecessor (mod 256), then run-length encodes the
result.  Slowly varying numeric sample streams (sensor readings,
quote ticks) become long zero runs, which RLE then collapses.
"""

from __future__ import annotations

from repro.codecs import rle


def _delta(data: bytes) -> bytes:
    out = bytearray(len(data))
    previous = 0
    for index, byte in enumerate(data):
        out[index] = (byte - previous) & 0xFF
        previous = byte
    return bytes(out)


def _undelta(data: bytes) -> bytes:
    out = bytearray(len(data))
    previous = 0
    for index, byte in enumerate(data):
        previous = (previous + byte) & 0xFF
        out[index] = previous
    return bytes(out)


def compress(data: bytes) -> bytes:
    """Delta + RLE encode ``data``."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    return rle.compress(_delta(bytes(data)))


def decompress(data: bytes) -> bytes:
    """Invert :func:`compress`."""
    return _undelta(rle.decompress(data))
