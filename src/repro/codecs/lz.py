"""An LZ77-style sliding-window codec.

Tokens:

- literal: ``0x00`` followed by one byte.
- match: ``0x01`` followed by a 2-byte big-endian offset (1..65535
  back) and a 1-byte length (MIN_MATCH..MIN_MATCH+254).

A hash table over 3-byte prefixes keeps compression roughly linear.
The format favours clarity over ratio — it is a real codec with a real
speed/ratio trade-off, which is all the E6 experiments need.
"""

from __future__ import annotations

_WINDOW = 65535
_MIN_MATCH = 4
_MAX_MATCH = _MIN_MATCH + 254

_TOKEN_LITERAL = 0x00
_TOKEN_MATCH = 0x01


def compress(data: bytes) -> bytes:
    """LZ77-compress ``data``."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    out = bytearray()
    index = 0
    length = len(data)
    # prefix hash -> most recent position
    table: dict = {}
    while index < length:
        best_length = 0
        best_offset = 0
        if index + _MIN_MATCH <= length:
            key = data[index : index + 3]
            candidate = table.get(key)
            if candidate is not None and index - candidate <= _WINDOW:
                match_length = 0
                limit = min(_MAX_MATCH, length - index)
                while (
                    match_length < limit
                    and data[candidate + match_length] == data[index + match_length]
                ):
                    match_length += 1
                if match_length >= _MIN_MATCH:
                    best_length = match_length
                    best_offset = index - candidate
            table[key] = index
        if best_length:
            out.append(_TOKEN_MATCH)
            out.append((best_offset >> 8) & 0xFF)
            out.append(best_offset & 0xFF)
            out.append(best_length - _MIN_MATCH)
            index += best_length
        else:
            out.append(_TOKEN_LITERAL)
            out.append(data[index])
            index += 1
    return bytes(out)


def decompress(data: bytes) -> bytes:
    """Invert :func:`compress`."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    out = bytearray()
    index = 0
    length = len(data)
    while index < length:
        token = data[index]
        index += 1
        if token == _TOKEN_LITERAL:
            if index >= length:
                raise ValueError("truncated literal token")
            out.append(data[index])
            index += 1
        elif token == _TOKEN_MATCH:
            if index + 3 > length:
                raise ValueError("truncated match token")
            offset = (data[index] << 8) | data[index + 1]
            match_length = data[index + 2] + _MIN_MATCH
            index += 3
            if offset == 0 or offset > len(out):
                raise ValueError(f"bad match offset {offset}")
            start = len(out) - offset
            for position in range(match_length):
                out.append(out[start + position])
        else:
            raise ValueError(f"unknown token {token}")
    return bytes(out)
