"""Servant migration: moving a hot member to a cooler host.

The sequence is *expand then contract*, and its core is atomic in
simulated time:

1. **freeze + state transfer + rebind** — in one kernel event the
   planner incarnates a replica on the destination with state copied
   from the *source* member (``get_state``/``set_state`` over the
   ORB), then publishes the membership view that routes new requests
   to the newcomer and marks the source draining.  Because servant
   dispatch runs synchronously at admission, no application call can
   interleave between the snapshot and the rebind — the freeze is the
   event boundary itself, so no update is lost and no call is dropped.
2. **drain** — the source keeps its committed schedule; replies
   already planned still depart from it.  Once its backlog and
   scheduler queue are empty the group deactivates it
   (:meth:`~repro.control.group.ManagedGroup.poll_retirements`).

As a standing policy (:meth:`tick`), the planner watches the backlog
imbalance between the hottest serving member and the coolest free
candidate and migrates when the gap stays above the hysteresis gate's
high-water mark.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.control.group import ManagedGroup
from repro.control.signals import Hysteresis
from repro.perf.counters import COUNTERS


class MigrationPlanner:
    """Hot-spot migration for one managed group."""

    name = "migration"

    def __init__(
        self,
        group: ManagedGroup,
        candidates: Sequence[str],
        hysteresis: Optional[Hysteresis] = None,
    ) -> None:
        self.group = group
        self.candidates = list(candidates)
        #: Gate on the backlog *gap* (seconds of queued work) between
        #: the hottest member and the coolest candidate.
        self.hysteresis = (
            hysteresis
            if hysteresis is not None
            else Hysteresis(high=0.05, low=0.0, up_ticks=3, down_ticks=10**6)
        )

    # -- direct actuation -------------------------------------------------

    def migrate(self, from_host: str, to_host: str, now: float, loop: Any = None):
        """Move the member on ``from_host`` to ``to_host``.

        Runs the whole freeze/transfer/rebind step now (one event); the
        drain completes asynchronously via ``poll_retirements``.
        Returns the newcomer's member reference.
        """

        def actuation():
            member = self.group.scale_up(to_host, now, source=from_host)
            self.group.begin_retire(from_host, now)
            return member

        COUNTERS.ctl_migrations += 1
        if loop is not None:
            return loop.actuate(
                "migrate", actuation, source=from_host, destination=to_host
            )
        member = actuation()
        self.group.trace.record(
            now, "migrate", source=from_host, destination=to_host
        )
        return member

    # -- standing policy --------------------------------------------------

    def tick(self, now: float, loop: Any) -> None:
        self.group.poll_retirements(now)
        plan = self._plan(now)
        if plan is None:
            self.hysteresis.update(0.0, now)
            return
        from_host, to_host, gap = plan
        if self.hysteresis.update(gap, now) == "up":
            self.migrate(from_host, to_host, now, loop)

    def _plan(self, now: float):
        """(hottest member, coolest candidate, backlog gap), or None."""
        serving = self.group.serving_hosts()
        if len(serving) < 1:
            return None
        network = self.group.world.network
        hottest = max(
            serving, key=lambda name: (network.host(name).backlog(now), name)
        )
        taken = set(self.group.hosts())
        free = [
            name
            for name in self.candidates
            if name not in taken and not network.host(name).crashed
        ]
        if not free:
            return None
        coolest = min(
            free, key=lambda name: (network.host(name).backlog(now), name)
        )
        gap = network.host(hottest).backlog(now) - network.host(coolest).backlog(now)
        return hottest, coolest, gap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MigrationPlanner({self.group.manager.group_name!r})"
