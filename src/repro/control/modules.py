"""Live QoS-module redeployment and contract renegotiation.

The paper's transport modules are runtime-loadable by design; the
:class:`ModuleActuator` is the policy that exercises it mid-session.
It watches one link's effective bandwidth and, when a sustained drop
starves the binding (background fluid traffic, capacity loss), it

- **assigns** a QoS module to the client/server relationship through
  the QoS transport's standard assignment interface (e.g. enable
  ``compression`` when bytes got expensive),
- **parameterizes** it through the module's dynamic command interface
  (``set_codec`` over the DII command path — the same bytes an
  operator would send), and
- optionally **renegotiates** the QoS contract through the existing
  :meth:`~repro.core.binding.QoSBinding.renegotiate` path, so the
  server's admission contract tracks what the narrowed link can carry.

When bandwidth recovers past the gate's high-water mark the actuation
reverses: module unassigned, contract renegotiated back.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.control.signals import Hysteresis
from repro.orb.dii import ModuleHandle
from repro.orb.modules.base import binding_key
from repro.perf.counters import COUNTERS


class ModuleActuator:
    """Swap/re-parameterize a binding's transport module under pressure."""

    name = "module-actuator"

    def __init__(
        self,
        stub: Any,
        link: Any,
        floor_bps: float,
        module_name: str = "compression",
        configure: Optional[Dict[str, Any]] = None,
        binding: Optional[Any] = None,
        degraded_requirements: Optional[Dict[str, Any]] = None,
        normal_requirements: Optional[Dict[str, Any]] = None,
        hysteresis: Optional[Hysteresis] = None,
    ) -> None:
        if floor_bps <= 0.0:
            raise ValueError(f"floor_bps must be positive: {floor_bps}")
        self.stub = stub
        self.link = link
        self.floor_bps = floor_bps
        self.module_name = module_name
        #: Dynamic-interface parameters sent after assignment, e.g.
        #: ``{"set_codec": ("lz",)}`` → ``set_codec(binding, "lz")``.
        self.configure = dict(configure or {})
        #: The QoS binding whose agreement is renegotiated alongside the
        #: module swap (optional: module-only actuation without it).
        self.binding = binding
        self.degraded_requirements = degraded_requirements
        self.normal_requirements = normal_requirements
        # The gate runs on headroom = bandwidth/floor, so 1.0 means
        # "exactly at the floor"; degraded below, recovered above 1.25.
        self.hysteresis = (
            hysteresis
            if hysteresis is not None
            else Hysteresis(high=1.25, low=1.0, up_ticks=4, down_ticks=2)
        )
        self.engaged = False

    # -- signal -----------------------------------------------------------

    def headroom(self) -> float:
        """Current unreserved link bandwidth over the configured floor."""
        return self.link.effective_bandwidth(None) / self.floor_bps

    # -- the per-tick entry point -----------------------------------------

    def tick(self, now: float, loop: Any) -> None:
        verdict = self.hysteresis.update(self.headroom(), now)
        if verdict == "down" and not self.engaged:
            self._engage(now, loop)
        elif verdict == "up" and self.engaged:
            self._disengage(now, loop)

    # -- actuations -------------------------------------------------------

    def _engage(self, now: float, loop: Any) -> None:
        COUNTERS.ctl_module_swaps += 1
        loop.actuate(
            "module-engage",
            self._assign_and_configure,
            module=self.module_name,
            link=f"{self.link.a.name}<->{self.link.b.name}",
        )
        self._renegotiate(now, loop, self.degraded_requirements, "degrade")
        self.engaged = True

    def _disengage(self, now: float, loop: Any) -> None:
        COUNTERS.ctl_module_swaps += 1
        loop.actuate(
            "module-disengage",
            lambda: self.stub._orb.qos_transport.unassign(self.stub._ior),
            module=self.module_name,
        )
        self._renegotiate(now, loop, self.normal_requirements, "restore")
        self.engaged = False

    def _assign_and_configure(self) -> None:
        orb = self.stub._orb
        ior = self.stub._ior
        orb.qos_transport.assign(ior, self.module_name)
        key = binding_key(ior)
        handle = ModuleHandle(orb, ior, self.module_name)
        module = orb.qos_transport.module(self.module_name)
        for operation, args in sorted(self.configure.items()):
            # Server side over the DII command path (the module loads
            # reflectively on first command there); client side through
            # the local module's dynamic interface — both ends of the
            # binding see the same parameters.
            handle.call(operation, key, *args)
            getattr(module, operation)(key, *args)

    def _renegotiate(
        self, now: float, loop: Any, requirements: Optional[Dict[str, Any]], label: str
    ) -> None:
        if self.binding is None or requirements is None:
            return
        COUNTERS.ctl_renegotiations += 1
        loop.actuate(
            f"renegotiate-{label}",
            lambda: self.binding.renegotiate(requirements),
            characteristic=self.binding.characteristic,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "engaged" if self.engaged else "idle"
        return f"ModuleActuator({self.module_name!r}, {state})"
