"""Decision traces: the control plane's append-only audit log.

Every sample threshold crossing, actuation and drain transition is
recorded as a :class:`Decision`.  The trace serves three masters:

- **tests** assert exact decision sequences;
- **benchmarks** gate determinism — identical seed must produce an
  identical :meth:`DecisionTrace.digest`;
- **operators** read it through the ``ctl_trace`` transport command.

Records are plain data with canonical formatting (sorted detail keys,
fixed-precision times) so the digest is stable across runs and
platforms.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, List


class Decision:
    """One control-plane event: when, what kind, and the particulars."""

    __slots__ = ("time", "kind", "detail")

    def __init__(self, time: float, kind: str, detail: Dict[str, Any]) -> None:
        self.time = time
        self.kind = kind
        self.detail = detail

    def as_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind, **self.detail}

    def as_line(self) -> str:
        """Canonical one-line rendering (digest input)."""
        parts = [f"{self.time:.9f}", self.kind]
        for key in sorted(self.detail):
            value = self.detail[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:.9f}")
            else:
                parts.append(f"{key}={value!r}")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Decision({self.as_line()})"


class DecisionTrace:
    """Append-only sequence of :class:`Decision` records."""

    def __init__(self) -> None:
        self._records: List[Decision] = []

    def record(self, time: float, kind: str, **detail: Any) -> Decision:
        decision = Decision(time, kind, detail)
        self._records.append(decision)
        return decision

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._records)

    def kinds(self) -> List[str]:
        return [record.kind for record in self._records]

    def of_kind(self, kind: str) -> List[Decision]:
        return [record for record in self._records if record.kind == kind]

    def as_dicts(self) -> List[Dict[str, Any]]:
        """JSON-able view (the ``ctl_trace`` transport command)."""
        return [record.as_dict() for record in self._records]

    def lines(self) -> List[str]:
        return [record.as_line() for record in self._records]

    def digest(self) -> str:
        """SHA-256 over the canonical lines: the determinism fingerprint."""
        hasher = hashlib.sha256()
        for line in self.lines():
            hasher.update(line.encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecisionTrace({len(self._records)} records)"
