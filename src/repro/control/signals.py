"""Signals and hysteresis: what the control loop decides *from*.

The loop never acts on a single sample.  Raw feeds — scheduler
admission counters, client-observed latency windows, link bandwidth,
breaker states — are differentiated (:class:`RateTracker`), smoothed
(:class:`~repro.core.monitoring.MetricWindow`, reused from the
monitoring layer) and debounced (:class:`Hysteresis`) before a policy
is allowed to actuate.

Hysteresis rationale: actuations are expensive (state transfer,
drains, renegotiation round trips) and self-affecting — scaling up
drops the very pressure signal that triggered it.  A naive
threshold flaps: one tick above, actuate, next tick below, undo.  The
:class:`Hysteresis` gate demands a *streak* of ticks beyond separated
high/low water marks and enforces a cooldown after every actuation,
so each decision is made on sustained evidence and the previous
actuation's effect has time to reach the signal path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.monitoring import MetricWindow

__all__ = ["Hysteresis", "RateTracker", "MetricWindow"]


class RateTracker:
    """Differentiate monotone cumulative counters into per-tick deltas.

    ``delta({"admitted": 120, "shed": 4})`` returns the change since
    the previous call — the control loop turns scheduler lifetime
    totals into "shed this tick" pressure signals with one of these
    per feed.
    """

    def __init__(self) -> None:
        self._previous: Dict[str, float] = {}

    def delta(self, sample: Dict[str, float]) -> Dict[str, float]:
        deltas = {}
        for key, value in sample.items():
            deltas[key] = value - self._previous.get(key, 0.0)
            self._previous[key] = value
        return deltas

    def reset(self) -> None:
        self._previous.clear()


class Hysteresis:
    """Streak-and-cooldown debouncer between a signal and an actuation.

    ``update(value, now)`` returns ``"up"`` after ``up_ticks``
    consecutive samples strictly above ``high``, ``"down"`` after
    ``down_ticks`` consecutive samples strictly below ``low``, and
    ``None`` otherwise.  Samples in the dead band (``low <= value <=
    high``) clear both streaks.  After a verdict the gate goes quiet
    for ``cooldown`` simulated seconds.
    """

    __slots__ = (
        "high",
        "low",
        "up_ticks",
        "down_ticks",
        "cooldown",
        "_above",
        "_below",
        "_quiet_until",
        "last_value",
    )

    def __init__(
        self,
        high: float,
        low: float,
        up_ticks: int = 2,
        down_ticks: int = 4,
        cooldown: float = 0.0,
    ) -> None:
        if low > high:
            raise ValueError(f"low watermark {low} above high watermark {high}")
        if up_ticks < 1 or down_ticks < 1:
            raise ValueError("streak lengths must be at least 1")
        if cooldown < 0.0:
            raise ValueError(f"cooldown must be non-negative: {cooldown}")
        self.high = high
        self.low = low
        self.up_ticks = up_ticks
        self.down_ticks = down_ticks
        self.cooldown = cooldown
        self._above = 0
        self._below = 0
        self._quiet_until = 0.0
        self.last_value: Optional[float] = None

    def update(self, value: float, now: float) -> Optional[str]:
        self.last_value = value
        if now < self._quiet_until:
            # Streaks do not accumulate during cooldown: evidence must
            # be gathered after the previous actuation took effect.
            self._above = 0
            self._below = 0
            return None
        if value > self.high:
            self._above += 1
            self._below = 0
            if self._above >= self.up_ticks:
                self._trip(now)
                return "up"
        elif value < self.low:
            self._below += 1
            self._above = 0
            if self._below >= self.down_ticks:
                self._trip(now)
                return "down"
        else:
            self._above = 0
            self._below = 0
        return None

    def _trip(self, now: float) -> None:
        self._above = 0
        self._below = 0
        self._quiet_until = now + self.cooldown

    def hold_off(self, now: float, seconds: Optional[float] = None) -> None:
        """Explicitly start (or extend) the cooldown window at ``now``.

        Policies call this when an actuation was decided elsewhere —
        e.g. a drain completing — so the gate's quiet period covers it.
        """
        quiet = now + (seconds if seconds is not None else self.cooldown)
        if quiet > self._quiet_until:
            self._quiet_until = quiet

    def reset(self) -> None:
        self._above = 0
        self._below = 0
        self._quiet_until = 0.0
        self.last_value = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Hysteresis(high={self.high}, low={self.low}, "
            f"above={self._above}, below={self._below})"
        )


def breaker_open_count(mediator: Any) -> int:
    """How many of a reliability mediator's breakers are not closed.

    Pure state inspection — :meth:`CircuitBreaker.allow` is
    deliberately avoided because it transitions open breakers to
    half-open; a sensor must never perturb what it measures.
    """
    return sum(
        1 for breaker in mediator._breakers.values() if breaker.state != "closed"
    )
