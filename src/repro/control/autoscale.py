"""Autoscaling: grow and shrink a replica group under load.

The policy samples one scalar *pressure* signal per tick — typically
client-observed p95 latency over the contracted delay bound, so 1.0
means "exactly at contract" — and feeds it through a
:class:`~repro.control.signals.Hysteresis` gate.  A sustained ``up``
verdict places a new replica on the least-loaded candidate host (by
:meth:`~repro.netsim.network.Host.backlog`, name-tiebroken for
determinism) through the group's deployment path; a sustained ``down``
verdict begins draining the most recently added serving member.
Retirement is always drain-safe: the member leaves the rotations
immediately but is deactivated only after its admitted work finished
(:meth:`~repro.control.group.ManagedGroup.poll_retirements`).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.control.group import ManagedGroup
from repro.control.signals import Hysteresis
from repro.perf.counters import COUNTERS


class AutoscalePolicy:
    """Hysteresis-gated replica-count control for one managed group."""

    name = "autoscale"

    def __init__(
        self,
        group: ManagedGroup,
        candidates: Sequence[str],
        signal: Callable[[float], Optional[float]],
        hysteresis: Optional[Hysteresis] = None,
        min_replicas: int = 1,
        max_replicas: Optional[int] = None,
    ) -> None:
        if min_replicas < 1:
            raise ValueError(f"min_replicas must be at least 1: {min_replicas}")
        self.group = group
        #: Hosts the policy may place replicas on (placement universe).
        self.candidates = list(candidates)
        #: ``signal(now)`` returns the current pressure value, or None
        #: while the signal is still warming up (no samples yet).
        self.signal = signal
        self.hysteresis = (
            hysteresis
            if hysteresis is not None
            else Hysteresis(high=1.0, low=0.5, up_ticks=2, down_ticks=8)
        )
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas

    # -- the per-tick entry point -----------------------------------------

    def tick(self, now: float, loop: Any) -> None:
        for host in self.group.poll_retirements(now):
            # A completed drain is an actuation of its own; hold the
            # gate quiet so the next verdict sees the shrunk group.
            self.hysteresis.hold_off(now)
        value = self.signal(now)
        if value is None:
            return
        verdict = self.hysteresis.update(value, now)
        if verdict == "up":
            self._scale_up(now, loop, value)
        elif verdict == "down":
            self._scale_down(now, loop, value)

    # -- actuations -------------------------------------------------------

    def _scale_up(self, now: float, loop: Any, value: float) -> None:
        serving = self.group.serving_hosts()
        if self.max_replicas is not None and len(serving) >= self.max_replicas:
            self.group.trace.record(
                now, "scale-up-capped", replicas=len(serving), pressure=value
            )
            return
        host = self._place(now)
        if host is None:
            self.group.trace.record(
                now, "scale-up-saturated", replicas=len(serving), pressure=value
            )
            return
        source = self._transfer_source(now)
        COUNTERS.ctl_scale_ups += 1
        loop.actuate(
            "scale-up",
            lambda: self.group.scale_up(host, now, source),
            host=host,
            pressure=round(value, 9),
        )

    def _scale_down(self, now: float, loop: Any, value: float) -> None:
        serving = self.group.serving_hosts()
        if len(serving) <= self.min_replicas:
            return
        # Retire the most recently added serving member: the scale-up
        # order is the natural inverse for scale-down, and it keeps the
        # longest-lived members (the warmest state) in place.
        host = serving[-1]
        COUNTERS.ctl_scale_downs += 1
        loop.actuate(
            "scale-down",
            lambda: self.group.begin_retire(host, now),
            host=host,
            pressure=round(value, 9),
        )

    def _transfer_source(self, now: float) -> Optional[str]:
        """Least-loaded live serving member to copy state from.

        Scale-up happens precisely when some member is drowning; a
        ``get_state`` aimed at it queues behind that backlog and the
        whole actuation inherits the latency it was meant to cure.
        Copying from the coldest live member keeps the transfer off
        the hot path.  ``None`` (single member, or nobody reachable)
        lets the group fall back to its own source selection.
        """
        network = self.group.world.network
        live = [
            h for h in self.group.serving_hosts()
            if not network.host(h).crashed
        ]
        if len(live) <= 1:
            return None
        return min(live, key=lambda h: (network.host(h).backlog(now), h))

    def _place(self, now: float) -> Optional[str]:
        """Least-loaded candidate host not already holding a member."""
        taken = set(self.group.hosts())
        best: Optional[str] = None
        best_backlog = 0.0
        for name in self.candidates:
            if name in taken:
                continue
            host = self.group.world.network.host(name)
            if host.crashed:
                continue
            backlog = host.backlog(now)
            if best is None or backlog < best_backlog:
                best = name
                best_backlog = backlog
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AutoscalePolicy({self.group.manager.group_name!r}, "
            f"candidates={self.candidates})"
        )
