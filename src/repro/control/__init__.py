"""The adaptive control plane: closing MAQS's QoS loop at runtime.

The paper separates QoS concerns into independently manageable pieces
— monitoring, accounting, negotiation, runtime-loadable transport
modules, replica groups.  This package adds the part that *uses* that
separation: a deterministic, simulated-time control plane that watches
the existing monitoring/scheduling/network feeds and acts through the
existing command/DII and deployment paths (the RAFDA argument:
distribution policy changeable at runtime, per object, without
touching application logic).

Pieces:

- :class:`~repro.control.loop.ControlLoop` — the periodic tick riding
  the event kernel; samples signals, runs policies, records every
  actuation in a :class:`~repro.control.trace.DecisionTrace`.
- :class:`~repro.control.signals.Hysteresis` — streak/cooldown state
  machine every policy debounces its decisions through.
- :class:`~repro.control.group.ManagedGroup` — a replica group plus
  the client rotations bound to it; publishes membership changes so
  grow/shrink/drain take effect without dropping in-flight calls.
- :class:`~repro.control.autoscale.AutoscalePolicy` — grows/shrinks
  the group under load with drain-safe retirement.
- :class:`~repro.control.migrate.MigrationPlanner` — moves hot
  servants between hosts (snapshot → incarnate → rebind, atomic in
  simulated time).
- :class:`~repro.control.modules.ModuleActuator` — swaps or
  re-parameterizes QoS modules mid-session and renegotiates contracts
  through the standard :meth:`~repro.core.binding.QoSBinding.renegotiate`
  path.
"""

from repro.control.autoscale import AutoscalePolicy
from repro.control.group import ManagedGroup, Retirement
from repro.control.loop import ControlLoop
from repro.control.migrate import MigrationPlanner
from repro.control.modules import ModuleActuator
from repro.control.signals import Hysteresis, RateTracker
from repro.control.trace import Decision, DecisionTrace

__all__ = [
    "AutoscalePolicy",
    "ControlLoop",
    "Decision",
    "DecisionTrace",
    "Hysteresis",
    "ManagedGroup",
    "MigrationPlanner",
    "ModuleActuator",
    "RateTracker",
    "Retirement",
]
