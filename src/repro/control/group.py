"""Managed replica groups: membership changes without dropped calls.

:class:`ManagedGroup` pairs a server-side
:class:`~repro.qos.fault_tolerance.replica_group.ReplicaGroupManager`
with the client-side rotations bound to it.  Every membership change
— grow, retire, migrate — is *published*: each registered client's
:class:`~repro.reliability.ReliabilityMediator` receives the new
member list and the draining set in the same simulated instant the
server side changed, so clients and servers never disagree about who
may be called.

Retirement is two-phase:

1. :meth:`begin_retire` marks the member draining and publishes.  From
   this instant no rotation selects it — the "never dispatched a new
   request after drain begins" guarantee is enforced structurally in
   :class:`~repro.reliability.failover.FailoverRotation`, not by
   polling.  Work already admitted keeps its committed schedule.
2. :meth:`finish_retire` (driven by :meth:`poll_retirements`) removes
   the member once its host has no backlog and its scheduler queue is
   empty — the in-flight drain.

Because servant dispatch in the simulation happens synchronously at
admission, a membership publication is atomic with respect to
application calls: no request can observe a half-published view.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from repro.orb.ior import IOR
from repro.control.trace import DecisionTrace


class Retirement:
    """One member's drain in progress."""

    __slots__ = ("host", "member", "began")

    def __init__(self, host: str, member: IOR, began: float) -> None:
        self.host = host
        self.member = member
        self.began = began

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Retirement({self.host!r} since {self.began:.6f})"


def _find_group_mediator(mediator: Any) -> Optional[Any]:
    """First mediator in a chain/wrapper stack exposing ``update_group``."""
    if mediator is None:
        return None
    if hasattr(mediator, "update_group"):
        return mediator
    for link in getattr(mediator, "links", ()):
        found = _find_group_mediator(link)
        if found is not None:
            return found
    return _find_group_mediator(getattr(mediator, "inner", None))


class ManagedGroup:
    """A replica group plus every client rotation bound to it."""

    def __init__(
        self,
        world: Any,
        manager: Any,
        provisioner: Optional[Callable[[Any, str], None]] = None,
        trace: Optional[DecisionTrace] = None,
    ) -> None:
        self.world = world
        self.manager = manager
        #: Deployment hook run as ``provisioner(orb, host)`` before a
        #: replica is incarnated on a new host — install the request
        #: scheduler, bind the class contract, pre-load modules.
        self.provisioner = provisioner
        self.trace = trace if trace is not None else DecisionTrace()
        #: (stub, mediator) pairs whose rotations this group publishes to.
        self._clients: List[Any] = []
        self._retirements: Dict[str, Retirement] = {}
        self._provisioned: Set[str] = set()

    # -- clients ----------------------------------------------------------

    def register_client(self, stub: Any, mediator: Optional[Any] = None) -> Any:
        """Subscribe a reliability-bound stub to membership updates."""
        if mediator is None:
            mediator = stub._get_mediator()
        found = _find_group_mediator(mediator)
        if found is None:
            raise ValueError(
                "stub has no reliability mediator in its chain; "
                "bind it with bind_reliable_client first"
            )
        self._clients.append((stub, found))
        self._publish_one(stub, found, len(self._clients) - 1)
        return stub

    def bind_reliable_client(
        self, client_orb: Any, stub_class: type, reliability_policy: Any = None
    ) -> Any:
        """Build, bind and register a reliable stub on ``client_orb``."""
        stub = self.manager.bind_reliable_client(
            client_orb, stub_class, reliability_policy
        )
        return self.register_client(stub)

    def clients(self) -> List[Any]:
        return [stub for stub, _ in self._clients]

    # -- views ------------------------------------------------------------

    def hosts(self) -> List[str]:
        return self.manager.hosts()

    def serving_hosts(self) -> List[str]:
        """Members currently eligible for new requests."""
        return [h for h in self.manager.hosts() if h not in self._retirements]

    def draining_hosts(self) -> List[str]:
        return sorted(self._retirements)

    def members(self) -> List[IOR]:
        return self.manager.member_iors()

    def draining_keys(self) -> Set[str]:
        return {r.member.binding_key() for r in self._retirements.values()}

    def route_for(self, index: int) -> IOR:
        """The member a driver-level client ``index`` should call now.

        The stub path gets this routing through the published
        rotations; open-loop drivers that bypass stubs (the benchmark
        fan-out) ask the group directly, at each departure instant.
        """
        members = self.members()
        draining = self.draining_keys()
        serving = [m for m in members if m.binding_key() not in draining]
        pool = serving if serving else members
        return pool[index % len(pool)]

    def route_least_loaded(self, now: float) -> IOR:
        """The serving member whose host has the least queued work.

        Backlog-aware routing drains a transient hot spot fast: once a
        scale-up lands, new arrivals flow to the empty member while the
        loaded one works off its queue at full rate.  Ties break by
        placement order, keeping the choice deterministic.
        """
        serving = self.serving_hosts() or self.manager.hosts()
        network = self.world.network
        best = min(
            range(len(serving)),
            key=lambda i: (network.host(serving[i]).backlog(now), i),
        )
        return self.manager.member_ior(serving[best])

    # -- publication ------------------------------------------------------

    def publish(self) -> None:
        """Push the current membership view into every client rotation."""
        for index, (stub, mediator) in enumerate(self._clients):
            self._publish_one(stub, mediator, index)

    def _publish_one(self, stub: Any, mediator: Any, index: int) -> None:
        mediator.update_group(
            stub, self.members(), self.draining_keys(), prefer=index
        )

    # -- actuation primitives ---------------------------------------------

    def scale_up(self, host: str, now: float, source: Optional[str] = None) -> IOR:
        """Incarnate a member on ``host`` and publish the grown group.

        The deployment path: provision the host (once), add the
        replica — state-transferred from ``source`` or the first live
        member — then publish so clients may route to it immediately.
        """
        if host not in self._provisioned and self.provisioner is not None:
            self.provisioner(self.world.orb(host), host)
        self._provisioned.add(host)
        member = self.manager.add_replica(host, source)
        self.publish()
        self.trace.record(
            now, "member-add", host=host, members=len(self.manager.hosts())
        )
        return member

    def begin_retire(self, host: str, now: float) -> Retirement:
        """Start draining ``host``; no new request reaches it from now on."""
        if host in self._retirements:
            return self._retirements[host]
        if host not in self.manager.hosts():
            raise ValueError(f"no member on {host!r}")
        if len(self.serving_hosts()) <= 1:
            raise ValueError(
                f"refusing to drain {host!r}: it is the last serving member"
            )
        retirement = Retirement(host, self.manager.member_ior(host), now)
        self._retirements[host] = retirement
        self.publish()
        self.trace.record(
            now, "drain-begin", host=host, serving=len(self.serving_hosts())
        )
        return retirement

    def drained(self, host: str, now: float) -> bool:
        """Has the retiring member finished all admitted work?"""
        if self.world.network.host(host).backlog(now) > 0.0:
            return False
        orb = self.world._orbs.get(host)
        if orb is not None and orb.scheduler is not None:
            return orb.scheduler.queue_depth(now) == 0
        return True

    def finish_retire(self, host: str, now: float) -> None:
        """Deactivate a drained member and publish the shrunk group."""
        retirement = self._retirements.pop(host, None)
        if retirement is None:
            raise ValueError(f"{host!r} is not draining")
        self.manager.remove_replica(host)
        self.publish()
        self.trace.record(
            now,
            "drain-finish",
            host=host,
            drained_for=round(now - retirement.began, 9),
            members=len(self.manager.hosts()),
        )

    def poll_retirements(self, now: float) -> List[str]:
        """Finish every drain that has completed; returns the hosts."""
        finished = [
            host
            for host in sorted(self._retirements)
            if self.drained(host, now)
        ]
        for host in finished:
            self.finish_retire(host, now)
        return finished

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ManagedGroup({self.manager.group_name!r}, "
            f"serving={self.serving_hosts()}, draining={self.draining_hosts()})"
        )
