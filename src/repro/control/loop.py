"""The control loop: sample → decide → actuate, on the event kernel.

One :class:`ControlLoop` per deployment.  It rides
:meth:`~repro.netsim.kernel.EventKernel.every`, so its ticks interleave
deterministically with application traffic, fault schedules and the
fluid tier; everything it reads is simulated state and everything it
does advances the simulated clock — identical seeds produce identical
decision traces, which the benchmark gates on.

Policies are plain objects with ``tick(now, loop)``; the loop provides
them a shared :class:`~repro.control.trace.DecisionTrace` and the
:meth:`actuate` wrapper that times each actuation (simulated seconds
from decision to completion — DII round trips, state transfer, the
lot) into the global ``ctl_*`` counter panel.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.control.trace import DecisionTrace
from repro.perf.counters import COUNTERS


class ControlLoop:
    """Periodic controller driving a set of adaptation policies."""

    def __init__(self, world: Any, period: float = 0.05) -> None:
        if period <= 0.0:
            raise ValueError(f"period must be positive: {period}")
        self.world = world
        self.kernel = world.kernel
        self.period = period
        self.trace = DecisionTrace()
        self.policies: List[Any] = []
        self.ticks = 0
        self.decisions = 0
        self.running = False

    # -- wiring -----------------------------------------------------------

    def attach(self) -> "ControlLoop":
        """Register as the deployment's control plane.

        Makes the loop visible to :func:`repro.perf.counters.snapshot`
        (the ``ctl_*`` panel) and to the ``ctl_stats``/``ctl_trace``
        transport commands on every ORB of the world.
        """
        self.world.control = self
        return self

    def add_policy(self, policy: Any) -> Any:
        """Register a policy; shares the loop's trace when it has none."""
        group = getattr(policy, "group", None)
        if group is not None:
            group.trace = self.trace
        self.policies.append(policy)
        return policy

    # -- execution --------------------------------------------------------

    def start(self, until: Optional[float] = None) -> "ControlLoop":
        """Begin ticking every ``period`` seconds of simulated time.

        The recurrence is self-chaining (not ``kernel.every``) so that
        :meth:`stop` — or reaching ``until`` — genuinely ends it and a
        full ``kernel.run()`` can drain to completion.
        """
        if self.running:
            return self
        self.running = True
        self._schedule_next(until)
        return self

    def stop(self) -> None:
        """Stop the recurrence; the next pending tick fires as a no-op."""
        self.running = False

    def _schedule_next(self, until: Optional[float]) -> None:
        next_time = self.world.clock.now + self.period
        if until is not None and next_time > until:
            self.running = False
            return
        self.kernel.schedule(self.period, self._fire, until, label="ctl-tick")

    def _fire(self, until: Optional[float]) -> None:
        if not self.running:
            return
        now = self.world.clock.now
        self.ticks += 1
        COUNTERS.ctl_samples += 1
        for policy in self.policies:
            policy.tick(now, self)
        self._schedule_next(until)

    def tick_once(self) -> None:
        """Run one tick immediately (tests and manual stepping)."""
        self.ticks += 1
        COUNTERS.ctl_samples += 1
        now = self.world.clock.now
        for policy in self.policies:
            policy.tick(now, self)

    # -- actuation accounting ---------------------------------------------

    def actuate(self, kind: str, fn: Any, **detail: Any) -> Any:
        """Run one actuation; time it, count it, record it.

        The latency is simulated seconds between the decision and the
        actuation completing — state transfers and renegotiation round
        trips advance the clock, so this is the true control-plane
        actuation delay, not wall time.
        """
        clock = self.world.clock
        started = clock.now
        result = fn()
        elapsed = clock.now - started
        self.decisions += 1
        COUNTERS.ctl_decisions += 1
        COUNTERS.note_actuation(elapsed)
        self.trace.record(started, kind, latency=round(elapsed, 9), **detail)
        return result

    # -- reporting --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``ctl_*`` instrument panel of this loop."""
        kinds: Dict[str, int] = {}
        for kind in self.trace.kinds():
            kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "ticks": self.ticks,
            "period": self.period,
            "policies": len(self.policies),
            "decisions": self.decisions,
            "trace_records": len(self.trace),
            "trace_kinds": dict(sorted(kinds.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return (
            f"ControlLoop(period={self.period}, policies={len(self.policies)}, "
            f"{state})"
        )
