"""MAQS — Management Architecture for Quality of Service.

A full Python reproduction of the system described in

    Christian Becker and Kurt Geihs,
    "Quality of Service and Object-Oriented Middleware —
     Multiple Concerns and their Separation", ICDCS 2001.

The package is layered bottom-up:

``repro.netsim``
    Deterministic simulated network substrate: discrete-event kernel,
    hosts, links, multicast, bandwidth reservation and fault injection.

``repro.orb``
    A CORBA-like object request broker built on top of the network
    substrate: CDR marshalling, GIOP-style messages, IORs, a POA-style
    object adapter, stubs/skeletons, the dynamic invocation interface,
    and the QoS transport with dynamically loadable QoS modules
    (the paper's Figure 3).

``repro.qidl``
    The QIDL language: an IDL extended with ``qos`` declarations, whose
    compiler acts as the aspect weaver (the paper's Section 3).

``repro.core``
    The MAQS runtime: client-side mediators, server-side QoS skeletons
    with prolog/epilog, QoS binding, negotiation, monitoring,
    adaptation, accounting, trading, preference contracts and the QoS
    characteristics catalog.

``repro.qos``
    The QoS characteristics evaluated by the paper: fault tolerance via
    replica groups, load balancing, compression, encryption/privacy and
    actuality (freshness) of data.

``repro.baselines`` / ``repro.workloads``
    Comparison baselines (plain ORB, hand-tangled QoS) and workload
    generators used by the benchmark harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
