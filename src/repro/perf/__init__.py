"""Wire-path performance instrumentation.

Cheap, always-compiled counters for the ORB hot path: encode/decode
wall time and bytes (recorded by :mod:`repro.orb.giop` when enabled),
cache hit rates for the GIOP/IOR machinery, and a
:class:`~repro.perf.counters.WireStats` observer that plugs into the
existing ``ORB.add_wire_observer`` hook to count on-the-wire traffic.

Timing is off by default so the counters cost one attribute check per
message; enable with ``COUNTERS.enable()`` (or construct a
:class:`WireStats` and read its byte totals, which are always live).
"""

from repro.perf.counters import COUNTERS, PerfCounters, WireStats, snapshot
from repro.perf.lru import LRUCache

__all__ = ["COUNTERS", "PerfCounters", "WireStats", "LRUCache", "snapshot"]
