"""Hot-path counters and the wire-observer statistics tap.

:data:`COUNTERS` is the process-global instrument panel.  The GIOP
codec records encode/decode nanoseconds and byte counts into it when
``enabled`` is set (one boolean attribute check per message when off);
the CDR batcher and the IOR/service-context caches bump their counters
unconditionally because an integer increment is cheaper than a guard.

:class:`WireStats` rides the existing ``ORB.add_wire_observer`` hook,
so per-ORB traffic accounting needs no monkey-patching:

    stats = WireStats().attach(orb)
    ...
    stats.snapshot()  # messages/bytes in and out, plus global counters
"""

from __future__ import annotations

from typing import Any, Dict


class PerfCounters:
    """Process-wide wire-path counters (see :data:`COUNTERS`)."""

    __slots__ = (
        "enabled",
        "encode_calls",
        "encode_ns",
        "encode_bytes",
        "decode_calls",
        "decode_ns",
        "decode_bytes",
        "cdr_batch_encodes",
        "cdr_batch_decodes",
        "ior_parse_hits",
        "ior_parse_misses",
        "ctx_cache_hits",
        "ctx_cache_misses",
        "any_span_hits",
        "any_span_misses",
        "sched_admitted",
        "sched_rejected",
        "sched_shed",
        "encoder_pool_hits",
        "encoder_pool_misses",
        "request_pool_hits",
        "request_pool_misses",
        "module_bursts",
        "module_burst_messages",
        "pipeline_windows",
        "pipeline_messages",
        "pipeline_inflight_peak",
        "pipeline_out_of_order",
        "rel_retries",
        "rel_retry_exhausted",
        "rel_failovers",
        "rel_deadline_expired",
        "rel_breaker_opens",
        "rel_breaker_fast_fails",
        "rel_breaker_probes",
        "rel_replays",
        "fluid_flowlets",
        "fluid_flowlet_bytes",
        "fluid_completions",
        "fluid_active_peak",
        "ctl_samples",
        "ctl_decisions",
        "ctl_scale_ups",
        "ctl_scale_downs",
        "ctl_migrations",
        "ctl_module_swaps",
        "ctl_renegotiations",
        "ctl_actuations",
        "ctl_actuation_time",
        "rt_connections",
        "rt_frames_in",
        "rt_frames_out",
        "rt_bytes_in",
        "rt_bytes_out",
        "rt_partial_frames",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.reset()

    def enable(self) -> "PerfCounters":
        """Turn on encode/decode timing (adds two clock reads per message)."""
        self.enabled = True
        return self

    def disable(self) -> "PerfCounters":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Zero every counter; the enabled flag is left as it is."""
        self.encode_calls = 0
        self.encode_ns = 0
        self.encode_bytes = 0
        self.decode_calls = 0
        self.decode_ns = 0
        self.decode_bytes = 0
        self.cdr_batch_encodes = 0
        self.cdr_batch_decodes = 0
        self.ior_parse_hits = 0
        self.ior_parse_misses = 0
        self.ctx_cache_hits = 0
        self.ctx_cache_misses = 0
        self.any_span_hits = 0
        self.any_span_misses = 0
        self.sched_admitted = 0
        self.sched_rejected = 0
        self.sched_shed = 0
        self.encoder_pool_hits = 0
        self.encoder_pool_misses = 0
        self.request_pool_hits = 0
        self.request_pool_misses = 0
        self.module_bursts = 0
        self.module_burst_messages = 0
        self.pipeline_windows = 0
        self.pipeline_messages = 0
        self.pipeline_inflight_peak = 0
        self.pipeline_out_of_order = 0
        self.rel_retries = 0
        self.rel_retry_exhausted = 0
        self.rel_failovers = 0
        self.rel_deadline_expired = 0
        self.rel_breaker_opens = 0
        self.rel_breaker_fast_fails = 0
        self.rel_breaker_probes = 0
        self.rel_replays = 0
        self.fluid_flowlets = 0
        self.fluid_flowlet_bytes = 0
        self.fluid_completions = 0
        self.fluid_active_peak = 0
        self.ctl_samples = 0
        self.ctl_decisions = 0
        self.ctl_scale_ups = 0
        self.ctl_scale_downs = 0
        self.ctl_migrations = 0
        self.ctl_module_swaps = 0
        self.ctl_renegotiations = 0
        self.ctl_actuations = 0
        self.ctl_actuation_time = 0.0
        self.rt_connections = 0
        self.rt_frames_in = 0
        self.rt_frames_out = 0
        self.rt_bytes_in = 0
        self.rt_bytes_out = 0
        self.rt_partial_frames = 0

    def note_actuation(self, seconds: float) -> None:
        """Record one control-plane actuation and its simulated latency."""
        self.ctl_actuations += 1
        self.ctl_actuation_time += seconds

    def note_fluid_active(self, depth: int) -> None:
        """Record the fluid tier's current active-flow count."""
        if depth > self.fluid_active_peak:
            self.fluid_active_peak = depth

    def note_inflight(self, depth: int) -> None:
        """Record the AMI pipeline's current in-flight future count."""
        if depth > self.pipeline_inflight_peak:
            self.pipeline_inflight_peak = depth

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """All counters plus derived per-call and hit-rate figures."""
        return {
            "enabled": self.enabled,
            "encode_calls": self.encode_calls,
            "encode_ns": self.encode_ns,
            "encode_bytes": self.encode_bytes,
            "encode_ns_per_call": (
                self.encode_ns / self.encode_calls if self.encode_calls else 0.0
            ),
            "decode_calls": self.decode_calls,
            "decode_ns": self.decode_ns,
            "decode_bytes": self.decode_bytes,
            "decode_ns_per_call": (
                self.decode_ns / self.decode_calls if self.decode_calls else 0.0
            ),
            "cdr_batch_encodes": self.cdr_batch_encodes,
            "cdr_batch_decodes": self.cdr_batch_decodes,
            "ior_parse_hits": self.ior_parse_hits,
            "ior_parse_misses": self.ior_parse_misses,
            "ior_parse_hit_rate": self._rate(
                self.ior_parse_hits, self.ior_parse_misses
            ),
            "ctx_cache_hits": self.ctx_cache_hits,
            "ctx_cache_misses": self.ctx_cache_misses,
            "ctx_cache_hit_rate": self._rate(
                self.ctx_cache_hits, self.ctx_cache_misses
            ),
            "any_span_hits": self.any_span_hits,
            "any_span_misses": self.any_span_misses,
            "any_span_hit_rate": self._rate(
                self.any_span_hits, self.any_span_misses
            ),
            "sched_admitted": self.sched_admitted,
            "sched_rejected": self.sched_rejected,
            "sched_shed": self.sched_shed,
            "encoder_pool_hits": self.encoder_pool_hits,
            "encoder_pool_misses": self.encoder_pool_misses,
            "encoder_pool_hit_rate": self._rate(
                self.encoder_pool_hits, self.encoder_pool_misses
            ),
            "request_pool_hits": self.request_pool_hits,
            "request_pool_misses": self.request_pool_misses,
            "module_bursts": self.module_bursts,
            "module_burst_messages": self.module_burst_messages,
            "pipeline_windows": self.pipeline_windows,
            "pipeline_messages": self.pipeline_messages,
            "pipeline_messages_per_window": (
                self.pipeline_messages / self.pipeline_windows
                if self.pipeline_windows
                else 0.0
            ),
            "pipeline_inflight_peak": self.pipeline_inflight_peak,
            "pipeline_out_of_order": self.pipeline_out_of_order,
            "rel_retries": self.rel_retries,
            "rel_retry_exhausted": self.rel_retry_exhausted,
            "rel_failovers": self.rel_failovers,
            "rel_deadline_expired": self.rel_deadline_expired,
            "rel_breaker_opens": self.rel_breaker_opens,
            "rel_breaker_fast_fails": self.rel_breaker_fast_fails,
            "rel_breaker_probes": self.rel_breaker_probes,
            "rel_replays": self.rel_replays,
            "fluid_flowlets": self.fluid_flowlets,
            "fluid_flowlet_bytes": self.fluid_flowlet_bytes,
            "fluid_completions": self.fluid_completions,
            "fluid_active_peak": self.fluid_active_peak,
            "ctl_samples": self.ctl_samples,
            "ctl_decisions": self.ctl_decisions,
            "ctl_scale_ups": self.ctl_scale_ups,
            "ctl_scale_downs": self.ctl_scale_downs,
            "ctl_migrations": self.ctl_migrations,
            "ctl_module_swaps": self.ctl_module_swaps,
            "ctl_renegotiations": self.ctl_renegotiations,
            "ctl_actuations": self.ctl_actuations,
            "ctl_actuation_time": self.ctl_actuation_time,
            "ctl_actuation_time_mean": (
                self.ctl_actuation_time / self.ctl_actuations
                if self.ctl_actuations
                else 0.0
            ),
            "rt_connections": self.rt_connections,
            "rt_frames_in": self.rt_frames_in,
            "rt_frames_out": self.rt_frames_out,
            "rt_bytes_in": self.rt_bytes_in,
            "rt_bytes_out": self.rt_bytes_out,
            "rt_partial_frames": self.rt_partial_frames,
        }


#: The process-global counter panel used by the ORB wire path.
COUNTERS = PerfCounters()


def snapshot(
    orb: Any = None, world: Any = None, kernel: Any = None
) -> Dict[str, Any]:
    """One-call instrument panel: global counters, optionally one ORB's.

    Without arguments this is :meth:`PerfCounters.snapshot` on the
    global panel.  Given an ORB, the per-broker figures that used to
    require poking attributes by hand — request totals, oneway
    delivery failures, backpressure hints, the AMI pipeline's
    in-flight state — are merged in alongside the pool hit/miss and
    pipeline counters.

    Given a world (or an ORB, whose world is used automatically), the
    netsim instrument panels are merged in too: ``kernel_*`` keys carry
    events fired, heap compactions and the cancelled-pending/live-event
    high-water marks; ``net_*`` keys carry traffic totals, the route
    cache hit rate and fluid-tier link accounting.  A control plane
    attached to the world (``world.control`` — see
    :meth:`repro.control.loop.ControlLoop.attach`) contributes the
    ``ctl_*`` panel: tick/decision totals and per-kind actuation counts
    beyond the process-global ``ctl_*`` counters.

    Given a sharded kernel (``kernel=``, see
    :class:`repro.netsim.parallel.ShardedKernel`), its run stats merge
    in as ``kernel_shard_*``: events fired per shard, barrier count
    and per-shard barrier waits, the lookahead window and the
    cross-shard message total.  Asking for a world's panel reports the
    most recent completed sharded run in this process under the same
    keys.
    """
    merged = COUNTERS.snapshot()
    if orb is not None:
        merged.update(
            host=orb.host_name,
            requests_invoked=orb.requests_invoked,
            requests_received=orb.requests_received,
            oneway_failures=orb.oneway_failures,
            backpressure_hints_observed=orb.backpressure.hints_observed,
            ami_inflight=orb.ami.inflight,
            ami_inflight_peak=orb.ami.inflight_peak,
            ami_queued=orb.ami.queued,
        )
        if world is None:
            world = getattr(orb, "world", None)
    if world is not None:
        for key, value in world.kernel.stats().items():
            merged[f"kernel_{key}"] = value
        for key, value in world.network.stats().items():
            merged[f"net_{key}"] = value
        control = getattr(world, "control", None)
        if control is not None:
            for key, value in control.stats().items():
                merged[f"ctl_{key}"] = value
    # Sharded-kernel panel: an explicit kernel wins; asking for a
    # world's panel also reports the most recent completed sharded run
    # in this process.  The bare ``snapshot()`` stays exactly the
    # global counter panel.
    shard_stats: Dict[str, Any] = {}
    if kernel is not None:
        shard_stats = kernel.stats()
    elif world is not None:
        from repro.netsim.parallel.kernel import last_shard_stats

        shard_stats = last_shard_stats()
    for key, value in shard_stats.items():
        merged[f"kernel_shard_{key}"] = value
    return merged


class WireStats:
    """A wire observer accumulating message and byte totals for one ORB."""

    __slots__ = ("messages_in", "bytes_in", "messages_out", "bytes_out")

    def __init__(self) -> None:
        self.messages_in = 0
        self.bytes_in = 0
        self.messages_out = 0
        self.bytes_out = 0

    def __call__(self, direction: str, wire: bytes) -> None:
        if direction == "in":
            self.messages_in += 1
            self.bytes_in += len(wire)
        else:
            self.messages_out += 1
            self.bytes_out += len(wire)

    def attach(self, orb: Any) -> "WireStats":
        """Register on ``orb`` via the standard wire-observer hook."""
        orb.add_wire_observer(self)
        return self

    def detach(self, orb: Any) -> None:
        orb.remove_wire_observer(self)

    def snapshot(self) -> Dict[str, Any]:
        """This tap's traffic totals merged with the global counters."""
        merged = COUNTERS.snapshot()
        merged.update(
            messages_in=self.messages_in,
            bytes_in=self.bytes_in,
            messages_out=self.messages_out,
            bytes_out=self.bytes_out,
        )
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WireStats(in={self.messages_in}/{self.bytes_in}B, "
            f"out={self.messages_out}/{self.bytes_out}B)"
        )
