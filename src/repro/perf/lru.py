"""A small bounded LRU map for hot-path caches.

``functools.lru_cache`` cannot be used for the GIOP/IOR caches: the
keys are built from request data at call time, misses must be handled
inline (the caller encodes and then inserts), and tests need to reset
the cache.  This is the minimal dict-ordered implementation: Python
dicts preserve insertion order, so eviction pops the oldest entry and
hits are refreshed by re-inserting.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional


class LRUCache:
    """Bounded mapping with least-recently-used eviction."""

    __slots__ = ("_data", "maxsize", "hits", "misses")

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive: {maxsize}")
        self.maxsize = maxsize
        self._data: Dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed as most recent, or None."""
        data = self._data
        try:
            value = data.pop(key)
        except KeyError:
            self.misses += 1
            return None
        data[key] = value  # re-insert: now the newest entry
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.maxsize:
            del data[next(iter(data))]  # evict the oldest entry
        data[key] = value

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache({len(self._data)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
