"""The QoS manager: discovery → preference → binding in one call.

Ties together the infrastructure services of Section 2.2: the trader
finds candidate servers, their negotiation endpoints are interrogated
for current capabilities and prices, the client's preference contract
(Section 6 outlook, ref [5]) ranks the candidates, and the best one is
negotiated and bound.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.core.binding import (
    BindingError,
    QoSBinding,
    establish_qos,
    negotiation_stub_for,
)
from repro.core.contracts import Candidate, Contract
from repro.core.mediator import Mediator
from repro.core.negotiation import NegotiationFailed, Range
from repro.core.trading import NoMatch, TraderStub
from repro.orb.exceptions import SystemException
from repro.orb.ior import IOR


class NoAcceptableOffer(Exception):
    """No discovered server satisfies the preference contract."""


class Offer:
    """One concrete option: a server, a characteristic, its grantable level."""

    __slots__ = ("ior", "candidate")

    def __init__(self, ior: IOR, candidate: Candidate) -> None:
        self.ior = ior
        self.candidate = candidate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Offer({self.candidate!r} @ {self.ior.profile.host})"


#: Prices a characteristic's granted parameters; injected because price
#: models are deployment-specific (the paper's outlook leaves them open).
PriceFn = Callable[[str, Dict[str, float]], float]


def _free(characteristic: str, granted: Dict[str, float]) -> float:
    return 0.0


class QoSManager:
    """Client-side facade over trader + negotiation + contracts."""

    def __init__(self, orb: Any, trader: TraderStub, price_fn: PriceFn = _free):
        self.orb = orb
        self.trader = trader
        self.price_fn = price_fn

    # -- discovery -----------------------------------------------------

    def discover(self, service_type: str) -> List[IOR]:
        """All exported references of a service type (QoS-agnostic)."""
        try:
            return self.trader.query(service_type)
        except NoMatch:
            return []

    def collect_offers(self, service_type: str) -> List[Offer]:
        """Interrogate every discovered server for its grantable levels.

        For each server and each characteristic it offers, the server's
        *current preferred* grant (an unconstrained proposal) becomes a
        candidate, priced by the injected price function.  Unreachable
        servers are skipped.
        """
        offers: List[Offer] = []
        for ior in self.discover(service_type):
            if not ior.is_qos_aware:
                continue
            try:
                negotiation = negotiation_stub_for(self.orb, ior)
                for characteristic in negotiation.characteristics():
                    capabilities = negotiation.capabilities(characteristic)
                    granted = {
                        name: value_range.preferred
                        for name, value_range in capabilities.items()
                    }
                    price = self.price_fn(characteristic, granted)
                    offers.append(
                        Offer(ior, Candidate(characteristic, granted, price))
                    )
            except (SystemException, BindingError):
                continue
        return offers

    # -- selection + binding ------------------------------------------------

    def select(
        self, service_type: str, contract: Contract
    ) -> Tuple[Offer, float]:
        """The contract's preferred offer, or raise :class:`NoAcceptableOffer`."""
        offers = self.collect_offers(service_type)
        best: Optional[Offer] = None
        best_score = 0.0
        for offer in offers:
            score = contract.score([offer.candidate])
            if score > best_score:
                best, best_score = offer, score
        if best is None:
            raise NoAcceptableOffer(
                f"none of {len(offers)} offer(s) for {service_type!r} "
                f"satisfies the contract"
            )
        return best, best_score

    def select_and_bind(
        self,
        service_type: str,
        contract: Contract,
        stub_class: Type[Any],
        mediator_factory: Optional[Callable[[str], Optional[Mediator]]] = None,
        requirements: Optional[Dict[str, Dict[str, Range]]] = None,
    ) -> Tuple[Any, QoSBinding, float]:
        """Discover, choose per contract, negotiate, weave; one call.

        ``mediator_factory(characteristic)`` supplies the client-side
        mediator for whichever characteristic wins; ``requirements``
        optionally maps characteristic → requirement ranges used at
        negotiation time (the contract's choice narrows which entry
        applies).

        Returns ``(stub, binding, score)``.
        """
        offer, score = self.select(service_type, contract)
        stub = stub_class(self.orb, offer.ior)
        characteristic = offer.candidate.characteristic
        mediator = mediator_factory(characteristic) if mediator_factory else None
        try:
            binding = establish_qos(
                stub,
                characteristic,
                (requirements or {}).get(characteristic),
                mediator=mediator,
            )
        except NegotiationFailed as error:
            raise NoAcceptableOffer(
                f"chosen offer {offer!r} failed negotiation: {error}"
            ) from error
        return stub, binding, score
