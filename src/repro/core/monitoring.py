"""QoS monitoring: measured values vs. agreed values.

Section 2.1: "It also provides infrastructure services such as for the
negotiation of QoS agreements and for monitoring them."  The monitor
keeps sliding windows of observed metrics per agreement, checks them
against declared expectations, and notifies listeners on violations —
the trigger input for adaptation (E10).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.negotiation import Agreement

#: Comparators usable in expectations.
_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    "<=": lambda observed, bound: observed <= bound,
    ">=": lambda observed, bound: observed >= bound,
    "<": lambda observed, bound: observed < bound,
    ">": lambda observed, bound: observed > bound,
}


class Expectation:
    """A bound on an observed metric, e.g. latency <= 0.050."""

    __slots__ = ("metric", "comparator", "bound", "aggregate")

    def __init__(
        self, metric: str, comparator: str, bound: float, aggregate: str = "mean"
    ) -> None:
        if comparator not in _COMPARATORS:
            raise ValueError(
                f"unknown comparator {comparator!r}; use one of "
                f"{sorted(_COMPARATORS)}"
            )
        if aggregate not in ("mean", "max", "min", "p95", "last"):
            raise ValueError(f"unknown aggregate {aggregate!r}")
        self.metric = metric
        self.comparator = comparator
        self.bound = bound
        self.aggregate = aggregate

    def holds(self, value: float) -> bool:
        return _COMPARATORS[self.comparator](value, self.bound)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Expectation({self.aggregate}({self.metric}) {self.comparator} {self.bound})"


class Violation:
    """One detected expectation breach."""

    __slots__ = ("time", "expectation", "observed")

    def __init__(self, time: float, expectation: Expectation, observed: float):
        self.time = time
        self.expectation = expectation
        self.observed = observed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Violation(at {self.time:.3f}: "
            f"{self.expectation!r} observed {self.observed:.6f})"
        )


class MetricWindow:
    """Fixed-size sliding window with simple aggregates."""

    def __init__(self, size: int = 50) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive: {size}")
        self._values: Deque[float] = deque(maxlen=size)
        self.total_observations = 0

    def observe(self, value: float) -> None:
        self._values.append(value)
        self.total_observations += 1

    def __len__(self) -> int:
        return len(self._values)

    def mean(self) -> float:
        if not self._values:
            return math.nan
        return sum(self._values) / len(self._values)

    def max(self) -> float:
        return max(self._values) if self._values else math.nan

    def min(self) -> float:
        return min(self._values) if self._values else math.nan

    def last(self) -> float:
        return self._values[-1] if self._values else math.nan

    def p95(self) -> float:
        if not self._values:
            return math.nan
        ordered = sorted(self._values)
        index = min(len(ordered) - 1, int(math.ceil(0.95 * len(ordered))) - 1)
        return ordered[max(index, 0)]

    def aggregate(self, kind: str) -> float:
        return {
            "mean": self.mean,
            "max": self.max,
            "min": self.min,
            "p95": self.p95,
            "last": self.last,
        }[kind]()


class QoSMonitor:
    """Observes metrics for one agreement and reports violations."""

    def __init__(
        self,
        agreement: Agreement,
        clock: Any,
        window_size: int = 50,
        min_samples: int = 5,
    ) -> None:
        self.agreement = agreement
        self.clock = clock
        self.window_size = window_size
        #: Don't judge before this many samples arrived (warm-up).
        self.min_samples = min_samples
        self._windows: Dict[str, MetricWindow] = {}
        self._expectations: List[Expectation] = []
        self._listeners: List[Callable[[Violation], None]] = []
        self.violations: List[Violation] = []

    def expect(self, expectation: Expectation) -> "QoSMonitor":
        self._expectations.append(expectation)
        return self

    def on_violation(self, listener: Callable[[Violation], None]) -> "QoSMonitor":
        self._listeners.append(listener)
        return self

    def window(self, metric: str) -> MetricWindow:
        if metric not in self._windows:
            self._windows[metric] = MetricWindow(self.window_size)
        return self._windows[metric]

    def observe(self, metric: str, value: float) -> List[Violation]:
        """Record one sample and evaluate the expectations on its metric."""
        self.window(metric).observe(value)
        return self._check(metric)

    def _check(self, metric: str) -> List[Violation]:
        found: List[Violation] = []
        window = self._windows.get(metric)
        if window is None or len(window) < self.min_samples:
            return found
        for expectation in self._expectations:
            if expectation.metric != metric:
                continue
            observed = window.aggregate(expectation.aggregate)
            if not expectation.holds(observed):
                violation = Violation(self.clock.now, expectation, observed)
                found.append(violation)
                self.violations.append(violation)
                for listener in self._listeners:
                    listener(violation)
        return found

    def healthy(self) -> bool:
        """Do all expectations currently hold (with enough samples)?"""
        for expectation in self._expectations:
            window = self._windows.get(expectation.metric)
            if window is None or len(window) < self.min_samples:
                continue
            if not expectation.holds(window.aggregate(expectation.aggregate)):
                return False
        return True

    def report(self) -> Dict[str, Dict[str, float]]:
        """Aggregate snapshot per metric."""
        return {
            metric: {
                "mean": window.mean(),
                "min": window.min(),
                "max": window.max(),
                "p95": window.p95(),
                "samples": float(window.total_observations),
            }
            for metric, window in self._windows.items()
        }


class MeasuringMediator:
    """Wrap any mediator (or none) with round-trip latency measurement.

    Installs like a mediator; feeds ``latency`` samples into a monitor
    on every call.  Stacking mediators this way is the MAQS answer to
    combining concerns without touching application code.
    """

    characteristic = "__measuring__"

    def __init__(self, monitor: QoSMonitor, inner: Optional[Any] = None) -> None:
        self.monitor = monitor
        self.inner = inner
        self.calls_intercepted = 0

    def invoke(self, stub: Any, operation: str, args: Tuple[Any, ...]) -> Any:
        self.calls_intercepted += 1
        clock = stub._orb.clock
        started = clock.now
        try:
            if self.inner is not None:
                return self.inner.invoke(stub, operation, args)
            return stub._invoke(operation, args)
        finally:
            self.monitor.observe("latency", clock.now - started)

    def install(self, stub: Any) -> "MeasuringMediator":
        stub._set_mediator(self)
        return self
