"""QoS negotiation: offers, capabilities, agreements, renegotiation.

Section 3 (QoS adaptation): "there is no system wide view on the QoS
capability of a system but each QoS agreement has to be negotiated
independently.  Moreover, varying resource availability should be
addressed through adaption, i.e. renegotiations if the resource
availability in- or decreases."

The protocol is a classic propose/counter/commit exchange:

1. the client queries the server's **capabilities** for a
   characteristic (per-parameter value ranges, possibly shrinking with
   current resource availability);
2. the client **proposes** its requirement ranges; the server answers
   with a **counter** — the best values it can grant now;
3. if the counter satisfies the client's minima, the client
   **commits**; the server activates the characteristic's QoS
   implementation (the Figure 2 delegate exchange) and an
   :class:`Agreement` is created.

Renegotiation reruns 2-3 under an existing agreement id, bumping its
epoch.  All negotiation traffic flows through the ORB as plain
requests — exactly the "initial negotiation" path of Figure 3, before
any QoS module is assigned.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.orb.exceptions import UserException, register_user_exception
from repro.orb.servant import Servant
from repro.orb.stub import Stub


@register_user_exception
class NegotiationFailed(UserException):
    """The server cannot satisfy the proposed requirement."""

    repo_id = "IDL:maqs/Negotiation/NegotiationFailed:1.0"


@register_user_exception
class UnknownAgreement(UserException):
    """No agreement exists under the given id."""

    repo_id = "IDL:maqs/Negotiation/UnknownAgreement:1.0"


class Range:
    """An acceptable closed interval for one QoS parameter.

    ``preferred`` defaults to the maximum — clients generally want as
    much of a QoS dimension as they can get; pass an explicit value
    when less is better (e.g. staleness bounds).
    """

    __slots__ = ("minimum", "maximum", "preferred")

    def __init__(
        self, minimum: float, maximum: float, preferred: Optional[float] = None
    ) -> None:
        if minimum > maximum:
            raise ValueError(f"empty range [{minimum}, {maximum}]")
        self.minimum = minimum
        self.maximum = maximum
        self.preferred = maximum if preferred is None else preferred
        if not minimum <= self.preferred <= maximum:
            raise ValueError(
                f"preferred {self.preferred} outside [{minimum}, {maximum}]"
            )

    def clamp(self, value: float) -> float:
        return max(self.minimum, min(self.maximum, value))

    def contains(self, value: float) -> bool:
        return self.minimum <= value <= self.maximum

    def intersects(self, other: "Range") -> bool:
        return self.minimum <= other.maximum and other.minimum <= self.maximum

    def as_wire(self) -> Dict[str, float]:
        return {
            "min": self.minimum,
            "max": self.maximum,
            "preferred": self.preferred,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, float]) -> "Range":
        return cls(data["min"], data["max"], data.get("preferred"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Range({self.minimum}, {self.maximum}, pref={self.preferred})"


class QoSOffer:
    """A client's requirement for one characteristic."""

    def __init__(self, characteristic: str, requirements: Dict[str, Range]) -> None:
        self.characteristic = characteristic
        self.requirements = dict(requirements)

    def satisfied_by(self, granted: Dict[str, float]) -> bool:
        """Does a grant meet every requirement range?"""
        return all(
            name in granted and required.contains(granted[name])
            for name, required in self.requirements.items()
        )


class Agreement:
    """A committed QoS agreement between one client and one server object."""

    _ids = itertools.count(1)

    def __init__(self, characteristic: str, granted: Dict[str, float]) -> None:
        self.agreement_id = next(Agreement._ids)
        self.characteristic = characteristic
        self.granted = dict(granted)
        self.epoch = 1
        self.active = True

    def renegotiated(self, granted: Dict[str, float]) -> None:
        self.granted = dict(granted)
        self.epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "terminated"
        return (
            f"Agreement(#{self.agreement_id} {self.characteristic} "
            f"{self.granted} epoch={self.epoch}, {state})"
        )


#: Capability provider: () -> {parameter -> Range}.  Dynamic so that the
#: offered ranges can shrink/grow with resource availability.
CapabilityFn = Callable[[], Dict[str, Range]]


class CharacteristicSupport:
    """Everything the server side needs to offer one characteristic.

    ``admission`` is an optional gate consulted before any commit (or
    renegotiation): called with the granted values, it returns ``None``
    to accept or a refusal message — the hook through which the request
    scheduler's admission controller vetoes contracts the server could
    not enforce (e.g. promised rates beyond its capacity).
    """

    def __init__(
        self,
        characteristic: str,
        capabilities: CapabilityFn,
        on_commit: Callable[[Dict[str, float]], None],
        on_terminate: Optional[Callable[[], None]] = None,
        admission: Optional[Callable[[Dict[str, float]], Optional[str]]] = None,
    ) -> None:
        self.characteristic = characteristic
        self.capabilities = capabilities
        self.on_commit = on_commit
        self.on_terminate = on_terminate
        self.admission = admission


class NegotiationServant(Servant):
    """Server-side negotiation endpoint, one per QoS-enabled object."""

    _repo_id = "IDL:maqs/Negotiation:1.0"

    def __init__(self) -> None:
        self._support: Dict[str, CharacteristicSupport] = {}
        self._agreements: Dict[int, Agreement] = {}

    # -- wiring (server-local, not remote) --------------------------------

    def add_support(self, support: CharacteristicSupport) -> None:
        self._support[support.characteristic] = support

    def agreement(self, agreement_id: int) -> Agreement:
        try:
            return self._agreements[agreement_id]
        except KeyError:
            raise UnknownAgreement(
                f"no agreement #{agreement_id}", agreement_id=agreement_id
            ) from None

    # -- remote operations ---------------------------------------------------

    def characteristics(self) -> List[str]:
        """Characteristics available for negotiation."""
        return sorted(self._support)

    def capabilities(self, characteristic: str) -> Dict[str, Dict[str, float]]:
        """Current per-parameter ranges for a characteristic."""
        support = self._require(characteristic)
        return {
            name: value_range.as_wire()
            for name, value_range in support.capabilities().items()
        }

    def propose(
        self, characteristic: str, requirements: Dict[str, Dict[str, float]]
    ) -> Dict[str, float]:
        """Counter a proposal with the best values grantable now.

        Raises :class:`NegotiationFailed` when any requested range
        misses the capability range entirely.
        """
        support = self._require(characteristic)
        capabilities = support.capabilities()
        counter: Dict[str, float] = {}
        for name, wire_range in requirements.items():
            requested = Range.from_wire(wire_range)
            capability = capabilities.get(name)
            if capability is None:
                raise NegotiationFailed(
                    f"characteristic {characteristic!r} has no parameter {name!r}",
                    parameter=name,
                )
            if not capability.intersects(requested):
                raise NegotiationFailed(
                    f"parameter {name!r}: requested "
                    f"[{requested.minimum}, {requested.maximum}] does not "
                    f"meet capability [{capability.minimum}, "
                    f"{capability.maximum}]",
                    parameter=name,
                )
            counter[name] = capability.clamp(requested.preferred)
        # Parameters the client did not constrain are granted at the
        # server's preferred level.
        for name, capability in capabilities.items():
            counter.setdefault(name, capability.preferred)
        return counter

    def commit(
        self, characteristic: str, granted: Dict[str, float]
    ) -> int:
        """Create the agreement and activate the characteristic."""
        support = self._require(characteristic)
        self._check_admission(support, granted)
        agreement = Agreement(characteristic, granted)
        self._agreements[agreement.agreement_id] = agreement
        support.on_commit(granted)
        return agreement.agreement_id

    def renegotiate(
        self, agreement_id: int, requirements: Dict[str, Dict[str, float]]
    ) -> Dict[str, float]:
        """Re-run propose/commit under an existing agreement."""
        agreement = self.agreement(agreement_id)
        support = self._support[agreement.characteristic]
        counter = self.propose(agreement.characteristic, requirements)
        self._check_admission(support, counter)
        agreement.renegotiated(counter)
        support.on_commit(counter)
        return counter

    def terminate(self, agreement_id: int) -> None:
        """End an agreement; the characteristic is deactivated."""
        agreement = self.agreement(agreement_id)
        agreement.active = False
        del self._agreements[agreement_id]
        support = self._support[agreement.characteristic]
        if support.on_terminate is not None:
            support.on_terminate()

    def agreement_epoch(self, agreement_id: int) -> int:
        return self.agreement(agreement_id).epoch

    @staticmethod
    def _check_admission(
        support: CharacteristicSupport, granted: Dict[str, float]
    ) -> None:
        if support.admission is not None:
            refusal = support.admission(granted)
            if refusal:
                raise NegotiationFailed(refusal, parameter="")

    def _require(self, characteristic: str) -> CharacteristicSupport:
        support = self._support.get(characteristic)
        if support is None:
            raise NegotiationFailed(
                f"characteristic {characteristic!r} is not offered; "
                f"available: {self.characteristics()}",
                parameter="",
            )
        return support


class NegotiationStub(Stub):
    """Client-side proxy for a negotiation endpoint."""

    def characteristics(self) -> List[str]:
        return list(self._call("characteristics"))

    def capabilities(self, characteristic: str) -> Dict[str, Range]:
        wire = self._call("capabilities", characteristic)
        return {name: Range.from_wire(data) for name, data in wire.items()}

    def propose(self, offer: QoSOffer) -> Dict[str, float]:
        wire = {
            name: value_range.as_wire()
            for name, value_range in offer.requirements.items()
        }
        return dict(self._call("propose", offer.characteristic, wire))

    def commit(self, characteristic: str, granted: Dict[str, float]) -> int:
        return self._call("commit", characteristic, granted)

    def renegotiate(
        self, agreement_id: int, requirements: Dict[str, Range]
    ) -> Dict[str, float]:
        wire = {
            name: value_range.as_wire()
            for name, value_range in requirements.items()
        }
        return dict(self._call("renegotiate", agreement_id, wire))

    def terminate(self, agreement_id: int) -> None:
        self._call("terminate", agreement_id)

    def agreement_epoch(self, agreement_id: int) -> int:
        return self._call("agreement_epoch", agreement_id)


class Negotiator:
    """Client-side negotiation driver."""

    def __init__(self, negotiation_stub: NegotiationStub) -> None:
        self.stub = negotiation_stub
        self.rounds = 0

    def negotiate(self, offer: QoSOffer) -> Tuple[Agreement, Dict[str, float]]:
        """Run propose → validate → commit; returns (agreement, granted).

        Raises :class:`NegotiationFailed` if the server's counter does
        not satisfy the offer's minima.
        """
        counter = self.stub.propose(offer)
        self.rounds += 1
        if not offer.satisfied_by(counter):
            raise NegotiationFailed(
                f"counter {counter} does not satisfy {offer.requirements}",
                parameter="",
            )
        agreement_id = self.stub.commit(offer.characteristic, counter)
        agreement = Agreement(offer.characteristic, counter)
        agreement.agreement_id = agreement_id
        return agreement, counter

    def renegotiate(
        self, agreement: Agreement, requirements: Dict[str, Range]
    ) -> Dict[str, float]:
        """Renegotiate an existing agreement in place."""
        granted = self.stub.renegotiate(agreement.agreement_id, requirements)
        self.rounds += 1
        agreement.renegotiated(granted)
        return granted
