"""QoS accounting.

Section 2.2: "infrastructure services for e.g. trading, negotiation,
monitoring and accounting should be an integral part of the
framework", and Section 6: "additional support is needed at runtime in
order to allow negotiation and accounting of QoS enabled
communication.  ... the price is embraced."

Usage is metered per agreement; a tariff prices it.  The
:class:`MeteringMediator` stacks on any mediator chain and records
every intercepted call without touching application code.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.negotiation import Agreement


class Tariff:
    """Linear price model: fixed setup plus per-call and per-second fees."""

    __slots__ = ("setup_fee", "per_call", "per_second")

    def __init__(
        self, setup_fee: float = 0.0, per_call: float = 0.0, per_second: float = 0.0
    ) -> None:
        self.setup_fee = setup_fee
        self.per_call = per_call
        self.per_second = per_second

    def price(self, calls: int, busy_seconds: float) -> float:
        return self.setup_fee + calls * self.per_call + busy_seconds * self.per_second


class UsageRecord:
    """Accumulated usage for one agreement."""

    __slots__ = ("agreement_id", "characteristic", "calls", "busy_seconds", "failures")

    def __init__(self, agreement_id: int, characteristic: str) -> None:
        self.agreement_id = agreement_id
        self.characteristic = characteristic
        self.calls = 0
        self.busy_seconds = 0.0
        self.failures = 0

    def record(self, duration: float, failed: bool = False) -> None:
        self.calls += 1
        self.busy_seconds += duration
        if failed:
            self.failures += 1


class AccountingService:
    """Tracks usage and produces invoices per agreement."""

    def __init__(self) -> None:
        self._records: Dict[int, UsageRecord] = {}
        self._tariffs: Dict[int, Tariff] = {}

    def open_account(self, agreement: Agreement, tariff: Optional[Tariff] = None):
        record = UsageRecord(agreement.agreement_id, agreement.characteristic)
        self._records[agreement.agreement_id] = record
        self._tariffs[agreement.agreement_id] = tariff or Tariff()
        return record

    def record(self, agreement_id: int, duration: float, failed: bool = False) -> None:
        try:
            self._records[agreement_id].record(duration, failed)
        except KeyError:
            raise KeyError(f"no account for agreement #{agreement_id}") from None

    def usage(self, agreement_id: int) -> UsageRecord:
        return self._records[agreement_id]

    def invoice(self, agreement_id: int) -> Dict[str, float]:
        record = self._records[agreement_id]
        tariff = self._tariffs[agreement_id]
        return {
            "calls": float(record.calls),
            "busy_seconds": record.busy_seconds,
            "failures": float(record.failures),
            "amount": tariff.price(record.calls, record.busy_seconds),
        }

    def total_billed(self) -> float:
        return sum(
            self._tariffs[aid].price(rec.calls, rec.busy_seconds)
            for aid, rec in self._records.items()
        )


class MeteringMediator:
    """Mediator-stackable usage meter for one agreement."""

    characteristic = "__metering__"

    def __init__(
        self,
        accounting: AccountingService,
        agreement: Agreement,
        inner: Optional[Any] = None,
    ) -> None:
        self.accounting = accounting
        self.agreement = agreement
        self.inner = inner
        self.calls_intercepted = 0

    def invoke(self, stub: Any, operation: str, args: Tuple[Any, ...]) -> Any:
        self.calls_intercepted += 1
        clock = stub._orb.clock
        started = clock.now
        failed = False
        try:
            if self.inner is not None:
                return self.inner.invoke(stub, operation, args)
            return stub._invoke(operation, args)
        except Exception:
            failed = True
            raise
        finally:
            self.accounting.record(
                self.agreement.agreement_id, clock.now - started, failed
            )

    def install(self, stub: Any) -> "MeteringMediator":
        stub._set_mediator(self)
        return self
