"""Hierarchies of preference contracts.

Section 6 (outlook): "The rating of which QoS characteristic and its
level is preferable to another is depending on the client.  There is
no system wide shared view on QoS levels especially when the price is
embraced.  Therefore, client preferences have to be incorporated in
the negotiation process."  The cited companion paper (Becker, Geihs &
Gramberg: "Representing Quality of Service Preferences by Hierarchies
of Contracts") models preferences as a tree; this module reproduces
that structure.

- **Leaf** contracts score one characteristic's granted parameter
  values with per-parameter utility functions and a weight.
- **Composite** contracts combine children: ``all`` (weighted sum,
  every child must be satisfiable), ``any`` (best child wins),
  ``priority`` (first satisfiable child in order wins).
- A **budget** caps the acceptable price; candidates above it score
  zero.

:func:`choose` ranks candidate (characteristic, granted, price)
triples and picks the client's preferred one — the hook the
negotiation process uses to incorporate preferences.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Maps a granted parameter value to utility in [0, 1].
UtilityFn = Callable[[float], float]


def linear_utility(worst: float, best: float) -> UtilityFn:
    """Utility rising linearly from 0 at ``worst`` to 1 at ``best``.

    Works in both directions: pass ``worst > best`` for
    smaller-is-better parameters (latency, staleness).
    """
    if worst == best:
        raise ValueError("worst and best must differ")

    def utility(value: float) -> float:
        fraction = (value - worst) / (best - worst)
        return max(0.0, min(1.0, fraction))

    return utility


def step_utility(threshold: float, greater_is_better: bool = True) -> UtilityFn:
    """All-or-nothing utility at a threshold."""

    def utility(value: float) -> float:
        if greater_is_better:
            return 1.0 if value >= threshold else 0.0
        return 1.0 if value <= threshold else 0.0

    return utility


class Candidate:
    """One negotiable option: a characteristic at a granted level and price."""

    __slots__ = ("characteristic", "granted", "price")

    def __init__(
        self, characteristic: str, granted: Dict[str, float], price: float = 0.0
    ) -> None:
        self.characteristic = characteristic
        self.granted = dict(granted)
        self.price = price

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Candidate({self.characteristic}, {self.granted}, price={self.price})"


class Contract:
    """Base node of the preference hierarchy."""

    def __init__(self, weight: float = 1.0) -> None:
        if weight < 0.0:
            raise ValueError(f"weight must be non-negative: {weight}")
        self.weight = weight

    def score(self, candidates: Sequence[Candidate]) -> float:
        """Utility in [0, 1] of the best way to satisfy this node."""
        raise NotImplementedError

    def satisfied(self, candidates: Sequence[Candidate]) -> bool:
        return self.score(candidates) > 0.0


class LeafContract(Contract):
    """Preference for one characteristic with per-parameter utilities."""

    def __init__(
        self,
        characteristic: str,
        utilities: Dict[str, UtilityFn],
        weight: float = 1.0,
        budget: Optional[float] = None,
    ) -> None:
        super().__init__(weight)
        self.characteristic = characteristic
        self.utilities = dict(utilities)
        self.budget = budget

    def score_candidate(self, candidate: Candidate) -> float:
        if candidate.characteristic != self.characteristic:
            return 0.0
        if self.budget is not None and candidate.price > self.budget:
            return 0.0
        if not self.utilities:
            return 1.0
        total = 0.0
        for parameter, utility in self.utilities.items():
            value = candidate.granted.get(parameter)
            if value is None:
                return 0.0
            total += utility(value)
        return total / len(self.utilities)

    def score(self, candidates: Sequence[Candidate]) -> float:
        return max((self.score_candidate(c) for c in candidates), default=0.0)

    def best(self, candidates: Sequence[Candidate]) -> Optional[Candidate]:
        scored = [(self.score_candidate(c), c) for c in candidates]
        scored = [(s, c) for s, c in scored if s > 0.0]
        if not scored:
            return None
        return max(scored, key=lambda pair: pair[0])[1]


class CompositeContract(Contract):
    """Combines child contracts: ``all``, ``any`` or ``priority``."""

    MODES = ("all", "any", "priority")

    def __init__(
        self, mode: str, children: Sequence[Contract], weight: float = 1.0
    ) -> None:
        super().__init__(weight)
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; use one of {self.MODES}")
        if not children:
            raise ValueError("composite contract needs children")
        self.mode = mode
        self.children = list(children)

    def score(self, candidates: Sequence[Candidate]) -> float:
        scores = [child.score(candidates) for child in self.children]
        if self.mode == "all":
            if any(score == 0.0 for score in scores):
                return 0.0
            total_weight = sum(child.weight for child in self.children)
            if total_weight == 0.0:
                return 0.0
            weighted = sum(
                child.weight * score
                for child, score in zip(self.children, scores)
            )
            return weighted / total_weight
        if self.mode == "any":
            return max(scores)
        # priority: the first satisfiable child decides, discounted by
        # how deep down the priority list it sits.
        for rank, score in enumerate(scores):
            if score > 0.0:
                return score / (1 + rank)
        return 0.0


def choose(
    contract: Contract, candidates: Sequence[Candidate]
) -> Tuple[Optional[Candidate], float]:
    """Pick the candidate the contract prefers.

    Returns ``(candidate, score)``; ``(None, 0.0)`` when nothing is
    acceptable.  For composite contracts the choice is the single
    candidate whose presence yields the highest hierarchy score —
    clients negotiate one characteristic at a time (single active
    delegate, Figure 2).
    """
    best_candidate: Optional[Candidate] = None
    best_score = 0.0
    for candidate in candidates:
        score = contract.score([candidate])
        if score > best_score:
            best_candidate, best_score = candidate, score
    return best_candidate, best_score


def rank(
    contract: Contract, candidates: Sequence[Candidate]
) -> List[Tuple[Candidate, float]]:
    """All acceptable candidates, best first."""
    scored = [(c, contract.score([c])) for c in candidates]
    acceptable = [(c, s) for c, s in scored if s > 0.0]
    acceptable.sort(key=lambda pair: pair[1], reverse=True)
    return acceptable
