"""MAQS core runtime: the two separations of concern.

Application-layer weaving (Section 3):

- :mod:`repro.core.mediator` — client-side mediators installed in stubs
  as delegates.
- :mod:`repro.core.qos_skeleton` — server-side QoS skeleton runtime:
  delegate exchange, prolog/epilog, BAD_QOS for non-negotiated
  operations (Figure 2).
- :mod:`repro.core.binding` — assigning a characteristic to a
  client/server relationship.

Runtime infrastructure (Sections 2.2 and 6):

- :mod:`repro.core.negotiation` — offers, agreements, renegotiation.
- :mod:`repro.core.monitoring` — measured-vs-agreed violation tracking.
- :mod:`repro.core.adaptation` — renegotiation on changing resources.
- :mod:`repro.core.accounting` / :mod:`repro.core.trading` — usage
  records and characteristic discovery.
- :mod:`repro.core.contracts` — hierarchies of preference contracts
  (the outlook of Section 6, ref [5]).
- :mod:`repro.core.catalog` — the QoS characteristics catalog
  ("a catalog similar to those for design patterns", Section 6).
"""

from repro.core.binding import QoSBinding, QoSProvider, establish_qos
from repro.core.manager import QoSManager
from repro.core.mediator import CHARACTERISTIC_CONTEXT, Mediator, MediatorChain
from repro.core.negotiation import Agreement, QoSOffer, Range
from repro.core.qos_skeleton import QoSImplementation, QoSServerMixin

__all__ = [
    "Agreement",
    "CHARACTERISTIC_CONTEXT",
    "Mediator",
    "MediatorChain",
    "QoSBinding",
    "QoSImplementation",
    "QoSManager",
    "QoSOffer",
    "QoSProvider",
    "QoSServerMixin",
    "Range",
    "establish_qos",
]
