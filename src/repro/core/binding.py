"""QoS binding: attributing a client/server relationship with QoS.

Section 3 (QoS binding): "in order to attribute the interactions
between client and service with a distinct QoS provision an assignment
of a QoS characteristic to the client/server relationship has to be
established.  This assignment can vary in time ... and in granularity".
Section 3.2 fixes the granularity: **interfaces only**.

Two pieces live here:

- :class:`QoSProvider` — server-side wiring: declares which
  characteristics a servant supports (implementation + capabilities +
  optional transport module), activates the object with the MAQS QoS
  tag, and stands up the negotiation endpoint.
- :func:`establish_qos` — client-side binding: negotiates an
  agreement, installs the mediator in the stub, assigns and configures
  the transport module, and returns a :class:`QoSBinding` that can be
  renegotiated or released at runtime (assignment "can vary in time").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.mediator import CHARACTERISTIC_CONTEXT, Mediator
from repro.core.negotiation import (
    Agreement,
    CharacteristicSupport,
    NegotiationServant,
    NegotiationStub,
    Negotiator,
    QoSOffer,
    Range,
)
from repro.core.qos_skeleton import QoSImplementation
from repro.orb.ior import IOR, QOS_TAG, TaggedComponent
from repro.orb.modules.base import binding_key
from repro.orb.stub import Stub
from repro.sched.scheduler import BINDING_CONTEXT, CLASS_CONTEXT


class BindingError(Exception):
    """Raised on invalid binding requests (granularity, unknown QoS, ...)."""


class _SupportEntry:
    __slots__ = (
        "impl",
        "capabilities",
        "module_name",
        "configure_module",
        "sched_class",
    )

    def __init__(
        self,
        impl: QoSImplementation,
        capabilities: Dict[str, Range],
        module_name: Optional[str],
        configure_module: Optional[Callable[..., None]],
        sched_class: Optional[str] = None,
    ) -> None:
        self.impl = impl
        self.capabilities = capabilities
        self.module_name = module_name
        self.configure_module = configure_module
        self.sched_class = sched_class


class QoSProvider:
    """Server-side assembly of a QoS-enabled object."""

    def __init__(self, world: Any, host_name: str, servant: Any) -> None:
        self.world = world
        self.host_name = host_name
        self.servant = servant
        self.orb = world.orb(host_name)
        self._entries: Dict[str, _SupportEntry] = {}
        self._negotiation = NegotiationServant()
        self.ior: Optional[IOR] = None
        self.negotiation_ior: Optional[IOR] = None

    def support(
        self,
        characteristic: str,
        impl: QoSImplementation,
        capabilities: Optional[Dict[str, Range]] = None,
        capabilities_fn: Optional[Callable[[], Dict[str, Range]]] = None,
        module_name: Optional[str] = None,
        sched_class: Optional[str] = None,
    ) -> "QoSProvider":
        """Declare support for a characteristic.

        ``capabilities`` gives static parameter ranges;
        ``capabilities_fn`` a dynamic provider (e.g. consulting the
        resource manager).  ``module_name`` names the transport module
        clients of this characteristic should be carried by.
        ``sched_class`` names the request-scheduler class requests
        bound under this characteristic are served in; committing an
        agreement then also binds the granted ``rate``/``delay`` into
        that class's admission contract, and commits are vetoed when
        the scheduler cannot cover the promised rate.
        """
        if impl.characteristic != characteristic:
            raise BindingError(
                f"implementation is for {impl.characteristic!r}, "
                f"not {characteristic!r}"
            )
        assigned = getattr(self.servant, "_qos_signatures", {})
        if characteristic not in assigned:
            raise BindingError(
                f"servant does not assign characteristic {characteristic!r} "
                f"(QIDL 'provides' is the only assignment granularity)"
            )
        static = dict(capabilities or {})
        provider = capabilities_fn if capabilities_fn is not None else (lambda: static)
        self.servant.set_qos_impl(impl)
        self._negotiation.add_support(
            CharacteristicSupport(
                characteristic,
                provider,
                on_commit=self._commit_fn(characteristic, impl),
                on_terminate=lambda: self.servant.activate_qos(None),
                admission=self._admission_fn(characteristic),
            )
        )
        self._entries[characteristic] = _SupportEntry(
            impl, static, module_name, None, sched_class
        )
        return self

    def _commit_fn(
        self, characteristic: str, impl: QoSImplementation
    ) -> Callable[[Dict[str, float]], None]:
        def commit(granted: Dict[str, float]) -> None:
            # Apply granted parameter values through the generated
            # accessors, then exchange the delegate (Figure 2).
            for name, value in granted.items():
                setter = getattr(impl, f"set_{name}", None)
                if callable(setter):
                    setter(_coerce_like(impl, name, value))
            self.servant.activate_qos(characteristic)
            # Enforcement side: tie the agreement into the request
            # scheduler so the negotiated rate/delay is what admission
            # control and deadline shedding actually apply.
            entry = self._entries.get(characteristic)
            scheduler = self.orb.scheduler
            if scheduler is not None and entry is not None and entry.sched_class:
                scheduler.ensure_class(entry.sched_class)
                scheduler.map_characteristic(characteristic, entry.sched_class)
                scheduler.bind_contract(entry.sched_class, granted)

        return commit

    def _admission_fn(
        self, characteristic: str
    ) -> Callable[[Dict[str, float]], Optional[str]]:
        def admission(granted: Dict[str, float]) -> Optional[str]:
            entry = self._entries.get(characteristic)
            scheduler = self.orb.scheduler
            if scheduler is None or entry is None or not entry.sched_class:
                return None
            rate = granted.get("rate")
            if not rate:
                return None
            cls = scheduler.find_class(entry.sched_class)
            committed = cls.rate if cls is not None and cls.rate else 0.0
            if not scheduler.admissible_rate(float(rate) - committed):
                return (
                    f"admission control: committing {rate}/s for class "
                    f"{entry.sched_class!r} would exceed the server "
                    f"capacity of {scheduler.capacity_rps}/s"
                )
            return None

        return admission

    def module_for(self, characteristic: str) -> Optional[str]:
        entry = self._entries.get(characteristic)
        return entry.module_name if entry else None

    def activate(self, object_key: Optional[str] = None) -> IOR:
        """Activate servant + negotiation endpoint; returns the QoS-tagged IOR."""
        negotiation_ior = self.orb.poa.activate_object(
            self._negotiation,
            f"{object_key}-negotiation" if object_key else None,
        )
        component = TaggedComponent(
            QOS_TAG,
            {
                "characteristics": sorted(self._entries),
                "negotiator": negotiation_ior.profile.object_key,
                "modules": {
                    name: entry.module_name
                    for name, entry in self._entries.items()
                    if entry.module_name
                },
                "sched": {
                    name: entry.sched_class
                    for name, entry in self._entries.items()
                    if entry.sched_class
                },
            },
        )
        self.ior = self.orb.poa.activate_object(
            self.servant, object_key, components=[component]
        )
        self.negotiation_ior = negotiation_ior
        if self.orb.scheduler is not None:
            # Negotiation traffic is control plane: it must get through
            # precisely when the server is overloaded.
            self.orb.scheduler.mark_control(negotiation_ior.profile.object_key)
        return self.ior


def _coerce_like(impl: Any, name: str, value: float) -> Any:
    """Match the granted float against the impl's current attribute type."""
    current = getattr(impl, name, None)
    if isinstance(current, bool):
        return bool(value)
    if isinstance(current, int):
        return int(value)
    return value


def negotiation_stub_for(orb: Any, ior: IOR) -> NegotiationStub:
    """Build the negotiation stub recorded in a QoS-tagged IOR."""
    component = ior.component(QOS_TAG)
    if component is None:
        raise BindingError("target reference carries no MAQS QoS tag")
    negotiator_key = component.data.get("negotiator")
    if not negotiator_key:
        raise BindingError("QoS tag names no negotiation endpoint")
    negotiation_ior = IOR(
        "IDL:maqs/Negotiation:1.0",
        type(ior.profile)(ior.profile.host, ior.profile.port, negotiator_key),
    )
    return NegotiationStub(orb, negotiation_ior)


class QoSBinding:
    """A live client-side binding of one characteristic to one stub."""

    def __init__(
        self,
        stub: Stub,
        mediator: Optional[Mediator],
        agreement: Agreement,
        negotiator: Negotiator,
        module_name: Optional[str],
    ) -> None:
        self.stub = stub
        self.mediator = mediator
        self.agreement = agreement
        self.negotiator = negotiator
        self.module_name = module_name
        self.released = False

    @property
    def characteristic(self) -> str:
        return self.agreement.characteristic

    @property
    def granted(self) -> Dict[str, float]:
        return dict(self.agreement.granted)

    def renegotiate(self, requirements: Dict[str, Range]) -> Dict[str, float]:
        """Adapt the agreement to new requirements at runtime."""
        if self.released:
            raise BindingError("binding already released")
        granted = self.negotiator.renegotiate(self.agreement, requirements)
        if self.mediator is not None:
            _apply_parameters(self.mediator, granted)
        return granted

    def release(self) -> None:
        """Terminate the agreement and restore the plain stub."""
        if self.released:
            return
        self.negotiator.stub.terminate(self.agreement.agreement_id)
        self.stub._set_mediator(None)
        self.stub._contexts.pop(CHARACTERISTIC_CONTEXT, None)
        self.stub._contexts.pop(CLASS_CONTEXT, None)
        self.stub._contexts.pop(BINDING_CONTEXT, None)
        if self.module_name:
            self.stub._orb.qos_transport.unassign(self.stub._ior)
        self.released = True


def _apply_parameters(mediator: Mediator, granted: Dict[str, float]) -> None:
    for name, value in granted.items():
        if hasattr(mediator, name):
            setattr(mediator, name, _coerce_like(mediator, name, value))


def establish_qos(
    stub: Stub,
    characteristic: str,
    requirements: Optional[Dict[str, Range]] = None,
    mediator: Optional[Mediator] = None,
    configure_module: Optional[Callable[[Any, str], None]] = None,
) -> QoSBinding:
    """Negotiate and install a QoS binding on a stub.

    The binding granularity is the interface (the stub), per Section
    3.2 — there is deliberately no way to bind a characteristic to a
    single operation or parameter.

    ``configure_module`` is called as ``configure_module(module,
    binding_key)`` after the transport module (if the server names one
    for this characteristic) is assigned client-side.
    """
    ior = stub._ior
    offered = ior.qos_characteristics()
    if characteristic not in offered:
        raise BindingError(
            f"server offers {offered}, not {characteristic!r}"
        )
    if mediator is not None and mediator.characteristic != characteristic:
        raise BindingError(
            f"mediator is for {mediator.characteristic!r}, "
            f"not {characteristic!r}"
        )

    orb = stub._orb
    negotiation_stub = negotiation_stub_for(orb, ior)
    negotiator = Negotiator(negotiation_stub)
    offer = QoSOffer(characteristic, requirements or {})
    agreement, granted = negotiator.negotiate(offer)

    if mediator is not None:
        _apply_parameters(mediator, granted)
        mediator.install(stub)
    stub._contexts[CHARACTERISTIC_CONTEXT] = characteristic

    component = ior.component(QOS_TAG)
    module_name = None
    if component is not None:
        module_name = component.data.get("modules", {}).get(characteristic)
    if module_name:
        orb.qos_transport.assign(ior, module_name)
        if configure_module is not None:
            module = orb.qos_transport.module(module_name)
            configure_module(module, binding_key(ior))

    sched_class = None
    if component is not None:
        sched_class = component.data.get("sched", {}).get(characteristic)
    if sched_class:
        # Tag every request of this binding for the server's scheduler:
        # the class it is served in, and a client-distinct binding key
        # so the admission token bucket is per client/server pair.
        stub._contexts[CLASS_CONTEXT] = sched_class
        stub._contexts[BINDING_CONTEXT] = f"{orb.host_name}->{binding_key(ior)}"

    return QoSBinding(stub, mediator, agreement, negotiator, module_name)
