"""QoS trading: discovering services by offered characteristics.

Section 2.2 names trading among the framework's infrastructure
services.  The trader is an ordinary servant: servers export offers
(reference + characteristics + properties), clients query by required
characteristic and property constraints and receive matching
references, best property values first.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.orb.exceptions import UserException, register_user_exception
from repro.orb.ior import IOR
from repro.orb.servant import Servant
from repro.orb.stub import Stub


@register_user_exception
class NoMatch(UserException):
    """No exported offer satisfies the query."""

    repo_id = "IDL:maqs/Trader/NoMatch:1.0"


class TraderServant(Servant):
    """Server-side offer registry."""

    _repo_id = "IDL:maqs/Trader:1.0"

    def __init__(self) -> None:
        self._offers: List[Dict[str, Any]] = []

    def export(
        self,
        service_type: str,
        ior_string: str,
        characteristics: List[str],
        properties: Dict[str, float],
    ) -> int:
        """Register an offer; returns its id."""
        offer_id = len(self._offers)
        self._offers.append(
            {
                "id": offer_id,
                "service_type": service_type,
                "ior": ior_string,
                "characteristics": list(characteristics),
                "properties": dict(properties),
            }
        )
        return offer_id

    def withdraw(self, offer_id: int) -> bool:
        """Remove an offer; returns whether it existed."""
        for index, offer in enumerate(self._offers):
            if offer["id"] == offer_id:
                del self._offers[index]
                return True
        return False

    def query(
        self,
        service_type: str,
        characteristic: str,
        minimum_properties: Dict[str, float],
        rank_by: str,
    ) -> List[str]:
        """Matching IOR strings, best ``rank_by`` property first.

        An empty ``characteristic`` matches offers regardless of QoS;
        ``minimum_properties`` are lower bounds on offer properties.
        """
        matches = []
        for offer in self._offers:
            if offer["service_type"] != service_type:
                continue
            if characteristic and characteristic not in offer["characteristics"]:
                continue
            properties = offer["properties"]
            if any(
                properties.get(name, float("-inf")) < bound
                for name, bound in minimum_properties.items()
            ):
                continue
            matches.append(offer)
        if not matches:
            raise NoMatch(
                f"no offer of type {service_type!r} with "
                f"characteristic {characteristic!r}",
                service_type=service_type,
            )
        if rank_by:
            matches.sort(
                key=lambda offer: offer["properties"].get(rank_by, float("-inf")),
                reverse=True,
            )
        return [offer["ior"] for offer in matches]

    def offer_count(self) -> int:
        return len(self._offers)


class TraderStub(Stub):
    """Client-side proxy for the trader."""

    def export(
        self,
        service_type: str,
        ior: IOR,
        characteristics: List[str],
        properties: Optional[Dict[str, float]] = None,
    ) -> int:
        return self._call(
            "export", service_type, ior.to_string(), characteristics,
            properties or {},
        )

    def withdraw(self, offer_id: int) -> bool:
        return self._call("withdraw", offer_id)

    def query(
        self,
        service_type: str,
        characteristic: str = "",
        minimum_properties: Optional[Dict[str, float]] = None,
        rank_by: str = "",
    ) -> List[IOR]:
        ior_strings = self._call(
            "query", service_type, characteristic, minimum_properties or {}, rank_by
        )
        return [IOR.from_string(text) for text in ior_strings]

    def offer_count(self) -> int:
        return self._call("offer_count")
