"""Server-side QoS skeleton runtime (Figure 2).

Section 3.3: "The server inherits from the QoS skeleton and the server
skeleton ... The server skeleton is extended by a delegate to the
actual QoS implementation.  This will be exchanged at runtime to the
actual QoS characteristic's QoS implementation.  Hence, only the
operations of the actual negotiated QoS characteristic are processed
while others raise an exception.  The server skeleton takes incoming
requests from the ORB and calls a prolog and an epilog operation on
the QoS implementation before and after the operation is processed by
the server."

Generated server bases are ``class XServerBase(QoSServerMixin,
XSkeleton)`` with a class-level ``_qos_signatures`` table mapping each
provided characteristic to its operations.  The mixin implements:

- delegate management (:meth:`set_qos_impl`, :meth:`activate_qos`);
- routing of QoS operations to the active implementation, with
  :class:`~repro.orb.exceptions.BAD_QOS` for assigned-but-inactive
  characteristics;
- routing of *integration*-category operations to the servant itself
  ("only the QoS server side aspect integration should be forwarded to
  the server" — e.g. ``get_state`` for replica initialisation);
- the prolog/epilog bracket around every application operation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.orb.exceptions import BAD_OPERATION, BAD_QOS
from repro.orb.skeleton import OperationSignature


class QoSImplementation:
    """Base of all generated QoS implementation skeletons.

    The QoS implementor subclasses the generated skeleton, implementing
    the characteristic's management/peer operations plus the
    prolog/epilog that realise the QoS behaviour around application
    requests.
    """

    #: Filled by the generated subclass.
    characteristic = ""

    def prolog(
        self,
        servant: Any,
        operation: str,
        args: Tuple[Any, ...],
        contexts: Dict[str, Any],
    ) -> Optional[Tuple[Any, ...]]:
        """Called before the servant processes an application operation.

        May return replacement arguments (e.g. decompressed or
        decrypted payloads for application-layer codecs); returning
        None leaves them unchanged.
        """
        return None

    def epilog(
        self,
        servant: Any,
        operation: str,
        result: Any,
        contexts: Dict[str, Any],
    ) -> Any:
        """Called after the servant produced ``result``; may replace it."""
        return result


class QoSServerMixin:
    """The runtime half of the generated server base class."""

    #: characteristic -> {operation -> (OperationSignature, category)};
    #: filled by generated code.  Categories are the Section 3.2
    #: responsibilities: "management", "peer", "integration".
    _qos_signatures: Dict[str, Dict[str, Tuple[OperationSignature, str]]] = {}

    def __init__(self) -> None:
        self._qos_impls: Dict[str, QoSImplementation] = {}
        self._active_qos: Optional[str] = None

    # -- delegate management ------------------------------------------------

    def assigned_characteristics(self) -> Tuple[str, ...]:
        """All characteristics this server accepts operations for."""
        return tuple(sorted(self._qos_signatures))

    def set_qos_impl(self, impl: QoSImplementation) -> None:
        """Register the implementation object for one characteristic."""
        name = impl.characteristic
        if name not in self._qos_signatures:
            raise BAD_QOS(
                f"characteristic {name!r} is not assigned to this server; "
                f"assigned: {self.assigned_characteristics()}"
            )
        self._qos_impls[name] = impl

    def activate_qos(self, characteristic: Optional[str]) -> None:
        """Exchange the delegate to the named characteristic's impl.

        Passing None deactivates QoS processing entirely.
        """
        if characteristic is None:
            self._active_qos = None
            return
        if characteristic not in self._qos_signatures:
            raise BAD_QOS(
                f"characteristic {characteristic!r} is not assigned to this server"
            )
        if characteristic not in self._qos_impls:
            raise BAD_QOS(
                f"no implementation registered for {characteristic!r}; "
                f"call set_qos_impl first"
            )
        self._active_qos = characteristic

    @property
    def active_qos(self) -> Optional[str]:
        return self._active_qos

    def qos_impl(self, characteristic: str) -> QoSImplementation:
        try:
            return self._qos_impls[characteristic]
        except KeyError:
            raise BAD_QOS(
                f"no implementation registered for {characteristic!r}"
            ) from None

    # -- dispatch -------------------------------------------------------------

    def _qos_op_owner(self, operation: str) -> Optional[str]:
        """Which characteristic (if any) declares this operation."""
        for characteristic, operations in self._qos_signatures.items():
            if operation in operations:
                return characteristic
        return None

    def _dispatch(self, operation: str, args: Tuple[Any, ...],
                  contexts: Optional[Dict[str, Any]] = None) -> Any:
        contexts = contexts or {}
        owner = self._qos_op_owner(operation)
        if owner is not None:
            return self._dispatch_qos_op(owner, operation, args, contexts)
        impl = self._qos_impls.get(self._active_qos) if self._active_qos else None
        if impl is not None:
            rewritten = impl.prolog(self, operation, args, contexts)
            if rewritten is not None:
                args = tuple(rewritten)
        result = super()._dispatch(operation, args, contexts)
        if impl is not None:
            result = impl.epilog(self, operation, result, contexts)
        return result

    def _dispatch_qos_op(
        self,
        owner: str,
        operation: str,
        args: Tuple[Any, ...],
        contexts: Dict[str, Any],
    ) -> Any:
        if owner != self._active_qos:
            raise BAD_QOS(
                f"operation {operation!r} belongs to characteristic "
                f"{owner!r}, but the negotiated characteristic is "
                f"{self._active_qos!r}"
            )
        signature, category = self._qos_signatures[owner][operation]
        signature.check_args(args)
        if category == "integration":
            # Aspect integration crosses into the application object:
            # the servant itself implements these (e.g. get_state).
            target: Any = self
        else:
            target = self._qos_impls[owner]
        method = getattr(target, operation, None)
        if method is None or not callable(method):
            raise BAD_OPERATION(
                f"{type(target).__name__} does not implement QoS "
                f"operation {operation!r}"
            )
        result = method(*args)
        signature.check_result(result)
        return result
