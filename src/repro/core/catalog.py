"""The QoS characteristics catalog.

Section 6: "We think, that a catalog similar to those for design
patterns is an appropriate way to document QoS implementations."  The
paper wants documentation "targeted at two groups": application
developers (how to use a characteristic, what adaptation it needs) and
QoS implementors (which mechanisms it reuses).

Each characteristic in :mod:`repro.qos` registers a
:class:`CatalogEntry`; :func:`render` produces the pattern-catalog
text.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class CatalogEntry:
    """Pattern-style documentation of one QoS characteristic."""

    def __init__(
        self,
        name: str,
        category: str,
        intent: str,
        for_application_developers: str,
        for_qos_implementors: str,
        mechanisms: List[str],
        related: Optional[List[str]] = None,
        qidl: str = "",
    ) -> None:
        self.name = name
        #: e.g. "fault-tolerance", "performance", "privacy" — the
        #: multi-category axis of Section 2.1.
        self.category = category
        self.intent = intent
        self.for_application_developers = for_application_developers
        self.for_qos_implementors = for_qos_implementors
        #: Reused lower-layer mechanisms (transport modules etc.).
        self.mechanisms = list(mechanisms)
        self.related = list(related or [])
        #: Canonical QIDL declaration of the characteristic.
        self.qidl = qidl

    def render(self) -> str:
        lines = [
            f"== {self.name} ({self.category}) ==",
            "",
            f"Intent: {self.intent}",
            "",
            "For application developers:",
            f"  {self.for_application_developers}",
            "",
            "For QoS implementors:",
            f"  {self.for_qos_implementors}",
            "",
            f"Reused mechanisms: {', '.join(self.mechanisms) or 'none'}",
        ]
        if self.related:
            lines.append(f"Related characteristics: {', '.join(self.related)}")
        if self.qidl:
            lines.extend(["", "QIDL:", *("  " + l for l in self.qidl.strip().splitlines())])
        return "\n".join(lines)


class CharacteristicCatalog:
    """The registry of documented characteristics."""

    def __init__(self) -> None:
        self._entries: Dict[str, CatalogEntry] = {}

    def register(self, entry: CatalogEntry) -> CatalogEntry:
        if entry.name in self._entries:
            raise ValueError(f"catalog already documents {entry.name!r}")
        self._entries[entry.name] = entry
        return entry

    def entry(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"no catalog entry {name!r}; documented: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def by_category(self, category: str) -> List[CatalogEntry]:
        return [
            entry
            for _, entry in sorted(self._entries.items())
            if entry.category == category
        ]

    def categories(self) -> List[str]:
        return sorted({entry.category for entry in self._entries.values()})

    def render(self) -> str:
        """The whole catalog as pattern-catalog text."""
        sections = [self._entries[name].render() for name in self.names()]
        return "\n\n".join(sections)


#: The process-wide catalog the qos package populates on import.
CATALOG = CharacteristicCatalog()
