"""QoS adaptation: renegotiation as resources vary.

Section 3 (QoS adaptation): "varying resource availability should be
addressed through adaption, i.e. renegotiations if the resource
availability in- or decreases."

:class:`AdaptationManager` ties a monitor to a binding: when
expectations are violated it steps the binding *down* a ladder of
pre-declared levels; after a sustained healthy period it probes back
*up*.  The level track and renegotiation count are the outputs of
experiment E10.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.binding import QoSBinding
from repro.core.monitoring import QoSMonitor, Violation
from repro.core.negotiation import NegotiationFailed, Range


class AdaptationLevel:
    """One rung of the service-level ladder."""

    __slots__ = ("name", "requirements")

    def __init__(self, name: str, requirements: Dict[str, Range]) -> None:
        self.name = name
        self.requirements = dict(requirements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdaptationLevel({self.name!r})"


class AdaptationManager:
    """Degrades and upgrades a binding along a ladder of levels.

    ``levels`` are ordered best-first.  Call :meth:`check` periodically
    (e.g. from ``kernel.every``); it consults the monitor and
    renegotiates when needed.
    """

    def __init__(
        self,
        binding: QoSBinding,
        monitor: QoSMonitor,
        levels: Sequence[AdaptationLevel],
        start_level: int = 0,
        upgrade_after_healthy_checks: int = 3,
    ) -> None:
        if not levels:
            raise ValueError("need at least one adaptation level")
        self.binding = binding
        self.monitor = monitor
        self.levels = list(levels)
        self.current = start_level
        self.upgrade_after_healthy_checks = upgrade_after_healthy_checks
        self._healthy_streak = 0
        self.renegotiations = 0
        #: (time, level index, reason) — the E10 level track.
        self.track: List[Tuple[float, int, str]] = []

    @property
    def current_level(self) -> AdaptationLevel:
        return self.levels[self.current]

    def check(self) -> Optional[str]:
        """Evaluate and adapt; returns "degrade"/"upgrade"/None."""
        if not self.monitor.healthy():
            self._healthy_streak = 0
            if self._degrade():
                return "degrade"
            return None
        self._healthy_streak += 1
        if (
            self.current > 0
            and self._healthy_streak >= self.upgrade_after_healthy_checks
        ):
            self._healthy_streak = 0
            if self._upgrade():
                return "upgrade"
        return None

    def _move_to(self, index: int, reason: str) -> bool:
        level = self.levels[index]
        try:
            self.binding.renegotiate(level.requirements)
        except NegotiationFailed:
            return False
        self.current = index
        self.renegotiations += 1
        self.track.append((self.monitor.clock.now, index, reason))
        self._reset_windows()
        return True

    def _reset_windows(self) -> None:
        # Old samples describe the previous level; judging the new one
        # by them would immediately re-trigger.
        self.monitor._windows.clear()

    def _degrade(self) -> bool:
        for index in range(self.current + 1, len(self.levels)):
            if self._move_to(index, "degrade"):
                return True
        return False

    def _upgrade(self) -> bool:
        for index in range(self.current - 1, -1, -1):
            if self._move_to(index, "upgrade"):
                return True
        return False

    def on_violation(self, violation: Violation) -> None:
        """Listener form: degrade immediately on a reported violation."""
        self._healthy_streak = 0
        self._degrade()
