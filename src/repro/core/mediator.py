"""Client-side mediators.

Section 3.3: "On the client side the stub is extended by a so called
mediator.  The QoS implementor implements the generated mediator
skeleton.  At runtime the mediator of the desired QoS is set in the
stub as a delegate.  Each call is intercepted and delegated to the
mediator which can issue the QoS behaviour on the client side.  For
each QoS characteristic a mediator is generated."

The QIDL compiler emits one :class:`Mediator` subclass per QoS
characteristic; QoS implementors override the hooks (or
:meth:`Mediator.invoke` wholesale, e.g. for replication fail-over or
client-side caching).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

#: Service-context key carrying the characteristic a request runs under.
CHARACTERISTIC_CONTEXT = "maqs.characteristic"


class Mediator:
    """Base of all generated mediator skeletons."""

    #: Name of the QoS characteristic this mediator realises; filled by
    #: the generated subclass.
    characteristic = ""

    def __init__(self) -> None:
        self.calls_intercepted = 0

    # -- the interception protocol (called by Stub._call) -----------------

    def invoke(self, stub: Any, operation: str, args: Tuple[Any, ...]) -> Any:
        """Intercept one client call.

        The default template runs ``before_request`` → ``issue`` →
        ``after_reply``.  Mediators with richer behaviour (retry on
        another replica, answer from a cache without issuing at all)
        override this method.
        """
        self.calls_intercepted += 1
        operation, args = self.before_request(stub, operation, args)
        result = self.issue(stub, operation, args)
        return self.after_reply(stub, operation, result)

    def issue(self, stub: Any, operation: str, args: Tuple[Any, ...]) -> Any:
        """Perform the underlying invocation, tagged with the characteristic."""
        return stub._invoke(
            operation,
            args,
            extra_contexts={CHARACTERISTIC_CONTEXT: self.characteristic},
        )

    # -- hooks -----------------------------------------------------------

    def before_request(
        self, stub: Any, operation: str, args: Tuple[Any, ...]
    ) -> Tuple[str, Tuple[Any, ...]]:
        """Client-side QoS behaviour before the request leaves (may
        rewrite the operation or its arguments)."""
        return operation, args

    def after_reply(self, stub: Any, operation: str, result: Any) -> Any:
        """Client-side QoS behaviour after the reply returns (may
        rewrite the result)."""
        return result

    # -- installation ------------------------------------------------------

    def install(self, stub: Any) -> "Mediator":
        """Set this mediator as the stub's delegate; returns self."""
        stub._set_mediator(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} for {self.characteristic!r}>"


class MediatorChain:
    """Compose several mediators into one delegate.

    The paper binds one *negotiated* characteristic per relationship,
    but orthogonal client-side concerns (measurement, metering,
    caching on top of compression, ...) stack naturally: each link
    intercepts the call and forwards to the next; the innermost link
    performs the real invocation.

    Links are invoked outermost-first.  Every link must expose the
    mediator protocol (``invoke(stub, operation, args)``); links built
    for chaining can use the ``forward`` callable passed via the
    chain's per-call context instead of ``stub._invoke``.
    """

    characteristic = "__chain__"

    def __init__(self, *links: Any) -> None:
        if not links:
            raise ValueError("a mediator chain needs at least one link")
        self.links = list(links)
        self.calls_intercepted = 0

    def invoke(self, stub: Any, operation: str, args: Tuple[Any, ...]) -> Any:
        self.calls_intercepted += 1
        return self._invoke_link(0, stub, operation, args)

    def _invoke_link(
        self,
        index: int,
        stub: Any,
        operation: str,
        args: Tuple[Any, ...],
        extra_contexts: Optional[Dict[str, Any]] = None,
        target: Any = None,
    ) -> Any:
        if index >= len(self.links):
            return stub._invoke(operation, args, extra_contexts, target)
        link = self.links[index]
        # Present the rest of the chain as the link's "stub": the link
        # calls _invoke on it, which recurses into the next link.
        view = _ChainView(self, index, stub, extra_contexts, target)
        return link.invoke(view, operation, args)

    def install(self, stub: Any) -> "MediatorChain":
        stub._set_mediator(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = " -> ".join(type(link).__name__ for link in self.links)
        return f"<MediatorChain {names}>"


class _ChainView:
    """Stub facade handed to a chain link: forwards _invoke down-chain.

    Service contexts accumulate outermost-to-innermost (an inner link
    wins a key conflict: it sits closer to the wire and owns the
    request it actually issues); the innermost explicit ``target``
    wins likewise, so an outer failover link's redirect holds unless
    an inner link re-redirects.
    """

    def __init__(
        self,
        chain: MediatorChain,
        index: int,
        stub: Any,
        extra_contexts: Optional[Dict[str, Any]] = None,
        target: Any = None,
    ) -> None:
        self._chain = chain
        self._index = index
        self._stub = stub
        self._extra_contexts = extra_contexts
        self._target = target

    def _invoke(
        self,
        operation: str,
        args: Tuple[Any, ...],
        extra_contexts: Optional[Dict[str, Any]] = None,
        target: Any = None,
    ) -> Any:
        merged = self._extra_contexts
        if extra_contexts:
            merged = dict(merged) if merged else {}
            merged.update(extra_contexts)
        if target is None:
            target = self._target
        if self._index + 1 < len(self._chain.links):
            return self._chain._invoke_link(
                self._index + 1, self._stub, operation, args, merged, target
            )
        return self._stub._invoke(operation, args, merged, target)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._stub, name)
