"""The plain archive application: no QoS anywhere.

This is the application logic in its pure form — the code an
application developer *wants* to write.  Both the MAQS-woven variant
and the hand-tangled variant implement exactly this behaviour; the E9
metrics measure how much QoS residue each approach leaves in it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.orb.servant import Servant
from repro.orb.stub import Stub


class PlainArchiveServant(Servant):
    """A key-value document store with no QoS awareness."""

    _repo_id = "IDL:baselines/Archive:1.0"

    def __init__(self) -> None:
        self.files: Dict[str, str] = {}

    def fetch(self, path: str) -> str:
        return self.files.get(path, "")

    def store(self, path: str, content: str) -> None:
        self.files[path] = content

    def list_paths(self) -> List[str]:
        return sorted(self.files)

    def size(self) -> int:
        return len(self.files)


class PlainArchiveStub(Stub):
    """Hand-written stub for the plain archive."""

    def fetch(self, path: str) -> str:
        return self._call("fetch", path)

    def store(self, path: str, content: str) -> None:
        return self._call("store", path, content)

    def list_paths(self) -> List[str]:
        return self._call("list_paths")

    def size(self) -> int:
        return self._call("size")
