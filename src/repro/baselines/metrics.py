"""Separation-of-concerns metrics (experiment E9).

Quantifies the paper's qualitative argument: with MAQS weaving the
application module contains (near) zero QoS code, while the
hand-tangled variant mixes QoS into most application methods.

Two detectors are supported:

- the explicit ``# [qos]`` marker (ground truth in the shipped
  baselines);
- a keyword heuristic (compress/encrypt/cache/retry/key/...), for
  measuring sources without markers.
"""

from __future__ import annotations

import inspect
from typing import Dict, Iterable, List, Optional, Tuple

MARKER = "# [qos]"

#: Heuristic indicators of QoS concern participation.
QOS_KEYWORDS = (
    "compress",
    "decompress",
    "codec",
    "encrypt",
    "decrypt",
    "cipher",
    "key_id",
    "_keys",
    "seal",
    "cache",
    "max_age",
    "stale",
    "retry",
    "retrie",
    "replica",
    "quarantine",
    "reserve",
    "threshold",
)


class TanglingReport:
    """Tangling measurement of one source unit."""

    def __init__(
        self,
        name: str,
        total_lines: int,
        qos_lines: int,
        qos_methods: int,
        total_methods: int,
    ) -> None:
        self.name = name
        self.total_lines = total_lines
        self.qos_lines = qos_lines
        self.qos_methods = qos_methods
        self.total_methods = total_methods

    @property
    def tangling_ratio(self) -> float:
        """Fraction of code lines participating in QoS concerns."""
        if self.total_lines == 0:
            return 0.0
        return self.qos_lines / self.total_lines

    @property
    def method_spread(self) -> float:
        """Fraction of methods touched by QoS concerns."""
        if self.total_methods == 0:
            return 0.0
        return self.qos_methods / self.total_methods

    def row(self) -> Tuple[str, int, int, float, float]:
        return (
            self.name,
            self.total_lines,
            self.qos_lines,
            round(self.tangling_ratio, 3),
            round(self.method_spread, 3),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TanglingReport({self.name}: {self.qos_lines}/{self.total_lines} "
            f"qos lines, {self.qos_methods}/{self.total_methods} methods)"
        )


def _code_lines(source: str) -> List[str]:
    """Non-empty, non-pure-comment, non-docstring-ish lines."""
    lines = []
    in_doc = False
    for raw in source.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_doc:
            if line.endswith(('"""', "'''")):
                in_doc = False
            continue
        if line.startswith(('"""', "'''")):
            quote = line[:3]
            # Single-line docstrings close themselves; anything else
            # opens a block that ends on a later closing-quote line.
            closes_itself = len(line) >= 6 and line.endswith(quote)
            if not closes_itself:
                in_doc = True
            continue
        if line.startswith("#"):
            continue
        lines.append(line)
    return lines


def _is_qos_line(line: str, use_markers: bool, keywords: Iterable[str]) -> bool:
    if use_markers:
        return MARKER in line
    lowered = line.lower()
    return any(keyword in lowered for keyword in keywords)


def tangling_report(
    target: object,
    name: Optional[str] = None,
    use_markers: bool = True,
    keywords: Iterable[str] = QOS_KEYWORDS,
) -> TanglingReport:
    """Measure one class/module/source string for QoS tangling."""
    if isinstance(target, str):
        source = target
        label = name or "<source>"
    else:
        source = inspect.getsource(target)
        label = name or getattr(target, "__name__", "<object>")

    lines = _code_lines(source)
    qos_lines = sum(
        1 for line in lines if _is_qos_line(line, use_markers, keywords)
    )

    total_methods = 0
    qos_methods = 0
    current_method_has_qos = False
    in_method = False
    for line in lines:
        if line.startswith("def "):
            if in_method:
                qos_methods += int(current_method_has_qos)
            in_method = True
            total_methods += 1
            current_method_has_qos = _is_qos_line(line, use_markers, keywords)
        elif in_method and _is_qos_line(line, use_markers, keywords):
            current_method_has_qos = True
    if in_method:
        qos_methods += int(current_method_has_qos)

    return TanglingReport(label, len(lines), qos_lines, qos_methods, total_methods)


def compare_separation(
    tangled: object,
    woven: object,
    use_markers_tangled: bool = True,
    use_markers_woven: bool = False,
) -> Dict[str, TanglingReport]:
    """Side-by-side tangling of the tangled vs. the woven variant.

    The woven application typically has no markers (it has no QoS code
    to mark), so the keyword heuristic is used there by default.
    """
    return {
        "tangled": tangling_report(
            tangled, "tangled", use_markers=use_markers_tangled
        ),
        "woven": tangling_report(woven, "woven", use_markers=use_markers_woven),
    }
