"""The hand-tangled archive: QoS behaviour inlined into application code.

This is the counter-example MAQS argues against (Section 2.2: "Client
and service code should not be mixed unnecessarily with QoS specific
behaviour").  Compression, encryption, caching and retry logic are
written by hand *inside* every application method, on both the client
and the server — the way pre-AOP systems actually did it.

Functionally it matches the woven variant (same codecs, same ciphers,
same freshness semantics), so E9 can compare like with like.  Lines
participating in QoS concerns carry a ``# [qos]`` marker so the
tangling metric has ground truth; the keyword-based detector in
:mod:`repro.baselines.metrics` is validated against these markers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro import ciphers, codecs  # [qos]
from repro.ciphers.keyex import KeyExchange  # [qos]
from repro.orb.exceptions import COMM_FAILURE, NO_PERMISSION, TRANSIENT  # [qos]
from repro.orb.servant import Servant
from repro.orb.stub import Stub


class TangledArchiveServant(Servant):
    """Document store with compression + encryption + staleness stamps
    hand-mixed into every operation."""

    _repo_id = "IDL:baselines/TangledArchive:1.0"

    def __init__(self) -> None:
        self.files: Dict[str, str] = {}
        self.codec = "lz"  # [qos]
        self.threshold = 256  # [qos]
        self.cipher = "xtea-ctr"  # [qos]
        self._keys: Dict[str, bytes] = {}  # [qos]
        self._dh_seed = 0x7A7A  # [qos]

    # -- QoS plumbing the application is forced to expose ---------------

    def exchange_key(self, key_id: str, public_value: int) -> int:  # [qos]
        endpoint = KeyExchange(seed=self._dh_seed)  # [qos]
        self._dh_seed += 1  # [qos]
        self._keys[key_id] = endpoint.shared_key(public_value)  # [qos]
        return endpoint.public_value  # [qos]

    def _unseal(self, value: Any) -> Any:  # [qos]
        if isinstance(value, dict) and "enc" in value:  # [qos]
            key = self._keys.get(value["key_id"])  # [qos]
            if key is None:  # [qos]
                raise NO_PERMISSION("no session key")  # [qos]
            _, decrypt = ciphers.get_cipher(value["enc"])  # [qos]
            value = decrypt(key, value["data"]).decode("utf-8")  # [qos]
        if isinstance(value, dict) and "comp" in value:  # [qos]
            _, decompress = codecs.get_codec(value["comp"])  # [qos]
            value = decompress(value["data"]).decode("utf-8")  # [qos]
        return value  # [qos]

    def _seal(self, value: str, key_id: str) -> Any:  # [qos]
        raw = value.encode("utf-8")  # [qos]
        if len(raw) >= self.threshold:  # [qos]
            compress, _ = codecs.get_codec(self.codec)  # [qos]
            packed = compress(raw)  # [qos]
            if len(packed) < len(raw):  # [qos]
                return {"comp": self.codec, "data": packed}  # [qos]
        if key_id and key_id in self._keys:  # [qos]
            encrypt, _ = ciphers.get_cipher(self.cipher)  # [qos]
            sealed = encrypt(self._keys[key_id], raw)  # [qos]
            return {"enc": self.cipher, "key_id": key_id, "data": sealed}  # [qos]
        return value  # [qos]

    # -- application operations (QoS mixed in) ----------------------------

    def fetch(self, path: str, key_id: str) -> Any:
        content = self.files.get(path, "")
        return self._seal(content, key_id)  # [qos]

    def store(self, path: str, content: Any) -> None:
        content = self._unseal(content)  # [qos]
        self.files[path] = content

    def list_paths(self) -> List[str]:
        return sorted(self.files)

    def size(self) -> int:
        return len(self.files)


class TangledArchiveStub(Stub):
    """Client proxy with compression, encryption, caching and retry
    hand-mixed into every call path."""

    def __init__(self, orb: Any, ior: Any) -> None:
        super().__init__(orb, ior)
        self.codec = "lz"  # [qos]
        self.threshold = 256  # [qos]
        self.cipher = "xtea-ctr"  # [qos]
        self.key_id = ""  # [qos]
        self._keys: Dict[str, bytes] = {}  # [qos]
        self._dh_seed = 0x1B1B  # [qos]
        self.max_age = 1.0  # [qos]
        self._cache: Dict[str, Tuple[Any, float]] = {}  # [qos]
        self.retries = 1  # [qos]

    # -- QoS plumbing ----------------------------------------------------

    def establish_key(self) -> str:  # [qos]
        endpoint = KeyExchange(seed=self._dh_seed)  # [qos]
        self._dh_seed += 1  # [qos]
        key_id = f"tangled-{self._dh_seed}"  # [qos]
        server_public = self._retrying_call(  # [qos]
            "exchange_key", key_id, endpoint.public_value  # [qos]
        )  # [qos]
        self._keys[key_id] = endpoint.shared_key(server_public)  # [qos]
        self.key_id = key_id  # [qos]
        return key_id  # [qos]

    def _retrying_call(self, operation: str, *args: Any) -> Any:  # [qos]
        last: Optional[Exception] = None  # [qos]
        for _ in range(self.retries + 1):  # [qos]
            try:  # [qos]
                return self._call(operation, *args)  # [qos]
            except (COMM_FAILURE, TRANSIENT) as error:  # [qos]
                last = error  # [qos]
        raise last  # type: ignore[misc]  # [qos]

    def _seal(self, content: str) -> Any:  # [qos]
        raw = content.encode("utf-8")  # [qos]
        if len(raw) >= self.threshold:  # [qos]
            compress, _ = codecs.get_codec(self.codec)  # [qos]
            packed = compress(raw)  # [qos]
            if len(packed) < len(raw):  # [qos]
                return {"comp": self.codec, "data": packed}  # [qos]
        if self.key_id:  # [qos]
            encrypt, _ = ciphers.get_cipher(self.cipher)  # [qos]
            sealed = encrypt(self._keys[self.key_id], raw)  # [qos]
            return {  # [qos]
                "enc": self.cipher,  # [qos]
                "key_id": self.key_id,  # [qos]
                "data": sealed,  # [qos]
            }  # [qos]
        return content  # [qos]

    def _unseal(self, value: Any) -> Any:  # [qos]
        if isinstance(value, dict) and "enc" in value:  # [qos]
            key = self._keys.get(value["key_id"])  # [qos]
            if key is None:  # [qos]
                raise NO_PERMISSION("no session key")  # [qos]
            _, decrypt = ciphers.get_cipher(value["enc"])  # [qos]
            return decrypt(key, value["data"]).decode("utf-8")  # [qos]
        if isinstance(value, dict) and "comp" in value:  # [qos]
            _, decompress = codecs.get_codec(value["comp"])  # [qos]
            return decompress(value["data"]).decode("utf-8")  # [qos]
        return value  # [qos]

    # -- application operations (QoS mixed in) ----------------------------

    def fetch(self, path: str) -> str:
        cached = self._cache.get(path)  # [qos]
        if cached is not None:  # [qos]
            value, stored_at = cached  # [qos]
            if self._orb.clock.now - stored_at <= self.max_age:  # [qos]
                return value  # [qos]
        sealed = self._retrying_call("fetch", path, self.key_id)  # [qos]
        content = self._unseal(sealed)  # [qos]
        self._cache[path] = (content, self._orb.clock.now)  # [qos]
        return content

    def store(self, path: str, content: str) -> None:
        sealed = self._seal(content)  # [qos]
        self._retrying_call("store", path, sealed)  # [qos]
        self._cache.pop(path, None)  # [qos]

    def list_paths(self) -> List[str]:
        return self._retrying_call("list_paths")  # [qos]

    def size(self) -> int:
        return self._retrying_call("size")  # [qos]
