"""Comparison baselines for the separation-of-concerns experiments.

- :mod:`repro.baselines.plain` — the application with no QoS at all
  (the lower bound every QoS mechanism is compared against).
- :mod:`repro.baselines.tangled` — the same application with the QoS
  behaviour hand-written *inside* the application methods: the
  cross-cutting mess the paper's weaving removes.
- :mod:`repro.baselines.metrics` — tangling/invasiveness metrics that
  quantify the separation (experiment E9).
"""

from repro.baselines.metrics import (
    TanglingReport,
    compare_separation,
    tangling_report,
)
from repro.baselines.plain import PlainArchiveServant, PlainArchiveStub
from repro.baselines.tangled import TangledArchiveServant, TangledArchiveStub

__all__ = [
    "PlainArchiveServant",
    "PlainArchiveStub",
    "TangledArchiveServant",
    "TangledArchiveStub",
    "TanglingReport",
    "compare_separation",
    "tangling_report",
]
