"""Fault tolerance through replica groups (Section 6).

"Crashes of servers can be masked when using a group of replicas.  As
long as there is one replica running, the service can be fulfilled.
This implies that every replica delivers the same result upon a
request.  Hence, new replicas need to be initialized to the same state
as already running replicas.  The state of a server is encapsulated by
the interface.  Therefore, the ability for this QoS violates the
encapsulation of a server." (Section 3.1)

The characteristic therefore spans all three responsibility categories
of Section 3.2: management (policy, membership), peer (group sync) and
**integration** (``get_state``/``set_state`` — the deliberate,
interface-mediated encapsulation cross-cut the paper describes).

It reuses the ``multicast`` transport module (Section 4's mechanism
hierarchy): k-availability via first-reply fan-out, diversity via
majority votes on results.
"""

from repro.core.catalog import CATALOG, CatalogEntry
from repro.qos.characteristic import Characteristic, register_characteristic
from repro.qos.fault_tolerance.replica_group import (
    FaultToleranceImpl,
    FaultToleranceMediator,
    ReplicaGroupManager,
)

QIDL = """
qos FaultTolerance {
    readonly attribute short replicas;
    attribute short required_availability;
    management void set_masking_policy(in string policy);
    management string get_masking_policy();
    peer void join_group(in string member_ior);
    peer void leave_group(in string member_ior);
    integration any get_state();
    integration void set_state(in any state);
};
"""

CHARACTERISTIC = register_characteristic(
    Characteristic(
        name="FaultTolerance",
        category="fault-tolerance",
        qidl=QIDL,
        mediator_class=FaultToleranceMediator,
        impl_class=FaultToleranceImpl,
        default_module="multicast",
    )
)

CATALOG.register(
    CatalogEntry(
        name="FaultTolerance",
        category="fault-tolerance",
        intent=(
            "Mask server crashes (k-availability) and value faults "
            "(majority voting) behind a replica group."
        ),
        for_application_developers=(
            "Declare 'provides FaultTolerance' and implement the "
            "integration operations get_state/set_state so new replicas "
            "can be initialised; servants must be deterministic."
        ),
        for_qos_implementors=(
            "Reuses the multicast transport module for group fan-out; "
            "policies 'first' (k-availability), 'all' and 'majority' "
            "(diversity through votes on results) are selected per "
            "binding through the module's dynamic interface."
        ),
        mechanisms=["multicast transport module", "state transfer", "voting"],
        related=["LoadBalancing"],
        qidl=QIDL,
    )
)

__all__ = [
    "CHARACTERISTIC",
    "FaultToleranceImpl",
    "FaultToleranceMediator",
    "QIDL",
    "ReplicaGroupManager",
]
