"""Replica groups: membership, state transfer, crash masking.

Server-side orchestration is in :class:`ReplicaGroupManager`: it
incarnates one servant per host, initialises newcomers by state
transfer over the ORB (the integration operations), and publishes a
group reference carrying the QoS tag and the member list the
``multicast`` module fans out over.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.mediator import Mediator
from repro.core.qos_skeleton import QoSImplementation
from repro.orb.dii import DIIRequest
from repro.orb.exceptions import BAD_PARAM, COMM_FAILURE, SystemException, TRANSIENT
from repro.orb.ior import GROUP_TAG, IOR, QOS_TAG, TaggedComponent
from repro.orb.modules.base import binding_key
from repro.orb.modules.multicast import POLICIES


class FaultToleranceImpl(QoSImplementation):
    """Server-side QoS implementation: membership and policy state."""

    characteristic = "FaultTolerance"

    def __init__(self) -> None:
        self.replicas = 0
        self.required_availability = 1
        self._policy = "first"
        self._members: List[str] = []

    # QoS parameter accessors (the generated skeleton shape).
    def get_replicas(self) -> int:
        return self.replicas

    def get_required_availability(self) -> int:
        return self.required_availability

    def set_required_availability(self, value: int) -> None:
        self.required_availability = int(value)

    # Management operations.
    def set_masking_policy(self, policy: str) -> None:
        if policy not in POLICIES:
            raise BAD_PARAM(f"unknown policy {policy!r}; choose from {POLICIES}")
        self._policy = policy

    def get_masking_policy(self) -> str:
        return self._policy

    # Peer (QoS-to-QoS) operations.
    def join_group(self, member_ior: str) -> None:
        if member_ior not in self._members:
            self._members.append(member_ior)
            self.replicas = len(self._members)

    def leave_group(self, member_ior: str) -> None:
        if member_ior in self._members:
            self._members.remove(member_ior)
            self.replicas = len(self._members)

    def members(self) -> List[str]:
        return list(self._members)


class FaultToleranceMediator(Mediator):
    """Client-side behaviour: one bounded retry on transient failures.

    Crash masking itself happens in the multicast module; the mediator
    covers the residual window (e.g. the last reachable replica died
    mid-call) with a single retry before surfacing the failure.
    """

    characteristic = "FaultTolerance"

    def __init__(self, retries: int = 1) -> None:
        super().__init__()
        self.retries = retries
        self.retries_used = 0

    def invoke(self, stub: Any, operation: str, args: Tuple[Any, ...]) -> Any:
        self.calls_intercepted += 1
        attempts = self.retries + 1
        last_error: Optional[SystemException] = None
        for _ in range(attempts):
            try:
                return self.issue(stub, operation, args)
            except (COMM_FAILURE, TRANSIENT) as error:
                last_error = error
                self.retries_used += 1
        raise last_error  # type: ignore[misc]


class ReplicaGroupManager:
    """Creates and maintains a replica group for one logical object."""

    def __init__(
        self,
        world: Any,
        group_name: str,
        servant_factory: Callable[[], Any],
        repo_id: Optional[str] = None,
    ) -> None:
        self.world = world
        self.group_name = group_name
        self.servant_factory = servant_factory
        self.repo_id = repo_id
        #: host -> (servant, member IOR)
        self._replicas: Dict[str, Tuple[Any, IOR]] = {}
        self._member_order: List[str] = []
        self.state_transfers = 0

    # -- membership -----------------------------------------------------

    def add_replica(self, host_name: str, source: Optional[str] = None) -> IOR:
        """Incarnate a replica on a host, initialising it by state transfer.

        ``source`` names the member to copy state from — the migration
        planner passes the servant being moved, so the newcomer is an
        exact snapshot of it; without it the first reachable live
        member is used.
        """
        if host_name in self._replicas:
            raise ValueError(f"replica already placed on {host_name!r}")
        if source is not None and source not in self._replicas:
            raise ValueError(f"no replica on source {source!r}")
        servant = self.servant_factory()
        impl = FaultToleranceImpl()
        servant.set_qos_impl(impl)
        servant.activate_qos("FaultTolerance")
        orb = self.world.orb(host_name)
        member_ior = orb.poa.activate_object(
            servant, f"{self.group_name}-{host_name}"
        )
        if self._member_order:
            self._transfer_state(orb, member_ior, source)
        self._replicas[host_name] = (servant, member_ior)
        self._member_order.append(host_name)
        self._broadcast_membership()
        return member_ior

    def _transfer_state(
        self, orb: Any, newcomer: IOR, source: Optional[str] = None
    ) -> None:
        """Initialise a newcomer from the first reachable live member."""
        candidates = [source] if source is not None else self._member_order
        for host_name in candidates:
            _, source_ior = self._replicas[host_name]
            try:
                state = DIIRequest(orb, source_ior, "get_state").invoke()
                DIIRequest(orb, newcomer, "set_state").add_argument(state).invoke()
                self.state_transfers += 1
                return
            except (COMM_FAILURE, TRANSIENT):
                continue
        raise COMM_FAILURE(
            f"no live replica of {self.group_name!r} to transfer state from"
        )

    def resync(self, host_name: str, source: Optional[str] = None) -> None:
        """Re-initialise a (recovered) replica from a live member.

        Fail-stop recovery loses in-flight state; a replica must be
        brought back to the group state before it may vote again.
        ``source`` names the member to copy from — pass one known to be
        current (e.g. a replica that never crashed); without it the
        first reachable other member is used, which is only safe when
        a single replica recovered.
        """
        if host_name not in self._replicas:
            raise ValueError(f"no replica on {host_name!r}")
        if source is not None and source not in self._replicas:
            raise ValueError(f"no replica on source {source!r}")
        orb = self.world.orb(host_name)
        _, member_ior = self._replicas[host_name]
        candidates = [source] if source else self._member_order
        for other in candidates:
            if other == host_name:
                continue
            _, source_ior = self._replicas[other]
            try:
                state = DIIRequest(orb, source_ior, "get_state").invoke()
                DIIRequest(orb, member_ior, "set_state").add_argument(state).invoke()
                self.state_transfers += 1
                return
            except (COMM_FAILURE, TRANSIENT):
                continue
        raise COMM_FAILURE(
            f"no live replica of {self.group_name!r} to resync {host_name!r} from"
        )

    def remove_replica(self, host_name: str) -> None:
        if host_name not in self._replicas:
            raise ValueError(f"no replica on {host_name!r}")
        _, member_ior = self._replicas.pop(host_name)
        self._member_order.remove(host_name)
        orb = self.world.orb(host_name)
        try:
            orb.poa.deactivate_object(member_ior.profile.object_key)
        except Exception:
            pass  # the host may be crashed; membership is what matters
        self._broadcast_membership()

    def _broadcast_membership(self) -> None:
        """Keep every replica's peer view of the group current."""
        member_strings = [
            self._replicas[host][1].to_string() for host in self._member_order
        ]
        for host_name in self._member_order:
            servant, _ = self._replicas[host_name]
            impl = servant.qos_impl("FaultTolerance")
            impl._members = list(member_strings)
            impl.replicas = len(member_strings)

    # -- group reference ----------------------------------------------------

    def hosts(self) -> List[str]:
        return list(self._member_order)

    def replica(self, host_name: str) -> Any:
        return self._replicas[host_name][0]

    def member_ior(self, host_name: str) -> IOR:
        """The member reference serving on ``host_name``."""
        return self._replicas[host_name][1]

    def member_iors(self) -> List[IOR]:
        """Every member reference, in placement order."""
        return [self._replicas[host][1] for host in self._member_order]

    def group_ior(self, policy: str = "first") -> IOR:
        """The QoS-tagged group reference clients bind to."""
        if not self._member_order:
            raise ValueError("group has no members yet")
        if policy not in POLICIES:
            raise BAD_PARAM(f"unknown policy {policy!r}; choose from {POLICIES}")
        primary = self._replicas[self._member_order[0]][1]
        repo_id = self.repo_id or primary.type_id
        members = [
            self._replicas[host][1].to_string() for host in self._member_order
        ]
        return IOR(
            repo_id,
            primary.profile,
            [
                TaggedComponent(
                    QOS_TAG, {"characteristics": ["FaultTolerance"]}
                ),
                TaggedComponent(
                    GROUP_TAG,
                    {"group": self.group_name, "members": members, "policy": policy},
                ),
            ],
        )

    def bind_client(
        self, client_orb: Any, stub_class: type, policy: str = "first"
    ) -> Any:
        """Convenience: build a bound, mediated stub on a client ORB."""
        ior = self.group_ior(policy)
        client_orb.qos_transport.assign(ior, "multicast")
        module = client_orb.qos_transport.module("multicast")
        module.set_policy(binding_key(ior), policy)
        stub = stub_class(client_orb, ior)
        FaultToleranceMediator().install(stub)
        return stub

    def bind_reliable_client(
        self,
        client_orb: Any,
        stub_class: type,
        reliability_policy: Any = None,
        policy: str = "first",
    ) -> Any:
        """A unicast stub recovering via the reliability layer.

        Where :meth:`bind_client` masks crashes by multicasting every
        call to all members, this binds *one* member at a time and
        installs a :class:`~repro.reliability.ReliabilityMediator`
        that retries, breaks and fails over along the group reference's
        ``GROUP_TAG`` member list — the cheap-path alternative when
        active replication is too expensive for the traffic.
        """
        # Imported here: repro.reliability builds on repro.orb/core,
        # and this module must not force it into every FT import.
        from repro.reliability import ReliabilityMediator, ReliabilityPolicy

        ior = self.group_ior(policy)
        stub = stub_class(client_orb, ior)
        mediator = ReliabilityMediator(
            reliability_policy
            if reliability_policy is not None
            else ReliabilityPolicy()
        )
        mediator.install(stub)
        return stub
