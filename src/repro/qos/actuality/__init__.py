"""Actuality (freshness) of data (Section 6).

The mediator answers repeated read operations from a client-side
cache while the cached value is younger than the negotiated
``max_age`` — trading bounded staleness for saved round trips.  The
server-side implementation stamps results with their production time
and serves explicit invalidation.
"""

from repro.core.catalog import CATALOG, CatalogEntry
from repro.qos.characteristic import Characteristic, register_characteristic
from repro.qos.actuality.freshness import ActualityImpl, ActualityMediator

QIDL = """
qos Actuality {
    attribute double max_age;
    management void invalidate(in string operation);
    management double last_modified();
};
"""

CHARACTERISTIC = register_characteristic(
    Characteristic(
        name="Actuality",
        category="actuality",
        qidl=QIDL,
        mediator_class=ActualityMediator,
        impl_class=ActualityImpl,
        default_module=None,
    )
)

CATALOG.register(
    CatalogEntry(
        name="Actuality",
        category="actuality",
        intent=(
            "Bound the staleness of read results while saving round "
            "trips through client-side caching under a max_age budget."
        ),
        for_application_developers=(
            "Declare 'provides Actuality' and tell the mediator which "
            "operations are cacheable reads; negotiate max_age to your "
            "tolerance.  Writes should call mediator.invalidate()."
        ),
        for_qos_implementors=(
            "Purely client-side caching keyed by (operation, args); "
            "the server impl stamps modification times so staleness is "
            "measurable and serves remote invalidation."
        ),
        mechanisms=["client cache", "modification stamps"],
        related=["Compression"],
        qidl=QIDL,
    )
)

__all__ = ["ActualityImpl", "ActualityMediator", "CHARACTERISTIC", "QIDL"]
