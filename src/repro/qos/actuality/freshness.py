"""Freshness-bounded client caching: mediator and server impl."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Set, Tuple

from repro.core.mediator import Mediator
from repro.core.qos_skeleton import QoSImplementation
from repro.orb.exceptions import BAD_PARAM


def _cache_key(operation: str, args: Tuple[Any, ...]) -> Tuple[str, str]:
    return operation, repr(args)


class ActualityMediator(Mediator):
    """Serve cacheable reads from a freshness-bounded client cache."""

    characteristic = "Actuality"

    def __init__(
        self,
        cacheable: Optional[Iterable[str]] = None,
        max_age: float = 1.0,
    ) -> None:
        super().__init__()
        self.max_age = max_age
        #: Operations safe to cache; empty set = cache nothing.
        self.cacheable: Set[str] = set(cacheable or ())
        self._cache: Dict[Tuple[str, str], Tuple[Any, float]] = {}
        self.hits = 0
        self.misses = 0

    def invoke(self, stub: Any, operation: str, args: Tuple[Any, ...]) -> Any:
        self.calls_intercepted += 1
        if operation not in self.cacheable:
            return self.issue(stub, operation, args)
        clock = stub._orb.clock
        key = _cache_key(operation, args)
        cached = self._cache.get(key)
        if cached is not None:
            value, stored_at = cached
            if clock.now - stored_at <= self.max_age:
                self.hits += 1
                return value
        self.misses += 1
        value = self.issue(stub, operation, args)
        self._cache[key] = (value, clock.now)
        return value

    def invalidate(self, operation: Optional[str] = None) -> int:
        """Drop cached entries (all, or those of one operation)."""
        if operation is None:
            count = len(self._cache)
            self._cache.clear()
            return count
        stale = [key for key in self._cache if key[0] == operation]
        for key in stale:
            del self._cache[key]
        return len(stale)

    def observed_staleness(self, clock: Any, operation: str,
                           args: Tuple[Any, ...] = ()) -> float:
        """Age of the cached entry for one call (0.0 if none)."""
        cached = self._cache.get(_cache_key(operation, args))
        if cached is None:
            return 0.0
        return clock.now - cached[1]


class ActualityImpl(QoSImplementation):
    """Server side: modification stamps and remote invalidation."""

    characteristic = "Actuality"

    def __init__(self, clock: Optional[Any] = None) -> None:
        self.max_age = 1.0
        self._clock = clock
        self._last_modified = 0.0
        self.invalidations = 0

    def attach_clock(self, clock: Any) -> "ActualityImpl":
        self._clock = clock
        return self

    # QoS parameter accessors.
    def get_max_age(self) -> float:
        return self.max_age

    def set_max_age(self, value: float) -> None:
        if value < 0:
            raise BAD_PARAM("max_age must be non-negative")
        self.max_age = float(value)

    # Management operations.
    def invalidate(self, operation: str) -> None:
        self.invalidations += 1

    def last_modified(self) -> float:
        return self._last_modified

    def touch(self) -> None:
        """Record that the servant's data changed (servant calls this)."""
        if self._clock is not None:
            self._last_modified = self._clock.now

    # Weaving hooks: stamp writes.
    def epilog(
        self,
        servant: Any,
        operation: str,
        result: Any,
        contexts: Dict[str, Any],
    ) -> Any:
        if self._clock is not None and operation.startswith(("set_", "update", "write")):
            self._last_modified = self._clock.now
        return result
