"""Characteristic registry and the user-facing weave helper.

A :class:`Characteristic` bundles everything MAQS knows about one QoS
characteristic: its canonical QIDL declaration, the concrete mediator
and implementation classes, and the transport module it reuses (the
mechanism hierarchy of Section 4).

:func:`weave` is how applications compile their interfaces: it
prepends the QIDL of every registered characteristic, so
``interface X provides FaultTolerance { ... }`` resolves without the
application restating the characteristic's specification.
"""

from __future__ import annotations

import types
from typing import Dict, Optional, Type

from repro.core.mediator import Mediator
from repro.core.qos_skeleton import QoSImplementation
from repro.qidl import compile_qidl


class Characteristic:
    """Descriptor of one registered QoS characteristic."""

    def __init__(
        self,
        name: str,
        category: str,
        qidl: str,
        mediator_class: Type[Mediator],
        impl_class: Type[QoSImplementation],
        default_module: Optional[str] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.qidl = qidl.strip()
        self.mediator_class = mediator_class
        self.impl_class = impl_class
        #: Transport module this characteristic reuses, if any
        #: (the two-layer mechanism hierarchy of Section 4).
        self.default_module = default_module

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Characteristic({self.name!r}, category={self.category!r})"


#: name -> Characteristic, populated by the subpackages on import.
REGISTRY: Dict[str, Characteristic] = {}


def register_characteristic(characteristic: Characteristic) -> Characteristic:
    if characteristic.name in REGISTRY:
        raise ValueError(f"characteristic {characteristic.name!r} already registered")
    REGISTRY[characteristic.name] = characteristic
    return characteristic


def get_characteristic(name: str) -> Characteristic:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown characteristic {name!r}; registered: {sorted(REGISTRY)}"
        ) from None


def qidl_prelude() -> str:
    """The concatenated QIDL of all registered characteristics."""
    return "\n\n".join(REGISTRY[name].qidl for name in sorted(REGISTRY))


def weave(interface_qidl: str, module_name: Optional[str] = None) -> types.ModuleType:
    """Compile application QIDL against the registered characteristics.

    The characteristic declarations are prepended, so ``provides``
    clauses referring to registered characteristics resolve.  Returns
    the generated module (stubs, skeletons, server bases, mediator and
    impl skeletons).
    """
    return compile_qidl(qidl_prelude() + "\n\n" + interface_qidl, module_name)
