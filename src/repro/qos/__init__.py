"""The QoS characteristics evaluated by the paper (Section 6).

"So far the framework has been evaluated by implementing QoS
characteristics from diverse QoS categories, e.g. fault-tolerance
through replica groups, performance by load-balancing, compression
for channels with small bandwidth, actuality of data, and privacy
through encryption."

Each subpackage ships the characteristic's canonical QIDL declaration,
a concrete client-side mediator, a concrete server-side QoS
implementation, and its entry in the pattern catalog
(:data:`repro.core.catalog.CATALOG`).  Importing this package
registers all five.
"""

from repro.qos.characteristic import (
    Characteristic,
    REGISTRY,
    get_characteristic,
    qidl_prelude,
    register_characteristic,
    weave,
)
from repro.qos import fault_tolerance as _ft  # noqa: F401
from repro.qos import load_balancing as _lb  # noqa: F401
from repro.qos import compression as _compression  # noqa: F401
from repro.qos import encryption as _encryption  # noqa: F401
from repro.qos import actuality as _actuality  # noqa: F401

__all__ = [
    "Characteristic",
    "REGISTRY",
    "get_characteristic",
    "qidl_prelude",
    "register_characteristic",
    "weave",
]
