"""Load-balancing policies.

A policy chooses the next worker index given the per-worker statistics
the mediator maintains.  All policies are deterministic given their
seed and call history, keeping experiments reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List


class WorkerStats:
    """Client-observable statistics for one worker."""

    __slots__ = ("assigned", "failures", "ewma_latency")

    def __init__(self) -> None:
        self.assigned = 0
        self.failures = 0
        self.ewma_latency = 0.0

    def record(self, latency: float, alpha: float = 0.3) -> None:
        if self.ewma_latency == 0.0:
            self.ewma_latency = latency
        else:
            self.ewma_latency = alpha * latency + (1 - alpha) * self.ewma_latency


class Policy:
    """Base policy: pick an index into the live worker list."""

    name = ""

    def choose(self, count: int, stats: List[WorkerStats]) -> int:
        raise NotImplementedError


class RoundRobinPolicy(Policy):
    """Cycle through the workers in order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, count: int, stats: List[WorkerStats]) -> int:
        index = self._next % count
        self._next += 1
        return index


class RandomPolicy(Policy):
    """Uniform random choice (seeded)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose(self, count: int, stats: List[WorkerStats]) -> int:
        return self._rng.randrange(count)


class LeastUsedPolicy(Policy):
    """The worker with the fewest assigned calls so far."""

    name = "least_used"

    def choose(self, count: int, stats: List[WorkerStats]) -> int:
        return min(range(count), key=lambda i: (stats[i].assigned, i))


class AdaptivePolicy(Policy):
    """The worker with the lowest EWMA latency (untried workers first).

    Adapts to heterogeneous worker speeds without any server-side
    cooperation — only client-observed round-trip times feed it.
    """

    name = "adaptive"

    def choose(self, count: int, stats: List[WorkerStats]) -> int:
        for index in range(count):
            if stats[index].assigned == 0:
                return index
        return min(range(count), key=lambda i: (stats[i].ewma_latency, i))


_POLICIES: Dict[str, type] = {
    cls.name: cls
    for cls in (RoundRobinPolicy, RandomPolicy, LeastUsedPolicy, AdaptivePolicy)
}


def make_policy(name: str, seed: int = 0) -> Policy:
    """Instantiate a policy by name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return cls(seed)
    return cls()


def policy_names() -> List[str]:
    return sorted(_POLICIES)
