"""Performance by load balancing (Section 6).

A purely application-centred characteristic (Figure 1's upper
integration layer): the client-side mediator redirects each intercepted
call to one of a set of worker replicas, chosen by a pluggable policy.
Failed workers are quarantined and the call retried elsewhere — no
application code changes on either side.
"""

from repro.core.catalog import CATALOG, CatalogEntry
from repro.qos.characteristic import Characteristic, register_characteristic
from repro.qos.load_balancing.balancer import (
    LoadBalancingImpl,
    LoadBalancingMediator,
    WorkerPool,
)
from repro.qos.load_balancing.policies import (
    AdaptivePolicy,
    LeastUsedPolicy,
    Policy,
    RandomPolicy,
    RoundRobinPolicy,
    make_policy,
)

QIDL = """
qos LoadBalancing {
    attribute string policy;
    management sequence<string> workers();
    management void add_worker(in string member_ior);
    management void remove_worker(in string member_ior);
    integration long current_load();
};
"""

CHARACTERISTIC = register_characteristic(
    Characteristic(
        name="LoadBalancing",
        category="performance",
        qidl=QIDL,
        mediator_class=LoadBalancingMediator,
        impl_class=LoadBalancingImpl,
        default_module=None,
    )
)

CATALOG.register(
    CatalogEntry(
        name="LoadBalancing",
        category="performance",
        intent=(
            "Spread client requests over a pool of stateless worker "
            "replicas to cut queueing latency and raise throughput."
        ),
        for_application_developers=(
            "Declare 'provides LoadBalancing'; workers must be "
            "stateless (or share state elsewhere).  Optionally implement "
            "the integration operation current_load for load reporting."
        ),
        for_qos_implementors=(
            "Entirely client-side: the mediator redirects each call; "
            "policies are pluggable (round_robin, random, least_used, "
            "adaptive EWMA-latency).  The worker list is served by the "
            "management operation 'workers' so clients bootstrap from "
            "the negotiated binding."
        ),
        mechanisms=["mediator redirection", "EWMA latency estimation"],
        related=["FaultTolerance"],
        qidl=QIDL,
    )
)

__all__ = [
    "AdaptivePolicy",
    "CHARACTERISTIC",
    "LeastUsedPolicy",
    "LoadBalancingImpl",
    "LoadBalancingMediator",
    "Policy",
    "QIDL",
    "RandomPolicy",
    "RoundRobinPolicy",
    "WorkerPool",
    "make_policy",
]
