"""The load-balancing mediator, server impl and worker-pool helper."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.mediator import CHARACTERISTIC_CONTEXT, Mediator
from repro.core.qos_skeleton import QoSImplementation
from repro.orb.exceptions import BAD_PARAM, COMM_FAILURE, SystemException, TRANSIENT
from repro.orb.ior import IOR
from repro.qos.load_balancing.policies import (
    Policy,
    WorkerStats,
    make_policy,
    policy_names,
)


class LoadBalancingImpl(QoSImplementation):
    """Server-side registry of workers, served over management ops."""

    characteristic = "LoadBalancing"

    def __init__(self) -> None:
        self.policy = "round_robin"
        self._workers: List[str] = []

    def get_policy(self) -> str:
        return self.policy

    def set_policy(self, value: str) -> None:
        if value not in policy_names():
            raise BAD_PARAM(
                f"unknown policy {value!r}; available {policy_names()}"
            )
        self.policy = value

    def workers(self) -> List[str]:
        return list(self._workers)

    def add_worker(self, member_ior: str) -> None:
        if member_ior not in self._workers:
            self._workers.append(member_ior)

    def remove_worker(self, member_ior: str) -> None:
        if member_ior in self._workers:
            self._workers.remove(member_ior)


class LoadBalancingMediator(Mediator):
    """Redirects each intercepted call to a policy-chosen worker.

    Workers that fail with a communication error are quarantined and
    the call is retried on the remaining pool; the worker list can be
    refreshed from the server's management operation at any time.
    """

    characteristic = "LoadBalancing"

    def __init__(self, policy: Any = "round_robin", seed: int = 0) -> None:
        super().__init__()
        self.policy: Policy = (
            make_policy(policy, seed) if isinstance(policy, str) else policy
        )
        self._workers: List[IOR] = []
        self._stats: List[WorkerStats] = []
        self._quarantined: List[IOR] = []
        self.redirections = 0
        self.failovers = 0

    # -- worker management -------------------------------------------------

    def set_workers(self, workers: List[IOR]) -> None:
        self._workers = list(workers)
        self._stats = [WorkerStats() for _ in self._workers]
        self._quarantined = []

    def refresh_workers(self, stub: Any) -> List[IOR]:
        """Pull the worker list from the server's management op."""
        ior_strings = stub._invoke(
            "workers",
            (),
            extra_contexts={CHARACTERISTIC_CONTEXT: self.characteristic},
        )
        self.set_workers([IOR.from_string(text) for text in ior_strings])
        return list(self._workers)

    @property
    def workers(self) -> List[IOR]:
        return list(self._workers)

    def stats(self) -> List[WorkerStats]:
        return list(self._stats)

    # -- interception -----------------------------------------------------------

    def invoke(self, stub: Any, operation: str, args: Tuple[Any, ...]) -> Any:
        self.calls_intercepted += 1
        if not self._workers:
            # No pool yet: pass the call through to the bound object.
            return self.issue(stub, operation, args)
        clock = stub._orb.clock
        last_error: Optional[SystemException] = None
        while self._workers:
            index = self.policy.choose(len(self._workers), self._stats)
            worker = self._workers[index]
            stats = self._stats[index]
            stats.assigned += 1
            self.redirections += 1
            started = clock.now
            try:
                result = stub._invoke(
                    operation,
                    args,
                    extra_contexts={
                        CHARACTERISTIC_CONTEXT: self.characteristic
                    },
                    target=worker,
                )
                stats.record(clock.now - started)
                return result
            except (COMM_FAILURE, TRANSIENT) as error:
                stats.failures += 1
                last_error = error
                self._quarantine(index)
                self.failovers += 1
        raise last_error if last_error is not None else COMM_FAILURE(
            "load balancer has no workers"
        )

    def _quarantine(self, index: int) -> None:
        self._quarantined.append(self._workers.pop(index))
        self._stats.pop(index)

    def reinstate_quarantined(self) -> int:
        """Return quarantined workers to the pool (e.g. after recovery)."""
        count = len(self._quarantined)
        for worker in self._quarantined:
            self._workers.append(worker)
            self._stats.append(WorkerStats())
        self._quarantined = []
        return count


class WorkerPool:
    """Server-side helper: place stateless workers on a set of hosts."""

    def __init__(
        self,
        world: Any,
        pool_name: str,
        servant_factory: Callable[[], Any],
    ) -> None:
        self.world = world
        self.pool_name = pool_name
        self.servant_factory = servant_factory
        self._members: Dict[str, Tuple[Any, IOR]] = {}

    def add_worker(self, host_name: str) -> IOR:
        if host_name in self._members:
            raise ValueError(f"worker already placed on {host_name!r}")
        servant = self.servant_factory()
        orb = self.world.orb(host_name)
        ior = orb.poa.activate_object(servant, f"{self.pool_name}-{host_name}")
        self._members[host_name] = (servant, ior)
        return ior

    def remove_worker(self, host_name: str) -> None:
        servant, ior = self._members.pop(host_name)
        try:
            self.world.orb(host_name).poa.deactivate_object(ior.profile.object_key)
        except Exception:
            pass

    def worker_iors(self) -> List[IOR]:
        return [ior for _, ior in self._members.values()]

    def hosts(self) -> List[str]:
        return sorted(self._members)

    def populate_impl(self, impl: LoadBalancingImpl) -> None:
        """Register all workers with a server-side impl."""
        for ior in self.worker_iors():
            impl.add_worker(ior.to_string())
