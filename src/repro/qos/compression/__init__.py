"""Compression for channels with small bandwidth (Section 6).

The application-centred variant of the characteristic (Figure 1's
upper layer): the mediator compresses large argument payloads before
they are marshalled and the server-side QoS implementation restores
them in its prolog; results travel back the same way.  The
network-centred variant — the whole GIOP body compressed inside the
ORB — is the ``compression`` transport module
(:mod:`repro.orb.modules.compression`); experiment E1 compares the two
integration layers.
"""

from repro.core.catalog import CATALOG, CatalogEntry
from repro.qos.characteristic import Characteristic, register_characteristic
from repro.qos.compression.payload import (
    CompressionImpl,
    CompressionMediator,
    compress_value,
    decompress_value,
    is_compressed,
)

QIDL = """
qos Compression {
    attribute string codec;
    attribute long threshold;
    management double observed_ratio();
};
"""

CHARACTERISTIC = register_characteristic(
    Characteristic(
        name="Compression",
        category="performance",
        qidl=QIDL,
        mediator_class=CompressionMediator,
        impl_class=CompressionImpl,
        default_module="compression",
    )
)

CATALOG.register(
    CatalogEntry(
        name="Compression",
        category="performance",
        intent=(
            "Shrink large payloads so calls over small-bandwidth "
            "channels complete sooner, trading CPU for transfer time."
        ),
        for_application_developers=(
            "Declare 'provides Compression'; no code changes — string "
            "and bytes payloads above the negotiated threshold are "
            "compressed transparently in the mediator and restored in "
            "the server-side prolog."
        ),
        for_qos_implementors=(
            "Two integration layers exist: this application-centred "
            "mediator/impl pair, and the 'compression' transport module "
            "that compresses whole GIOP bodies inside the ORB.  Codecs "
            "(rle, lz, delta) are shared; pick per binding via the "
            "codec QoS parameter."
        ),
        mechanisms=["rle/lz/delta codecs", "compression transport module"],
        related=["Encryption"],
        qidl=QIDL,
    )
)

__all__ = [
    "CHARACTERISTIC",
    "CompressionImpl",
    "CompressionMediator",
    "QIDL",
    "compress_value",
    "decompress_value",
    "is_compressed",
]
