"""Payload-level compression: mediator and server-side implementation.

Compressed values travel as marker maps ``{"__maqs_c__": codec,
"text": bool, "data": <compressed bytes>}`` — still ordinary CDR
values, so the ORB needs no changes (separation of concerns: this
characteristic lives entirely at the application integration layer).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro import codecs
from repro.core.mediator import Mediator
from repro.core.qos_skeleton import QoSImplementation
from repro.orb.exceptions import BAD_PARAM

_MARKER = "__maqs_c__"
DEFAULT_CODEC = "lz"
DEFAULT_THRESHOLD = 256


def compress_value(value: Any, codec: str, threshold: int) -> Any:
    """Compress a str/bytes value if it is large enough to benefit."""
    if isinstance(value, str):
        raw = value.encode("utf-8")
        is_text = True
    elif isinstance(value, (bytes, bytearray)):
        raw = bytes(value)
        is_text = False
    else:
        return value
    if len(raw) < threshold:
        return value
    compress, _ = codecs.get_codec(codec)
    packed = compress(raw)
    if len(packed) >= len(raw):
        return value
    return {_MARKER: codec, "text": is_text, "data": packed}


def is_compressed(value: Any) -> bool:
    return isinstance(value, dict) and _MARKER in value


def decompress_value(value: Any) -> Any:
    """Restore a marker map to its original value; pass others through."""
    if not is_compressed(value):
        return value
    codec = value[_MARKER]
    _, decompress = codecs.get_codec(codec)
    raw = decompress(value["data"])
    return raw.decode("utf-8") if value.get("text") else raw


class CompressionMediator(Mediator):
    """Compress outgoing payloads; restore incoming results."""

    characteristic = "Compression"

    def __init__(
        self, codec: str = DEFAULT_CODEC, threshold: int = DEFAULT_THRESHOLD
    ) -> None:
        super().__init__()
        self.codec = codec
        self.threshold = threshold
        self.bytes_before = 0
        self.bytes_after = 0

    def before_request(
        self, stub: Any, operation: str, args: Tuple[Any, ...]
    ) -> Tuple[str, Tuple[Any, ...]]:
        clock = stub._orb.clock
        transformed = []
        for value in args:
            packed = compress_value(value, self.codec, self.threshold)
            if is_compressed(packed):
                original = len(value) if isinstance(value, (bytes, bytearray)) else len(
                    value.encode("utf-8")
                )
                self.bytes_before += original
                self.bytes_after += len(packed["data"])
                clock.advance(codecs.cpu_cost(self.codec, original))
            transformed.append(packed)
        return operation, tuple(transformed)

    def after_reply(self, stub: Any, operation: str, result: Any) -> Any:
        if is_compressed(result):
            stub._orb.clock.advance(
                codecs.cpu_cost(result[_MARKER], len(result["data"]))
            )
            restored = decompress_value(result)
            original = (
                len(restored)
                if isinstance(restored, (bytes, bytearray))
                else len(restored.encode("utf-8"))
            )
            self.bytes_before += original
            self.bytes_after += len(result["data"])
            return restored
        return result

    def observed_ratio(self) -> float:
        if self.bytes_before == 0:
            return 1.0
        return self.bytes_after / self.bytes_before


class CompressionImpl(QoSImplementation):
    """Server side: restore arguments, compress large results."""

    characteristic = "Compression"

    def __init__(
        self, codec: str = DEFAULT_CODEC, threshold: int = DEFAULT_THRESHOLD
    ) -> None:
        self.codec = codec
        self.threshold = threshold
        self.bytes_before = 0
        self.bytes_after = 0

    # QoS parameter accessors.
    def get_codec(self) -> str:
        return self.codec

    def set_codec(self, value: str) -> None:
        if value not in codecs.CODECS:
            raise BAD_PARAM(
                f"unknown codec {value!r}; available {sorted(codecs.CODECS)}"
            )
        self.codec = value

    def get_threshold(self) -> int:
        return self.threshold

    def set_threshold(self, value: int) -> None:
        if value < 0:
            raise BAD_PARAM("threshold must be non-negative")
        self.threshold = int(value)

    def observed_ratio(self) -> float:
        if self.bytes_before == 0:
            return 1.0
        return self.bytes_after / self.bytes_before

    # Weaving hooks.
    def prolog(
        self,
        servant: Any,
        operation: str,
        args: Tuple[Any, ...],
        contexts: Dict[str, Any],
    ) -> Optional[Tuple[Any, ...]]:
        if not any(is_compressed(value) for value in args):
            return None
        return tuple(decompress_value(value) for value in args)

    def epilog(
        self,
        servant: Any,
        operation: str,
        result: Any,
        contexts: Dict[str, Any],
    ) -> Any:
        packed = compress_value(result, self.codec, self.threshold)
        if is_compressed(packed):
            original = len(result) if isinstance(result, (bytes, bytearray)) else len(
                result.encode("utf-8")
            )
            self.bytes_before += original
            self.bytes_after += len(packed["data"])
        return packed
