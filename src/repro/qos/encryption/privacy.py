"""Payload-level encryption: mediator, server impl and key agreement."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Tuple

from repro import ciphers
from repro.ciphers.keyex import KeyExchange
from repro.core.mediator import CHARACTERISTIC_CONTEXT, Mediator
from repro.core.qos_skeleton import QoSImplementation
from repro.orb.exceptions import BAD_PARAM, NO_PERMISSION

_MARKER = "__maqs_e__"
DEFAULT_CIPHER = "xtea-ctr"

_key_counter = itertools.count(1)


def encrypt_value(value: Any, cipher: str, key_id: str, key: bytes) -> Any:
    """Encrypt a str/bytes value into a marker map; pass others through."""
    if isinstance(value, str):
        raw = value.encode("utf-8")
        is_text = True
    elif isinstance(value, (bytes, bytearray)):
        raw = bytes(value)
        is_text = False
    else:
        return value
    encrypt, _ = ciphers.get_cipher(cipher)
    return {
        _MARKER: cipher,
        "key_id": key_id,
        "text": is_text,
        "data": encrypt(key, raw),
    }


def is_encrypted(value: Any) -> bool:
    return isinstance(value, dict) and _MARKER in value


def decrypt_value(value: Any, keys: Dict[str, bytes]) -> Any:
    """Restore a marker map using the session-key table."""
    if not is_encrypted(value):
        return value
    key_id = value["key_id"]
    key = keys.get(key_id)
    if key is None:
        raise NO_PERMISSION(f"no session key installed under {key_id!r}")
    _, decrypt = ciphers.get_cipher(value[_MARKER])
    raw = decrypt(key, value["data"])
    return raw.decode("utf-8") if value.get("text") else raw


class EncryptionMediator(Mediator):
    """Encrypt outgoing payloads; decrypt incoming results."""

    characteristic = "Encryption"

    def __init__(self, cipher: str = DEFAULT_CIPHER, seed: int = 0) -> None:
        super().__init__()
        self.cipher = cipher
        self.key_id = ""
        self._seed = seed
        self._keys: Dict[str, bytes] = {}
        self.handshakes = 0

    # -- key agreement (QoS-to-QoS via the peer operation) ----------------

    def establish_key(self, stub: Any) -> str:
        """Run a DH exchange with the server's QoS implementation.

        Returns the new key id and makes it current — calling again
        rotates the key on the fly (Section 3.2).
        """
        endpoint = KeyExchange(seed=self._seed)
        self._seed += 1
        key_id = f"sess-{next(_key_counter)}"
        server_public = stub._invoke(
            "exchange_key",
            (key_id, endpoint.public_value),
            extra_contexts={CHARACTERISTIC_CONTEXT: self.characteristic},
        )
        self._keys[key_id] = endpoint.shared_key(server_public)
        self.key_id = key_id
        self.handshakes += 1
        return key_id

    def _current_key(self) -> bytes:
        if not self.key_id or self.key_id not in self._keys:
            raise NO_PERMISSION(
                "no session key established; call establish_key(stub) first"
            )
        return self._keys[self.key_id]

    # -- interception -----------------------------------------------------------

    def before_request(
        self, stub: Any, operation: str, args: Tuple[Any, ...]
    ) -> Tuple[str, Tuple[Any, ...]]:
        if operation == "exchange_key":
            return operation, args  # the handshake itself stays clear
        key = self._current_key()
        clock = stub._orb.clock
        transformed = []
        for value in args:
            sealed = encrypt_value(value, self.cipher, self.key_id, key)
            if is_encrypted(sealed):
                clock.advance(
                    ciphers.cpu_cost(self.cipher, len(sealed["data"]))
                )
            transformed.append(sealed)
        return operation, tuple(transformed)

    def after_reply(self, stub: Any, operation: str, result: Any) -> Any:
        if is_encrypted(result):
            stub._orb.clock.advance(
                ciphers.cpu_cost(result[_MARKER], len(result["data"]))
            )
            return decrypt_value(result, self._keys)
        return result


class EncryptionImpl(QoSImplementation):
    """Server side: key store, peer exchange, prolog/epilog crypto."""

    characteristic = "Encryption"

    def __init__(self, cipher: str = DEFAULT_CIPHER, seed: int = 0x5A5A) -> None:
        self.cipher = cipher
        self.key_id = ""
        self._seed = seed
        self._keys: Dict[str, bytes] = {}

    # QoS parameter accessors.
    def get_cipher(self) -> str:
        return self.cipher

    def set_cipher(self, value: str) -> None:
        if value not in ciphers.CIPHERS:
            raise BAD_PARAM(
                f"unknown cipher {value!r}; available {sorted(ciphers.CIPHERS)}"
            )
        self.cipher = value

    def get_key_id(self) -> str:
        return self.key_id

    # Peer operation: the server half of the DH agreement.
    def exchange_key(self, key_id: str, public_value: int) -> int:
        endpoint = KeyExchange(seed=self._seed)
        self._seed += 1
        self._keys[key_id] = endpoint.shared_key(public_value)
        self.key_id = key_id
        return endpoint.public_value

    # Management operation.
    def drop_key(self, key_id: str) -> None:
        self._keys.pop(key_id, None)
        if self.key_id == key_id:
            self.key_id = ""

    # Weaving hooks.
    def prolog(
        self,
        servant: Any,
        operation: str,
        args: Tuple[Any, ...],
        contexts: Dict[str, Any],
    ) -> Optional[Tuple[Any, ...]]:
        if not any(is_encrypted(value) for value in args):
            return None
        return tuple(decrypt_value(value, self._keys) for value in args)

    def epilog(
        self,
        servant: Any,
        operation: str,
        result: Any,
        contexts: Dict[str, Any],
    ) -> Any:
        if not self.key_id or self.key_id not in self._keys:
            return result
        return encrypt_value(
            result, self.cipher, self.key_id, self._keys[self.key_id]
        )
