"""Privacy through encryption (Section 6).

Application-centred privacy: the mediator encrypts argument payloads
under a per-binding session key and the server-side implementation
decrypts them in its prolog (results travel back encrypted).  The
session key is agreed with Diffie-Hellman over the characteristic's
**peer** operation — the "QoS to QoS" communication of Section 3.2,
including "on the fly change of encryption keys".

The network-centred variant — whole GIOP bodies encrypted in the ORB —
is the ``crypto`` transport module (:mod:`repro.orb.modules.crypto`).
"""

from repro.core.catalog import CATALOG, CatalogEntry
from repro.qos.characteristic import Characteristic, register_characteristic
from repro.qos.encryption.privacy import (
    EncryptionImpl,
    EncryptionMediator,
    decrypt_value,
    encrypt_value,
    is_encrypted,
)

QIDL = """
qos Encryption {
    attribute string cipher;
    readonly attribute string key_id;
    peer any exchange_key(in string key_id, in any public_value);
    management void drop_key(in string key_id);
};
"""

CHARACTERISTIC = register_characteristic(
    Characteristic(
        name="Encryption",
        category="privacy",
        qidl=QIDL,
        mediator_class=EncryptionMediator,
        impl_class=EncryptionImpl,
        default_module="crypto",
    )
)

CATALOG.register(
    CatalogEntry(
        name="Encryption",
        category="privacy",
        intent=(
            "Keep payloads confidential on untrusted links by "
            "encrypting them under a session key that never crosses "
            "the wire."
        ),
        for_application_developers=(
            "Declare 'provides Encryption'; establish a session with "
            "mediator.establish_key(stub) after binding.  Payload types "
            "are unchanged — encryption is transparent."
        ),
        for_qos_implementors=(
            "Key agreement runs over the characteristic's peer "
            "operation (Diffie-Hellman, RFC 3526 group); ciphers "
            "(xtea-ctr, arc4) are shared with the 'crypto' transport "
            "module, which encrypts whole GIOP bodies instead."
        ),
        mechanisms=["xtea-ctr/arc4 ciphers", "DH key agreement", "crypto module"],
        related=["Compression"],
        qidl=QIDL,
    )
)

__all__ = [
    "CHARACTERISTIC",
    "EncryptionImpl",
    "EncryptionMediator",
    "QIDL",
    "decrypt_value",
    "encrypt_value",
    "is_encrypted",
]
