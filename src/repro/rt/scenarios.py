"""Recorded conformance scenarios, replayable on either substrate.

Each scenario is substrate-blind: ``build(orb_for)`` installs servants
(and schedulers) on named *logical* hosts through whatever ORB the
runner hands it, and ``drive(driver, iors)`` issues the exact same
request sequence through a :class:`~repro.rt.conformance.Driver`.
The conformance runner executes each scenario once on netsim and once
over asyncio TCP and asserts the wire traffic matches byte for byte
(see :mod:`repro.rt.conformance` for the tolerance applied to the
scheduler's timing hints).

The module also exports the factories the process harness spawns
(:func:`echo_server`, :func:`echo_client`) so benchmarks and the
two-process example share the same servant.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.ciphers.keyex import KeyExchange
from repro.orb.ior import GROUP_TAG, IIOPProfile, IOR, QOS_TAG, TaggedComponent
from repro.orb.modules.base import binding_key
from repro.orb.request import Request, TRANSPORT_TARGET
from repro.orb.servant import Servant
from repro.reliability.policy import ReliabilityPolicy

ECHO_REPO_ID = "IDL:test/Echo:1.0"


class ConformanceEchoServant(Servant):
    """The deterministic servant every scenario talks to."""

    _repo_id = ECHO_REPO_ID
    _default_service_time = 0.001

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.calls = 0

    def echo(self, text: str) -> str:
        self.calls += 1
        return text.upper()

    def whoami(self) -> str:
        self.calls += 1
        return self.label

    def add(self, a: Any, b: Any) -> Any:
        self.calls += 1
        return a + b

    def fail(self, message: str) -> None:
        self.calls += 1
        raise ValueError(message)


class SlowEchoServant(ConformanceEchoServant):
    """Modeled service time long enough that a burst cannot drain.

    Both substrates deliver a pipelined window within far less than
    50 ms, so the scheduler sees the identical queue-depth sequence on
    simulated and wall clocks — admission decisions match exactly.
    """

    _default_service_time = 0.05


class Scenario:
    """One recorded exchange: server setup plus a driven request script."""

    name = ""
    #: Raw reply bytes match across substrates.  False only where the
    #: scheduler embeds timing hints (retry-after seconds), which are
    #: compared canonically — structure identical, hint values scrubbed.
    deterministic_replies = True
    #: Logical hosts that run a serving ORB.
    server_hosts = ("server",)
    #: Logical hosts present in IORs but with nothing listening
    #: (failover scenarios dial them and must fail identically).
    dead_hosts = ()

    def build(self, orb_for) -> Dict[str, IOR]:
        """Install servants via ``orb_for(host)``; return named IORs."""
        raise NotImplementedError

    def drive(self, driver, iors: Dict[str, IOR]) -> List[dict]:
        """Issue the scripted requests; return outcome records."""
        raise NotImplementedError


class EchoScenario(Scenario):
    """Plain GIOP/IIOP traffic: results, user errors, a oneway."""

    name = "echo"

    def build(self, orb_for) -> Dict[str, IOR]:
        orb = orb_for("server")
        return {"echo": orb.poa.activate_object(ConformanceEchoServant("plain"))}

    def drive(self, driver, iors: Dict[str, IOR]) -> List[dict]:
        target = iors["echo"]
        return [
            driver.invoke(Request(target, "echo", ("hello rt",))),
            driver.invoke(Request(target, "echo", ("ünïcödé ✓",))),
            driver.invoke(Request(target, "add", (2, 3))),
            driver.invoke(Request(target, "fail", ("nope",))),
            driver.invoke(
                Request(target, "echo", ("ping",), response_expected=False)
            ),
            driver.invoke(Request(target, "whoami", ())),
        ]


class CompressionScenario(Scenario):
    """The compression module's envelope on both substrates."""

    name = "compression"

    def build(self, orb_for) -> Dict[str, IOR]:
        orb = orb_for("server")
        component = TaggedComponent(QOS_TAG, {"characteristics": ["compression"]})
        ior = orb.poa.activate_object(
            ConformanceEchoServant("compressed"), components=[component]
        )
        return {"echo": ior}

    def drive(self, driver, iors: Dict[str, IOR]) -> List[dict]:
        target = iors["echo"]
        driver.assign(target, "compression")
        driver.client_module("compression").set_codec(binding_key(target), "rle")
        return [
            driver.invoke(Request(target, "echo", ("badger " * 80,))),
            driver.invoke(Request(target, "echo", ("incompressible?",))),
            driver.command(target, TRANSPORT_TARGET, "loaded_modules"),
        ]


class CryptoScenario(Scenario):
    """Key exchange plus encrypted traffic; seeded DH keeps it replayable."""

    name = "crypto"

    def build(self, orb_for) -> Dict[str, IOR]:
        orb = orb_for("server")
        component = TaggedComponent(QOS_TAG, {"characteristics": ["privacy"]})
        ior = orb.poa.activate_object(
            ConformanceEchoServant("encrypted"), components=[component]
        )
        return {"echo": ior}

    def drive(self, driver, iors: Dict[str, IOR]) -> List[dict]:
        target = iors["echo"]
        driver.assign(target, "crypto")
        local = driver.client_module("crypto")
        endpoint = KeyExchange(seed=11)
        exchanged = driver.command(
            target, "crypto", "dh_exchange", "session-1", endpoint.public_value
        )
        local.install_key("session-1", endpoint.shared_key(exchanged["value"]))
        local.set_cipher(binding_key(target), "xtea-ctr", "session-1")
        return [
            exchanged,
            driver.invoke(Request(target, "echo", ("attack at dawn",))),
            driver.invoke(Request(target, "whoami", ())),
        ]


class WfqOverloadScenario(Scenario):
    """WFQ admission under 2x queue capacity: same shed set on both."""

    name = "wfq-overload"
    deterministic_replies = False

    def build(self, orb_for) -> Dict[str, IOR]:
        orb = orb_for("server")
        orb.install_scheduler("wfq", max_depth=2)
        return {"echo": orb.poa.activate_object(SlowEchoServant("wfq"))}

    def drive(self, driver, iors: Dict[str, IOR]) -> List[dict]:
        target = iors["echo"]
        window = [Request(target, "echo", (f"load-{i}",)) for i in range(8)]
        return driver.window(window)


class BackpressureScenario(Scenario):
    """Retry-after hints past the backpressure watermark, both clocks."""

    name = "backpressure"
    deterministic_replies = False

    def build(self, orb_for) -> Dict[str, IOR]:
        orb = orb_for("server")
        orb.install_scheduler("fifo", max_depth=16, backpressure_depth=2)
        return {"echo": orb.poa.activate_object(SlowEchoServant("paced"))}

    def drive(self, driver, iors: Dict[str, IOR]) -> List[dict]:
        target = iors["echo"]
        window = [Request(target, "echo", (f"burst-{i}",)) for i in range(4)]
        return driver.window(window)


class FailoverScenario(Scenario):
    """Replica failover: the dead primary fails unexecuted, s2 answers."""

    name = "failover"
    server_hosts = ("s2",)
    dead_hosts = ("s1",)

    def build(self, orb_for) -> Dict[str, IOR]:
        orb = orb_for("s2")
        live = orb.poa.activate_object(
            ConformanceEchoServant("s2"), object_key="rep-echo"
        )
        dead = IOR(ECHO_REPO_ID, IIOPProfile("s1", 683, "rep-echo"), [])
        group = IOR(
            ECHO_REPO_ID,
            dead.profile,
            [
                TaggedComponent(
                    GROUP_TAG,
                    {
                        "group": "echo-group",
                        "members": [dead.to_string(), live.to_string()],
                    },
                )
            ],
        )
        return {"group": group}

    def drive(self, driver, iors: Dict[str, IOR]) -> List[dict]:
        policy = ReliabilityPolicy(max_retries=3, failover=True)
        return [
            driver.reliable_call(iors["group"], "whoami", policy=policy),
            driver.reliable_call(iors["group"], "echo", "still here", policy=policy),
        ]


#: The conformance suite, in replay order.
ALL_SCENARIOS = (
    EchoScenario(),
    CompressionScenario(),
    CryptoScenario(),
    WfqOverloadScenario(),
    BackpressureScenario(),
    FailoverScenario(),
)


# -- process-harness factories (see repro.rt.harness) ---------------------


def echo_server():
    """Factory: an RtServer hosting one echo servant (harness child)."""
    from repro.rt.server import RtServer, make_rt_orb

    orb = make_rt_orb("server")
    orb.poa.activate_object(ConformanceEchoServant("subprocess"), object_key="echo")
    return RtServer(orb)


def echo_client(host: str, port: int, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Harness child: run ``count`` echo round trips, report throughput."""
    import time

    from repro.rt.client import RtClient

    count = int(payload.get("count", 100))
    ior = IOR(ECHO_REPO_ID, IIOPProfile("server", 683, "echo"), [])
    with RtClient({"server": (host, port)}) as client:
        replies = 0
        start = time.perf_counter()
        for index in range(count):
            value = client.invoke(Request(ior, "echo", (f"msg-{index}",)))
            if value == f"MSG-{index}":
                replies += 1
        elapsed = time.perf_counter() - start
    return {
        "count": count,
        "correct": replies,
        "elapsed_s": elapsed,
        "requests_per_s": count / elapsed if elapsed > 0 else 0.0,
    }
