"""The Clock protocol: one time interface, simulated or wall.

Deadline shedding, retry backoff, breaker half-open probes and pacing
all need three verbs — *what time is it*, *wait this long*, *run this
later* — and none of them cares whether the seconds are simulated or
real.  This module names that contract.  The ORB exposes an instance
as ``orb.time_source``; under netsim it is a :class:`SimClock` over
the event kernel (so every existing test sees bit-identical timing),
while the real-transport server swaps in a :class:`MonotonicClock`
and the very same QoS code runs on wall-clock time.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional


class Clock:
    """Protocol: the time surface QoS concerns are allowed to touch."""

    def now(self) -> float:
        """Current time in seconds (origin is implementation-defined)."""
        raise NotImplementedError

    def wait(self, seconds: float) -> float:
        """Block the caller for ``seconds``; returns the new now()."""
        raise NotImplementedError

    def wait_until(self, instant: float) -> float:
        """Block until ``instant`` (no-op if already past); returns now()."""
        raise NotImplementedError

    def schedule_after(self, delay: float, fn: Callable[..., Any], *args: Any):
        """Run ``fn(*args)`` after ``delay`` seconds; returns a cancellable."""
        raise NotImplementedError


class SimClock(Clock):
    """The existing discrete-event kernel behind the Clock protocol.

    ``wait``/``wait_until`` advance simulated time exactly like the
    old direct ``clock.advance``/``advance_to`` calls did, so every
    deterministic trace is preserved to the tick.
    """

    __slots__ = ("_clock", "_kernel")

    def __init__(self, clock: Any = None, kernel: Any = None) -> None:
        if clock is None:
            if kernel is None:
                raise ValueError("SimClock needs a netsim clock or a kernel")
            clock = kernel.clock
        self._clock = clock
        self._kernel = kernel

    def now(self) -> float:
        return self._clock.now

    def wait(self, seconds: float) -> float:
        if seconds > 0.0:
            self._clock.advance(seconds)
        return self._clock.now

    def wait_until(self, instant: float) -> float:
        self._clock.advance_to(instant)
        return self._clock.now

    def schedule_after(self, delay: float, fn: Callable[..., Any], *args: Any):
        if self._kernel is None:
            raise RuntimeError("this SimClock has no event kernel to schedule on")
        return self._kernel.schedule(delay, fn, *args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._clock.now:.6f})"


class _TimerHandle:
    """Cancellation handle for a MonotonicClock deferred call."""

    __slots__ = ("_timer",)

    def __init__(self, timer: threading.Timer) -> None:
        self._timer = timer

    def cancel(self) -> None:
        self._timer.cancel()


class MonotonicClock(Clock):
    """Wall-clock time, origin-shifted so a fresh clock starts near 0.

    Built on ``time.monotonic`` (immune to NTP steps); ``wait`` really
    sleeps and ``schedule_after`` arms a daemon timer thread.  The
    epoch shift keeps instants in the same small-positive range the
    simulated clock produces, so deadlines and retry-after arithmetic
    behave identically on both substrates.
    """

    __slots__ = ("_origin",)

    def __init__(self, origin: Optional[float] = None) -> None:
        self._origin = time.monotonic() if origin is None else origin

    def now(self) -> float:
        return time.monotonic() - self._origin

    def wait(self, seconds: float) -> float:
        if seconds > 0.0:
            time.sleep(seconds)
        return self.now()

    def wait_until(self, instant: float) -> float:
        remaining = instant - self.now()
        if remaining > 0.0:
            time.sleep(remaining)
        return self.now()

    def schedule_after(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> _TimerHandle:
        timer = threading.Timer(max(delay, 0.0), fn, args)
        timer.daemon = True
        timer.start()
        return _TimerHandle(timer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MonotonicClock(now={self.now():.6f})"
